"""Shared fixtures for the benchmark harness."""

import pytest

from repro.benchgen import paper_example2, suite_cases


@pytest.fixture(scope="session")
def example2():
    return paper_example2()


@pytest.fixture(scope="session")
def cases_by_name():
    return {case.name: case for case in suite_cases()}
