"""E6 — Theorems 1 & 2: the validity boundaries of combinational bounds.

* Theorem 1: floating delay + setup is a correct bound iff the shortest
  path clears the hold time; we sweep the hold time across the
  boundary.
* Theorem 2: a 2-vector delay below half the topological delay is
  uncertified — and Example 2's is *actually wrong*, which we verify
  behaviourally with the event simulator.
"""

from fractions import Fraction

import pytest

from repro.delay import validity_report
from repro.mct import minimum_cycle_time
from repro.sim import ClockedSimulator


class TestTheorem1:
    @pytest.mark.parametrize(
        "hold,valid",
        [(Fraction(0), True), (Fraction(1), True), (Fraction(3, 2), True),
         (Fraction(2), False), (Fraction(3), False)],
        ids=["h0", "h1", "h1.5", "h2", "h3"],
    )
    def test_hold_boundary_on_fig2(self, example2, hold, valid):
        circuit, delays = example2
        report = validity_report(circuit, delays.with_setup_hold(0, hold))
        # Fig. 2's shortest path is 1.5: the boundary sits there.
        assert report.hold_ok is valid
        assert (report.floating_bound is not None) is valid

    def test_floating_bound_is_actually_safe(self, benchmark, example2):
        """Behavioural check of Thm. 1: clocking at the floating bound
        (4) keeps the sampled machine ideal."""
        circuit, delays = example2
        sim = ClockedSimulator(circuit, delays)

        def run():
            return all(
                sim.matches_ideal(4, {"f": init}, [{}] * 16)
                for init in (False, True)
            )

        assert benchmark.pedantic(run, rounds=1, iterations=1)


class TestTheorem2:
    def test_fig2_transition_uncertified(self, example2):
        circuit, delays = example2
        report = validity_report(circuit, delays)
        assert report.transition == 2
        assert report.topological == 5
        assert not report.transition_certified   # 2 < 5/2

    def test_uncertified_bound_is_actually_wrong(self, benchmark, example2):
        """The paper's punchline, behaviourally: clocking Fig. 2 at its
        2-vector delay (τ = 2) produces wrong sampled behaviour."""
        circuit, delays = example2
        sim = ClockedSimulator(circuit, delays)

        def run():
            return sim.matches_ideal(2, {"f": True}, [{}] * 8)

        assert benchmark.pedantic(run, rounds=1, iterations=1) is False

    def test_certified_region_contains_mct(self, example2):
        """Whenever Thm. 2 certifies, the bound dominates the MCT."""
        circuit, delays = example2
        mct = minimum_cycle_time(circuit, delays).mct_upper_bound
        report = validity_report(circuit, delays)
        if report.transition_bound is not None:  # pragma: no cover
            assert mct <= report.transition_bound
        # Fig. 2: uncertified, and indeed transition < MCT.
        assert report.transition < mct
