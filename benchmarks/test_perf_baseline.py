"""End-to-end check of the perf baseline harness.

Runs ``benchmarks.perf_baseline`` exactly as the CI bench job does,
then enforces the report's contract:

* the ``repro-mct-bench/4`` schema (cases for Example 2, the exact-LP
  ``interval_bank`` stress rows, and every benchgen row, each tagged
  with its BDD kernel and carrying wall-clock, full ``BddStats``, and
  — on exact runs — the ``LpStats`` counter dict);
* the normalized Example 2 sweep reports a cache hit rate *strictly
  higher* than the unnormalized baseline measured in the same run;
* the kernel comparison shows byte-identical verdicts between the
  array and object kernels on every case, with the array kernel
  beating the object oracle on work for every ITE-heavy case;
* the exact-LP stress cases prove the branch-and-bound fast path did
  its job: work avoided (``prescreen_skips + bound_prunes``) strictly
  exceeds work done (``solves``), with the accounting identity intact;
* the fresh array-kernel run does not regress ``ite_calls`` (exact)
  or wall time (generous factor) against the committed
  ``BENCH_mct.json`` baseline;
* the sharded suite run produces row-for-row the same deterministic
  fields as the serial harness (``suite_parallel.rows_match``), with
  per-worker telemetry accounting for every task;
* generous wall-clock ceilings, so a pathological perf regression in
  the BDD core fails loudly instead of just slowing CI down.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks import perf_baseline
from repro.benchgen.suite import suite_cases

#: Generous ceilings (seconds): the real numbers are ~100x smaller, so
#: tripping these means an order-of-magnitude regression, not jitter.
EXAMPLE2_CEILING = 30.0
TOTAL_CEILING = 300.0

#: Committed baseline the CI bench job guards against.
BASELINE_PATH = Path(__file__).resolve().parents[1] / "BENCH_mct.json"

#: A fresh case may take this many times the committed wall clock
#: before we call it a regression (CI machines are noisy; ite_calls
#: is the precise work metric, wall is the backstop).
WALL_REGRESSION_FACTOR = 25.0

BDD_KEYS = {
    "nodes_created",
    "peak_nodes",
    "ite_calls",
    "cache_lookups",
    "cache_hits",
    "cache_hit_rate",
    "cache_evictions",
    "not_cache_evictions",
    "gc_runs",
    "nodes_reclaimed",
    "sift_runs",
}


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_mct.json"
    assert perf_baseline.main(["--output", str(out)]) == 0
    return json.loads(out.read_text())


def test_schema(report):
    assert report["schema"] == perf_baseline.SCHEMA == "repro-mct-bench/4"
    names = [case["name"] for case in report["cases"]]
    assert "example2" in names
    assert "example2-interval" in names
    assert "ivbank9-exact" in names
    assert "ivbank10-exact" in names
    for case in suite_cases():
        assert f"benchgen/{case.name}" in names
    for case in report["cases"]:
        assert case["kind"] == "mct-sweep"
        assert case["kernel"] == "array"  # the default kernel
        assert case["wall_seconds"] >= 0
        # Sweeps that blow their budget during path collection never
        # build a decision context: their bdd block is null by design.
        if case["bdd"] is not None:
            assert set(case["bdd"]) == BDD_KEYS


def test_exact_lp_branch_and_bound_wins(report):
    """The B&B oracle must avoid more LPs than it solves on the banks.

    Each ``interval_bank`` case funnels one failing option set with
    ``2**n_holds`` age combinations (512 and 1024 — both past the old
    256-combination cap) into the exact oracle; a blind loop would
    solve them all.  The gate requires the avoided work (prescreen
    skips plus bound prunes) to strictly exceed the LPs solved, and
    cross-checks the per-call accounting identity.
    """
    by_name = {case["name"]: case for case in report["cases"]}
    for name, combos in (("ivbank9-exact", 512), ("ivbank10-exact", 1024)):
        case = by_name[name]
        lp = case["lp"]
        assert lp is not None, name
        assert case["failure_found"] is True, name
        assert lp["solves"] >= 1, name
        assert lp["prescreen_skips"] + lp["bound_prunes"] > lp["solves"], name
        # solves + skips + prunes == enumerated combinations: nothing
        # was silently dropped, and the fast path solved <= 50% of the
        # LPs the blind loop would have.
        assert (
            lp["solves"] + lp["prescreen_skips"] + lp["bound_prunes"] == combos
        ), name
        assert lp["solves"] * 2 <= combos, name


def test_example2_case_values(report):
    by_name = {case["name"]: case for case in report["cases"]}
    example2 = by_name["example2"]
    assert example2["mct"] == "5/2"  # the paper's published value
    assert example2["bdd"]["ite_calls"] > 0
    assert example2["bdd"]["peak_nodes"] > 0


def test_normalization_strictly_improves_hit_rate(report):
    ablation = report["normalization_ablation"]
    baseline = ablation["unnormalized"]["bdd"]
    normalized = ablation["normalized"]["bdd"]
    assert baseline["cache_lookups"] > 0
    assert normalized["cache_hit_rate"] > baseline["cache_hit_rate"]
    assert ablation["hit_rate_gain"] > 0
    # Normalization must also not cost work overall.
    assert normalized["ite_calls"] <= baseline["ite_calls"]
    # Both runs agree on the published answer, of course.
    assert ablation["unnormalized"]["mct"] == ablation["normalized"]["mct"] == "5/2"


def test_kernels_agree_everywhere(report):
    rows = report["kernel_comparison"]["rows"]
    assert {row["name"] for row in rows} == {
        case["name"] for case in report["cases"]
    }
    for row in rows:
        assert row["bounds_match"], row["name"]
        assert row["candidates_match"], row["name"]
        assert row["array"]["kernel"] == "array"
        assert row["object"]["kernel"] == "object"


def test_array_kernel_wins_every_ite_heavy_case(report):
    rows = report["kernel_comparison"]["rows"]
    heavy = [row for row in rows if row["ite_heavy"]]
    # The suite must actually exercise the kernels: a floor change or
    # benchgen shrinkage that leaves nothing ITE-heavy would silently
    # disable this guard.
    assert len(heavy) >= 5
    for row in heavy:
        assert row["array_wins"], row["name"]
        assert (
            row["array"]["bdd"]["ite_calls"]
            <= row["object"]["bdd"]["ite_calls"]
        )
        assert (
            row["array"]["bdd"]["nodes_created"]
            < row["object"]["bdd"]["nodes_created"]
        )


def test_no_regression_against_committed_baseline(report):
    """The fresh run may not do more BDD work than the committed one.

    ``ite_calls`` is deterministic for a given sweep, so any increase
    is a real algorithmic regression.  Wall clock only backstops at a
    generous factor — machines differ, work counts do not.
    """
    committed = json.loads(BASELINE_PATH.read_text())
    assert committed["schema"] == "repro-mct-bench/4"
    committed_cases = {case["name"]: case for case in committed["cases"]}
    for case in report["cases"]:
        base = committed_cases.get(case["name"])
        if base is None:
            continue  # a new case has no baseline yet
        assert case["mct"] == base["mct"], case["name"]
        if case["bdd"] is None or base["bdd"] is None:
            continue
        assert case["bdd"]["ite_calls"] <= base["bdd"]["ite_calls"], case["name"]
        ceiling = max(
            base["wall_seconds"] * WALL_REGRESSION_FACTOR, EXAMPLE2_CEILING
        )
        assert case["wall_seconds"] <= ceiling, case["name"]


def test_suite_parallel_matches_serial(report):
    par = report["suite_parallel"]
    assert par["jobs"] >= 2
    assert par["rows_match"] is True
    assert par["rows"] > 0
    assert par["serial_wall_seconds"] >= 0
    assert par["parallel_wall_seconds"] >= 0
    # Every row was measured by exactly one worker.
    assert sum(w["tasks"] for w in par["workers"]) == par["rows"]
    for worker in par["workers"]:
        assert worker["pid"] > 0
        assert set(worker["bdd"]) == BDD_KEYS


def test_wall_clock_ceilings(report):
    by_name = {case["name"]: case for case in report["cases"]}
    assert by_name["example2"]["wall_seconds"] < EXAMPLE2_CEILING
    assert report["total_wall_seconds"] < TOTAL_CEILING
