"""E5 — ablations of the decision algorithm's ingredients.

The paper lists the sequential properties its formulation captures:
reachable state space, initial states, gate-delay variation, and the
cost of enumerating failing combinations.  Each ablation turns one
ingredient off (or varies it) and measures the effect on the bound.
"""

from fractions import Fraction

import pytest

from repro.benchgen.generators import (
    false_path_block,
    mirrored_pair,
    swap_ring,
    toggle_loop,
)
from repro.mct import MctOptions, minimum_cycle_time
from repro.mct.discretize import build_discretized_machine


class TestReachabilityDontCares:
    """Sec. 3: restricting to the reachable space tightens the bound."""

    def test_plain_cx_pins_to_long_path(self, benchmark):
        circuit, delays = mirrored_pair(long_delay=10, loop_delay=2)
        result = benchmark.pedantic(
            lambda: minimum_cycle_time(circuit, delays), rounds=1, iterations=1
        )
        assert result.mct_upper_bound == 10

    def test_reachability_recovers_true_bound(self, benchmark):
        circuit, delays = mirrored_pair(long_delay=10, loop_delay=2)
        result = benchmark.pedantic(
            lambda: minimum_cycle_time(
                circuit, delays, MctOptions(use_reachability=True)
            ),
            rounds=1,
            iterations=1,
        )
        assert result.mct_upper_bound == 2


class TestInitialStates:
    """Sec. 3: the initial state shapes the reachable space and hence
    the minimum cycle time."""

    @pytest.mark.parametrize(
        "init,expected",
        [
            ({"qa": False, "qb": False}, Fraction(2)),   # constant machine
            ({"qa": False, "qb": True}, Fraction(8)),    # oscillating
        ],
        ids=["init-00", "init-01"],
    )
    def test_swap_ring_bound_depends_on_init(self, benchmark, init, expected):
        circuit, delays = swap_ring(long_delay=8, short_delay=2)
        result = benchmark.pedantic(
            lambda: minimum_cycle_time(
                circuit,
                delays,
                MctOptions(initial_state=init, use_reachability=True),
            ),
            rounds=1,
            iterations=1,
        )
        if expected == 2:
            # Constant machine: the long path never fails; the short
            # swap path is the only breakpoint source that can fail —
            # and it too passes, so no failure is found at all.
            assert result.mct_upper_bound <= expected
        else:
            assert result.mct_upper_bound == expected


class TestDelayVariation:
    """Sec. 7: interval delays can only loosen (or keep) the bound."""

    def test_interval_bound_at_least_fixed(self, benchmark):
        circuit, delays = false_path_block(Fraction(10), Fraction(8))
        fixed = minimum_cycle_time(circuit, delays).mct_upper_bound
        widened = benchmark.pedantic(
            lambda: minimum_cycle_time(circuit, delays.widen(Fraction(9, 10))),
            rounds=1,
            iterations=1,
        )
        assert widened.mct_upper_bound >= fixed

    def test_wider_variation_wider_bound(self):
        circuit, delays = false_path_block(Fraction(10), Fraction(8))
        mild = minimum_cycle_time(circuit, delays.widen(Fraction(19, 20)))
        harsh = minimum_cycle_time(circuit, delays.widen(Fraction(1, 2)))
        assert harsh.mct_upper_bound >= mild.mct_upper_bound


class TestExactnessLadder:
    """Sec. 6's hierarchy: C_x < C_x + reachability < exact Def. 2.

    Each rung costs more and certifies a faster (or equal) clock; the
    mirrored-register circuit separates all three strictly.
    """

    def test_three_rungs(self, benchmark):
        from repro.fsm import exact_minimum_cycle_time

        circuit, delays = mirrored_pair(long_delay=10, loop_delay=2)

        def ladder():
            plain = minimum_cycle_time(circuit, delays)
            reach = minimum_cycle_time(
                circuit, delays, MctOptions(use_reachability=True)
            )
            exact = exact_minimum_cycle_time(circuit, delays)
            return plain, reach, exact

        plain, reach, exact = benchmark.pedantic(ladder, rounds=1, iterations=1)
        assert plain.mct_upper_bound == 10
        assert reach.mct_upper_bound == 2
        assert not exact.failure_found          # output constant: any τ
        assert exact.exact_mct < reach.mct_upper_bound

    def test_exact_agrees_where_cx_is_tight(self, benchmark):
        from repro.fsm import exact_minimum_cycle_time
        from tests.test_timed_expansion import fig2_circuit

        circuit, delays = fig2_circuit()
        exact = benchmark.pedantic(
            lambda: exact_minimum_cycle_time(circuit, delays),
            rounds=1,
            iterations=1,
        )
        cx = minimum_cycle_time(circuit, delays)
        assert exact.exact_mct == cx.mct_upper_bound == Fraction(5, 2)


class TestSetupTime:
    """Theorem 1's +setup: a guard band shifts the bound additively."""

    def test_setup_shifts_toggle_bound(self, benchmark):
        circuit, delays = toggle_loop(Fraction(6))
        base = minimum_cycle_time(circuit, delays).mct_upper_bound
        guarded = benchmark.pedantic(
            lambda: minimum_cycle_time(
                circuit, delays.with_setup_hold(setup=Fraction(1, 2), hold=0)
            ),
            rounds=1,
            iterations=1,
        )
        assert base == 6
        assert guarded.mct_upper_bound == Fraction(13, 2)


class TestPessimismVersusVariationCurve:
    """Figure-style sweep: how the certified bound degrades as the
    manufacturing window widens (the paper fixes 90%-100%; this shows
    the whole curve on its own Example 2)."""

    SCALES = [
        Fraction(1),
        Fraction(19, 20),
        Fraction(9, 10),
        Fraction(3, 4),
        Fraction(1, 2),
    ]

    def test_bound_monotone_in_variation(self, benchmark, example2):
        circuit, delays = example2

        def sweep():
            points = []
            for scale in self.SCALES:
                annotated = delays if scale == 1 else delays.widen(scale)
                result = minimum_cycle_time(circuit, annotated)
                points.append((scale, result.mct_upper_bound))
            return points

        points = benchmark.pedantic(sweep, rounds=1, iterations=1)
        bounds = [bound for _, bound in points]
        # Wider variation can only loosen the bound...
        assert all(b1 <= b2 for b1, b2 in zip(bounds, bounds[1:]))
        # ...starting from the exact fixed-delay answer...
        assert bounds[0] == Fraction(5, 2)
        # ...and never beyond the fixed-delay floating delay.
        assert all(b <= 4 for b in bounds)


class TestScaling:
    """CPU-column story: analysis cost versus circuit size."""

    @pytest.mark.parametrize("blocks", [2, 8, 32])
    def test_mct_scales_with_merged_blocks(self, benchmark, blocks):
        from repro.benchgen import merge

        parts = [
            false_path_block(Fraction(10), Fraction(8), name=f"fp{i}")
            for i in range(blocks)
        ]
        circuit, delays = merge(f"scale{blocks}", parts)
        result = benchmark.pedantic(
            lambda: minimum_cycle_time(circuit, delays), rounds=1, iterations=1
        )
        assert result.mct_upper_bound is not None


class TestExactVersusRelaxedFeasibility:
    """Sec. 7's LP: gate-coupled feasibility can prune combinations the
    relaxed per-path interval model admits."""

    def test_exact_lp_never_looser(self, benchmark):
        from tests.test_paths_and_exact_lp import shared_stem_circuit

        circuit, delays = shared_stem_circuit()
        relaxed = minimum_cycle_time(circuit, delays)
        exact = benchmark.pedantic(
            lambda: minimum_cycle_time(
                circuit, delays, MctOptions(exact_feasibility=True)
            ),
            rounds=1,
            iterations=1,
        )
        assert exact.mct_upper_bound <= relaxed.mct_upper_bound + Fraction(1, 1000)


class TestCombinationEnumeration:
    """Sec. 7's combination space, handled symbolically.

    The explicit Φ product over multi-age leaves is exponential; the
    choice-variable encoding decides all combinations in one BDD pass.
    We measure the product size the paper's explicit method would face
    and confirm the symbolic sweep ran a linear number of decisions.
    """

    def test_symbolic_vs_explicit_combination_count(self, benchmark):
        circuit, delays = false_path_block(Fraction(10), Fraction(8))
        widened = delays.widen(Fraction(1, 2))  # aggressive variation
        machine = build_discretized_machine(circuit, widened)
        # Explicit product size at the fixed-delay failure point.
        regime = machine.regime(Fraction(5))
        explicit = 1
        for ages in regime.values():
            explicit *= len(ages)
        assert explicit >= 4  # several multi-age leaves
        result = benchmark.pedantic(
            lambda: minimum_cycle_time(circuit, widened), rounds=1, iterations=1
        )
        assert result.decisions_run <= len(result.candidates)
