"""E3 — Fig. 1 TBF component models, asserted and micro-benchmarked.

The figure is illustrative (no measured data in the paper); we
reproduce it as executable assertions on the printed TBF forms plus a
micro-benchmark of TBF evaluation and flattening (Example 1).
"""

from fractions import Fraction

from repro.timed import and_, buffer_tbf, dff_sample_time, lit, or_


def fig1a_complex_gate():
    # y(t) = x1'(t-1) + x2(t-2) + x3(t-3)
    return or_(~lit("x1", 1), lit("x2", 2), lit("x3", 3))


def fig1b_or_gate():
    # x1(t-1) + x1(t-2) + x2(t-4)·x2(t-3)
    return or_(buffer_tbf("x1", 1, 2), buffer_tbf("x2", 4, 3))


def example1_flatten():
    g = or_(lit("a"), lit("b"))
    for signal, expr in [
        ("a", and_(lit("c"), lit("d"), lit("e"))),
        ("b", ~lit("f", 2)),
        ("c", lit("f", 1.5)),
        ("d", ~lit("f", 4)),
        ("e", lit("f", 5)),
    ]:
        g = g.substitute(signal, expr)
    return g


def test_fig1a_model(benchmark):
    gate = fig1a_complex_gate()
    waves = {"x1": lambda t: t >= 0, "x2": lambda t: t >= 0, "x3": lambda t: t >= 0}
    value = benchmark(lambda: gate.evaluate(waves, Fraction(5, 2)))
    assert value is True  # x2 settled high by then
    assert str(gate) == "x1(t-1)' + x2(t-2) + x3(t-3)"


def test_fig1b_or_gate_form(benchmark):
    gate = benchmark(fig1b_or_gate)
    expected = or_(
        lit("x1", 1), lit("x1", 2), and_(lit("x2", 4), lit("x2", 3))
    )
    assert gate.equivalent(expected)


def test_dff_floor_model(benchmark):
    """Q(t) = D(P·⌊(t-d)/P⌋): the floor sampling of Fig. 1, item 4."""
    value = benchmark(
        lambda: dff_sample_time(t=Fraction(79, 10), period=2, dff_delay=1)
    )
    assert value == 6


def test_example1_flattening(benchmark):
    """g(t) = f(t-1.5)·f'(t-4)·f(t-5) + f'(t-2) via TBF composition."""
    flat = benchmark(example1_flatten)
    assert flat.max_shift() == 5
    assert flat.literals() == {
        ("f", Fraction(3, 2)),
        ("f", Fraction(2)),
        ("f", Fraction(4)),
        ("f", Fraction(5)),
    }
