"""Perf baseline runner: times the MCT hot path, writes ``BENCH_mct.json``.

Measures, with wall-clock timing and full BDD-engine counters
(:class:`repro.bdd.BddStats`):

* the paper's Example 2 sweep, fixed and interval (90%–100%) delays;
* every benchgen suite row (the Table 1 stand-ins), MCT sweep only;
* two exact-LP stress cases (``interval_bank`` banks whose single
  failing option set has 512 and 1024 age combinations — past the old
  256-combination cap) run with ``exact_feasibility=True``, recording
  the branch-and-bound LP counters;
* a normalization ablation on Example 2 — the same sweep with ITE
  triple normalization off, establishing the pre-normalization cache
  hit rate the normalized run must beat;
* a kernel comparison — every case above run under both BDD kernels
  (the array/complement-edge default and the object oracle), with a
  verdict-identity check and per-kernel work counters;
* a serial-vs-sharded suite comparison — the report harness run
  in-process and on a 2-worker pool, with per-worker stats and a
  row-identity check.

Run from the repo root::

    PYTHONPATH=src python -m benchmarks.perf_baseline --output BENCH_mct.json

The JSON schema is documented in docs/USAGE.md (``repro-mct-bench/4``):
a ``cases`` list with per-case ``kernel``/``wall_seconds``/``mct``/
``bdd``/``lp`` objects (``lp`` is the ``LpStats`` counter dict, or
``null`` when the sweep never built an exact oracle), a
``normalization_ablation`` object comparing the two Example 2 runs, a
``kernel_comparison`` object with per-case array-vs-object rows, and
a ``suite_parallel`` object with the serial/parallel wall clocks.
``benchmarks/test_perf_baseline.py`` runs this module end-to-end and
enforces the ablation win, the cross-kernel verdict identity, the
array kernel's work advantage on every ITE-heavy case, the
branch-and-bound win on the exact-LP cases (``prescreen_skips +
bound_prunes > solves``), no ``ite_calls``/wall regression against
the committed ``BENCH_mct.json``, the parallel row identity, and
generous wall ceilings; the CI bench job uploads the JSON as an
artifact.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from fractions import Fraction

from repro.benchgen import interval_bank, paper_example2
from repro.benchgen.suite import build_case, suite_cases
from repro.bdd import set_default_ite_normalization
from repro.mct import MctOptions, minimum_cycle_time

SCHEMA = "repro-mct-bench/4"

#: A case is "ITE-heavy" when the object-kernel sweep examined at
#: least this many ITE subproblems; the array kernel must win on
#: every such case (fewer or equal ``ite_calls``, strictly fewer
#: ``nodes_created`` thanks to complement-edge sharing).
ITE_HEAVY_FLOOR = 300


def _frac(value) -> str | None:
    return None if value is None else str(Fraction(value))


def run_sweep(name: str, circuit, delays, options: MctOptions | None = None) -> dict:
    """One timed ``minimum_cycle_time`` run as a JSON-ready case row."""
    options = options or MctOptions()
    t0 = time.monotonic()
    result = minimum_cycle_time(circuit, delays, options)
    wall = time.monotonic() - t0
    return {
        "name": name,
        "kind": "mct-sweep",
        "kernel": options.bdd_kernel,
        "wall_seconds": round(wall, 6),
        "mct": _frac(result.mct_upper_bound),
        "failure_found": result.failure_found,
        "interrupted": result.interrupted,
        "candidates": len(result.candidates),
        "decisions": result.decisions_run,
        "candidate_keys": [
            [_frac(c.tau), c.status, c.m, c.rung] for c in result.candidates
        ],
        "bdd": None if result.bdd_stats is None else result.bdd_stats.as_dict(),
        "lp": None if result.lp_stats is None else result.lp_stats.as_dict(),
    }


def _bench_cases():
    """Every benchmark case as ``(name, circuit, delays, options_kwargs)``."""
    circuit, delays = paper_example2()
    yield "example2", circuit, delays, {}
    yield "example2-interval", circuit, delays.widen(Fraction(9, 10)), {}
    exact = {"exact_feasibility": True, "max_exact_combinations": 1024}
    circuit, delays = interval_bank(9, mix=("xor", "and", "or"), name="ivbank9")
    yield "ivbank9-exact", circuit, delays, dict(exact)
    circuit, delays = interval_bank(10, mix=("or", "xor", "and"), name="ivbank10")
    yield "ivbank10-exact", circuit, delays, dict(exact)
    for case in suite_cases():
        circuit, delays = build_case(case)
        yield (
            f"benchgen/{case.name}",
            circuit,
            delays.widen(Fraction(9, 10)),
            {"work_budget": case.mct_budget},
        )


def measure_cases() -> list[dict]:
    return [
        run_sweep(name, circuit, delays, MctOptions(**kwargs))
        for name, circuit, delays, kwargs in _bench_cases()
    ]


def measure_kernel_comparison() -> dict:
    """Every case under both kernels: identical verdicts, less work.

    ``rows`` records, per case, the array and object runs plus the
    comparison verdicts the bench test enforces: the bound and the
    measurement-free candidate sequence must be identical, and on
    every ITE-heavy case (object ``ite_calls`` at or above
    ``ITE_HEAVY_FLOOR``) the array kernel must beat the object oracle
    on work — no more ``ite_calls``, strictly fewer ``nodes_created``.
    """
    rows = []
    for name, circuit, delays, kwargs in _bench_cases():
        array = run_sweep(
            name, circuit, delays, MctOptions(bdd_kernel="array", **kwargs)
        )
        obj = run_sweep(
            name, circuit, delays, MctOptions(bdd_kernel="object", **kwargs)
        )
        comparable = array["bdd"] is not None and obj["bdd"] is not None
        ite_heavy = (
            comparable and obj["bdd"]["ite_calls"] >= ITE_HEAVY_FLOOR
        )
        rows.append(
            {
                "name": name,
                "bounds_match": array["mct"] == obj["mct"],
                "candidates_match": (
                    array["candidate_keys"] == obj["candidate_keys"]
                ),
                "ite_heavy": ite_heavy,
                "array_wins": (
                    ite_heavy
                    and array["bdd"]["ite_calls"] <= obj["bdd"]["ite_calls"]
                    and array["bdd"]["nodes_created"]
                    < obj["bdd"]["nodes_created"]
                ),
                "array": array,
                "object": obj,
            }
        )
    return {
        "ite_heavy_floor": ITE_HEAVY_FLOOR,
        "rows": rows,
    }


def measure_normalization_ablation() -> dict:
    """Example 2 with ITE normalization off vs on (same process).

    The decision engine builds its managers internally, so the ablation
    flips the module-wide default around each run; the previous default
    is always restored.
    """
    circuit, delays = paper_example2()
    previous = set_default_ite_normalization(False)
    try:
        baseline = run_sweep("example2[normalize=off]", circuit, delays)
        set_default_ite_normalization(True)
        normalized = run_sweep("example2[normalize=on]", circuit, delays)
    finally:
        set_default_ite_normalization(previous)
    gain = (
        normalized["bdd"]["cache_hit_rate"] - baseline["bdd"]["cache_hit_rate"]
    )
    return {
        "case": "example2",
        "unnormalized": baseline,
        "normalized": normalized,
        "hit_rate_gain": round(gain, 6),
    }


def _row_identity(row) -> tuple:
    """The deterministic fields of a TableRow (no wall-clock columns)."""
    return (
        row.name,
        row.flags,
        _frac(row.topological),
        _frac(row.floating),
        _frac(row.transition),
        _frac(row.mct),
        row.mct_partial,
        row.mct_rung,
    )


def measure_suite_parallel(jobs: int = 2) -> dict:
    """The report harness, serial vs sharded on ``jobs`` workers.

    Compares only the deterministic row fields (CPU columns are
    measurements); ``rows_match`` is the acceptance criterion the
    bench test enforces.
    """
    from repro.parallel.suite import run_suite_sharded
    from repro.report.harness import run_suite

    t0 = time.monotonic()
    serial_rows = run_suite(include_s27=True)
    serial_wall = time.monotonic() - t0
    t0 = time.monotonic()
    parallel_rows, workers = run_suite_sharded(include_s27=True, jobs=jobs)
    parallel_wall = time.monotonic() - t0
    serial_ids = [_row_identity(row) for row in serial_rows]
    parallel_ids = [_row_identity(row) for row in parallel_rows]
    return {
        "jobs": jobs,
        "rows": len(serial_rows),
        "rows_match": serial_ids == parallel_ids,
        "serial_wall_seconds": round(serial_wall, 6),
        "parallel_wall_seconds": round(parallel_wall, 6),
        "speedup": round(serial_wall / parallel_wall, 6)
        if parallel_wall > 0
        else None,
        "workers": [worker.as_dict() for worker in workers],
    }


def build_report() -> dict:
    t0 = time.monotonic()
    cases = measure_cases()
    ablation = measure_normalization_ablation()
    kernels = measure_kernel_comparison()
    suite_parallel = measure_suite_parallel()
    return {
        "schema": SCHEMA,
        "generated_by": "benchmarks.perf_baseline",
        "python": platform.python_version(),
        "total_wall_seconds": round(time.monotonic() - t0, 6),
        "cases": cases,
        "normalization_ablation": ablation,
        "kernel_comparison": kernels,
        "suite_parallel": suite_parallel,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="perf_baseline",
        description="Time the MCT hot path and write BENCH_mct.json",
    )
    parser.add_argument(
        "--output", default="BENCH_mct.json", help="report path"
    )
    parser.add_argument(
        "--indent", type=int, default=2, help="JSON indent (0 = compact)"
    )
    args = parser.parse_args(argv)
    report = build_report()
    indent = args.indent if args.indent > 0 else None
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=indent)
        fh.write("\n")
    ablation = report["normalization_ablation"]
    print(
        f"wrote {args.output}: {len(report['cases'])} cases in "
        f"{report['total_wall_seconds']:.2f}s; Example 2 cache hit rate "
        f"{ablation['unnormalized']['bdd']['cache_hit_rate']:.3f} -> "
        f"{ablation['normalized']['bdd']['cache_hit_rate']:.3f} "
        f"(gain {ablation['hit_rate_gain']:+.3f})"
    )
    rows = report["kernel_comparison"]["rows"]
    heavy = [row for row in rows if row["ite_heavy"]]
    wins = [row for row in heavy if row["array_wins"]]
    agree = all(
        row["bounds_match"] and row["candidates_match"] for row in rows
    )
    print(
        f"kernel comparison: {len(rows)} cases, verdicts "
        f"{'identical' if agree else 'DIFFER'}; array wins "
        f"{len(wins)}/{len(heavy)} ITE-heavy cases"
    )
    par = report["suite_parallel"]
    print(
        f"suite x{par['jobs']} workers: serial "
        f"{par['serial_wall_seconds']:.2f}s, parallel "
        f"{par['parallel_wall_seconds']:.2f}s, rows "
        f"{'match' if par['rows_match'] else 'DIFFER'}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
