"""E1 — the paper's Sec. 8 results table, one benchmark per row.

Each row runs the full measurement (topological + floating + transition
+ MCT with the paper's 90%-100% delay variation) through the harness
and asserts the measured columns against the published ones for the
rows with numeric targets, and the "-" semantics for the memory-out
rows.  ``pedantic(rounds=1)`` keeps the full-table pass fast.
"""

import pytest

from repro.benchgen import suite_cases
from repro.report import run_case

ROWS = suite_cases()


@pytest.mark.parametrize("case", ROWS, ids=[c.name for c in ROWS])
def test_table_row(benchmark, case):
    row = benchmark.pedantic(lambda: run_case(case), rounds=1, iterations=1)
    # Topological delay is always measurable and must match the paper.
    assert row.topological == case.paper_top
    # Floating / transition: match, or reproduce the "-" budget-out.
    if case.paper_float is None:
        assert row.floating is None
    else:
        assert row.floating == case.paper_float
    if case.paper_trans is None:
        assert row.transition is None
    else:
        assert row.transition == case.paper_trans
    # MCT: exact match or the "-" marker.
    if case.paper_mct is None:
        assert row.mct is None
    else:
        assert row.mct == case.paper_mct
    # Qualitative shape: MCT never exceeds any valid combinational
    # bound; ‡ rows are strictly better.
    if row.mct is not None and row.floating is not None:
        assert row.mct <= row.floating
        if case.expects_seq_gain:
            assert row.mct < row.floating


def test_real_s27_row(benchmark):
    """The one genuine ISCAS'89 circuit we can ship: all bounds agree
    and the sequential analysis is consistent with them."""
    from repro.benchgen import s27
    from repro.report import analyze_circuit
    from fractions import Fraction

    def run():
        circuit, delays = s27()
        return analyze_circuit(circuit, delays.widen(Fraction(9, 10)))

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    assert row.floating is not None and row.mct is not None
    assert row.mct <= row.floating <= row.topological
