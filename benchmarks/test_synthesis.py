"""E7 — synthesis extensions, benchmarked with assertions.

The paper's closing direction: the analysis as a synthesis cost
function.  Each benchmark certifies its headline improvement.
"""

from fractions import Fraction

import pytest

from repro.mct import level_sensitive_mct, minimum_cycle_time, optimize_skew
from repro.synthesis import optimize_retiming

from tests.test_clock_phases import unbalanced_pipe
from tests.test_synthesis_retime import staged_pipe


def test_useful_skew_optimization(benchmark):
    circuit, delays = unbalanced_pipe()
    result = benchmark.pedantic(
        lambda: optimize_skew(circuit, delays), rounds=1, iterations=1
    )
    assert result.baseline == 6
    assert result.bound == 4
    assert result.improvement == Fraction(1, 3)


def test_forward_retiming_optimization(benchmark):
    circuit, delays, init = staged_pipe()
    result = benchmark.pedantic(
        lambda: optimize_retiming(circuit, delays, init), rounds=1, iterations=1
    )
    assert result.baseline == 9
    assert result.bound == 7


def test_level_sensitive_range(benchmark):
    from repro.benchgen import paper_example2

    circuit, delays = paper_example2()
    result = benchmark.pedantic(
        lambda: level_sensitive_mct(circuit, delays), rounds=1, iterations=1
    )
    assert result.min_period == Fraction(5, 2)
    assert result.max_period == 3
    assert result.feasible


def test_skew_then_variation_is_consistent(benchmark):
    """Composability: the optimized skew stays certified under the
    paper's 90%-100% manufacturing variation."""
    circuit, delays = unbalanced_pipe()
    skew = optimize_skew(circuit, delays)
    skewed = delays.with_phases(skew.phases).widen(Fraction(9, 10))
    result = benchmark.pedantic(
        lambda: minimum_cycle_time(circuit, skewed), rounds=1, iterations=1
    )
    assert result.mct_upper_bound == skew.bound
