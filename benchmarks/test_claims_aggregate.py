"""E4 — the paper's headline claims, checked over the whole suite.

* "for about 20% of the circuits, combinational delays give pessimistic
  upper bounds for cycle times by as much as 25%";
* on the s38584-class circuit, the minimum cycle time is below a
  quarter of the topological delay, and a correct 2-vector bound could
  never certify below half the topological delay (half = 189.2 in the
  paper, >200% above the true 82.0).
"""

from fractions import Fraction

import pytest

from repro.benchgen import build_case, suite_cases
from repro.mct import minimum_cycle_time
from repro.report import run_suite


@pytest.fixture(scope="module")
def table_rows():
    return run_suite(include_s27=False)


def test_fraction_of_improved_circuits(benchmark, table_rows):
    rows = benchmark.pedantic(lambda: table_rows, rounds=1, iterations=1)
    improved = [
        r for r in rows
        if r.mct is not None and r.floating is not None and r.mct < r.floating
    ]
    # 7 of the paper's 18 table rows are flagged ‡ (the table itself
    # over-represents the ~20% because equal rows were omitted).  One
    # of them (g38584) has no measurable floating delay (budget out,
    # like the paper's "-"), so it is counted against the topological
    # delay instead.
    deep = [
        r for r in rows
        if r.mct is not None and r.floating is None and r.mct < r.topological
    ]
    assert len(improved) == 6
    assert len(deep) == 1
    assert len(improved) + len(deep) == 7


def test_pessimism_magnitude(table_rows):
    gains = [
        1 - r.mct / r.floating
        for r in table_rows
        if r.mct is not None and r.floating is not None and r.mct < r.floating
    ]
    # "by as much as 25%": the biggest published gap is s526n
    # (23.4 -> 18.8 ≈ 19.7%); allow the same band.
    assert max(gains) >= Fraction(15, 100)
    assert max(gains) <= Fraction(30, 100)


def test_s38584_class_multicycle_claim(benchmark, cases_by_name):
    case = cases_by_name["g38584"]

    def run():
        circuit, delays = build_case(case)
        return minimum_cycle_time(circuit, delays.widen(Fraction(9, 10)))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    top = case.paper_top
    # MCT below a quarter of the topological delay.
    assert result.mct_upper_bound * 4 < top
    # A certified 2-vector bound can be at best topological/2 (Thm. 2),
    # which is more than 200% of the true bound (the paper: 189.2 vs
    # 82.0, "larger ... by more than 200%").
    certified_floor = top / 2
    assert certified_floor > result.mct_upper_bound * 2


def test_twenty_percent_of_full_suite(benchmark):
    """"These circuits ... consist of about 20% of the benchmark
    suite": with the table's omitted equal-profile rows restored, the
    improving fraction is 7/31 ≈ 23% — the paper's "about 20%"."""
    from repro.benchgen import suite_cases

    full = suite_cases(include_unpublished=True)

    def run():
        return run_suite(full, include_s27=False)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(rows) == 31
    improving = [
        r for r in rows
        if r.mct is not None
        and ((r.floating is not None and r.mct < r.floating)
             or (r.floating is None and r.mct < r.topological))
    ]
    fraction = Fraction(len(improving), len(rows))
    assert Fraction(15, 100) <= fraction <= Fraction(30, 100)
    assert len(improving) == 7
    # Every unpublished row really is equal-profile.
    published = {r.paper["name"] for r in rows if r.paper} - {
        "s208", "s298", "s344", "s349", "s382", "s386", "s400",
        "s420", "s510", "s635", "s838", "s1488", "s13207",
    }
    for row in rows:
        if row.paper and row.paper["name"] not in published:
            assert row.mct == row.floating == row.topological


def test_mct_never_beats_nothing(table_rows):
    """Sanity over every measurable row: MCT ≤ floating ≤ topological."""
    for row in table_rows:
        if row.floating is not None:
            assert row.floating <= row.topological
        if row.mct is not None and row.floating is not None:
            assert row.mct <= row.floating
