"""E2 — the paper's Example 2 / Fig. 2 numbers, benchmarked.

Regenerates the exact published values: topological 5, floating
(single-vector) 4, transition (2-vector) 2, minimum cycle time 2.5,
and the candidate sequence 4, 2.5, 2 (after the trivial steady point).
"""

from fractions import Fraction

from repro.delay import (
    floating_delay,
    longest_topological_delay,
    transition_delay,
)
from repro.mct import minimum_cycle_time


def test_topological_delay_fig2(benchmark, example2):
    circuit, delays = example2
    value = benchmark(lambda: longest_topological_delay(circuit, delays))
    assert value == 5


def test_floating_delay_fig2(benchmark, example2):
    """Paper: single-vector delay = 4 (pessimistic but correct)."""
    circuit, delays = example2
    result = benchmark(lambda: floating_delay(circuit, delays))
    assert result.delay == 4


def test_transition_delay_fig2(benchmark, example2):
    """Paper: 2-vector delay = 2 (an *incorrect* cycle bound)."""
    circuit, delays = example2
    result = benchmark(lambda: transition_delay(circuit, delays))
    assert result.delay == 2


def test_minimum_cycle_time_fig2(benchmark, example2):
    """Paper: minimum cycle time = 2.5 via the candidate sweep."""
    circuit, delays = example2
    result = benchmark(lambda: minimum_cycle_time(circuit, delays))
    assert result.mct_upper_bound == Fraction(5, 2)
    taus = [record.tau for record in result.candidates]
    assert taus == [Fraction(5), Fraction(4), Fraction(5, 2), Fraction(2)]


def test_mct_with_interval_delays_fig2(benchmark, example2):
    """Sec. 7 machinery on the same circuit (90%-100% delays)."""
    circuit, delays = example2
    widened = delays.widen(Fraction(9, 10))
    result = benchmark(lambda: minimum_cycle_time(circuit, widened))
    assert result.failure_found
    assert Fraction(9, 4) <= result.mct_upper_bound <= Fraction(5, 2)
