"""Tests for TBF→circuit synthesis and the arrival report."""

from fractions import Fraction

import pytest

from repro.bdd import BddManager
from repro.delay import floating_delay, longest_topological_delay, transition_delay
from repro.delay.arrival import arrival_report
from repro.errors import TbfError
from repro.logic import Interval, unit_delays
from repro.mct import minimum_cycle_time
from repro.timed import TimedExpander, and_, const, lit, not_, or_
from repro.timed.synthesize import tbf_to_circuit

from tests.test_logic_netlist import make_sr_counter
from tests.test_timed_expansion import fig2_circuit


def example1_expr():
    return or_(
        and_(lit("f", 1.5), ~lit("f", 4), lit("f", 5)),
        ~lit("f", 2),
    )


class TestSynthesize:
    def test_example2_from_its_tbf(self):
        """Typing the paper's expression reproduces all its numbers."""
        circuit, delays = tbf_to_circuit(
            example1_expr(), output="g", name="ex2", feedback="f"
        )
        assert longest_topological_delay(circuit, delays) == 5
        assert floating_delay(circuit, delays).delay == 4
        assert transition_delay(circuit, delays).delay == 2
        assert minimum_cycle_time(circuit, delays).mct_upper_bound == Fraction(5, 2)

    def test_flattening_round_trip(self):
        """expansion(synthesis(expr)) == expr as timed functions."""
        expr = example1_expr()
        circuit, delays = tbf_to_circuit(expr, output="g", feedback=None)
        mgr = BddManager()
        expander = TimedExpander(circuit, delays, mgr)
        flattened = expander.expand(
            "g", lambda inst: mgr.var(f"{inst.leaf}@{inst.offset.lo}")
        )
        direct = expr.to_bdd(mgr)  # vars named f@shift — same convention
        assert flattened == direct

    def test_combinational_signals_become_inputs(self):
        expr = or_(lit("a", 1), and_(lit("b", 2), ~lit("a", 3)))
        circuit, delays = tbf_to_circuit(expr)
        assert set(circuit.inputs) == {"a", "b"}
        assert circuit.outputs == ("y",)
        assert not circuit.latches

    def test_literal_sharing(self):
        # The same timed literal used twice synthesizes one buffer.
        expr = or_(lit("a", 2), and_(lit("a", 2), lit("b", 1)))
        circuit, _ = tbf_to_circuit(expr)
        lit_gates = [g for g in circuit.gates.values()
                     if g.inputs and g.inputs[0] == "a"]
        assert len(lit_gates) == 1

    def test_constants(self):
        circuit, delays = tbf_to_circuit(const(True))
        values = circuit.eval_combinational({})
        assert values["y"] is True

    def test_unknown_feedback_rejected(self):
        with pytest.raises(TbfError):
            tbf_to_circuit(lit("a", 1), feedback="zzz")

    def test_nested_negation(self):
        expr = not_(or_(lit("a", 1), lit("b", 1)))
        circuit, delays = tbf_to_circuit(expr)
        values = circuit.eval_combinational({"a": False, "b": False})
        # At settled evaluation the timed structure is just the function.
        assert values["y"] is True


class TestArrivalReport:
    def test_fig2_report(self):
        circuit, delays = fig2_circuit()
        report = arrival_report(circuit, delays)
        assert report.worst_path_delay() == 5
        g = report.nets["g"]
        assert g.arrival == Interval(Fraction(3, 2), Fraction(5))
        assert g.required_through == 5
        assert g.slack(5) == 0
        assert g.slack(4) == -1

    def test_leaf_windows(self):
        circuit, delays = fig2_circuit()
        report = arrival_report(circuit, delays)
        f = report.nets["f"]
        assert f.arrival == Interval(Fraction(0), Fraction(0))
        assert f.required_through == 5  # the long path starts here

    def test_critical_nets_ordering(self):
        circuit, delays = fig2_circuit()
        report = arrival_report(circuit, delays)
        ranked = report.critical_nets(3)
        assert all(
            a.required_through >= b.required_through
            for a, b in zip(ranked, ranked[1:])
        )
        assert ranked[0].required_through == 5

    def test_counter_report(self):
        c = make_sr_counter()
        report = arrival_report(c, unit_delays(c))
        assert report.worst_path_delay() == 2
        assert report.nets["carry"].arrival == Interval(Fraction(1), Fraction(1))
        # carry feeds n1 (one more unit): ceiling 2.
        assert report.nets["carry"].required_through == 2
