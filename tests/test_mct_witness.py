"""Tests for divergence-witness extraction."""

from fractions import Fraction

import pytest

from repro.benchgen.generators import mirrored_pair, toggle_loop
from repro.errors import AnalysisError
from repro.logic import unit_delays
from repro.mct import MctOptions, minimum_cycle_time
from repro.mct.witness import Witness, find_witness

from tests.test_logic_netlist import make_sr_counter
from tests.test_timed_expansion import fig2_circuit


class TestFindWitness:
    def test_fig2_witness(self):
        circuit, delays = fig2_circuit()
        result = minimum_cycle_time(circuit, delays)
        witness = find_witness(circuit, delays, result)
        assert witness is not None
        assert witness.tau == Fraction(9, 4)     # window midpoint
        # Both initial states diverge at 9/4 (init 1 at cycle 3 via the
        # base case; init 0 one cycle later).
        expected = {(True,): 3, (False,): 4}
        key = (witness.initial_state["f"],)
        assert witness.diverged_at == expected[key]
        assert witness.sampled != witness.ideal

    def test_counter_witness(self):
        c = make_sr_counter()
        delays = unit_delays(c)
        result = minimum_cycle_time(c, delays)
        witness = find_witness(c, delays, result, seed=3)
        assert witness is not None
        # Witness must be replayable.
        from repro.sim import ClockedSimulator

        sim = ClockedSimulator(c, delays)
        assert not sim.matches_ideal(
            witness.tau, witness.initial_state, list(witness.stimulus)
        )

    def test_interval_delays_sample_realizations(self):
        circuit, delays = fig2_circuit()
        widened = delays.widen(Fraction(19, 20))
        result = minimum_cycle_time(circuit, widened)
        witness = find_witness(circuit, widened, result, realizations=4)
        # The failure is real here; some realization exhibits it.
        assert witness is not None

    def test_toggle_witness(self):
        circuit, delays = toggle_loop(Fraction(4))
        result = minimum_cycle_time(circuit, delays)
        witness = find_witness(circuit, delays, result)
        assert witness is not None
        assert witness.diverged_at >= 1

    def test_conservative_failure_may_lack_witness(self):
        """Plain C_x pins mirrored_pair at the long path, but the
        output never moves: no behavioural divergence exists."""
        circuit, delays = mirrored_pair(long_delay=10, loop_delay=2)
        result = minimum_cycle_time(circuit, delays)
        assert result.failure_found
        witness = find_witness(
            circuit, delays, result, tries=16, max_cycles=12
        )
        # The *state* does diverge (q1 toggling at stale ages) even
        # though the output does not — the simulator samples states,
        # so a witness is expected here; what matters is that it
        # replays.  (If none is found the search budget was too small.)
        if witness is not None:
            assert witness.sampled != witness.ideal

    def test_requires_failing_result(self):
        from repro.benchgen.generators import hold_loop

        circuit, delays = hold_loop(Fraction(8))
        result = minimum_cycle_time(circuit, delays)
        assert not result.failure_found
        with pytest.raises(AnalysisError):
            find_witness(circuit, delays, result)
