"""Random-circuit properties of the structural transforms."""

import random

from hypothesis import given, settings, strategies as st

from repro.benchgen.generators import random_fsm
from repro.delay import (
    floating_delay,
    longest_topological_delay,
    transition_delay,
)
from repro.logic.transform import circuit_stats, sweep_dead_logic
from repro.mct import MctOptions, minimum_cycle_time


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_sweep_preserves_behaviour(seed):
    circuit, delays = random_fsm(seed, n_inputs=2, n_latches=2, n_gates=10)
    swept, _ = sweep_dead_logic(circuit, delays)
    rng = random.Random(seed)
    init = {q: False for q in circuit.state_nets}
    stim = [{u: rng.random() < 0.5 for u in circuit.inputs} for _ in range(10)]
    assert circuit.simulate(init, stim) == swept.simulate(init, stim)
    assert swept.stats["gates"] <= circuit.stats["gates"]


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_sweep_preserves_all_timing_analyses(seed):
    """Dead logic is invisible to every analysis (they are cone-based),
    so sweeping must not move any number."""
    circuit, delays = random_fsm(seed, n_inputs=1, n_latches=2, n_gates=8)
    swept, sdelays = sweep_dead_logic(circuit, delays)
    assert longest_topological_delay(circuit, delays) == \
        longest_topological_delay(swept, sdelays)
    assert floating_delay(circuit, delays).delay == \
        floating_delay(swept, sdelays).delay
    assert transition_delay(circuit, delays).delay == \
        transition_delay(swept, sdelays).delay
    a = minimum_cycle_time(circuit, delays, MctOptions(max_age=6))
    b = minimum_cycle_time(swept, sdelays, MctOptions(max_age=6))
    assert a.mct_upper_bound == b.mct_upper_bound


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_stats_consistency(seed):
    circuit, _ = random_fsm(seed, n_inputs=2, n_latches=3, n_gates=12)
    stats = circuit_stats(circuit)
    assert stats.gates == sum(stats.by_type.values())
    assert stats.depth >= 1
    assert stats.latches == 3
