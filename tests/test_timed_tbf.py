"""Tests for the symbolic TBF algebra against the paper's Sec. 3 examples."""

from fractions import Fraction

import pytest

from repro.errors import TbfError
from repro.timed import (
    and_,
    buffer_tbf,
    const,
    dff_sample_time,
    gate_pin_tbf,
    lit,
    not_,
    or_,
)
from repro.timed.tbf import dff_output


def step_at(t0):
    """Waveform: 0 before t0, 1 from t0 on."""
    return lambda t: t >= t0


class TestConstructors:
    def test_literal_printing(self):
        assert str(lit("x", 1.5)) == "x(t-3/2)"
        assert str(lit("x")) == "x(t)"
        assert str(~lit("x", 2)) == "x(t-2)'"

    def test_flattening(self):
        e = and_(lit("a"), and_(lit("b"), lit("c")))
        assert len(e.children) == 3
        e = or_(lit("a"), or_(lit("b"), lit("c")))
        assert len(e.children) == 3

    def test_unit_cases(self):
        assert and_() == const(True)
        assert or_() == const(False)
        assert and_(lit("a")) == lit("a")

    def test_double_negation(self):
        assert not_(not_(lit("a"))) == lit("a")
        assert not_(const(True)) == const(False)

    def test_literals_and_max_shift(self):
        e = or_(and_(lit("f", 1.5), ~lit("f", 4), lit("f", 5)), ~lit("f", 2))
        assert e.literals() == {
            ("f", Fraction(3, 2)),
            ("f", Fraction(4)),
            ("f", Fraction(5)),
            ("f", Fraction(2)),
        }
        assert e.max_shift() == 5
        assert e.signals() == {"f"}
        assert const(True).max_shift() == 0


class TestFig1Models:
    def test_complex_gate_model(self):
        # Fig 1(a): y(t) = x1'(t-τ1) + x2(t-τ2) + x3(t-τ3)
        y = or_(~lit("x1", 1), lit("x2", 2), lit("x3", 3))
        waves = {"x1": step_at(0), "x2": step_at(0), "x3": step_at(0)}
        # At t=1.5: x1(0.5)=1 -> term 0; x2(-0.5)=0; x3(-1.5)=0.
        assert y.evaluate(waves, 1.5) is False
        # At t=2: x2(0)=1.
        assert y.evaluate(waves, 2) is True

    def test_buffer_slow_rise(self):
        # τr=3 > τf=1: y = x(t-3)·x(t-1); rising edge delayed by 3.
        y = buffer_tbf("x", rise=3, fall=1)
        waves = {"x": step_at(0)}
        assert y.evaluate(waves, 2.9) is False
        assert y.evaluate(waves, 3) is True
        # Falling edge delayed by 1.
        waves = {"x": lambda t: t < 0}  # falls at 0
        assert y.evaluate(waves, 0.9) is True
        assert y.evaluate(waves, 1) is False

    def test_buffer_slow_fall(self):
        # τr=1 < τf=3: y = x(t-1) + x(t-3).
        y = buffer_tbf("x", rise=1, fall=3)
        waves = {"x": step_at(0)}
        assert y.evaluate(waves, 1) is True
        waves = {"x": lambda t: t < 0}
        assert y.evaluate(waves, 2.9) is True
        assert y.evaluate(waves, 3) is False

    def test_buffer_equal_delays_degenerates(self):
        assert buffer_tbf("x", 2, 2) == lit("x", 2)

    def test_fig1b_or_gate(self):
        # OR gate; pin 1 rise 1 / fall 2, pin 2 rise 4 / fall 3:
        #   x1(t-1) + x1(t-2) + x2(t-4)·x2(t-3)
        y = or_(gate_pin_tbf("x1", 1, 2), gate_pin_tbf("x2", 4, 3))
        expected = or_(
            lit("x1", 1), lit("x1", 2), and_(lit("x2", 4), lit("x2", 3))
        )
        assert y.equivalent(expected)
        assert y.literals() == expected.literals()


class TestComposition:
    def test_example1_flattening(self):
        """Example 1: flatten the Fig. 2 circuit's gate TBFs."""
        # Gate TBFs (delays inside the gates):
        g = or_(lit("a"), lit("b"))
        b = ~lit("f", 2)
        a = and_(lit("c"), lit("d"), lit("e"))
        c = lit("f", 1.5)
        d = ~lit("f", 4)
        e = lit("f", 5)
        flat = (
            g.substitute("a", a)
            .substitute("b", b)
            .substitute("c", c)
            .substitute("d", d)
            .substitute("e", e)
        )
        expected = or_(
            and_(lit("f", 1.5), ~lit("f", 4), lit("f", 5)),
            ~lit("f", 2),
        )
        assert flat.equivalent(expected)
        assert flat.max_shift() == 5

    def test_substitution_accumulates_shift(self):
        # y = x(t-1); x = w(t-2)  =>  y = w(t-3)
        y = lit("x", 1)
        assert y.substitute("x", lit("w", 2)) == lit("w", 3)

    def test_shifted(self):
        e = or_(lit("a", 1), ~lit("b", 2))
        s = e.shifted(0.5)
        assert s.literals() == {("a", Fraction(3, 2)), ("b", Fraction(5, 2))}

    def test_substitute_leaves_other_signals(self):
        e = and_(lit("a", 1), lit("b", 1))
        out = e.substitute("a", lit("c", 1))
        assert out.literals() == {("c", Fraction(2)), ("b", Fraction(1))}


class TestEquivalence:
    def test_same_shift_required(self):
        assert not lit("x", 1).equivalent(lit("x", 2))
        assert lit("x", 1).equivalent(lit("x", 1))

    def test_boolean_equivalence(self):
        a, b = lit("a"), lit("b")
        assert (~(a & b)).equivalent(~a | ~b)

    def test_constants(self):
        a = lit("a")
        assert (a | ~a).equivalent(const(True))
        assert (a & ~a).equivalent(const(False))


class TestDff:
    def test_sample_time_floor(self):
        # Q(t) = D(P*floor((t-d)/P))
        assert dff_sample_time(t=7, period=2) == 6
        assert dff_sample_time(t=8, period=2) == 8
        assert dff_sample_time(t=7.9, period=2, dff_delay=1) == 6
        assert dff_sample_time(t="5/2", period="5/4") == Fraction(5, 2)

    def test_negative_period_rejected(self):
        with pytest.raises(TbfError):
            dff_sample_time(1, 0)

    def test_dff_output_samples_data(self):
        # Data input d(t) = x(t-1), x steps at 0; clock period 2.
        data = lit("x", 1)
        waves = {"x": step_at(0)}
        # At t=1.5 the last edge was t=0: d(0) = x(-1) = 0.
        assert dff_output(data, waves, 1.5, period=2) is False
        # At t=2.5 the last edge was t=2: d(2) = x(1) = 1.
        assert dff_output(data, waves, 2.5, period=2) is True

    def test_missing_waveform(self):
        with pytest.raises(TbfError):
            lit("x").evaluate({}, 0)
