"""Unit tests for the core BDD manager: canonicity, algebra, queries."""

import pytest

from repro.bdd import BddManager
from repro.errors import BddError, Budget, ResourceBudgetExceeded


@pytest.fixture(params=["array", "object"])
def mgr(request):
    return BddManager(kernel=request.param)


def terminals(mgr: BddManager) -> int:
    """Terminal-node count of the kernel: complement edges share one."""
    return 1 if mgr.kernel_name == "array" else 2


class TestConstants:
    def test_true_false_are_distinct(self, mgr):
        assert mgr.true != mgr.false

    def test_constant_helper(self, mgr):
        assert mgr.constant(True) == mgr.true
        assert mgr.constant(False) == mgr.false

    def test_is_constant_flags(self, mgr):
        assert mgr.true.is_one()
        assert mgr.false.is_zero()
        assert mgr.true.is_constant()
        a = mgr.var("a")
        assert not a.is_constant()

    def test_bool_conversion_is_an_error(self, mgr):
        with pytest.raises(TypeError):
            bool(mgr.var("a"))


class TestCanonicity:
    def test_var_is_idempotent(self, mgr):
        assert mgr.var("a") == mgr.var("a")

    def test_same_function_same_node(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = (a & ~b) | (~a & b)
        g = a ^ b
        assert f == g
        assert f.node == g.node

    def test_de_morgan(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert ~(a & b) == ~a | ~b
        assert ~(a | b) == ~a & ~b

    def test_double_negation(self, mgr):
        a = mgr.var("a")
        f = a & mgr.var("b")
        assert ~~f == f

    def test_absorption_and_idempotence(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert (a & (a | b)) == a
        assert (a | (a & b)) == a
        assert (a & a) == a
        assert (a | a) == a

    def test_xor_xnor_complementary(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert a.iff(b) == ~(a ^ b)

    def test_cross_manager_mixing_rejected(self, mgr):
        other = BddManager()
        with pytest.raises(BddError):
            mgr.var("a") & other.var("a")


class TestIte:
    def test_ite_terminal_cases(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert mgr.ite(mgr.true, a, b) == a
        assert mgr.ite(mgr.false, a, b) == b
        assert mgr.ite(a, mgr.true, mgr.false) == a
        assert mgr.ite(a, mgr.false, mgr.true) == ~a
        assert mgr.ite(a, b, b) == b

    def test_ite_expansion(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        assert mgr.ite(a, b, c) == (a & b) | (~a & c)

    def test_implies(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert a.implies(b) == ~a | b
        assert a.implies(a).is_one()

    def test_conjoin_disjoin(self, mgr):
        vs = mgr.add_vars(["a", "b", "c"])
        assert mgr.conjoin(vs) == vs[0] & vs[1] & vs[2]
        assert mgr.disjoin(vs) == vs[0] | vs[1] | vs[2]
        assert mgr.conjoin([]).is_one()
        assert mgr.disjoin([]).is_zero()


class TestVariables:
    def test_order_follows_creation(self, mgr):
        mgr.add_vars(["x", "y", "z"])
        assert mgr.level_of("x") < mgr.level_of("y") < mgr.level_of("z")
        assert mgr.var_at_level(mgr.level_of("y")) == "y"
        assert mgr.var_names == ["x", "y", "z"]

    def test_unknown_variable_raises(self, mgr):
        with pytest.raises(BddError):
            mgr.level_of("nope")

    def test_has_var(self, mgr):
        assert not mgr.has_var("a")
        mgr.var("a")
        assert mgr.has_var("a")


class TestRestrictComposeQuantify:
    def test_restrict_to_constant(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = a & b
        assert f.restrict({"a": True}) == b
        assert f.restrict({"a": False}).is_zero()
        assert f.restrict({"a": True, "b": True}).is_one()

    def test_restrict_irrelevant_var(self, mgr):
        a = mgr.var("a")
        mgr.var("b")
        assert a.restrict({"b": True}) == a

    def test_compose_basic(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        f = a & b
        assert f.compose("b", c | a) == a & (c | a)
        assert f.compose("b", c | a) == a

    def test_vector_compose_is_simultaneous(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = a & ~b
        swapped = f.vector_compose({"a": b, "b": a})
        assert swapped == b & ~a

    def test_vector_compose_empty(self, mgr):
        a = mgr.var("a")
        assert a.vector_compose({}) == a

    def test_rename(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = a & b
        g = f.rename({"a": "c"})
        assert g == mgr.var("c") & b

    def test_exists(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = a & b
        assert f.exists(["a"]) == b
        assert f.exists(["a", "b"]).is_one()
        assert (a & ~a).exists(["a"]).is_zero()

    def test_forall(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = a | b
        assert f.forall(["a"]) == b
        assert (a | ~a).forall(["a"]).is_one()

    def test_and_exists_matches_two_step(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        f = (a & b) | c
        g = ~a | (b & c)
        fused = mgr.and_exists(["a", "b"], f, g)
        naive = (f & g).exists(["a", "b"])
        assert fused == naive

    def test_and_exists_one_operand_true(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = a & b
        assert mgr.and_exists(["a"], f, mgr.true) == b
        assert mgr.and_exists(["a"], mgr.true, f) == b


class TestQueries:
    def test_support(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        assert (a & b).support() == {"a", "b"}
        assert mgr.true.support() == set()
        assert ((a & b) | (c & ~c)).support() == {"a", "b"}

    def test_evaluate(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = a ^ b
        assert f.evaluate({"a": True, "b": False})
        assert not f.evaluate({"a": True, "b": True})

    def test_evaluate_missing_var(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        with pytest.raises(BddError):
            (a & b).evaluate({"a": True})

    def test_pick_one(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = a & ~b
        model = f.pick_one()
        assert model == {"a": True, "b": False}
        assert (a & ~a).pick_one() is None
        assert mgr.true.pick_one() == {}

    def test_sat_count(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        assert (a & b).sat_count() == 1
        assert (a | b).sat_count() == 3
        assert (a | b).sat_count(nvars=3) == 6
        assert mgr.true.sat_count(nvars=3) == 8
        assert mgr.false.sat_count(nvars=3) == 0
        assert (a ^ b ^ c).sat_count() == 4

    def test_sat_count_nvars_too_small(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        with pytest.raises(BddError):
            (a & b).sat_count(nvars=1)

    def test_sat_iter_exhaustive(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        models = list((a | b).sat_iter())
        assert len(models) == 3
        assert {tuple(sorted(m.items())) for m in models} == {
            (("a", False), ("b", True)),
            (("a", True), ("b", False)),
            (("a", True), ("b", True)),
        }

    def test_sat_iter_with_free_care_var(self, mgr):
        a = mgr.var("a")
        mgr.var("b")
        models = list(a.sat_iter(care_vars=["a", "b"]))
        assert len(models) == 2

    def test_sat_iter_outside_care_raises(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        with pytest.raises(BddError):
            list((a & b).sat_iter(care_vars=["a"]))

    def test_node_count(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert mgr.true.node_count() == 1
        assert a.node_count() == 1 + terminals(mgr)  # a + terminal(s)
        assert (a & b).node_count() == 2 + terminals(mgr)

    def test_equivalent_under_care_set(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = a & b
        g = a
        assert not f.equivalent_under(g, mgr.true)
        assert f.equivalent_under(g, b)  # they agree whenever b holds

    def test_to_dot_mentions_vars(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        dot = mgr.to_dot(a & b)
        assert "digraph" in dot and '"a"' in dot and '"b"' in dot


class TestBudget:
    def test_budget_trips(self):
        mgr = BddManager(budget=Budget(limit=10, resource="bdd nodes"))
        vs = mgr.add_vars([f"v{i}" for i in range(8)])
        with pytest.raises(ResourceBudgetExceeded):
            # XOR chain of 8 vars needs well over 10 nodes.
            acc = vs[0]
            for v in vs[1:]:
                acc = acc ^ v

    def test_budget_roomy_enough(self):
        mgr = BddManager(budget=Budget(limit=10_000))
        vs = mgr.add_vars([f"v{i}" for i in range(8)])
        acc = vs[0]
        for v in vs[1:]:
            acc = acc ^ v
        assert acc.sat_count() == 128  # odd-parity count over 8 vars

    def test_clear_caches_preserves_semantics(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = a ^ b
        mgr.clear_caches()
        assert (a ^ b) == f


class TestIteNormalization:
    """Regression for the raw-key cache bug: commuted and complemented
    ITE triples must share one operation-cache entry (the module
    docstring promised "standard triple normalisation" all along)."""

    def _snap(self, mgr):
        stats = mgr.stats
        return stats.cache_lookups, stats.cache_hits

    def test_and_commutes_into_a_cache_hit(self):
        mgr = BddManager()
        a, b = mgr.var("a"), mgr.var("b")
        _ = a & b
        lookups, hits = self._snap(mgr)
        _ = b & a  # normalized to the same (a, b, FALSE) triple
        assert mgr.stats.cache_lookups == lookups + 1
        assert mgr.stats.cache_hits == hits + 1

    def test_or_commutes_into_a_cache_hit(self):
        mgr = BddManager()
        a, b = mgr.var("a"), mgr.var("b")
        _ = a | b
        _, hits = self._snap(mgr)
        _ = b | a
        assert mgr.stats.cache_hits == hits + 1

    def test_complemented_test_shares_the_entry(self):
        mgr = BddManager()
        a, b = mgr.var("a"), mgr.var("b")
        na = ~a  # populates the NOT cache so normalization can see it
        _ = na & b  # rewritten to ite(a, FALSE, b)
        _, hits = self._snap(mgr)
        assert mgr.ite(a, mgr.false, b) == na & b
        assert mgr.stats.cache_hits > hits

    def test_raw_keys_missed_without_normalization(self):
        # The pre-fix behaviour, pinned so the regression is visible:
        # with normalization off, the commuted AND recomputes.
        mgr = BddManager(normalize_ite=False)
        a, b = mgr.var("a"), mgr.var("b")
        _ = a & b
        lookups, hits = self._snap(mgr)
        _ = b & a
        assert mgr.stats.cache_lookups == lookups + 1
        assert mgr.stats.cache_hits == hits  # miss: raw (b, a, 0) key

    def test_stats_counters_monotone(self):
        mgr = BddManager()
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        _ = (a & b) | (b & c) | (a ^ c)
        stats = mgr.stats
        assert stats.ite_calls > 0
        assert stats.nodes_created >= 3
        assert stats.peak_nodes == len(mgr)
        assert 0.0 <= stats.cache_hit_rate <= 1.0
