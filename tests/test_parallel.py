"""The parallel subsystem: resource plumbing, determinism, resilience.

The contract under test is the ISSUE's acceptance criterion: ``jobs >
1`` must be a pure resource knob — same bound, same candidate
sequence, same table rows, interchangeable checkpoints — with the only
observable differences being wall-clock and per-worker telemetry.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.benchgen import paper_example2
from repro.benchgen.suite import suite_cases
from repro.errors import Budget
from repro.mct import MctOptions, minimum_cycle_time
from repro.parallel import (
    deadline_payload,
    resolve_jobs,
    restore_deadline,
    run_suite_sharded,
    worker_budget_limit,
)
from repro.resilience import Deadline


def candidate_keys(result):
    """The deterministic fields of the candidate sequence.

    ``elapsed_seconds``/``ite_calls`` are measurements (each worker
    warms its own BDD caches) and legitimately differ run to run.
    """
    return [(r.tau, r.status, r.m, r.rung) for r in result.candidates]


def assert_equivalent(serial, parallel):
    assert parallel.mct_upper_bound == serial.mct_upper_bound
    assert candidate_keys(parallel) == candidate_keys(serial)
    assert parallel.failure_found == serial.failure_found
    assert parallel.failing_window == serial.failing_window
    assert parallel.failing_sigmas == serial.failing_sigmas
    assert parallel.failing_roots == serial.failing_roots
    assert parallel.exhausted == serial.exhausted
    assert parallel.notes == serial.notes


# ----------------------------------------------------------------------
# Resource plumbing (repro.parallel.pool)
# ----------------------------------------------------------------------
class TestPool:
    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_deadline_payload_roundtrip(self):
        deadline = Deadline(5.0)
        restored = restore_deadline(deadline_payload(deadline))
        # The absolute expiry survives: same seconds, same monotonic
        # start, so both sides expire at the same instant.
        assert restored.seconds == deadline.seconds
        assert restored.start == deadline.start
        assert not restored.expired()
        assert restore_deadline(deadline_payload(None)) is None

    def test_expired_deadline_stays_expired_after_transfer(self):
        deadline = Deadline(0.0, start=-1000.0)
        restored = restore_deadline(deadline_payload(deadline))
        assert restored.expired()

    def test_worker_budget_limit(self):
        assert worker_budget_limit(None, 4) is None
        assert worker_budget_limit(Budget(limit=None), 4) is None
        budget = Budget(limit=1000, resource="mct work")
        assert worker_budget_limit(budget, 4) == 250
        # Splitting must never charge or attach to the parent.
        assert budget.used == 0
        # Tiny budgets still give every worker at least one unit.
        assert worker_budget_limit(Budget(limit=2), 8) == 1


# ----------------------------------------------------------------------
# Parallel sweep determinism (the tentpole's acceptance criterion)
# ----------------------------------------------------------------------
class TestParallelSweep:
    def test_example2_fixed_delays(self):
        circuit, delays = paper_example2()
        serial = minimum_cycle_time(circuit, delays)
        parallel = minimum_cycle_time(circuit, delays, jobs=2)
        assert serial.mct_upper_bound == Fraction(5, 2)  # published value
        assert_equivalent(serial, parallel)

    def test_example2_interval_delays(self):
        circuit, delays = paper_example2()
        delays = delays.widen(Fraction(9, 10))
        serial = minimum_cycle_time(circuit, delays)
        parallel = minimum_cycle_time(circuit, delays, jobs=3)
        assert_equivalent(serial, parallel)

    def test_example2_exact_feasibility(self):
        circuit, delays = paper_example2()
        delays = delays.widen(Fraction(9, 10))
        options = MctOptions(exact_feasibility=True)
        serial = minimum_cycle_time(circuit, delays, options)
        parallel = minimum_cycle_time(circuit, delays, options, jobs=2)
        assert_equivalent(serial, parallel)

    @pytest.mark.parametrize(
        "case", suite_cases(), ids=lambda c: c.name
    )
    def test_every_suite_case(self, case):
        from repro.benchgen.suite import build_case

        circuit, delays = build_case(case)
        delays = delays.widen(Fraction(9, 10))
        options = MctOptions(work_budget=case.mct_budget)
        serial = minimum_cycle_time(circuit, delays, options)
        parallel = minimum_cycle_time(circuit, delays, options, jobs=2)
        assert parallel.mct_upper_bound == serial.mct_upper_bound
        assert candidate_keys(parallel) == candidate_keys(serial)
        assert parallel.failure_found == serial.failure_found

    def test_ladder_falls_back_to_serial(self):
        # The degradation ladder is stateful across windows, so jobs
        # must be ignored (and the result identical) when one is set.
        circuit, delays = paper_example2()
        options = MctOptions(degradation_ladder=("relaxed",))
        serial = minimum_cycle_time(circuit, delays, options)
        parallel = minimum_cycle_time(circuit, delays, options, jobs=4)
        assert_equivalent(serial, parallel)
        assert parallel.decisions_run == serial.decisions_run

    def test_parallel_telemetry_present(self):
        circuit, delays = paper_example2()
        parallel = minimum_cycle_time(circuit, delays, jobs=2)
        assert parallel.decisions_run > 0
        assert parallel.bdd_stats is not None
        assert parallel.bdd_stats.ite_calls > 0


# ----------------------------------------------------------------------
# Parallel resilience: budgets, deadlines, checkpoints
# ----------------------------------------------------------------------
class TestParallelResilience:
    def test_small_budget_interrupts_with_checkpoint(self):
        circuit, delays = paper_example2()
        # Enough to discretize, far too little to decide any window
        # (the serial sweep needs ~1500 units for the first decision).
        options = MctOptions(work_budget=120)
        result = minimum_cycle_time(circuit, delays, options, jobs=2)
        assert result.interrupted
        assert result.budget_exceeded
        assert result.checkpoint is not None

    def test_parallel_checkpoint_resumes_serially(self):
        circuit, delays = paper_example2()
        partial = minimum_cycle_time(
            circuit, delays, MctOptions(work_budget=120), jobs=2
        )
        assert partial.checkpoint is not None
        # jobs/work_budget are resource knobs, not fingerprinted: a
        # parallel checkpoint resumes in a serial unlimited run.
        resumed = minimum_cycle_time(
            circuit, delays, resume_from=partial.checkpoint
        )
        baseline = minimum_cycle_time(circuit, delays)
        assert resumed.mct_upper_bound == baseline.mct_upper_bound
        assert candidate_keys(resumed) == candidate_keys(baseline)

    def test_expired_deadline_interrupts(self):
        circuit, delays = paper_example2()
        options = MctOptions(time_limit=0.0)
        result = minimum_cycle_time(circuit, delays, options, jobs=2)
        assert result.deadline_exceeded
        assert result.interrupted


# ----------------------------------------------------------------------
# Sharded suite runner
# ----------------------------------------------------------------------
class TestSuiteSharding:
    @staticmethod
    def row_key(row):
        return (
            row.name,
            row.flags,
            row.topological,
            row.floating,
            row.transition,
            row.mct,
            row.mct_partial,
            row.mct_rung,
        )

    def test_rows_match_serial_order_and_values(self):
        from repro.report.harness import run_suite

        cases = [c for c in suite_cases() if c.name in ("g444", "g526")]
        serial = run_suite(cases=cases, include_s27=True)
        rows, workers = run_suite_sharded(
            cases=cases, include_s27=True, jobs=2
        )
        assert [self.row_key(r) for r in rows] == [
            self.row_key(r) for r in serial
        ]
        assert sum(w.tasks for w in workers) == len(rows)
        assert all(w.wall_seconds >= 0 for w in workers)

    def test_serial_fallback_reports_no_workers(self):
        cases = [c for c in suite_cases() if c.name == "g444"]
        rows, workers = run_suite_sharded(
            cases=cases, include_s27=False, jobs=1
        )
        assert len(rows) == 1
        assert workers == []

    def test_run_suite_jobs_parameter(self):
        from repro.report.harness import run_suite

        cases = [c for c in suite_cases() if c.name == "g444"]
        serial = run_suite(cases=cases, include_s27=False)
        parallel = run_suite(cases=cases, include_s27=False, jobs=2)
        assert [self.row_key(r) for r in parallel] == [
            self.row_key(r) for r in serial
        ]


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCliJobs:
    @pytest.fixture()
    def bench(self, tmp_path):
        from repro.benchgen import S27_BENCH

        path = tmp_path / "s27.bench"
        path.write_text(S27_BENCH)
        return path

    def test_analyze_jobs_matches_serial_bound(self, bench, capsys):
        from repro.cli import main

        assert main(["analyze", str(bench), "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "minimum cycle time: 11.5" in out

    def test_analyze_rejects_negative_jobs(self, bench, capsys):
        from repro.cli import main

        assert main(["analyze", str(bench), "--jobs", "-1"]) == 1
        assert "--jobs must be non-negative" in capsys.readouterr().err

    def test_table_no_cpu_parallel_identical(self, capsys):
        from repro.cli import main

        argv = ["table", "--rows", "g444", "--no-s27", "--no-cpu"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out
        assert "0.00" not in serial_out  # CPU columns really dashed

    def test_fault_injection_forces_serial(self, bench, capsys):
        from repro.cli import main

        rc = main([
            "analyze", str(bench),
            "--fail-budget-at", "300", "--jobs", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 3  # the fault fired in-process: partial result
        assert "fault injection forces a serial sweep" in out


# ----------------------------------------------------------------------
# Exit-code contract regression (satellite: partial result -> 3)
# ----------------------------------------------------------------------
class TestAnalyzeExitCodes:
    @pytest.fixture()
    def bench(self, tmp_path):
        from repro.benchgen import S27_BENCH

        path = tmp_path / "s27.bench"
        path.write_text(S27_BENCH)
        return path

    def test_complete_analysis_exits_zero(self, bench, capsys):
        from repro.cli import main

        assert main(["analyze", str(bench)]) == 0

    def test_partial_analysis_exits_three(self, bench, capsys):
        from repro.cli import main

        rc = main(["analyze", str(bench), "--fail-budget-at", "300"])
        out = capsys.readouterr().out
        assert rc == 3
        assert "work budget exhausted" in out

    def test_fault_at_zero_never_fires(self, bench, capsys):
        from repro.cli import main

        # 0 used to falsely gate the whole fault setup (truthiness bug);
        # now it arms the counters, never fires, and the run completes.
        rc = main(["analyze", str(bench), "--fail-budget-at", "0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "work budget exhausted" not in out

    def test_negative_fault_index_rejected(self, bench, capsys):
        from repro.cli import main

        rc = main(["analyze", str(bench), "--fail-deadline-at", "-5"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "--fail-deadline-at must be non-negative" in err
