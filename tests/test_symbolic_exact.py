"""Tests for symbolic product-machine equivalence and the exact sweep."""

from fractions import Fraction

import pytest

from repro.benchgen.generators import mirrored_pair, random_fsm, toggle_loop
from repro.errors import AnalysisError
from repro.fsm import equivalent_to_steady
from repro.fsm.symbolic_exact import (
    ExactMctResult,
    SymbolicTauMachine,
    exact_minimum_cycle_time,
)
from repro.mct import MctOptions, minimum_cycle_time

from tests.test_timed_expansion import fig2_circuit


class TestSymbolicEquivalence:
    def test_fig2_boundary(self):
        circuit, delays = fig2_circuit()
        for tau, expected in [(4, True), (Fraction(5, 2), True), (2, False)]:
            product = SymbolicTauMachine(circuit, delays, Fraction(tau))
            assert product.equivalent() is expected

    def test_matches_explicit_oracle(self):
        circuit, delays = fig2_circuit()
        for tau in (Fraction(4), Fraction(5, 2), Fraction(2)):
            symbolic = SymbolicTauMachine(circuit, delays, tau).equivalent()
            explicit = equivalent_to_steady(circuit, delays, tau)
            assert symbolic == explicit

    def test_interval_delays_rejected(self):
        circuit, delays = fig2_circuit()
        with pytest.raises(AnalysisError):
            SymbolicTauMachine(
                circuit, delays.widen(Fraction(9, 10)), Fraction(4)
            )

    def test_phases_rejected(self):
        from tests.test_clock_phases import unbalanced_pipe

        circuit, delays = unbalanced_pipe()
        with pytest.raises(AnalysisError):
            SymbolicTauMachine(
                circuit, delays.with_phases({"q1": 2}), Fraction(6)
            )

    @pytest.mark.parametrize("seed", range(8))
    def test_random_machines_match_explicit(self, seed):
        circuit, delays = random_fsm(seed, n_inputs=1, n_latches=2, n_gates=6)
        machine_bound = minimum_cycle_time(
            circuit, delays, MctOptions(max_age=6)
        ).mct_upper_bound
        # Compare the two exact oracles at and just below the C_x bound.
        for tau in {machine_bound, machine_bound * Fraction(3, 4)}:
            if tau <= 0:
                continue
            try:
                explicit = equivalent_to_steady(
                    circuit, delays, tau, max_pairs=1 << 14
                )
            except AnalysisError:
                continue
            symbolic = SymbolicTauMachine(circuit, delays, tau).equivalent()
            assert symbolic == explicit


class TestExactSweep:
    def test_fig2_exact_mct(self):
        circuit, delays = fig2_circuit()
        result = exact_minimum_cycle_time(circuit, delays)
        assert result.exact_mct == Fraction(5, 2)
        assert result.failure_found
        assert isinstance(result, ExactMctResult)

    def test_toggle(self):
        circuit, delays = toggle_loop(Fraction(6))
        result = exact_minimum_cycle_time(circuit, delays)
        assert result.exact_mct == 6

    def test_exactness_ladder_on_mirrored_pair(self):
        """Sec. 6's exactness ladder, demonstrated end to end.

        The mirrored-register circuit's only output is constantly 0
        (the two registers provably agree), so:
          * plain C_x (state-sufficient, free Boolean space): bound 10;
          * C_x + reachable don't cares: bound 2 (the toggle loops'
            *state* sequences genuinely change below 2);
          * exact Definition-2 (output behaviour only): equivalent at
            every examined τ — the output never moves at all.
        """
        circuit, delays = mirrored_pair(long_delay=10, loop_delay=2)
        plain = minimum_cycle_time(circuit, delays)
        with_reach = minimum_cycle_time(
            circuit, delays, MctOptions(use_reachability=True)
        )
        exact = exact_minimum_cycle_time(circuit, delays)
        assert plain.mct_upper_bound == 10
        assert with_reach.mct_upper_bound == 2
        assert not exact.failure_found
        assert all(ok for _, ok in exact.candidates)
        assert exact.exact_mct < with_reach.mct_upper_bound

    def test_exact_never_above_cx(self):
        for seed in range(6):
            circuit, delays = random_fsm(
                seed, n_inputs=1, n_latches=2, n_gates=6
            )
            cx = minimum_cycle_time(circuit, delays, MctOptions(max_age=6))
            exact = exact_minimum_cycle_time(circuit, delays, max_age=6)
            if exact.failure_found and cx.failure_found:
                assert exact.exact_mct <= cx.mct_upper_bound

    def test_s27_exact_equals_cx(self):
        """On the real ISCAS'89 s27 (unit delays) C_x is already tight:
        the exact product machine agrees at 6."""
        from repro.benchgen import s27
        from repro.logic.delays import unit_delays

        circuit, _ = s27()
        delays = unit_delays(circuit)
        cx = minimum_cycle_time(circuit, delays)
        exact = exact_minimum_cycle_time(circuit, delays)
        assert cx.mct_upper_bound == 6
        assert exact.exact_mct == 6
        assert exact.failure_found

    def test_budget_reported(self):
        circuit, delays = mirrored_pair(long_delay=10, loop_delay=2)
        result = exact_minimum_cycle_time(circuit, delays, work_budget=5)
        assert result.budget_exceeded
