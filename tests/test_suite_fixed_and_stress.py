"""Fixed-delay suite assertions, viability identity, and a stress run."""

from fractions import Fraction

import pytest

from repro.benchgen import build_case, merge, suite_cases
from repro.benchgen.generators import false_path_block, random_combinational
from repro.delay import floating_delay, viability_delay
from repro.mct import MctOptions, minimum_cycle_time
from repro.report import run_case


class TestFixedModeSuite:
    """The paper's numbers also hold with the variation turned off."""

    @pytest.mark.parametrize("name", ["g526", "g641", "g1423"])
    def test_fixed_rows(self, name):
        case = next(c for c in suite_cases() if c.name == name)
        row = run_case(case, widen=None)
        assert row.topological == case.paper_top
        assert row.floating == case.paper_float
        assert row.mct == case.paper_mct


class TestViabilityIdentity:
    def test_fig2(self):
        from tests.test_timed_expansion import fig2_circuit

        circuit, delays = fig2_circuit()
        assert viability_delay(circuit, delays).delay == 4

    @pytest.mark.parametrize("seed", range(8))
    def test_equals_floating_on_random_circuits(self, seed):
        circuit, delays = random_combinational(seed, n_inputs=3, n_gates=8)
        assert (
            viability_delay(circuit, delays).delay
            == floating_delay(circuit, delays).delay
        )


class TestSuiteRowSoundness:
    """End-to-end: a ‡ row's bound is behaviourally safe under random
    manufacturing realizations — combinational STA would have said
    22.5, the sequential bound 18.4, and 18.4 really works."""

    def test_g526_bound_simulates_clean(self):
        import random

        from repro.sim import ClockedSimulator, sample_delay_map

        case = next(c for c in suite_cases() if c.name == "g526")
        circuit, delays = build_case(case)
        widened = delays.widen(Fraction(9, 10))
        bound = minimum_cycle_time(circuit, widened).mct_upper_bound
        assert bound == case.paper_mct
        rng = random.Random(2026)
        init = {q: False for q in circuit.latches}
        stimulus = [
            {u: rng.random() < 0.5 for u in circuit.inputs} for _ in range(16)
        ]
        for _ in range(2):
            realization = sample_delay_map(widened, rng)
            sim = ClockedSimulator(circuit, realization)
            assert sim.matches_ideal(bound, init, stimulus)


class TestStress:
    def test_wide_merge_many_breakpoints(self):
        """64 false-path blocks with staggered delays: hundreds of
        distinct breakpoints, still well inside the default caps."""
        blocks = [
            false_path_block(
                Fraction(100 + i, 10), Fraction(80 + i, 10), name=f"fp{i}"
            )
            for i in range(64)
        ]
        circuit, delays = merge("wide", blocks)
        assert circuit.stats["gates"] > 400
        result = minimum_cycle_time(
            circuit, delays, MctOptions(max_candidates=1500)
        )
        assert result.mct_upper_bound is not None
        assert result.failure_found
        # The slowest block's floating value dominates the failing set.
        assert result.mct_upper_bound <= Fraction(163, 10)

    def test_deep_suite_member_with_budget(self):
        """The biggest table row under a tight budget degrades cleanly."""
        case = next(c for c in suite_cases() if c.name == "g38584")
        circuit, delays = build_case(case)
        result = minimum_cycle_time(
            circuit, delays, MctOptions(work_budget=500)
        )
        assert result.budget_exceeded
        # Partial results never fabricate a failing window.
        assert not result.failure_found
