"""Tests for the useful-skew optimizer."""

import random
from fractions import Fraction

import pytest

from repro.errors import AnalysisError
from repro.logic import Circuit, DelayMap, Gate, GateType, Latch, PinTiming
from repro.mct import MctOptions
from repro.mct.skew import SkewResult, optimize_skew
from repro.sim import ClockedSimulator

from tests.test_clock_phases import unbalanced_pipe


class TestOptimizer:
    def test_balances_pipe(self):
        circuit, delays = unbalanced_pipe()
        result = optimize_skew(circuit, delays)
        assert result.baseline == 6
        assert result.bound == 4
        assert result.phases == {"q1": Fraction(2)}
        assert result.improvement == Fraction(1, 3)
        assert result.evaluations > 1

    def test_balanced_design_gains_nothing(self):
        gates = [
            Gate("d1", GateType.BUF, ("u",)),
            Gate("d2", GateType.BUF, ("q1",)),
        ]
        circuit = Circuit(
            "even", ["u"], ["q2"], gates, [Latch("q1", "d1"), Latch("q2", "d2")]
        )
        pins = {("d1", 0): PinTiming.symmetric(4), ("d2", 0): PinTiming.symmetric(4)}
        delays = DelayMap(circuit, pins)
        result = optimize_skew(circuit, delays, granularity=4)
        assert result.bound == result.baseline == 4
        assert result.phases == {}

    def test_feedback_loop_unskewable(self):
        # A single toggle loop: skewing the only latch shifts both the
        # launch and capture edges identically — no gain possible.
        gates = [Gate("d", GateType.NOT, ("q",))]
        circuit = Circuit("tog", [], ["q"], gates, [Latch("q", "d")])
        delays = DelayMap(circuit, {("d", 0): PinTiming.symmetric(5)})
        result = optimize_skew(circuit, delays, granularity=4)
        assert result.bound == result.baseline == 5

    def test_result_validated_by_simulation(self):
        circuit, delays = unbalanced_pipe()
        result = optimize_skew(circuit, delays)
        skewed = delays.with_phases(result.phases)
        sim = ClockedSimulator(circuit, skewed)
        rng = random.Random(5)
        stimulus = [{"u": rng.random() < 0.5} for _ in range(32)]
        assert sim.matches_ideal(
            result.bound, {"q1": False, "q2": False}, stimulus
        )

    def test_requires_zero_phase_start(self):
        circuit, delays = unbalanced_pipe()
        with pytest.raises(AnalysisError):
            optimize_skew(circuit, delays.with_phases({"q1": 1}))

    def test_requires_latches(self):
        circuit = Circuit(
            "comb", ["u"], ["y"], [Gate("y", GateType.NOT, ("u",))]
        )
        delays = DelayMap(circuit, {("y", 0): PinTiming.symmetric(1)})
        with pytest.raises(AnalysisError):
            optimize_skew(circuit, delays)

    def test_options_forwarded(self):
        circuit, delays = unbalanced_pipe()
        result = optimize_skew(
            circuit, delays, options=MctOptions(max_age=8), granularity=4
        )
        assert isinstance(result, SkewResult)
        assert result.bound <= result.baseline
