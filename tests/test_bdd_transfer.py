"""Tests for moving BDDs between managers (with renaming)."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BddManager
from repro.bdd.transfer import transfer

from tests.test_bdd_properties import VARS, build_bdd, eval_ast, exprs


class TestTransferBasics:
    def test_constants(self):
        src, dst = BddManager(), BddManager()
        assert transfer(src.true, dst) == dst.true
        assert transfer(src.false, dst) == dst.false

    def test_simple_function(self):
        src, dst = BddManager(), BddManager()
        f = src.var("a") & ~src.var("b")
        g = transfer(f, dst)
        assert g == dst.var("a") & ~dst.var("b")

    def test_rename(self):
        src, dst = BddManager(), BddManager()
        f = src.var("a") ^ src.var("b")
        g = transfer(f, dst, rename={"a": "x", "b": "y"})
        assert g == dst.var("x") ^ dst.var("y")

    def test_partial_rename(self):
        src, dst = BddManager(), BddManager()
        f = src.var("a") | src.var("b")
        g = transfer(f, dst, rename={"a": "x"})
        assert g == dst.var("x") | dst.var("b")

    def test_target_order_may_differ(self):
        src, dst = BddManager(), BddManager()
        src.add_vars(["a", "b", "c"])
        dst.add_vars(["c", "b", "a"])  # reversed order
        f = (src.var("a") & src.var("b")) | src.var("c")
        g = transfer(f, dst)
        for bits in itertools.product([False, True], repeat=3):
            env = dict(zip("abc", bits))
            assert f.evaluate(env) == g.evaluate(env)

    def test_deep_function_no_recursion_error(self):
        src, dst = BddManager(), BddManager()
        names = [f"v{i}" for i in range(2500)]
        # Pre-declare the target order; otherwise transfer visits nodes
        # bottom-up and implicitly reverses it (still correct, but the
        # order-reversed rebuild is quadratic).
        dst.add_vars(names)
        acc = src.true
        for name in names:
            acc = acc & src.var(name)
        g = transfer(acc, dst)
        assert g.node_count() == acc.node_count()


@settings(max_examples=60, deadline=None)
@given(exprs())
def test_transfer_preserves_semantics(ast):
    src, dst = BddManager(), BddManager()
    src.add_vars(VARS)
    # Adversarial target order.
    dst.add_vars(list(reversed(VARS)))
    f = build_bdd(src, ast)
    g = transfer(f, dst)
    for bits in itertools.product([False, True], repeat=len(VARS)):
        env = dict(zip(VARS, bits))
        assert g.evaluate(env) == eval_ast(ast, env)
