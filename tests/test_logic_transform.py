"""Tests for structural transforms: sweep, pin splitting, stats."""

import random
from fractions import Fraction

import pytest

from repro.delay import floating_delay, longest_topological_delay, transition_delay
from repro.errors import CircuitError
from repro.logic import (
    Circuit,
    DelayMap,
    Gate,
    GateType,
    Interval,
    Latch,
    PinTiming,
    unit_delays,
)
from repro.logic.transform import (
    circuit_stats,
    split_asymmetric_pins,
    sweep_dead_logic,
)
from repro.mct import minimum_cycle_time
from repro.fsm import equivalent_to_steady
from repro.sim import ClockedSimulator


class TestSweep:
    def test_removes_unobservable(self):
        gates = [
            Gate("live", GateType.NOT, ("a",)),
            Gate("dead", GateType.AND, ("a", "a")),
            Gate("dead2", GateType.NOT, ("dead",)),
        ]
        c = Circuit("s", ["a"], ["live"], gates)
        swept, sdelays = sweep_dead_logic(c, unit_delays(c))
        assert set(swept.gates) == {"live"}
        assert sdelays.pin("live", 0) == PinTiming.symmetric(1)

    def test_keeps_latch_cones(self):
        gates = [
            Gate("d", GateType.NOT, ("q",)),
            Gate("dead", GateType.NOT, ("q",)),
        ]
        c = Circuit("s", [], [], gates, [Latch("q", "d")])
        swept, _ = sweep_dead_logic(c, None)
        assert set(swept.gates) == {"d"}

    def test_behaviour_preserved(self):
        gates = [
            Gate("n1", GateType.AND, ("a", "q")),
            Gate("junk", GateType.XOR, ("a", "q")),
            Gate("d", GateType.NOT, ("n1",)),
        ]
        c = Circuit("s", ["a"], ["n1"], gates, [Latch("q", "d")])
        swept, _ = sweep_dead_logic(c)
        init = {"q": False}
        stim = [{"a": bool(i % 2)} for i in range(8)]
        assert c.simulate(init, stim) == swept.simulate(init, stim)


class TestSplitAsymmetricPins:
    def asym_toggle(self):
        gates = [Gate("d", GateType.NOT, ("q",))]
        c = Circuit("at", [], ["q"], gates, [Latch("q", "d")])
        delays = DelayMap(c, {("d", 0): PinTiming.asym(rise=3, fall=5)})
        return c, delays

    def test_split_makes_symmetric(self):
        c, delays = self.asym_toggle()
        split, sdelays = split_asymmetric_pins(c, delays)
        assert not sdelays.has_asymmetric_pins
        assert split.stats["gates"] > c.stats["gates"]

    def test_analyses_agree(self):
        """The decomposition preserves the flattened TBF exactly."""
        c, delays = self.asym_toggle()
        split, sdelays = split_asymmetric_pins(c, delays)
        assert longest_topological_delay(c, delays) == \
            longest_topological_delay(split, sdelays) == 5
        assert floating_delay(c, delays).delay == \
            floating_delay(split, sdelays).delay
        assert transition_delay(c, delays).delay == \
            transition_delay(split, sdelays).delay
        r1 = minimum_cycle_time(c, delays)
        r2 = minimum_cycle_time(split, sdelays)
        assert r1.mct_upper_bound == r2.mct_upper_bound

    def test_asymmetric_mct_end_to_end(self):
        """Asymmetric pins flow through the whole MCT stack, and the
        exact explicit oracle agrees at the boundary."""
        c, delays = self.asym_toggle()
        result = minimum_cycle_time(c, delays)
        assert result.mct_upper_bound is not None
        bound = result.mct_upper_bound
        assert equivalent_to_steady(c, delays, bound)

    def test_simulation_via_split(self):
        """The simulator rejects asymmetric pins; splitting first makes
        the timed behaviour simulable."""
        c, delays = self.asym_toggle()
        split, sdelays = split_asymmetric_pins(c, delays)
        bound = minimum_cycle_time(split, sdelays).mct_upper_bound
        sim = ClockedSimulator(split, sdelays)
        assert sim.matches_ideal(bound, {"q": False}, [{}] * 10)

    def test_symmetric_circuit_unchanged(self):
        gates = [Gate("d", GateType.NOT, ("q",))]
        c = Circuit("t", [], ["q"], gates, [Latch("q", "d")])
        delays = unit_delays(c)
        split, sdelays = split_asymmetric_pins(c, delays)
        assert set(split.gates) == {"d"}
        assert sdelays.pin("d", 0) == PinTiming.symmetric(1)

    def test_overlapping_intervals_rejected(self):
        gates = [Gate("d", GateType.BUF, ("q",))]
        c = Circuit("bad", [], ["q"], gates, [Latch("q", "d")])
        delays = DelayMap(c, {
            ("d", 0): PinTiming(rise=Interval.of(1, 4), fall=Interval.of(2, 5))
        })
        with pytest.raises(CircuitError):
            split_asymmetric_pins(c, delays)


class TestStats:
    def test_depth_and_types(self):
        gates = [
            Gate("n1", GateType.AND, ("a", "b")),
            Gate("n2", GateType.NOT, ("n1",)),
            Gate("n3", GateType.AND, ("n2", "a")),
        ]
        c = Circuit("s", ["a", "b"], ["n3"], gates)
        stats = circuit_stats(c)
        assert stats.depth == 3
        assert stats.by_type == {"AND": 2, "NOT": 1}
        assert stats.gates == 3
