"""Resilience: deadlines, fault injection, checkpoints, resume, ladder.

The core property under test is the tentpole acceptance criterion:
killing the τ-sweep at *any* stage (BDD build, timed expansion, LP
feasibility, decoding) must yield a valid partial result whose
checkpoint, when resumed, reproduces the exact bound and candidate
sequence of an uninterrupted run.
"""

import json
import time
from fractions import Fraction

import pytest

from repro import errors
from repro.benchgen.circuits import paper_example2, s27
from repro.errors import (
    Budget,
    CheckpointError,
    DeadlineExceeded,
    ResourceBudgetExceeded,
)
from repro.mct import (
    DEFAULT_LADDER,
    CandidateRecord,
    MctOptions,
    minimum_cycle_time,
)
from repro.resilience import (
    Deadline,
    SweepCheckpoint,
    inject_faults,
    observe_calls,
)

CIRCUITS = {"s27": s27, "paper_example2": paper_example2}

#: Options every sweep in this module runs under: a huge budget and a
#: generous deadline exist (so the fault hooks have something to fail)
#: but never trip on their own.
OPTS = MctOptions(work_budget=10**9, time_limit=3600.0)


def _signature(result):
    """The reproducible part of a candidate sequence (timings differ)."""
    return [(r.tau, r.status, r.m) for r in result.candidates]


@pytest.fixture(scope="module")
def references():
    """Unfaulted runs plus their hook-call totals, per circuit."""
    out = {}
    for name, builder in CIRCUITS.items():
        circuit, delays = builder()
        with observe_calls() as plan:
            result = minimum_cycle_time(circuit, delays, OPTS)
        assert result.failure_found and not result.interrupted
        assert result.checkpoint is None
        out[name] = (circuit, delays, result, plan)
    return out


# ----------------------------------------------------------------------
# Deadline unit behaviour
# ----------------------------------------------------------------------
class TestDeadline:
    def test_after_none_is_none(self):
        assert Deadline.after(None) is None

    def test_expired_and_check(self):
        deadline = Deadline(0.0, stride=1)
        assert deadline.expired() is False or deadline.elapsed() > 0
        time.sleep(0.01)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded) as info:
            deadline.check("unit test")
        assert "unit test" in str(info.value)
        assert info.value.seconds == 0.0

    def test_not_expired(self):
        deadline = Deadline(3600.0)
        for _ in range(1000):
            deadline.check()
        assert not deadline.expired()
        assert deadline.remaining() > 0

    def test_stride_skips_clock_reads(self, monkeypatch):
        import repro.resilience.deadline as dl

        reads = []
        real_monotonic = time.monotonic
        deadline = Deadline(10.0, start=real_monotonic(), stride=8)
        monkeypatch.setattr(
            dl.time,
            "monotonic",
            lambda: (reads.append(1), real_monotonic())[1],
        )
        for _ in range(64):
            deadline.check()
        # the clock is touched only on every stride-th call
        assert len(reads) == 8

    def test_fault_hook_fires_every_call(self):
        deadline = Deadline(3600.0, stride=1000)
        with inject_faults(deadline_at=3):
            deadline.check()
            deadline.check()
            with pytest.raises(DeadlineExceeded):
                deadline.check()

    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)
        with pytest.raises(ValueError):
            Deadline(1.0, stride=0)


# ----------------------------------------------------------------------
# Fault injector
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_budget_fault_at_exact_call(self):
        budget = Budget(limit=10**6, resource="work")
        with inject_faults(budget_at=3) as plan:
            budget.charge()
            budget.charge()
            with pytest.raises(ResourceBudgetExceeded) as info:
                budget.charge()
            assert "fault injected" in str(info.value)
            # `once`: the injector disarms after firing
            budget.charge()
        assert plan.budget_calls == 4
        assert plan.budget_fired == 1

    def test_persistent_fault(self):
        budget = Budget(limit=10**6, resource="work")
        with inject_faults(budget_at=2, once=False):
            budget.charge()
            for _ in range(3):
                with pytest.raises(ResourceBudgetExceeded):
                    budget.charge()

    def test_hooks_restored_on_exit(self):
        assert errors.budget_fault_hook is None
        with pytest.raises(RuntimeError):
            with inject_faults(budget_at=1):
                assert errors.budget_fault_hook is not None
                raise RuntimeError("boom")
        assert errors.budget_fault_hook is None
        assert errors.deadline_fault_hook is None

    def test_observe_counts_deterministically(self):
        circuit, delays = paper_example2()
        totals = []
        for _ in range(2):
            with observe_calls() as plan:
                minimum_cycle_time(circuit, delays, OPTS)
            totals.append((plan.budget_calls, plan.deadline_calls))
        assert totals[0] == totals[1]
        assert totals[0][0] > 0 and totals[0][1] > 0


# ----------------------------------------------------------------------
# Checkpoint serialization
# ----------------------------------------------------------------------
class TestCheckpoint:
    def make(self):
        return SweepCheckpoint(
            circuit_name="s27",
            L=Fraction(23, 2),
            last_tau=Fraction(54, 5),
            records=(
                CandidateRecord(Fraction(23, 2), "steady", 1, 0.0, "exact"),
                CandidateRecord(Fraction(54, 5), "pass", 2, 0.0123, "exact"),
            ),
            rung="exact",
            reason="work budget exhausted",
            fingerprint={"max_age": 16},
        )

    def test_json_roundtrip_is_exact(self):
        ckpt = self.make()
        again = SweepCheckpoint.from_json(ckpt.to_json())
        assert again.circuit_name == ckpt.circuit_name
        assert again.L == ckpt.L and isinstance(again.L, Fraction)
        assert again.last_tau == Fraction(54, 5)
        assert _records_eq(again.records, ckpt.records)
        assert again.fingerprint == {"max_age": 16}

    def test_save_load(self, tmp_path):
        path = tmp_path / "ckpt.json"
        ckpt = self.make()
        ckpt.save(path)
        data = json.loads(path.read_text())
        assert data["version"] == 2
        assert data["schema"] == "repro-mct-checkpoint/2"
        assert data["L"] == "23/2"
        loaded = SweepCheckpoint.load(path)
        assert loaded.L == ckpt.L

    def test_save_is_atomic(self, tmp_path, monkeypatch):
        # save() must go through a same-directory temp file + rename:
        # a crash mid-write may leave old content (or nothing), never
        # a truncated JSON that would then fail --resume.
        import os

        path = tmp_path / "ckpt.json"
        ckpt = self.make()
        ckpt.save(path)
        assert [p.name for p in tmp_path.iterdir()] == ["ckpt.json"]

        replaced = []
        real_replace = os.replace

        def tracking_replace(src, dst):
            # The temp file must already be fully written and in the
            # target's directory when the rename happens.
            assert os.path.dirname(src) == str(tmp_path)
            SweepCheckpoint.from_json(open(src).read())  # complete JSON
            replaced.append((src, dst))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", tracking_replace)
        ckpt.save(path)
        assert len(replaced) == 1
        assert SweepCheckpoint.load(path).L == ckpt.L

    def test_save_failure_keeps_old_file_and_no_tmp(self, tmp_path, monkeypatch):
        import os

        path = tmp_path / "ckpt.json"
        self.make().save(path)
        before = path.read_text()

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            self.make().save(path)
        monkeypatch.undo()
        # The old checkpoint is intact and the temp file was cleaned up.
        assert path.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["ckpt.json"]

    def test_save_fsyncs_parent_directory(self, tmp_path, monkeypatch):
        # Satellite (PR 9): os.replace makes the rename atomic but not
        # durable — the directory entry must itself be fsynced, or a
        # crash right after save() can roll back to the old (or no)
        # checkpoint.  Spy on os.fsync and require a call whose fd is
        # the *parent directory*, after the rename.
        import os

        path = tmp_path / "ckpt.json"
        events = []
        real_fsync, real_replace = os.fsync, os.replace

        def spy_fsync(fd):
            events.append(("fsync", os.fstat(fd).st_ino))
            return real_fsync(fd)

        def spy_replace(src, dst):
            events.append(("replace", None))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        self.make().save(path)
        dir_inode = os.stat(tmp_path).st_ino
        assert ("fsync", dir_inode) in events
        assert events.index(("replace", None)) < events.index(
            ("fsync", dir_inode)
        )

    def test_fsync_directory_suppresses_refusals(self, tmp_path, monkeypatch):
        # Platforms that refuse directory fsync (or O_RDONLY dir fds)
        # must degrade to best-effort, never crash a checkpoint save.
        import os

        from repro.resilience import fsync_directory

        def refuse(fd):
            raise OSError("operation not supported")

        monkeypatch.setattr(os, "fsync", refuse)
        fsync_directory(tmp_path)  # no raise
        monkeypatch.undo()
        fsync_directory(tmp_path / "does-not-exist")  # no raise either

    def test_rejects_bad_version(self):
        data = self.make().to_dict()
        data["version"] = 99
        with pytest.raises(CheckpointError, match="version"):
            SweepCheckpoint.from_dict(data)

    def test_rejects_bad_rational(self):
        data = self.make().to_dict()
        data["last_tau"] = "not/a/number"
        with pytest.raises(CheckpointError):
            SweepCheckpoint.from_dict(data)

    def test_rejects_garbage_json(self):
        with pytest.raises(CheckpointError):
            SweepCheckpoint.from_json("{nope")
        with pytest.raises(CheckpointError):
            SweepCheckpoint.from_json("[1, 2]")

    def test_validate_mismatches(self):
        ckpt = self.make()
        with pytest.raises(CheckpointError, match="circuit"):
            ckpt.validate("other", Fraction(23, 2), {"max_age": 16})
        with pytest.raises(CheckpointError, match="L="):
            ckpt.validate("s27", Fraction(5), {"max_age": 16})
        with pytest.raises(CheckpointError, match="max_age"):
            ckpt.validate("s27", Fraction(23, 2), {"max_age": 4})
        ckpt.validate("s27", Fraction(23, 2), {"max_age": 16})  # ok


def _records_eq(a, b):
    return [(r.tau, r.status, r.m, r.rung) for r in a] == [
        (r.tau, r.status, r.m, r.rung) for r in b
    ]


# ----------------------------------------------------------------------
# Tentpole: kill the sweep anywhere, resume reproduces the answer
# ----------------------------------------------------------------------
class TestKillAndResume:
    #: Fractions of the total hook calls at which to kill the run;
    #: chosen to land in different pipeline stages (machine build /
    #: early decisions / feasibility / late decode).
    STAGES = (0.02, 0.25, 0.5, 0.75, 0.95)

    @pytest.mark.parametrize("name", sorted(CIRCUITS))
    @pytest.mark.parametrize("stage", STAGES)
    def test_budget_fault(self, references, name, stage):
        circuit, delays, ref, plan = references[name]
        at = max(1, int(plan.budget_calls * stage))
        with inject_faults(budget_at=at):
            partial = minimum_cycle_time(circuit, delays, OPTS)
        self._check_partial_and_resume(circuit, delays, ref, partial)
        assert partial.budget_exceeded

    @pytest.mark.parametrize("name", sorted(CIRCUITS))
    @pytest.mark.parametrize("stage", STAGES)
    def test_deadline_fault(self, references, name, stage):
        circuit, delays, ref, plan = references[name]
        at = max(1, int(plan.deadline_calls * stage))
        with inject_faults(deadline_at=at):
            partial = minimum_cycle_time(circuit, delays, OPTS)
        self._check_partial_and_resume(circuit, delays, ref, partial)
        assert partial.deadline_exceeded

    def _check_partial_and_resume(self, circuit, delays, ref, partial):
        # the partial result is valid: interrupted, no spurious failure
        assert partial.interrupted
        assert not partial.failure_found
        assert partial.notes
        # candidates recorded so far are a prefix of the reference's
        assert _signature(partial) == _signature(ref)[: len(partial.candidates)]
        # resuming (from the checkpoint if one was taken; from scratch
        # when the fault hit before the first window) reproduces the
        # uninterrupted bound and the full candidate sequence
        resumed = minimum_cycle_time(
            circuit, delays, OPTS, resume_from=partial.checkpoint
        )
        assert resumed.mct_upper_bound == ref.mct_upper_bound
        assert resumed.failure_found
        assert resumed.failing_window == ref.failing_window
        assert _signature(resumed) == _signature(ref)
        assert not resumed.interrupted

    @pytest.mark.parametrize("name", sorted(CIRCUITS))
    def test_resume_via_disk_roundtrip(self, references, tmp_path, name):
        circuit, delays, ref, plan = references[name]
        at = max(1, plan.budget_calls // 2)
        with inject_faults(budget_at=at):
            partial = minimum_cycle_time(circuit, delays, OPTS)
        assert partial.checkpoint is not None
        path = tmp_path / "sweep.json"
        partial.checkpoint.save(path)
        resumed = minimum_cycle_time(
            circuit, delays, OPTS, resume_from=SweepCheckpoint.load(path)
        )
        assert resumed.mct_upper_bound == ref.mct_upper_bound
        assert _signature(resumed) == _signature(ref)

    def test_resume_rejects_changed_options(self, references):
        circuit, delays, ref, plan = references["s27"]
        with inject_faults(budget_at=max(1, plan.budget_calls // 2)):
            partial = minimum_cycle_time(circuit, delays, OPTS)
        other = MctOptions(
            work_budget=10**9, time_limit=3600.0, use_reachability=True
        )
        with pytest.raises(CheckpointError, match="use_reachability"):
            minimum_cycle_time(
                circuit, delays, other, resume_from=partial.checkpoint
            )

    def test_double_interruption_chains(self, references):
        """Interrupt, resume, interrupt again, resume again."""
        circuit, delays, ref, plan = references["s27"]
        with inject_faults(budget_at=max(1, plan.budget_calls // 4)):
            first = minimum_cycle_time(circuit, delays, OPTS)
        assert first.interrupted
        with inject_faults(budget_at=max(1, plan.budget_calls // 4)):
            second = minimum_cycle_time(
                circuit, delays, OPTS, resume_from=first.checkpoint
            )
        # the second run may or may not reach the end with its later
        # fault position; either way the chain converges
        final = second
        if second.interrupted:
            final = minimum_cycle_time(
                circuit, delays, OPTS, resume_from=second.checkpoint
            )
        assert final.mct_upper_bound == ref.mct_upper_bound
        assert _signature(final) == _signature(ref)


# ----------------------------------------------------------------------
# Deadline enforcement inside windows (satellite b)
# ----------------------------------------------------------------------
class TestDeadlineEnforcement:
    def test_time_limit_enforced_mid_window(self):
        """A deadline that expires *inside* the first real window still
        stops the sweep (the seed only checked between breakpoints)."""
        circuit, delays = s27()
        # real (non-injected) deadline: already expired at start
        result = minimum_cycle_time(
            circuit, delays, MctOptions(time_limit=0.0)
        )
        assert result.deadline_exceeded
        assert result.exhausted
        assert "time limit" in result.notes
        assert not result.failure_found

    def test_elapsed_seconds_recorded_per_window(self):
        circuit, delays = s27()
        result = minimum_cycle_time(circuit, delays)
        decided = [r for r in result.candidates if r.status != "steady"]
        assert decided, "sweep must decide at least one window"
        assert all(r.elapsed_seconds >= 0.0 for r in result.candidates)
        assert any(r.elapsed_seconds > 0.0 for r in decided)
        # steady windows are free
        for r in result.candidates:
            if r.status == "steady":
                assert r.elapsed_seconds == 0.0


# ----------------------------------------------------------------------
# Degradation ladder
# ----------------------------------------------------------------------
class TestDegradationLadder:
    def test_one_shot_fault_escalates_and_completes(self, references):
        circuit, delays, ref, plan = references["s27"]
        opts = MctOptions(
            work_budget=10**9, degradation_ladder=DEFAULT_LADDER
        )
        with inject_faults(budget_at=max(1, plan.budget_calls // 2)):
            result = minimum_cycle_time(circuit, delays, opts)
        # the ladder absorbed the fault: same answer, no interruption
        assert not result.interrupted
        assert result.mct_upper_bound == ref.mct_upper_bound
        assert result.degradations
        step = result.degradations[0]
        assert step.from_rung == "exact"
        assert step.to_rung == "relaxed"
        assert result.rung == "relaxed"
        # the retried window's record names the rung that produced it
        assert any(r.rung == "relaxed" for r in result.candidates)

    def test_persistent_fault_exhausts_ladder(self, references):
        circuit, delays, ref, plan = references["s27"]
        opts = MctOptions(
            work_budget=10**9, degradation_ladder=DEFAULT_LADDER
        )
        at = max(1, plan.budget_calls // 2)
        with inject_faults(budget_at=at, once=False):
            result = minimum_cycle_time(circuit, delays, opts)
        assert result.interrupted and result.budget_exceeded
        assert len(result.degradations) == len(DEFAULT_LADDER)
        assert result.rung == DEFAULT_LADDER[-1]
        assert result.checkpoint is not None
        assert result.checkpoint.rung == DEFAULT_LADDER[-1]
        # and the checkpoint still resumes to the right answer
        resumed = minimum_cycle_time(
            circuit, delays, opts, resume_from=result.checkpoint
        )
        assert resumed.mct_upper_bound == ref.mct_upper_bound

    def test_ladder_off_by_default(self):
        assert MctOptions().degradation_ladder == ()

    def test_unknown_rung_rejected(self):
        circuit, delays = paper_example2()
        with pytest.raises(errors.AnalysisError, match="unknown degradation"):
            minimum_cycle_time(
                circuit,
                delays,
                MctOptions(degradation_ladder=("warp-speed",)),
            )


# ----------------------------------------------------------------------
# CLI --checkpoint / --resume flow (satellite d's acceptance path)
# ----------------------------------------------------------------------
class TestCliResume:
    @pytest.fixture()
    def bench(self, tmp_path):
        from repro.benchgen import S27_BENCH

        path = tmp_path / "s27.bench"
        path.write_text(S27_BENCH)
        return path

    def test_interrupt_then_resume(self, bench, tmp_path, capsys):
        from repro.cli import main

        ckpt = tmp_path / "ck.json"
        rc = main(
            [
                "analyze",
                str(bench),
                "--fail-budget-at",
                "300",
                "--checkpoint",
                str(ckpt),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 3  # exit-code contract: partial/interrupted result
        assert "work budget exhausted" in out
        assert ckpt.exists()

        rc = main(["analyze", str(bench), "--resume", str(ckpt)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "minimum cycle time: 11.5" in out
        assert "failing window" in out
        assert "partial" not in out

    def test_resume_mismatch_fails_cleanly(self, bench, tmp_path, capsys):
        from repro.cli import main

        ckpt = tmp_path / "ck.json"
        rc = main(
            [
                "analyze",
                str(bench),
                "--fail-budget-at",
                "300",
                "--checkpoint",
                str(ckpt),
            ]
        )
        assert rc == 3  # interrupted on purpose
        capsys.readouterr()
        rc = main(
            ["analyze", str(bench), "--reachability", "--resume", str(ckpt)]
        )
        err = capsys.readouterr().err
        assert rc == 1
        assert "cannot resume" in err

    def test_completed_run_writes_no_checkpoint(self, bench, tmp_path, capsys):
        from repro.cli import main

        ckpt = tmp_path / "ck.json"
        rc = main(["analyze", str(bench), "--checkpoint", str(ckpt)])
        out = capsys.readouterr().out
        assert rc == 0
        assert not ckpt.exists()
        assert "nothing to save" in out

    def test_degrade_flag_absorbs_fault(self, bench, capsys):
        from repro.cli import main

        rc = main(
            ["analyze", str(bench), "--fail-budget-at", "300", "--degrade"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "degraded" in out
        assert "minimum cycle time: 11.5" in out
