"""Checkpoint merge algebra and schema-v2 compatibility.

``SweepCheckpoint.merge`` is the distributed sweep's recovery
primitive: shards of the same deterministic sweep checkpoint
independently, and the coordinator joins whatever subset survives.
For "any subset of hosts dying still yields the exact serial answer"
to hold, the join must be a semilattice — commutative, associative,
idempotent — and resuming from any merged subset must reproduce the
serial bound.  Both are property-tested here with hypothesis over
random record partitions; the schema-v2 satellites (version bump,
``schema`` tag, v1 backward compatibility, measurement-free
``canonical`` form) ride along.
"""

from __future__ import annotations

import json
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchgen import paper_example2
from repro.errors import CheckpointError
from repro.mct import CandidateRecord, MctOptions, minimum_cycle_time
from repro.resilience import (
    CHECKPOINT_SCHEMA,
    CHECKPOINT_VERSION,
    SUPPORTED_VERSIONS,
    SweepCheckpoint,
    inject_faults,
    merge_checkpoints,
    observe_calls,
)

# ----------------------------------------------------------------------
# Synthetic checkpoints: a fixed record pool, random subsets
# ----------------------------------------------------------------------

#: One plausible sweep's record pool: strictly descending τ (commit
#: order), mixed statuses/rungs, nonzero measurement fields so
#: duplicate resolution and telemetry joins are actually exercised.
_POOL = tuple(
    CandidateRecord(
        tau=Fraction(40 - i, 3),
        status=("steady", "pass", "pass-infeasible", "fail")[i % 4],
        m=1 + i % 3,
        elapsed_seconds=0.25 * i,
        rung=("exact", "m-capped")[i % 2],
        ite_calls=10 * i,
        attempts=1 + i % 2,
        quarantined=(i % 5 == 0),
    )
    for i in range(12)
)

_FINGERPRINT = {"m_max": "8", "mode": "exact"}


def shard(indices, *, reason="budget", stats=None) -> SweepCheckpoint:
    """A checkpoint holding the pool records at ``indices``."""
    records = tuple(_POOL[i] for i in sorted(set(indices)))
    taus = [r.tau for r in records]
    return SweepCheckpoint(
        circuit_name="pool",
        L=Fraction(5, 2),
        last_tau=min(taus) if taus else None,
        records=records,
        rung="exact",
        reason=reason,
        fingerprint=_FINGERPRINT,
        supervision=stats,
    )


def content(ckpt: SweepCheckpoint) -> str:
    """Canonical JSON for structural equality of two checkpoints."""
    data = ckpt.to_dict()
    data["bdd_stats"] = ckpt.bdd_stats and dict(ckpt.bdd_stats)
    data["supervision"] = ckpt.supervision and dict(ckpt.supervision)
    return json.dumps(data, sort_keys=True)


indices = st.sets(st.integers(min_value=0, max_value=len(_POOL) - 1))


class TestMergeAlgebra:
    @settings(max_examples=100, deadline=None)
    @given(indices, indices)
    def test_commutative(self, a, b):
        assert content(shard(a).merge(shard(b))) == content(
            shard(b).merge(shard(a))
        )

    @settings(max_examples=100, deadline=None)
    @given(indices, indices, indices)
    def test_associative(self, a, b, c):
        left = shard(a).merge(shard(b)).merge(shard(c))
        right = shard(a).merge(shard(b).merge(shard(c)))
        assert content(left) == content(right)

    @settings(max_examples=100, deadline=None)
    @given(indices)
    def test_idempotent(self, a):
        assert content(shard(a).merge(shard(a))) == content(shard(a))

    @settings(max_examples=100, deadline=None)
    @given(st.lists(indices, min_size=1, max_size=5), st.randoms())
    def test_order_and_grouping_free(self, parts, rng):
        # Any shuffling or re-bracketing of the same shards joins to
        # the same checkpoint — the property that lets the coordinator
        # merge whichever hosts answer, in whatever order.
        baseline = merge_checkpoints(shard(p) for p in parts)
        shuffled = list(parts)
        rng.shuffle(shuffled)
        assert content(merge_checkpoints(shard(p) for p in shuffled)) == (
            content(baseline)
        )

    @settings(max_examples=100, deadline=None)
    @given(indices, indices)
    def test_union_of_records(self, a, b):
        merged = shard(a).merge(shard(b))
        assert {r.tau for r in merged.records} == {
            _POOL[i].tau for i in a | b
        }
        taus = [r.tau for r in merged.records]
        assert taus == sorted(taus, reverse=True)  # commit order

    @settings(max_examples=60, deadline=None)
    @given(indices, indices)
    def test_progress_is_furthest(self, a, b):
        merged = shard(a).merge(shard(b))
        taus = [_POOL[i].tau for i in a | b]
        assert merged.last_tau == (min(taus) if taus else None)

    def test_supervision_counters_join_by_max(self):
        a = shard({0, 1}, stats={"crashes": 2, "retries": 1})
        b = shard({1, 2}, stats={"crashes": 1, "timeouts": 3})
        merged = a.merge(b)
        assert merged.supervision == {
            "crashes": 2, "retries": 1, "timeouts": 3,
        }

    def test_merge_rejects_different_sweeps(self):
        base = shard({0, 1})
        other = SweepCheckpoint(
            circuit_name="other", L=base.L, last_tau=None,
            fingerprint=_FINGERPRINT,
        )
        with pytest.raises(CheckpointError, match="circuits"):
            base.merge(other)
        with pytest.raises(CheckpointError, match="L="):
            base.merge(
                SweepCheckpoint(
                    circuit_name="pool", L=Fraction(3), last_tau=None,
                    fingerprint=_FINGERPRINT,
                )
            )
        with pytest.raises(CheckpointError, match="options"):
            base.merge(
                SweepCheckpoint(
                    circuit_name="pool", L=base.L, last_tau=None,
                    fingerprint={"m_max": "4"},
                )
            )

    def test_merge_checkpoints_requires_input(self):
        with pytest.raises(CheckpointError):
            merge_checkpoints([])


# ----------------------------------------------------------------------
# Real interrupted sweeps: merge any subset, resume, get serial answer
# ----------------------------------------------------------------------
class TestShardResume:
    @pytest.fixture(scope="class")
    def widened(self):
        circuit, delays = paper_example2()
        return circuit, delays.widen(Fraction(9, 10))

    @pytest.fixture(scope="class")
    def serial(self, widened):
        circuit, delays = widened
        return minimum_cycle_time(circuit, delays)

    @pytest.fixture(scope="class")
    def shards(self, widened):
        # The same sweep interrupted at different depths: what three
        # hosts' last checkpoints look like after a coordinator loss.
        circuit, delays = widened
        # A huge budget the sweep never exhausts on its own: it only
        # exists so Budget.charge runs and the injector has a hook.
        opts = MctOptions(work_budget=10**9)
        with observe_calls() as plan:
            minimum_cycle_time(circuit, delays, opts)
        total = plan.budget_calls
        out = []
        for fraction in (0.25, 0.5, 0.85):
            with inject_faults(budget_at=max(1, int(total * fraction))):
                result = minimum_cycle_time(circuit, delays, opts)
            assert result.checkpoint is not None
            out.append(result.checkpoint)
        return out

    def test_shards_progressed_differently(self, shards):
        assert len({c.last_tau for c in shards}) > 1

    @settings(max_examples=20, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=2), min_size=1))
    def test_any_subset_resumes_to_serial(self, widened, serial, shards, pick):
        circuit, delays = widened
        merged = merge_checkpoints(shards[i] for i in sorted(pick))
        resumed = minimum_cycle_time(
            circuit, delays, resume_from=merged
        )
        assert resumed.mct_upper_bound == serial.mct_upper_bound
        assert [
            (r.tau, r.status, r.m, r.rung) for r in resumed.candidates
        ] == [(r.tau, r.status, r.m, r.rung) for r in serial.candidates]
        assert resumed.failing_window == serial.failing_window
        assert resumed.notes == serial.notes

    def test_merged_checkpoint_roundtrips_json(self, shards):
        merged = merge_checkpoints(shards)
        again = SweepCheckpoint.from_json(merged.to_json())
        assert content(again) == content(merged)


# ----------------------------------------------------------------------
# Schema v2 and backward compatibility (satellite)
# ----------------------------------------------------------------------
class TestSchema:
    def test_current_schema_constants(self):
        assert CHECKPOINT_VERSION == 2
        assert SUPPORTED_VERSIONS == (1, 2)
        assert CHECKPOINT_SCHEMA == "repro-mct-checkpoint/2"

    def test_new_checkpoints_carry_schema_tag(self):
        data = shard({0}).to_dict()
        assert data["version"] == 2
        assert data["schema"] == "repro-mct-checkpoint/2"

    def test_v1_era_file_loads(self):
        # A PR 1-5 era checkpoint: version 1, no schema tag, no
        # telemetry blocks, records without attempt fields.
        v1 = {
            "version": 1,
            "circuit": "ex2",
            "L": "5/2",
            "last_tau": "7/3",
            "rung": "exact",
            "reason": "work budget exhausted",
            "fingerprint": {"m_max": "8"},
            "records": [
                {"tau": "3", "status": "pass", "m": 2},
                {"tau": "7/3", "status": "steady", "m": 2},
            ],
        }
        loaded = SweepCheckpoint.from_dict(v1)
        assert loaded.version == 1
        assert loaded.last_tau == Fraction(7, 3)
        assert loaded.bdd_stats is None and loaded.supervision is None
        assert [r.attempts for r in loaded.records] == [1, 1]
        # And it re-serializes as a self-consistent v1 file.
        assert loaded.to_dict()["schema"] == "repro-mct-checkpoint/1"

    def test_unsupported_version_rejected(self):
        with pytest.raises(CheckpointError, match="version"):
            SweepCheckpoint.from_dict({"version": 3, "circuit": "x", "L": "1"})

    def test_mismatched_schema_tag_rejected(self):
        with pytest.raises(CheckpointError, match="schema"):
            SweepCheckpoint.from_dict({
                "version": 2,
                "schema": "repro-mct-checkpoint/1",
                "circuit": "x",
                "L": "1",
            })

    def test_canonical_strips_measurements(self):
        noisy = shard({0, 1, 2}, stats={"crashes": 5})
        quiet = SweepCheckpoint(
            circuit_name=noisy.circuit_name,
            L=noisy.L,
            last_tau=noisy.last_tau,
            records=tuple(
                CandidateRecord(
                    tau=r.tau, status=r.status, m=r.m, rung=r.rung,
                    elapsed_seconds=123.0, ite_calls=999, attempts=7,
                    quarantined=not r.quarantined,
                )
                for r in noisy.records
            ),
            rung=noisy.rung,
            reason=noisy.reason,
            fingerprint=_FINGERPRINT,
        )
        assert noisy.canonical() == quiet.canonical()
        assert json.dumps(noisy.canonical(), sort_keys=True) == json.dumps(
            quiet.canonical(), sort_keys=True
        )
