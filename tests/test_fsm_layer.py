"""Tests for reachability, STG extraction, and exact equivalence."""

from fractions import Fraction

import pytest

from repro.bdd import BddManager
from repro.errors import AnalysisError
from repro.fsm import (
    enumerate_reachable,
    equivalent_to_steady,
    extract_stg,
    machines_equivalent,
    minimize_mealy,
    reachable_state_count,
    reachable_states,
    steady_machine,
    tau_machine,
)
from repro.logic import Circuit, DelayMap, Gate, GateType, Latch, PinTiming, unit_delays

from tests.test_logic_netlist import make_sr_counter, make_toggle
from tests.test_timed_expansion import fig2_circuit


def make_onehot_ring() -> Circuit:
    """3-bit ring shifter: from 100 only rotations are reachable."""
    gates = [
        Gate("d0", GateType.BUF, ("q2",)),
        Gate("d1", GateType.BUF, ("q0",)),
        Gate("d2", GateType.BUF, ("q1",)),
    ]
    return Circuit(
        "ring3", [], ["q0"], gates,
        [Latch("q0", "d0"), Latch("q1", "d1"), Latch("q2", "d2")],
    )


class TestReachability:
    def test_counter_reaches_everything(self):
        c = make_sr_counter()
        assert reachable_state_count(c) == 4

    def test_ring_reaches_three_states(self):
        c = make_onehot_ring()
        count = reachable_state_count(
            c, initial_state={"q0": True, "q1": False, "q2": False}
        )
        assert count == 3

    def test_ring_from_zero_is_stuck(self):
        c = make_onehot_ring()
        assert reachable_state_count(c) == 1  # all-zero rotates to itself

    def test_reachable_bdd_semantics(self):
        c = make_onehot_ring()
        mgr = BddManager()
        reached = reachable_states(
            c, initial_state={"q0": True, "q1": False, "q2": False}, manager=mgr
        )
        assert reached.evaluate({"q0": True, "q1": False, "q2": False})
        assert reached.evaluate({"q0": False, "q1": True, "q2": False})
        assert not reached.evaluate({"q0": True, "q1": True, "q2": False})

    def test_matches_explicit_enumeration(self):
        c = make_sr_counter()
        mgr = BddManager()
        reached = reachable_states(c, manager=mgr)
        explicit = enumerate_reachable(c)
        for q0 in (False, True):
            for q1 in (False, True):
                symbolic = reached.evaluate({"q0": q0, "q1": q1})
                assert symbolic == ((q0, q1) in explicit)

    def test_combinational_rejected(self):
        c = Circuit("comb", ["a"], ["a"], [])
        with pytest.raises(AnalysisError):
            reachable_states(c)

    def test_iteration_cap(self):
        c = make_sr_counter()
        with pytest.raises(AnalysisError):
            reachable_states(c, max_iterations=1)


class TestStg:
    def test_toggle_stg(self):
        g = extract_stg(make_toggle())
        assert g.number_of_nodes() == 2
        assert g.number_of_edges() == 2
        assert g.has_edge((False,), (True,))
        assert g.has_edge((True,), (False,))

    def test_counter_stg_edges_carry_io(self):
        g = extract_stg(make_sr_counter())
        assert g.number_of_nodes() == 4
        # Each state has 2 outgoing edges (en = 0 / 1).
        assert all(g.out_degree(n) == 2 for n in g.nodes)
        edge = next(iter(g.edges(data=True)))
        assert "input" in edge[2] and "output" in edge[2]

    def test_input_cap(self):
        c = Circuit(
            "wide", [f"u{i}" for i in range(20)], [],
            [Gate("d", GateType.OR, tuple(f"u{i}" for i in range(20)))],
            [Latch("q", "d")],
        )
        with pytest.raises(AnalysisError):
            enumerate_reachable(c, max_inputs=8)


class TestExplicitMachines:
    def test_steady_machine_matches_ideal_simulation(self):
        c = make_sr_counter()
        delays = unit_delays(c)
        m = steady_machine(c, delays)
        state = m.initial
        # Drive en=1 for 4 cycles; outputs are the *sampled* FF values.
        outs = []
        for _ in range(4):
            state, out = m.step(state, (True,))
            outs.append(out)
        # PO = (q0, q1) read combinationally at age 1 -> previous state.
        states, _ = c.simulate({"q0": False, "q1": False}, [{"en": True}] * 4)
        expected = [(False, False)] + [
            (s["q0"], s["q1"]) for s in states[:-1]
        ]
        assert outs == expected

    def test_tau_machine_at_L_equals_steady(self):
        circuit, delays = fig2_circuit()
        left = tau_machine(circuit, delays, Fraction(5))
        right = steady_machine(circuit, delays)
        assert machines_equivalent(left, right)

    def test_fig2_exact_equivalence_boundary(self):
        """Ground truth for Example 2: equivalent at 2.5, not at 2."""
        circuit, delays = fig2_circuit()
        assert equivalent_to_steady(circuit, delays, Fraction(5, 2))
        assert equivalent_to_steady(circuit, delays, Fraction(4))
        assert not equivalent_to_steady(circuit, delays, Fraction(2))

    def test_interval_delays_rejected(self):
        circuit, delays = fig2_circuit()
        with pytest.raises(AnalysisError):
            tau_machine(circuit, delays.widen(Fraction(9, 10)), Fraction(4))

    def test_minimize_toggle(self):
        c = make_toggle()
        delays = unit_delays(c)
        n, classes = minimize_mealy(steady_machine(c, delays))
        assert n == 2
        assert len(classes) == 2

    def test_minimize_collapses_equivalent_states(self):
        # A 2-bit machine whose output ignores q1: q1 differences are
        # unobservable -> minimization halves the state count.
        gates = [
            Gate("d0", GateType.NOT, ("q0",)),
            Gate("d1", GateType.XOR, ("q0", "q1")),
            Gate("y", GateType.BUF, ("q0",)),
        ]
        c = Circuit("half", [], ["y"], gates, [Latch("q0", "d0"), Latch("q1", "d1")])
        n, _ = minimize_mealy(steady_machine(c, unit_delays(c)))
        assert n == 2
