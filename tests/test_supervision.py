"""The supervision layer: crash recovery, timeouts, retries, fallback.

The contract under test is the ISSUE's acceptance criterion: with
deterministic worker-kill injection enabled, ``minimum_cycle_time(...,
jobs=2)`` and ``run_suite_sharded`` must complete with results
identical to the uninterrupted serial run — a worker death is a
throughput event, never a correctness or completion event — and
windows whose attempt budget runs out are decided via the serial
in-process fallback rather than aborting the sweep.
"""

from __future__ import annotations

import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from fractions import Fraction

import pytest

from repro.benchgen import paper_example2
from repro.benchgen.suite import suite_cases
from repro.errors import AnalysisError, CheckpointError, DeadlineExceeded
from repro.mct import MctOptions, minimum_cycle_time
from repro.parallel import (
    Quarantined,
    RetryPolicy,
    Supervisor,
    run_suite_sharded,
)
from repro.resilience import Deadline, SweepCheckpoint, inject_faults
from repro.resilience.faults import maybe_kill_worker, worker_kill_limit

#: Fast-converging policy for tests: real backoff shape, tiny sleeps.
FAST = RetryPolicy(max_retries=2, backoff_base=0.001, backoff_cap=0.005)
NO_RETRY = RetryPolicy(max_retries=0)


def candidate_keys(result):
    """The deterministic fields of the candidate sequence.

    ``elapsed_seconds``/``ite_calls``/``attempts``/``quarantined`` are
    measurements of one particular execution and legitimately differ
    between a disturbed and an undisturbed run.
    """
    return [(r.tau, r.status, r.m, r.rung) for r in result.candidates]


def assert_equivalent(serial, disturbed):
    assert disturbed.mct_upper_bound == serial.mct_upper_bound
    assert candidate_keys(disturbed) == candidate_keys(serial)
    assert disturbed.failure_found == serial.failure_found
    assert disturbed.failing_window == serial.failing_window
    assert disturbed.failing_sigmas == serial.failing_sigmas
    assert disturbed.failing_roots == serial.failing_roots
    assert disturbed.exhausted == serial.exhausted
    assert disturbed.notes == serial.notes


# ----------------------------------------------------------------------
# Pool task functions (module level: must pickle)
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _die():
    os._exit(1)


def _die_once(sentinel):
    """Crash the worker on the first call, succeed on the retry."""
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os._exit(1)
    return "recovered"


def _sleep(seconds):
    time.sleep(seconds)
    return seconds


# ----------------------------------------------------------------------
# Supervisor unit behaviour
# ----------------------------------------------------------------------
class TestSupervisor:
    @staticmethod
    def spawn(workers=1):
        return lambda: ProcessPoolExecutor(max_workers=workers)

    def test_plain_results_pass_through(self):
        supervisor = Supervisor(self.spawn(2), policy=FAST)
        try:
            handles = [supervisor.submit(_square, n) for n in range(5)]
            assert [supervisor.result(h) for h in handles] == [
                0, 1, 4, 9, 16
            ]
            assert supervisor.stats.crashes == 0
            assert supervisor.stats.retries == 0
        finally:
            supervisor.shutdown()

    def test_crash_then_retry_recovers(self, tmp_path):
        supervisor = Supervisor(self.spawn(), policy=FAST)
        try:
            handle = supervisor.submit(_die_once, str(tmp_path / "mark"))
            assert supervisor.result(handle) == "recovered"
            assert handle.attempts == 2
            assert supervisor.stats.crashes == 1
            assert supervisor.stats.retries == 1
            assert supervisor.stats.quarantined == 0
            assert supervisor.stats.backoff_seconds > 0
        finally:
            supervisor.shutdown()

    def test_exhausted_retries_quarantine(self):
        supervisor = Supervisor(
            self.spawn(), policy=RetryPolicy(max_retries=1, backoff_base=0.001)
        )
        try:
            outcome = supervisor.result(supervisor.submit(_die))
            assert isinstance(outcome, Quarantined)
            assert outcome.reason == "crash"
            assert outcome.attempts == 2  # first try + one retry
            assert supervisor.stats.quarantined == 1
            # The pool was rebuilt: later tasks run normally.
            assert supervisor.result(supervisor.submit(_square, 6)) == 36
        finally:
            supervisor.shutdown()

    def test_uncollected_tasks_survive_a_crash(self):
        # One worker, three tasks: the first completes, the second
        # kills the pool, the third must be resubmitted — not lost.
        supervisor = Supervisor(self.spawn(), policy=NO_RETRY)
        try:
            first = supervisor.submit(_square, 3)
            bad = supervisor.submit(_die)
            third = supervisor.submit(_square, 4)
            assert supervisor.result(first) == 9
            assert isinstance(supervisor.result(bad), Quarantined)
            assert supervisor.result(third) == 16
        finally:
            supervisor.shutdown()

    def test_timeout_quarantines_stuck_worker(self):
        supervisor = Supervisor(
            self.spawn(),
            policy=RetryPolicy(
                max_retries=0, task_timeout=0.2, backoff_base=0.001
            ),
        )
        try:
            started = time.monotonic()
            outcome = supervisor.result(supervisor.submit(_sleep, 60))
            assert isinstance(outcome, Quarantined)
            assert outcome.reason == "timeout"
            assert supervisor.stats.timeouts == 1
            assert time.monotonic() - started < 30  # did not wait out the sleep
            # The stuck process was reclaimed; the pool still works.
            assert supervisor.result(supervisor.submit(_square, 2)) == 4
        finally:
            supervisor.shutdown()

    def test_expired_deadline_raises_not_retries(self):
        supervisor = Supervisor(
            self.spawn(),
            policy=FAST,
            deadline=Deadline(0.0, start=-1000.0),
        )
        try:
            handle = supervisor.submit(_sleep, 60)
            with pytest.raises(DeadlineExceeded):
                supervisor.result(handle)
            # The deadline is not a task failure: no retries charged.
            assert supervisor.stats.retries == 0
        finally:
            # shutdown(wait=False) leaves the sleeper running; reclaim
            # it so interpreter exit does not wait out the sleep.
            executor = supervisor._executor
            supervisor.shutdown()
            processes = getattr(executor, "_processes", None) or {}
            for process in list(processes.values()):
                process.terminate()

    def test_backoff_schedule_is_seeded(self):
        def sleeps(seed):
            sup = Supervisor(
                self.spawn(),
                policy=RetryPolicy(
                    jitter_seed=seed, backoff_base=0.0001, backoff_cap=0.0005
                ),
            )
            out = []
            for _ in range(6):
                sup._backoff()
                out.append(sup.stats.backoff_seconds)
            return out

        assert sleeps(7) == sleeps(7)
        assert sleeps(7) != sleeps(8)

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(task_timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(task_timeout=-5)


# ----------------------------------------------------------------------
# Kill-injection plumbing (repro.resilience.faults)
# ----------------------------------------------------------------------
class TestKillInjection:
    def test_worker_kill_limit_scoped_to_block(self):
        assert worker_kill_limit() is None
        with inject_faults(kill_worker_at=3) as plan:
            assert plan.kill_worker_at == 3
            assert worker_kill_limit() == 3
        assert worker_kill_limit() is None

    def test_maybe_kill_worker_is_inert_when_disarmed(self):
        # None and 0 never fire; a mismatched index never fires.
        maybe_kill_worker(1, None)
        maybe_kill_worker(5, 0)
        maybe_kill_worker(2, 3)


# ----------------------------------------------------------------------
# Sweep crash recovery (the tentpole's acceptance criterion)
# ----------------------------------------------------------------------
class TestSweepCrashRecovery:
    @pytest.fixture(scope="class")
    def widened(self):
        circuit, delays = paper_example2()
        return circuit, delays.widen(Fraction(9, 10))

    @pytest.fixture(scope="class")
    def serial(self, widened):
        circuit, delays = widened
        return minimum_cycle_time(circuit, delays)

    @pytest.mark.parametrize("kill_at", [1, 2, 3])
    def test_kills_yield_serial_results(self, widened, serial, kill_at):
        # kill_at=1 hits the very first task of every worker (including
        # respawned ones — the permanently failing pool); larger values
        # land mid-sweep and on the last windows a worker sees.
        circuit, delays = widened
        with inject_faults(kill_worker_at=kill_at):
            disturbed = minimum_cycle_time(
                circuit, delays, MctOptions(retry_policy=FAST), jobs=2
            )
        assert_equivalent(serial, disturbed)
        assert disturbed.supervision is not None

    def test_exhausted_retries_fall_back_to_serial(self, widened, serial):
        # kill_at=1 with no retries: the pool can never finish a task,
        # so every decided window must go through quarantine + the
        # in-process serial fallback — and the sweep must still finish
        # with the serial answer instead of aborting.
        circuit, delays = widened
        with inject_faults(kill_worker_at=1):
            disturbed = minimum_cycle_time(
                circuit, delays, MctOptions(retry_policy=NO_RETRY), jobs=2
            )
        assert_equivalent(serial, disturbed)
        decided = [r for r in disturbed.candidates if r.status != "steady"]
        assert decided
        assert all(r.quarantined for r in decided)
        assert disturbed.supervision.quarantined == len(decided)
        assert disturbed.supervision.crashes >= len(decided)
        # decisions_run now counts the parent's fallback contexts.
        assert disturbed.decisions_run >= len(decided)

    def test_undisturbed_records_report_single_attempt(self, widened):
        circuit, delays = widened
        result = minimum_cycle_time(circuit, delays, jobs=2)
        assert all(r.attempts == 1 for r in result.candidates)
        assert not any(r.quarantined for r in result.candidates)
        assert result.supervision is not None
        assert result.supervision.crashes == 0

    def test_checkpoints_interchangeable_under_kills(self):
        # A serially produced checkpoint resumes inside a kill-injected
        # parallel sweep and still lands on the uninterrupted answer.
        circuit, delays = paper_example2()
        partial = minimum_cycle_time(
            circuit, delays, MctOptions(work_budget=120), jobs=2
        )
        assert partial.checkpoint is not None
        baseline = minimum_cycle_time(circuit, delays)
        with inject_faults(kill_worker_at=1):
            resumed = minimum_cycle_time(
                circuit,
                delays,
                MctOptions(retry_policy=NO_RETRY),
                resume_from=partial.checkpoint,
                jobs=2,
            )
        assert resumed.mct_upper_bound == baseline.mct_upper_bound
        assert candidate_keys(resumed) == candidate_keys(baseline)

    def test_checkpoint_roundtrips_attempt_telemetry(self, widened):
        from repro.mct.engine import CandidateRecord

        record = CandidateRecord(
            Fraction(5, 2), "pass", 2, 0.25, "exact", 17,
            attempts=3, quarantined=True,
        )
        ckpt = SweepCheckpoint(
            circuit_name="x", L=Fraction(5), last_tau=Fraction(5, 2),
            records=(record,),
        )
        loaded = SweepCheckpoint.from_json(ckpt.to_json())
        assert loaded.records[0].attempts == 3
        assert loaded.records[0].quarantined is True
        # Old checkpoints (no telemetry fields) still load.
        data = ckpt.to_dict()
        del data["records"][0]["attempts"]
        del data["records"][0]["quarantined"]
        legacy = SweepCheckpoint.from_dict(data)
        assert legacy.records[0].attempts == 1
        assert legacy.records[0].quarantined is False


# ----------------------------------------------------------------------
# Operator interruption (satellite: Ctrl-C / SIGTERM -> checkpoint)
# ----------------------------------------------------------------------
class TestOperatorInterrupt:
    def test_serial_interrupt_checkpoints_and_resumes(self, monkeypatch):
        import repro.mct.engine as engine

        circuit, delays = paper_example2()
        delays = delays.widen(Fraction(9, 10))
        baseline = minimum_cycle_time(circuit, delays)
        real = engine.decide_window
        calls = {"n": 0}

        def interrupt_on_third(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 3:
                raise KeyboardInterrupt
            return real(*args, **kwargs)

        monkeypatch.setattr(engine, "decide_window", interrupt_on_third)
        result = minimum_cycle_time(circuit, delays)
        monkeypatch.undo()
        assert result.cancelled
        assert result.interrupted
        assert result.checkpoint is not None
        assert len(result.checkpoint.records) > 0
        resumed = minimum_cycle_time(
            circuit, delays, resume_from=result.checkpoint
        )
        assert resumed.mct_upper_bound == baseline.mct_upper_bound
        assert candidate_keys(resumed) == candidate_keys(baseline)

    def test_parallel_interrupt_checkpoints_and_resumes(self, monkeypatch):
        from repro.parallel import windows

        circuit, delays = paper_example2()
        delays = delays.widen(Fraction(9, 10))
        baseline = minimum_cycle_time(circuit, delays)
        real = windows.WindowDecider.result
        calls = {"n": 0}

        def interrupt_on_second(self, handle):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt
            return real(self, handle)

        monkeypatch.setattr(windows.WindowDecider, "result", interrupt_on_second)
        result = minimum_cycle_time(circuit, delays, jobs=2)
        monkeypatch.undo()
        assert result.cancelled
        assert result.interrupted
        assert result.checkpoint is not None
        resumed = minimum_cycle_time(
            circuit, delays, resume_from=result.checkpoint
        )
        assert resumed.mct_upper_bound == baseline.mct_upper_bound
        assert candidate_keys(resumed) == candidate_keys(baseline)

    def test_sigterm_is_delivered_as_keyboard_interrupt(self):
        from repro.cli import _sigterm_as_interrupt

        before = signal.getsignal(signal.SIGTERM)
        with pytest.raises(KeyboardInterrupt):
            with _sigterm_as_interrupt():
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(1)  # give the signal a bytecode boundary
        assert signal.getsignal(signal.SIGTERM) == before


# ----------------------------------------------------------------------
# Checkpoint loading (satellite: no tracebacks on bad files)
# ----------------------------------------------------------------------
class TestCheckpointLoad:
    def good_json(self):
        circuit, delays = paper_example2()
        partial = minimum_cycle_time(
            circuit, delays, MctOptions(work_budget=120)
        )
        assert partial.checkpoint is not None
        return partial.checkpoint.to_json()

    @pytest.mark.parametrize(
        "content",
        [
            "not json at all {{",
            '{"version": 1, "circuit": "x"',  # truncated mid-object
            "[1, 2, 3]",  # JSON, but not an object
            '{"circuit": "x"}',  # missing version
            '{"version": 99, "circuit": "x"}',  # unknown version
            '{"version": 1, "circuit": "x", "L": "not/a/rational"}',
        ],
        ids=["garbage", "truncated", "array", "no-version", "bad-version",
             "bad-rational"],
    )
    def test_bad_files_raise_checkpoint_error_with_path(
        self, tmp_path, content
    ):
        path = tmp_path / "ckpt.json"
        path.write_text(content)
        with pytest.raises(CheckpointError) as excinfo:
            SweepCheckpoint.load(path)
        assert str(path) in str(excinfo.value)

    def test_truncated_real_checkpoint(self, tmp_path):
        text = self.good_json()
        path = tmp_path / "ckpt.json"
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointError) as excinfo:
            SweepCheckpoint.load(path)
        assert str(path) in str(excinfo.value)

    def test_binary_file(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_bytes(b"\x00\x93\xff\xfe" * 64)
        with pytest.raises(CheckpointError) as excinfo:
            SweepCheckpoint.load(path)
        assert str(path) in str(excinfo.value)

    def test_missing_file(self, tmp_path):
        path = tmp_path / "nope.json"
        with pytest.raises(CheckpointError) as excinfo:
            SweepCheckpoint.load(path)
        assert str(path) in str(excinfo.value)

    def test_checkpoint_error_is_an_analysis_error(self):
        # Callers that already turn AnalysisError into clean CLI
        # diagnostics handle bad checkpoints for free.
        assert issubclass(CheckpointError, AnalysisError)

    def test_good_file_still_loads(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(self.good_json())
        loaded = SweepCheckpoint.load(path)
        assert loaded.records


# ----------------------------------------------------------------------
# Sharded suite under kills
# ----------------------------------------------------------------------
class TestSuiteSupervision:
    @staticmethod
    def row_key(row):
        return (
            row.name,
            row.flags,
            row.topological,
            row.floating,
            row.transition,
            row.mct,
            row.mct_partial,
            row.mct_rung,
        )

    def test_quarantined_rows_match_serial(self):
        from repro.report.harness import run_suite

        cases = [c for c in suite_cases() if c.name in ("g444", "g526")]
        serial = run_suite(cases=cases, include_s27=False)
        with inject_faults(kill_worker_at=1):
            rows, workers = run_suite_sharded(
                cases=cases, include_s27=False, jobs=2, retry=NO_RETRY
            )
        assert [self.row_key(r) for r in rows] == [
            self.row_key(r) for r in serial
        ]
        # Every row went through the parent-side fallback.
        assert sum(w.quarantined for w in workers) == len(rows)
        assert sum(w.tasks for w in workers) == len(rows)
        parent = [w for w in workers if w.pid == os.getpid()]
        assert parent and parent[0].quarantined == len(rows)

    def test_mid_stream_kill_recovers(self):
        from repro.report.harness import run_suite

        cases = [c for c in suite_cases() if c.name in ("g444", "g526")]
        serial = run_suite(cases=cases, include_s27=True)
        # Three tasks on two workers: some worker's second task dies;
        # the supervisor rebuilds and the rows still come out serial.
        with inject_faults(kill_worker_at=2):
            rows, workers = run_suite_sharded(
                cases=cases, include_s27=True, jobs=2, retry=FAST
            )
        assert [self.row_key(r) for r in rows] == [
            self.row_key(r) for r in serial
        ]
        assert sum(w.tasks for w in workers) == len(rows)

    def test_worker_stats_schema_additive(self):
        cases = [c for c in suite_cases() if c.name == "g444"]
        _, workers = run_suite_sharded(cases=cases, include_s27=False, jobs=2)
        for worker in workers:
            d = worker.as_dict()
            assert {"pid", "tasks", "wall_seconds", "bdd",
                    "retries", "quarantined"} <= set(d)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCliSupervision:
    @pytest.fixture()
    def bench(self, tmp_path):
        from repro.benchgen import S27_BENCH

        path = tmp_path / "s27.bench"
        path.write_text(S27_BENCH)
        return path

    def test_analyze_survives_worker_kills(self, bench, capsys):
        from repro.cli import main

        rc = main([
            "analyze", str(bench), "--jobs", "2",
            "--kill-worker-at", "1", "--max-retries", "0", "--stats",
        ])
        out = capsys.readouterr().out
        assert rc == 0  # completed: a worker kill is not a partial result
        assert "minimum cycle time: 11.5" in out
        assert "supervision" in out
        assert "quarantine" in out

    def test_analyze_resume_bad_checkpoint_exits_one(
        self, bench, tmp_path, capsys
    ):
        from repro.cli import main

        bad = tmp_path / "ckpt.json"
        bad.write_text("definitely not json")
        rc = main(["analyze", str(bench), "--resume", str(bad)])
        err = capsys.readouterr().err
        assert rc == 1
        assert "cannot resume" in err
        assert str(bad) in err

    def test_analyze_rejects_bad_retry_flags(self, bench, capsys):
        from repro.cli import main

        assert main(["analyze", str(bench), "--max-retries", "-1"]) == 1
        assert "--max-retries" in capsys.readouterr().err
        assert main(["analyze", str(bench), "--task-timeout", "0"]) == 1
        assert "--task-timeout" in capsys.readouterr().err
        assert main(["analyze", str(bench), "--kill-worker-at", "-2"]) == 1
        assert "--kill-worker-at" in capsys.readouterr().err

    def test_kill_at_zero_never_fires(self, bench, capsys):
        from repro.cli import main

        rc = main([
            "analyze", str(bench), "--jobs", "2", "--kill-worker-at", "0",
        ])
        assert rc == 0
        assert "minimum cycle time: 11.5" in capsys.readouterr().out

    def test_table_kills_match_serial_output(self, capsys):
        from repro.cli import main

        argv = ["table", "--rows", "g444,g526", "--no-s27", "--no-cpu"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + [
            "--jobs", "2", "--kill-worker-at", "1", "--max-retries", "0",
        ]) == 0
        chaos_out = capsys.readouterr().out
        assert chaos_out == serial_out
