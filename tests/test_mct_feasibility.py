"""Unit tests for the interval algebra (Def. 4) and feasibility."""

import random
from fractions import Fraction

from repro.logic import Interval
from repro.mct.discretize import TimedLeaf
from repro.mct.feasibility import (
    age_tau_range,
    feasible_tau_range,
    intersect_sets,
    merge_ranges,
    options_tau_set,
    sigma_is_feasible,
    sigma_sup_tau,
    tau_set_contains,
)


def F(x) -> Fraction:
    return Fraction(x)


class TestAgeTauRange:
    def test_age_one_unbounded_above(self):
        assert age_tau_range(Interval.of(2, 3), 1) == (F(2), None)

    def test_age_two(self):
        # tau >= klo/2 and tau < khi/1
        assert age_tau_range(Interval.of(2, 3), 2) == (F(1), F(3))

    def test_age_zero_only_for_zero_delay(self):
        assert age_tau_range(Interval.of(0, 0), 0) == (F(0), None)
        assert age_tau_range(Interval.of(1, 2), 0) is None

    def test_age_zero_range_excludes_zero_period(self):
        # The (0, None) range is open at the bottom by module
        # convention: tau = 0 is not a clock period, so a zero-delay
        # leaf at age 0 must not admit it.
        tau_set = [age_tau_range(Interval.of(0, 0), 0)]
        assert not tau_set_contains(tau_set, F(0))
        assert tau_set_contains(tau_set, Fraction(1, 10**9))
        assert tau_set_contains(tau_set, F(5))

    def test_negative_age(self):
        assert age_tau_range(Interval.of(1, 2), -1) is None

    def test_empty_range(self):
        # Point delay 4 at age 5: tau in [4/5, 4/4) nonempty; at a very
        # large age with a tight interval it can still be nonempty —
        # construct an actually empty one: lo/age >= hi/(age-1).
        assert age_tau_range(Interval.of(8, 8), 1) == (F(8), None)
        assert age_tau_range(Interval.of(8, 9), 9) == (
            Fraction(8, 9),
            Fraction(9, 8),
        )
        assert age_tau_range(Interval.of(9, 9), 1) == (F(9), None)

    def test_consecutive_ranges_touch(self):
        one = age_tau_range(Interval.point(6), 2)   # [3, 6)
        two = age_tau_range(Interval.point(6), 3)   # [2, 3)
        assert one == (F(3), F(6))
        assert two == (F(2), F(3))


class TestRangeAlgebra:
    def test_merge_overlapping(self):
        assert merge_ranges([(F(1), F(3)), (F(2), F(5))]) == [(F(1), F(5))]

    def test_merge_touching(self):
        assert merge_ranges([(F(2), F(3)), (F(1), F(2))]) == [(F(1), F(3))]

    def test_merge_disjoint(self):
        out = merge_ranges([(F(5), None), (F(1), F(2))])
        assert out == [(F(1), F(2)), (F(5), None)]

    def test_merge_unbounded_swallows(self):
        assert merge_ranges([(F(1), None), (F(3), F(4))]) == [(F(1), None)]

    def test_intersect_basic(self):
        a = [(F(1), F(4))]
        b = [(F(2), F(6))]
        assert intersect_sets(a, b) == [(F(2), F(4))]

    def test_intersect_disjoint(self):
        assert intersect_sets([(F(1), F(2))], [(F(3), F(4))]) == []

    def test_intersect_with_unbounded(self):
        assert intersect_sets([(F(1), None)], [(F(3), F(5))]) == [(F(3), F(5))]

    def test_intersect_multi_segment(self):
        a = [(F(0), F(2)), (F(4), F(6))]
        b = [(F(1), F(5))]
        assert intersect_sets(a, b) == [(F(1), F(2)), (F(4), F(5))]

    def test_options_union_contiguous(self):
        # ages {2,3} of point delay 6: [2,3) ∪ [3,6) = [2,6)
        assert options_tau_set(Interval.point(6), (2, 3)) == [(F(2), F(6))]

    def test_merge_touching_half_open(self):
        # [a,b) + [b,c) is exactly [a,c): the half-open convention
        # leaves no gap and no double cover at b.
        assert merge_ranges([(F(1), F(2)), (F(2), F(3))]) == [(F(1), F(3))]
        out = merge_ranges([(F(1), F(2)), (F(2), F(3)), (F(3), None)])
        assert out == [(F(1), None)]

    def test_merge_equal_finite_endpoints(self):
        assert merge_ranges([(F(1), F(3)), (F(1), F(3))]) == [(F(1), F(3))]
        # Same lo, different hi: the wider one wins.
        assert merge_ranges([(F(1), F(2)), (F(1), F(5))]) == [(F(1), F(5))]
        # Same hi, different lo: still one range.
        assert merge_ranges([(F(2), F(5)), (F(1), F(5))]) == [(F(1), F(5))]

    def test_merge_duplicates_and_nested(self):
        ranges = [(F(1), F(4)), (F(2), F(3)), (F(1), F(4)), (F(2), F(3))]
        assert merge_ranges(ranges) == [(F(1), F(4))]

    def test_merge_same_lo_bounded_and_unbounded(self):
        # Sort must put the unbounded range after bounded ones at the
        # same lo so the sweep extends instead of truncating.
        assert merge_ranges([(F(1), None), (F(1), F(2))]) == [(F(1), None)]
        assert merge_ranges([(F(1), F(2)), (F(1), None)]) == [(F(1), None)]

    def test_intersect_touching_is_empty(self):
        # [1,2) ∩ [2,3) = ∅ under the half-open convention.
        assert intersect_sets([(F(1), F(2))], [(F(2), F(3))]) == []

    def test_intersect_identical_sets(self):
        a = [(F(1), F(2)), (F(4), None)]
        assert intersect_sets(a, a) == a

    def test_intersect_both_unbounded(self):
        assert intersect_sets([(F(1), None)], [(F(3), None)]) == [(F(3), None)]

    def test_intersect_unbounded_with_multi_segment(self):
        a = [(F(2), None)]
        b = [(F(0), F(1)), (F(3), F(4)), (F(5), None)]
        assert intersect_sets(a, b) == [(F(3), F(4)), (F(5), None)]

    def test_intersect_randomized_against_membership(self):
        # Cross-check the sweep-line intersection against brute-force
        # rational membership sampling: for every probe point, tau is
        # in the intersection iff it is in both operands.
        rng = random.Random(0xDAC94)

        def random_set():
            ranges = []
            for _ in range(rng.randint(0, 4)):
                lo = Fraction(rng.randint(0, 40), rng.randint(1, 8))
                if rng.random() < 0.2:
                    ranges.append((lo, None))
                else:
                    hi = lo + Fraction(rng.randint(1, 30), rng.randint(1, 8))
                    ranges.append((lo, hi))
            return merge_ranges(ranges)

        for _ in range(200):
            a, b = random_set(), random_set()
            out = intersect_sets(a, b)
            # The result must itself be normalized (sorted, disjoint).
            assert out == merge_ranges(out)
            probes = {Fraction(n, d) for n in range(0, 61, 3)
                      for d in (1, 2, 7)}
            # Probe all endpoints too (the half-open boundaries).
            for tau_set in (a, b, out):
                for lo, hi in tau_set:
                    probes.add(lo)
                    if hi is not None:
                        probes.add(hi)
            for tau in probes:
                if tau <= 0:
                    continue
                expected = tau_set_contains(a, tau) and tau_set_contains(
                    b, tau
                )
                assert tau_set_contains(out, tau) == expected, (
                    a, b, out, tau
                )


class TestSigmaFeasibility:
    def setup_method(self):
        self.a = TimedLeaf("x", Interval.of(4, 5))
        self.b = TimedLeaf("y", Interval.of(2, 3))

    def test_feasible_combination(self):
        sigma = {self.a: (2,), self.b: (1,)}
        # a@2: tau in [2, 5); b@1: tau in [2, inf)
        assert feasible_tau_range(sigma) == [(F(2), F(5))]
        assert sigma_is_feasible(sigma)
        assert sigma_sup_tau(sigma) == F(5)

    def test_window_clipping(self):
        sigma = {self.a: (2,), self.b: (1,)}
        window = (F(2), F(3))
        assert feasible_tau_range(sigma, window) == [(F(2), F(3))]
        assert sigma_sup_tau(sigma, window) == F(3)

    def test_infeasible_combination(self):
        # a@1 needs tau >= 4; b@2 needs tau < 3.
        sigma = {self.a: (1,), self.b: (2,)}
        assert not sigma_is_feasible(sigma)
        assert sigma_sup_tau(sigma) is None

    def test_option_sets_widen_feasibility(self):
        sigma = {self.a: (1, 2), self.b: (1, 2)}
        ranges = feasible_tau_range(sigma)
        # Union over options: tau in [2, inf) (age-1 side is unbounded).
        assert ranges == [(F(2), None)]
        assert sigma_sup_tau(sigma, (F(2), F(9))) == F(9)

    def test_unbounded_sup_capped_by_window(self):
        sigma = {self.b: (1,)}
        assert sigma_sup_tau(sigma) is None  # genuinely unbounded
        assert sigma_sup_tau(sigma, (F(2), F(7))) == F(7)

    def test_empty_sigma_is_everything(self):
        assert feasible_tau_range({}) == [(F(0), None)]
