"""Unit tests for delay annotations, intervals, and delay models."""

from fractions import Fraction

import pytest

from repro.errors import DelayModelError
from repro.logic import (
    Circuit,
    DelayMap,
    Gate,
    GateType,
    Interval,
    Latch,
    PinTiming,
    fanout_loaded_delays,
    typed_delays,
    unit_delays,
    widen_to_intervals,
)
from repro.logic.delays import ZERO, as_fraction


@pytest.fixture()
def circuit():
    gates = [
        Gate("n1", GateType.AND, ("a", "q")),
        Gate("n2", GateType.NOT, ("n1",)),
    ]
    return Circuit("c", ["a"], ["n2"], gates, [Latch("q", "n2")])


class TestFraction:
    def test_float_uses_decimal_string(self):
        assert as_fraction(0.1) == Fraction(1, 10)
        assert as_fraction(1.5) == Fraction(3, 2)

    def test_passthrough(self):
        assert as_fraction(Fraction(2, 3)) == Fraction(2, 3)
        assert as_fraction(3) == Fraction(3)
        assert as_fraction("7/2") == Fraction(7, 2)


class TestInterval:
    def test_point(self):
        iv = Interval.point(2.5)
        assert iv.lo == iv.hi == Fraction(5, 2)
        assert iv.is_point

    def test_ordering_violation(self):
        with pytest.raises(DelayModelError):
            Interval.of(2, 1)

    def test_negative_allowed_for_effective_delays(self):
        # Plain intervals may go negative (phase-shifted effective path
        # delays); physical pin/latch delays are checked by DelayMap.
        assert Interval.of(-1, 1).lo == -1

    def test_negative_pin_delay_rejected_by_delaymap(self, circuit):
        pins = {
            (net, pin): PinTiming.symmetric(1)
            for net, gate in circuit.gates.items()
            for pin in range(len(gate.inputs))
        }
        pins[("n1", 0)] = PinTiming.symmetric(Interval.of(-1, 1))
        with pytest.raises(DelayModelError):
            DelayMap(circuit, pins)

    def test_shifted(self):
        assert Interval.of(1, 2).shifted(-3) == Interval.of(-2, -1)

    def test_addition(self):
        assert Interval.of(1, 2) + Interval.of(3, 5) == Interval.of(4, 7)
        assert Interval.of(1, 2) + ZERO == Interval.of(1, 2)

    def test_scale(self):
        assert Interval.point(10).scale(Fraction(9, 10), 1) == Interval.of(9, 10)

    def test_repr(self):
        assert "Interval(2" in repr(Interval.point(2))
        assert repr(Interval.of(1, 2)) == "Interval(1, 2)"


class TestPinTiming:
    def test_symmetric(self):
        t = PinTiming.symmetric(2)
        assert t.is_symmetric
        assert t.envelope == Interval.point(2)

    def test_asymmetric(self):
        t = PinTiming.asym(rise=1, fall=2)
        assert not t.is_symmetric
        assert t.envelope == Interval.of(1, 2)

    def test_symmetric_accepts_interval(self):
        t = PinTiming.symmetric(Interval.of(1, 2))
        assert t.rise == Interval.of(1, 2)


class TestDelayMap:
    def test_unit_delays(self, circuit):
        d = unit_delays(circuit)
        assert d.pin("n1", 0) == PinTiming.symmetric(1)
        assert d.pin("n1", 1) == PinTiming.symmetric(1)
        assert d.latch("q") == Interval.point(0)
        assert d.is_fixed
        assert not d.has_asymmetric_pins

    def test_every_pin_must_be_covered(self, circuit):
        with pytest.raises(DelayModelError):
            DelayMap(circuit, {("n1", 0): PinTiming.symmetric(1)})

    def test_unknown_gate_rejected(self, circuit):
        pins = {
            (net, pin): PinTiming.symmetric(1)
            for net, gate in circuit.gates.items()
            for pin in range(len(gate.inputs))
        }
        pins[("ghost", 0)] = PinTiming.symmetric(1)
        with pytest.raises(DelayModelError):
            DelayMap(circuit, pins)

    def test_unknown_pin_rejected(self, circuit):
        pins = {
            (net, pin): PinTiming.symmetric(1)
            for net, gate in circuit.gates.items()
            for pin in range(len(gate.inputs))
        }
        pins[("n2", 5)] = PinTiming.symmetric(1)
        with pytest.raises(DelayModelError):
            DelayMap(circuit, pins)

    def test_unknown_latch_rejected(self, circuit):
        with pytest.raises(DelayModelError):
            unit_delays(circuit)  # fine
            pins = {
                (net, pin): PinTiming.symmetric(1)
                for net, gate in circuit.gates.items()
                for pin in range(len(gate.inputs))
            }
            DelayMap(circuit, pins, latch_delay={"ghost": Interval.point(1)})

    def test_typed_delays(self, circuit):
        d = typed_delays(circuit)
        assert d.pin("n1", 0).rise == Interval.point(2)   # AND
        assert d.pin("n2", 0).rise == Interval.point(1)   # NOT

    def test_typed_delays_override(self, circuit):
        d = typed_delays(circuit, table={GateType.AND: 7})
        assert d.pin("n1", 0).rise == Interval.point(7)

    def test_fanout_loaded(self, circuit):
        d = fanout_loaded_delays(circuit)
        # n1 feeds only n2 -> fanout 1; AND nominal 2 + 0.2
        assert d.pin("n1", 0).rise == Interval.point(Fraction(11, 5))
        # n2 feeds the latch -> fanout 1; NOT nominal 1 + 0.2
        assert d.pin("n2", 0).rise == Interval.point(Fraction(6, 5))

    def test_widen_reproduces_paper_setting(self, circuit):
        d = widen_to_intervals(unit_delays(circuit))
        assert d.pin("n1", 0).rise == Interval.of(Fraction(9, 10), 1)
        assert not d.is_fixed

    def test_at_max_collapses(self, circuit):
        d = widen_to_intervals(unit_delays(circuit)).at_max()
        assert d.is_fixed
        assert d.pin("n1", 0).rise == Interval.point(1)

    def test_setup_hold(self, circuit):
        d = unit_delays(circuit).with_setup_hold(setup=0.5, hold=0.25)
        assert d.setup == Fraction(1, 2)
        assert d.hold == Fraction(1, 4)

    def test_latch_delay_propagates(self, circuit):
        pins = {
            (net, pin): PinTiming.symmetric(1)
            for net, gate in circuit.gates.items()
            for pin in range(len(gate.inputs))
        }
        d = DelayMap(circuit, pins, latch_delay={"q": Interval.point(2)})
        assert d.latch("q") == Interval.point(2)
