"""Metamorphic properties: invariances every analysis must respect."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.benchgen import prefix_circuit
from repro.benchgen.generators import random_fsm
from repro.delay import floating_delay, longest_topological_delay, transition_delay
from repro.mct import MctOptions, minimum_cycle_time
from repro.timed.tbf import and_, discretize_literals, format_recurrence, lit, or_


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_analysis_is_name_independent(seed):
    """Renaming every net must not move any number."""
    circuit, delays = random_fsm(seed, n_inputs=1, n_latches=2, n_gates=8)
    renamed, rdelays = prefix_circuit(circuit, delays, "zz_")
    assert longest_topological_delay(circuit, delays) == \
        longest_topological_delay(renamed, rdelays)
    assert floating_delay(circuit, delays).delay == \
        floating_delay(renamed, rdelays).delay
    a = minimum_cycle_time(circuit, delays, MctOptions(max_age=6))
    b = minimum_cycle_time(renamed, rdelays, MctOptions(max_age=6))
    assert a.mct_upper_bound == b.mct_upper_bound
    assert a.failure_found == b.failure_found


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from([Fraction(2), Fraction(3), Fraction(1, 2), Fraction(7, 5)]),
)
def test_analysis_scales_linearly_with_delays(seed, factor):
    """Time has no absolute unit: scaling every delay by c scales every
    delay-valued answer by c."""
    circuit, delays = random_fsm(seed, n_inputs=1, n_latches=2, n_gates=8)
    scaled = delays.widen(factor, factor)  # multiply lo and hi by c
    assert longest_topological_delay(circuit, scaled) == \
        factor * longest_topological_delay(circuit, delays)
    assert floating_delay(circuit, scaled).delay == \
        factor * floating_delay(circuit, delays).delay
    assert transition_delay(circuit, scaled).delay == \
        factor * transition_delay(circuit, delays).delay
    a = minimum_cycle_time(circuit, delays, MctOptions(max_age=6))
    b = minimum_cycle_time(circuit, scaled, MctOptions(max_age=6))
    if a.failure_found:
        assert b.failure_found
        assert b.mct_upper_bound == factor * a.mct_upper_bound


class TestRecurrencePrinter:
    def example2(self):
        return or_(
            and_(lit("f", 1.5), ~lit("f", 4), lit("f", 5)),
            ~lit("f", 2),
        )

    def test_ages_at_published_taus(self):
        expr = self.example2()
        at4 = discretize_literals(expr, 4)
        assert at4 == {
            ("f", Fraction(3, 2)): 1,
            ("f", Fraction(2)): 1,
            ("f", Fraction(4)): 1,
            ("f", Fraction(5)): 2,
        }
        at2 = discretize_literals(expr, 2)
        assert at2[("f", Fraction(5))] == 3

    def test_paper_rendering(self):
        expr = self.example2()
        # τ = 2.5: "g(n) = g(n-1)g'(n-2)g(n-2) + g'(n-1)" in the paper.
        text = format_recurrence(expr, Fraction(5, 2))
        assert text == "g(n) = g(n-1)·g(n-2)'·g(n-2) + g(n-1)'"

    def test_steady_rendering(self):
        expr = self.example2()
        text = format_recurrence(expr, Fraction(5))
        assert text == "g(n) = g(n-1)·g(n-1)'·g(n-1) + g(n-1)'"
