"""Tests for the timed-expansion engine (Fig. 2 circuit as the anchor)."""

from fractions import Fraction

import pytest

from repro.bdd import BddManager
from repro.errors import Budget, ResourceBudgetExceeded, TbfError, AnalysisError
from repro.logic import Circuit, DelayMap, Gate, GateType, Interval, Latch, PinTiming
from repro.logic.delays import ZERO
from repro.timed import (
    CombinationalBdd,
    LeafInstance,
    TimedExpander,
    collect_leaf_instances,
)
from repro.timed.expansion import combinational_bdd


def fig2_circuit() -> tuple[Circuit, DelayMap]:
    """The paper's Fig. 2: g = (c·d·e) + b with inverters/buffers off f.

    Gate delays (folded into each gate's input pins):
      c = BUF(f)  delay 1.5      d = NOT(f) delay 4
      e = BUF(f)  delay 5        b = NOT(f) delay 2
      a = AND(c, d, e) delay 0   g = OR(a, b) delay 0
    The flattened TBF is g(t) = f(t-1.5)·f'(t-4)·f(t-5) + f'(t-2).
    """
    gates = [
        Gate("c", GateType.BUF, ("f",)),
        Gate("d", GateType.NOT, ("f",)),
        Gate("e", GateType.BUF, ("f",)),
        Gate("b", GateType.NOT, ("f",)),
        Gate("a", GateType.AND, ("c", "d", "e")),
        Gate("g", GateType.OR, ("a", "b")),
    ]
    circuit = Circuit("fig2", [], ["g"], gates, [Latch("f", "g")])
    pins = {
        ("c", 0): PinTiming.symmetric(1.5),
        ("d", 0): PinTiming.symmetric(4),
        ("e", 0): PinTiming.symmetric(5),
        ("b", 0): PinTiming.symmetric(2),
        ("a", 0): PinTiming.symmetric(0),
        ("a", 1): PinTiming.symmetric(0),
        ("a", 2): PinTiming.symmetric(0),
        ("g", 0): PinTiming.symmetric(0),
        ("g", 1): PinTiming.symmetric(0),
    }
    return circuit, DelayMap(circuit, pins)


class TestCollectLeafInstances:
    def test_fig2_path_delays(self):
        circuit, delays = fig2_circuit()
        instances = collect_leaf_instances(circuit, delays, ["g"])["g"]
        offsets = sorted(inst.offset.lo for inst in instances)
        assert offsets == [Fraction(3, 2), 2, 4, 5]
        assert all(inst.leaf == "f" for inst in instances)
        assert all(inst.offset.is_point for inst in instances)

    def test_extra_offset_shifts_everything(self):
        circuit, delays = fig2_circuit()
        instances = collect_leaf_instances(
            circuit, delays, ["g"], extra=Interval.point(1)
        )["g"]
        offsets = sorted(inst.offset.lo for inst in instances)
        assert offsets == [Fraction(5, 2), 3, 5, 6]

    def test_interval_delays_produce_interval_offsets(self):
        circuit, delays = fig2_circuit()
        widened = delays.widen(Fraction(9, 10))
        instances = collect_leaf_instances(circuit, widened, ["g"])["g"]
        longest = max(instances, key=lambda i: i.offset.hi)
        assert longest.offset == Interval.of(Fraction(9, 2), 5)

    def test_budget_enforced(self):
        circuit, delays = fig2_circuit()
        with pytest.raises(ResourceBudgetExceeded):
            collect_leaf_instances(
                circuit, delays, ["g"], budget=Budget(limit=3, resource="expansion")
            )

    def test_leaf_root(self):
        circuit, delays = fig2_circuit()
        instances = collect_leaf_instances(circuit, delays, ["f"])["f"]
        assert instances == {LeafInstance("f", ZERO)}

    def test_foreign_delay_map_rejected(self):
        circuit, delays = fig2_circuit()
        other_circuit, _ = fig2_circuit()
        with pytest.raises(AnalysisError):
            collect_leaf_instances(other_circuit, delays, ["g"])


class TestTimedExpander:
    def test_fig2_flattened_tbf(self):
        """Expansion must yield exactly f(t-1.5)·f'(t-4)·f(t-5) + f'(t-2)."""
        circuit, delays = fig2_circuit()
        mgr = BddManager()
        expander = TimedExpander(circuit, delays, mgr)

        seen: list[LeafInstance] = []

        def resolver(instance: LeafInstance) -> object:
            seen.append(instance)
            return mgr.var(f"f@{instance.offset.lo}")

        g = expander.expand("g", resolver)
        f15 = mgr.var("f@3/2")
        f2 = mgr.var("f@2")
        f4 = mgr.var("f@4")
        f5 = mgr.var("f@5")
        assert g == (f15 & ~f4 & f5) | ~f2
        assert len(seen) == 4  # one resolver call per distinct offset

    def test_expansion_memoizes_shared_offsets(self):
        # Two parallel unit-delay buffers into an AND: both pins see the
        # same (leaf, offset) and the resolver runs once.
        gates = [
            Gate("b1", GateType.BUF, ("x",)),
            Gate("b2", GateType.BUF, ("x",)),
            Gate("y", GateType.AND, ("b1", "b2")),
        ]
        circuit = Circuit("shared", ["x"], ["y"], gates)
        pins = {
            ("b1", 0): PinTiming.symmetric(1),
            ("b2", 0): PinTiming.symmetric(1),
            ("y", 0): PinTiming.symmetric(1),
            ("y", 1): PinTiming.symmetric(1),
        }
        delays = DelayMap(circuit, pins)
        mgr = BddManager()
        calls = []

        def resolver(instance):
            calls.append(instance)
            return mgr.var("x2")

        out = TimedExpander(circuit, delays, mgr).expand("y", resolver)
        assert len(calls) == 1
        assert calls[0] == LeafInstance("x", Interval.point(2))
        assert out == mgr.var("x2")

    def test_asymmetric_pin_slow_rise(self):
        # One NOT with rise 3 / fall 1 on its pin: y = (x(t-3)·x(t-1))'.
        gates = [Gate("y", GateType.NOT, ("x",))]
        circuit = Circuit("asym", ["x"], ["y"], gates)
        pins = {("y", 0): PinTiming.asym(rise=3, fall=1)}
        delays = DelayMap(circuit, pins)
        mgr = BddManager()

        def resolver(instance):
            return mgr.var(f"x@{instance.offset.lo}")

        y = TimedExpander(circuit, delays, mgr).expand("y", resolver)
        # NOT output rising  <=> input falling; the *pin buffer* has the
        # given rise/fall so the pin value is x(t-3)·x(t-1).
        assert y == ~(mgr.var("x@3") & mgr.var("x@1"))

    def test_asymmetric_pin_slow_fall(self):
        gates = [Gate("y", GateType.BUF, ("x",))]
        circuit = Circuit("asym2", ["x"], ["y"], gates)
        pins = {("y", 0): PinTiming.asym(rise=1, fall=3)}
        delays = DelayMap(circuit, pins)
        mgr = BddManager()

        def resolver(instance):
            return mgr.var(f"x@{instance.offset.lo}")

        y = TimedExpander(circuit, delays, mgr).expand("y", resolver)
        assert y == mgr.var("x@1") | mgr.var("x@3")

    def test_overlapping_asymmetric_intervals_rejected(self):
        gates = [Gate("y", GateType.BUF, ("x",))]
        circuit = Circuit("bad", ["x"], ["y"], gates)
        pins = {
            ("y", 0): PinTiming(
                rise=Interval.of(1, 3), fall=Interval.of(2, 4)
            )
        }
        delays = DelayMap(circuit, pins)
        mgr = BddManager()
        with pytest.raises(TbfError):
            TimedExpander(circuit, delays, mgr).expand(
                "y", lambda inst: mgr.var("v")
            )

    def test_budget_enforced(self):
        circuit, delays = fig2_circuit()
        mgr = BddManager()
        expander = TimedExpander(
            circuit, delays, mgr, budget=Budget(limit=2, resource="expansion")
        )
        with pytest.raises(ResourceBudgetExceeded):
            expander.expand("g", lambda inst: mgr.var("v"))

    def test_deep_chain_no_recursion_error(self):
        # 5000-gate inverter chain: must not hit the recursion limit.
        gates = [Gate("n0", GateType.NOT, ("x",))]
        for i in range(1, 5000):
            gates.append(Gate(f"n{i}", GateType.NOT, (f"n{i-1}",)))
        circuit = Circuit("chain", ["x"], [f"n{4999}"], gates)
        pins = {(g.output, 0): PinTiming.symmetric(1) for g in gates}
        delays = DelayMap(circuit, pins)
        mgr = BddManager()
        out = TimedExpander(circuit, delays, mgr).expand(
            "n4999", lambda inst: mgr.var(f"x@{inst.offset.lo}")
        )
        assert out == mgr.var("x@5000")  # even chain: buffer overall

    def test_deep_chain_collect(self):
        gates = [Gate("n0", GateType.NOT, ("x",))]
        for i in range(1, 3000):
            gates.append(Gate(f"n{i}", GateType.NOT, (f"n{i-1}",)))
        circuit = Circuit("chain", ["x"], ["n2999"], gates)
        pins = {(g.output, 0): PinTiming.symmetric(1) for g in gates}
        delays = DelayMap(circuit, pins)
        instances = collect_leaf_instances(circuit, delays, ["n2999"])["n2999"]
        assert instances == {LeafInstance("x", Interval.point(3000))}


class TestCombinationalBdd:
    def test_simple_cone(self):
        gates = [
            Gate("n1", GateType.AND, ("a", "b")),
            Gate("y", GateType.OR, ("n1", "c")),
        ]
        circuit = Circuit("c", ["a", "b", "c"], ["y"], gates)
        mgr = BddManager()
        leaf_map = {v: mgr.var(v) for v in ["a", "b", "c"]}
        y = combinational_bdd(circuit, "y", leaf_map, mgr)
        assert y == (mgr.var("a") & mgr.var("b")) | mgr.var("c")

    def test_leaf_root_returns_leaf_value(self):
        circuit = Circuit("c", ["a"], ["a"], [])
        mgr = BddManager()
        assert combinational_bdd(circuit, "a", {"a": mgr.var("z")}, mgr) == mgr.var("z")

    def test_missing_leaf_value(self):
        circuit = Circuit("c", ["a"], ["a"], [])
        mgr = BddManager()
        with pytest.raises(AnalysisError):
            combinational_bdd(circuit, "a", {}, mgr)

    def test_wrapper_next_state_and_outputs(self):
        gates = [Gate("d", GateType.NOT, ("q",)), Gate("y", GateType.BUF, ("q",))]
        circuit = Circuit("t", [], ["y"], gates, [Latch("q", "d")])
        mgr = BddManager()
        wrapper = CombinationalBdd(circuit, {"q": mgr.var("q")}, mgr)
        assert wrapper.next_state() == {"q": ~mgr.var("q")}
        assert wrapper.outputs() == {"y": mgr.var("q")}

    def test_wrapper_shares_cache(self):
        gates = [
            Gate("shared", GateType.AND, ("a", "b")),
            Gate("y1", GateType.NOT, ("shared",)),
            Gate("y2", GateType.BUF, ("shared",)),
        ]
        circuit = Circuit("c", ["a", "b"], ["y1", "y2"], gates)
        mgr = BddManager()
        wrapper = CombinationalBdd(circuit, {v: mgr.var(v) for v in "ab"}, mgr)
        outs = wrapper.outputs()
        assert outs["y1"] == ~outs["y2"]
