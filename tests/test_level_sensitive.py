"""Tests for the borrow-free level-sensitive (transparent latch) model."""

from fractions import Fraction

import pytest

from repro.errors import AnalysisError
from repro.logic import Circuit, DelayMap, Gate, GateType, Latch, PinTiming
from repro.mct.level_sensitive import LevelSensitiveResult, level_sensitive_mct

from tests.test_clock_phases import unbalanced_pipe
from tests.test_timed_expansion import fig2_circuit


class TestRange:
    def test_fig2_range(self):
        circuit, delays = fig2_circuit()
        result = level_sensitive_mct(circuit, delays)
        # Edge bound 2.5; shortest path 1.5 -> race limit 1.5 / 0.5 = 3.
        assert result.min_period == Fraction(5, 2)
        assert result.max_period == 3
        assert result.feasible
        assert result.valid_at(Fraction(5, 2))
        assert result.valid_at(3)
        assert not result.valid_at(2)      # below the sequential bound
        assert not result.valid_at(4)      # flush-through race

    def test_duty_trades_the_window(self):
        circuit, delays = fig2_circuit()
        narrow = level_sensitive_mct(circuit, delays, duty=Fraction(1, 4))
        wide = level_sensitive_mct(circuit, delays, duty=Fraction(3, 4))
        # Narrower transparency -> larger race limit.
        assert narrow.max_period == 6
        assert wide.max_period == 2
        assert narrow.feasible
        assert not wide.feasible           # 2 < 2.5: no safe period

    def test_pipe_infeasible_without_padding(self):
        circuit, delays = unbalanced_pipe()
        result = level_sensitive_mct(circuit, delays)
        # Edge bound 6; shortest path is the 2ns stage -> limit 4 < 6.
        assert result.min_period == 6
        assert result.max_period == 4
        assert not result.feasible

    def test_padding_restores_feasibility(self):
        # Pad the fast stage to 4ns: limit 8 >= bound 6.
        gates = [
            Gate("d1", GateType.BUF, ("u",)),
            Gate("d2", GateType.BUF, ("q1",)),
        ]
        circuit = Circuit(
            "pipe", ["u"], ["q2"], gates, [Latch("q1", "d1"), Latch("q2", "d2")]
        )
        pins = {("d1", 0): PinTiming.symmetric(6), ("d2", 0): PinTiming.symmetric(4)}
        delays = DelayMap(circuit, pins)
        result = level_sensitive_mct(circuit, delays)
        assert result.feasible
        assert result.min_period == 6 and result.max_period == 8

    def test_interval_delays_use_worst_case_ends(self):
        circuit, delays = fig2_circuit()
        widened = delays.widen(Fraction(9, 10))
        result = level_sensitive_mct(circuit, widened)
        # Race limit from the *minimum* short path: 0.9·1.5/0.5 = 2.7.
        assert result.max_period == Fraction(27, 10)
        assert result.min_period <= Fraction(5, 2)


class TestGuards:
    def test_bad_duty(self):
        circuit, delays = fig2_circuit()
        for duty in (0, 1, Fraction(3, 2)):
            with pytest.raises(AnalysisError):
                level_sensitive_mct(circuit, delays, duty=duty)

    def test_phases_rejected(self):
        circuit, delays = unbalanced_pipe()
        with pytest.raises(AnalysisError):
            level_sensitive_mct(circuit, delays.with_phases({"q1": 1}))

    def test_combinational_rejected(self):
        circuit = Circuit("c", ["a"], ["y"], [Gate("y", GateType.NOT, ("a",))])
        delays = DelayMap(circuit, {("y", 0): PinTiming.symmetric(1)})
        with pytest.raises(AnalysisError):
            level_sensitive_mct(circuit, delays)

    def test_result_carries_edge_analysis(self):
        circuit, delays = fig2_circuit()
        result = level_sensitive_mct(circuit, delays)
        assert isinstance(result, LevelSensitiveResult)
        assert result.edge_result.failure_found
        assert result.shortest_path == Fraction(3, 2)
