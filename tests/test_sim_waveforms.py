"""Tests for waveform recording and VCD export."""

from fractions import Fraction

import pytest

from repro.errors import AnalysisError
from repro.logic import unit_delays
from repro.sim import ClockedSimulator, waveforms_to_vcd, write_vcd

from tests.test_logic_netlist import make_toggle
from tests.test_timed_expansion import fig2_circuit


@pytest.fixture()
def toggle_trace():
    c = make_toggle()
    sim = ClockedSimulator(c, unit_delays(c))
    return sim.run(4, {"q": False}, [{}] * 4, record_waveforms=True)


class TestWaveforms:
    def test_disabled_by_default(self):
        c = make_toggle()
        sim = ClockedSimulator(c, unit_delays(c))
        trace = sim.run(4, {"q": False}, [{}] * 2)
        assert trace.waveforms is None
        with pytest.raises(AnalysisError):
            trace.value_at("q", 1)

    def test_initial_values_recorded(self, toggle_trace):
        assert toggle_trace.waveforms["q"][0] == (Fraction(0), False)
        # d = NOT q settles to True before the run.
        assert toggle_trace.waveforms["d"][0] == (Fraction(0), True)

    def test_toggle_waveform_shape(self, toggle_trace):
        # q flips at every edge (FF delay 0): 4, 8, 12; the final
        # edge's output update is past the end of the run.
        times = [t for t, _ in toggle_trace.waveforms["q"][1:]]
        assert times == [4, 8, 12]
        values = [v for _, v in toggle_trace.waveforms["q"]]
        assert values == [False, True, False, True]

    def test_value_at_lookup(self, toggle_trace):
        assert toggle_trace.value_at("q", 0) is False
        assert toggle_trace.value_at("q", Fraction(9, 2)) is True
        assert toggle_trace.value_at("q", 4) is True   # closed at change
        assert toggle_trace.value_at("q", 100) is False or True  # defined

    def test_combinational_net_follows(self, toggle_trace):
        # d = NOT q with pin delay 1: changes one unit after q.
        d_times = [t for t, _ in toggle_trace.waveforms["d"][1:]]
        assert d_times == [5, 9, 13]


class TestAsciiArt:
    def test_toggle_render(self, toggle_trace):
        from repro.sim import render_waveforms

        art = render_waveforms(
            toggle_trace.waveforms, nets=["q", "d"], end_time=16, columns=16
        )
        lines = art.splitlines()
        assert lines[0].startswith("q")
        assert lines[1].startswith("d")
        # q starts low for the first 4 units (4 columns), then rises.
        q_cells = lines[0].split()[-1]
        assert q_cells.startswith("____/")
        # Edges present: both rise and fall appear across the window.
        assert "/" in q_cells and "\\" in q_cells

    def test_missing_net_rejected(self, toggle_trace):
        from repro.errors import AnalysisError
        from repro.sim import render_waveforms

        with pytest.raises(AnalysisError):
            render_waveforms(toggle_trace.waveforms, nets=["ghost"])

    def test_empty_rejected(self):
        from repro.errors import AnalysisError
        from repro.sim import render_waveforms

        with pytest.raises(AnalysisError):
            render_waveforms({})

    def test_default_nets_and_end(self, toggle_trace):
        from repro.sim import render_waveforms

        art = render_waveforms(toggle_trace.waveforms, columns=20)
        assert len(art.splitlines()) == len(toggle_trace.waveforms)


class TestVcd:
    def test_header_and_changes(self, toggle_trace):
        text = waveforms_to_vcd(toggle_trace.waveforms, module="toggle")
        assert "$timescale 1ps $end" in text
        assert "$scope module toggle $end" in text
        assert "$var wire 1" in text
        assert "$dumpvars" in text
        assert "#0" in text and "#4" in text

    def test_fractional_times_rescaled(self):
        circuit, delays = fig2_circuit()
        sim = ClockedSimulator(circuit, delays)
        trace = sim.run(Fraction(5, 2), {"f": False}, [{}] * 3,
                        record_waveforms=True)
        text = waveforms_to_vcd(trace.waveforms)
        # 1.5-unit delays on a 2.5 clock need a x2 (or finer) grid.
        assert "time-scale factor" in text
        assert "#5" in text  # 2.5 * 2

    def test_write_vcd_file(self, tmp_path, toggle_trace):
        path = write_vcd(toggle_trace.waveforms, tmp_path / "out.vcd")
        assert path.exists()
        assert path.read_text().startswith("$date")

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            waveforms_to_vcd({})

    def test_ids_unique_for_many_nets(self):
        waveforms = {
            f"n{i}": [(Fraction(0), False)] for i in range(200)
        }
        text = waveforms_to_vcd(waveforms)
        ids = [
            line.split()[3]
            for line in text.splitlines()
            if line.startswith("$var")
        ]
        assert len(ids) == len(set(ids)) == 200
