"""The public API surface: every exported name exists and imports.

Protects downstream users: ``__all__`` across the packages is a
contract, and this test fails the moment an export goes stale.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.bdd",
    "repro.logic",
    "repro.timed",
    "repro.delay",
    "repro.mct",
    "repro.fsm",
    "repro.sim",
    "repro.benchgen",
    "repro.report",
    "repro.synthesis",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_exports_have_docstrings(package):
    module = importlib.import_module(package)
    assert module.__doc__ and module.__doc__.strip()
    for name in module.__all__:
        obj = getattr(module, name)
        if callable(obj) or isinstance(obj, type):
            assert obj.__doc__ and obj.__doc__.strip(), (
                f"{package}.{name} lacks a docstring"
            )


def test_headline_api_from_top_level():
    import repro

    for name in (
        "minimum_cycle_time", "floating_delay", "transition_delay",
        "validity_report", "parse_bench", "optimize_skew",
        "level_sensitive_mct", "find_witness",
    ):
        assert name in repro.__all__


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"
