"""Tests for the report harness, table formatting, and the CLI."""

from fractions import Fraction

import pytest

from repro.benchgen import paper_example2, suite_cases
from repro.cli import main
from repro.logic import unit_delays
from repro.mct import MctOptions
from repro.report import analyze_circuit, render_rows, run_case
from repro.report.tables import format_fraction, format_seconds, format_table


class TestFormatting:
    def test_format_fraction_decimals(self):
        assert format_fraction(Fraction(228, 10)) == "22.8"
        assert format_fraction(Fraction(5)) == "5"
        assert format_fraction(Fraction(5, 2)) == "2.5"
        assert format_fraction(None) == "-"

    def test_format_fraction_nonterminating(self):
        text = format_fraction(Fraction(1, 3))
        assert text.startswith("0.333")

    def test_format_seconds(self):
        assert format_seconds(1.234) == "1.23"
        assert format_seconds(None) == "-"

    def test_format_table_alignment(self):
        table = format_table(
            ["Name", "X"], [["a", "1"], ["bbbb", "22"]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "Name" in lines[1]
        # right-aligned numeric column
        assert lines[3].endswith(" 1")


class TestHarness:
    def test_analyze_circuit_example2(self):
        circuit, delays = paper_example2()
        row = analyze_circuit(circuit, delays)
        assert row.topological == 5
        assert row.floating == 4
        assert row.transition == 2
        assert row.mct == Fraction(5, 2)
        assert not row.mct_partial
        assert row.gates == 6 and row.latches == 1

    def test_comb_budget_produces_dash(self):
        circuit, delays = paper_example2()
        row = analyze_circuit(circuit, delays, comb_budget=2)
        assert row.floating is None
        assert row.transition is None
        assert row.floating_cpu is None

    def test_mct_budget_produces_dash(self):
        circuit, delays = paper_example2()
        row = analyze_circuit(
            circuit, delays, mct_options=MctOptions(work_budget=3)
        )
        assert row.mct is None

    def test_render_rows(self):
        circuit, delays = paper_example2()
        row = analyze_circuit(circuit, delays, flags="‡")
        text = render_rows([row], title="T")
        assert "example2‡" in text
        assert "2.5" in text

    def test_run_case_attaches_paper_numbers(self):
        case = next(c for c in suite_cases() if c.name == "g444")
        row = run_case(case)
        assert row.paper["name"] == "s444"
        assert row.paper["mct"] == row.mct


class TestCli:
    def test_example2_command(self, capsys):
        assert main(["example2"]) == 0
        out = capsys.readouterr().out
        assert "2.5 (paper: 2.5)" in out

    def test_table_subset(self, capsys):
        assert main(["table", "--rows", "g444", "--no-s27", "--fixed"]) == 0
        out = capsys.readouterr().out
        assert "g444" in out and "22.8" in out

    def test_table_unknown_row(self, capsys):
        assert main(["table", "--rows", "nope"]) == 1

    def test_analyze_bench_file(self, tmp_path, capsys):
        from repro.benchgen import S27_BENCH

        path = tmp_path / "s27.bench"
        path.write_text(S27_BENCH)
        assert main(["analyze", str(path), "--delay-model", "unit"]) == 0
        out = capsys.readouterr().out
        assert "minimum cycle time" in out

    def test_simulate_bench_file(self, tmp_path, capsys):
        from repro.benchgen import S27_BENCH

        path = tmp_path / "s27.bench"
        path.write_text(S27_BENCH)
        assert main([
            "simulate", str(path), "--delay-model", "unit",
            "--tau", "100", "--cycles", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "MATCHES" in out

    def test_skew_command(self, tmp_path, capsys):
        path = tmp_path / "pipe.bench"
        path.write_text(
            "INPUT(u)\nOUTPUT(q2)\nq1 = DFF(d1)\nq2 = DFF(d2)\n"
            "d1 = BUFF(u)\nd2 = BUFF(q1)\n"
        )
        # Unit delays: balanced pipe, no gain expected.
        assert main(["skew", str(path), "--delay-model", "unit"]) == 0
        out = capsys.readouterr().out
        assert "common-clock bound" in out

    def test_level_command_feasible(self, tmp_path, capsys):
        path = tmp_path / "tog.bench"
        path.write_text("OUTPUT(q)\nq = DFF(d)\nd = NOT(q)\n")
        assert main(["level", str(path), "--delay-model", "unit"]) == 0
        out = capsys.readouterr().out
        assert "certified periods" in out

    def test_level_command_infeasible(self, tmp_path, capsys):
        from repro.benchgen import S27_BENCH

        path = tmp_path / "s27.bench"
        path.write_text(S27_BENCH)
        code = main(["level", str(path), "--delay-model", "unit"])
        out = capsys.readouterr().out
        assert code == 2
        assert "INFEASIBLE" in out

    def test_exact_command(self, tmp_path, capsys):
        from repro.benchgen import S27_BENCH

        path = tmp_path / "s27.bench"
        path.write_text(S27_BENCH)
        assert main(["exact", str(path), "--delay-model", "unit"]) == 0
        out = capsys.readouterr().out
        assert "exact minimum cycle time = 6" in out
        assert "INEQUIVALENT" in out

    def test_exact_command_collapses_intervals(self, tmp_path, capsys):
        from repro.benchgen import S27_BENCH

        path = tmp_path / "s27.bench"
        path.write_text(S27_BENCH)
        assert main([
            "exact", str(path), "--delay-model", "unit", "--widen", "0.9",
        ]) == 0
        out = capsys.readouterr().out
        assert "using maxima" in out

    def test_analyze_blif_file(self, tmp_path, capsys):
        path = tmp_path / "tiny.blif"
        path.write_text(
            ".model tiny\n.inputs a\n.outputs y\n.latch d q re clk 0\n"
            ".names a q d\n11 1\n.names q y\n0 1\n.end\n"
        )
        assert main(["analyze", str(path), "--delay-model", "unit"]) == 0
        out = capsys.readouterr().out
        assert "minimum cycle time" in out

    def test_simulate_detects_overclocking(self, tmp_path, capsys):
        from repro.benchgen import S27_BENCH

        path = tmp_path / "s27.bench"
        path.write_text(S27_BENCH)
        code = main([
            "simulate", str(path), "--delay-model", "unit",
            "--tau", "1/2", "--cycles", "32", "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert code == 2
        assert "DIVERGES" in out
