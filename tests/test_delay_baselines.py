"""Tests for topological / floating / transition delays.

The anchor is the paper's Example 2 (Fig. 2): topological 5, floating
(single-vector) 4, transition (2-vector) 2 — exact published values.
"""

from fractions import Fraction

import pytest

from repro.delay import (
    FloatingResult,
    floating_delay,
    longest_topological_delay,
    min_register_path,
    shortest_topological_delay,
    topological_profile,
    transition_delay,
    validity_report,
)
from repro.errors import Budget, ResourceBudgetExceeded
from repro.logic import (
    Circuit,
    DelayMap,
    Gate,
    GateType,
    Interval,
    Latch,
    PinTiming,
    unit_delays,
)

from tests.test_timed_expansion import fig2_circuit


class TestTopological:
    def test_fig2(self):
        circuit, delays = fig2_circuit()
        assert longest_topological_delay(circuit, delays) == 5
        assert shortest_topological_delay(circuit, delays) == Fraction(3, 2)

    def test_profile_per_root(self):
        circuit, delays = fig2_circuit()
        profile = topological_profile(circuit, delays)
        assert profile["g"] == (Fraction(3, 2), Fraction(5))

    def test_interval_delays_use_envelopes(self):
        circuit, delays = fig2_circuit()
        widened = delays.widen(Fraction(1, 2))  # 50%..100%
        assert longest_topological_delay(circuit, widened) == 5
        assert shortest_topological_delay(circuit, widened) == Fraction(3, 4)

    def test_combinational_circuit(self):
        gates = [
            Gate("n1", GateType.AND, ("a", "b")),
            Gate("y", GateType.OR, ("n1", "a")),
        ]
        circuit = Circuit("cc", ["a", "b"], ["y"], gates)
        delays = unit_delays(circuit)
        assert longest_topological_delay(circuit, delays) == 2
        assert shortest_topological_delay(circuit, delays) == 1

    def test_empty_roots(self):
        circuit = Circuit("nothing", ["a"], [], [])
        delays = unit_delays(circuit)
        assert longest_topological_delay(circuit, delays) == 0


class TestFloating:
    def test_fig2_matches_paper(self):
        circuit, delays = fig2_circuit()
        result = floating_delay(circuit, delays)
        assert result.delay == 4
        assert result.per_root == {"g": Fraction(4)}

    def test_no_false_path_equals_topological(self):
        # A plain AND: floating delay = topological delay.
        gates = [Gate("y", GateType.AND, ("a", "b"))]
        circuit = Circuit("and2", ["a", "b"], ["y"], gates)
        pins = {("y", 0): PinTiming.symmetric(3), ("y", 1): PinTiming.symmetric(1)}
        delays = DelayMap(circuit, pins)
        assert floating_delay(circuit, delays).delay == 3

    def test_constant_cone_has_zero_delay(self):
        gates = [
            Gate("n", GateType.NOT, ("a",)),
            Gate("y", GateType.OR, ("a", "n")),  # tautology... but timed!
        ]
        circuit = Circuit("taut", ["a"], ["y"], gates)
        pins = {
            ("n", 0): PinTiming.symmetric(1),
            ("y", 0): PinTiming.symmetric(1),
            ("y", 1): PinTiming.symmetric(1),
        }
        delays = DelayMap(circuit, pins)
        # y(t) = a(t-1) + a'(t-2): NOT a constant as a timed function —
        # a rising a can glitch y low transiently; floating delay is 2.
        assert floating_delay(circuit, delays).delay == 2

    def test_truly_constant_cone(self):
        gates = [
            Gate("n", GateType.NOT, ("a",)),
            Gate("y", GateType.OR, ("b", "c")),
        ]
        circuit = Circuit("cc", ["a", "b", "c"], ["y", "n"], gates)
        pins = {
            ("n", 0): PinTiming.symmetric(1),
            ("y", 0): PinTiming.symmetric(2),
            ("y", 1): PinTiming.symmetric(2),
        }
        delays = DelayMap(circuit, pins)
        result = floating_delay(circuit, delays, roots=["y"])
        assert result.delay == 2

    def test_interval_delays_settle_at_latest(self):
        gates = [Gate("y", GateType.BUF, ("a",))]
        circuit = Circuit("b", ["a"], ["y"], gates)
        pins = {("y", 0): PinTiming.symmetric(Interval.of(2, 3))}
        delays = DelayMap(circuit, pins)
        assert floating_delay(circuit, delays).delay == 3

    def test_budget(self):
        circuit, delays = fig2_circuit()
        with pytest.raises(ResourceBudgetExceeded):
            floating_delay(circuit, delays, budget=Budget(limit=2))

    def test_result_type(self):
        circuit, delays = fig2_circuit()
        result = floating_delay(circuit, delays)
        assert isinstance(result, FloatingResult)
        assert result.comparisons >= 1


class TestTransition:
    def test_fig2_matches_paper(self):
        """The famous incorrect bound: 2-vector delay = 2 < MCT 2.5."""
        circuit, delays = fig2_circuit()
        result = transition_delay(circuit, delays)
        assert result.delay == 2
        assert result.per_root == {"g": Fraction(2)}

    def test_no_false_path_equals_topological(self):
        gates = [Gate("y", GateType.AND, ("a", "b"))]
        circuit = Circuit("and2", ["a", "b"], ["y"], gates)
        pins = {("y", 0): PinTiming.symmetric(3), ("y", 1): PinTiming.symmetric(1)}
        delays = DelayMap(circuit, pins)
        assert transition_delay(circuit, delays).delay == 3

    def test_static_cone_zero_delay(self):
        # y = BUF(a) where V1 = V2 forced? No: delay is 1 because the
        # vectors may differ. A cone ignoring its inputs has delay 0.
        gates = [Gate("y", GateType.CONST1, ())]
        circuit = Circuit("k", [], ["y"], gates)
        delays = DelayMap(circuit, {})
        assert transition_delay(circuit, delays).delay == 0

    def test_interval_straddling_uses_choice(self):
        # y = XOR(buf_fast(a), buf_slow(a)) with overlapping windows:
        # transitions can appear until the slow copy's latest arrival.
        gates = [
            Gate("f", GateType.BUF, ("a",)),
            Gate("s", GateType.BUF, ("a",)),
            Gate("y", GateType.XOR, ("f", "s")),
        ]
        circuit = Circuit("x", ["a"], ["y"], gates)
        pins = {
            ("f", 0): PinTiming.symmetric(Interval.of(1, 2)),
            ("s", 0): PinTiming.symmetric(Interval.of(3, 4)),
            ("y", 0): PinTiming.symmetric(0),
            ("y", 1): PinTiming.symmetric(0),
        }
        delays = DelayMap(circuit, pins)
        assert transition_delay(circuit, delays).delay == 4

    def test_transition_le_floating_on_fig2(self):
        circuit, delays = fig2_circuit()
        t = transition_delay(circuit, delays).delay
        f = floating_delay(circuit, delays).delay
        assert t <= f


class TestValidity:
    def test_fig2_report(self):
        circuit, delays = fig2_circuit()
        report = validity_report(circuit, delays)
        assert report.topological == 5
        assert report.floating == 4
        assert report.transition == 2
        assert report.shortest_path == Fraction(3, 2)
        # Transition 2 < 5/2: NOT certified (and indeed incorrect).
        assert not report.transition_certified
        assert report.transition_bound is None
        # Zero hold time: Theorem 1 bound valid.
        assert report.hold_ok
        assert report.floating_bound == 4

    def test_hold_violation_voids_floating_bound(self):
        circuit, delays = fig2_circuit()
        tight = delays.with_setup_hold(setup=0, hold=2)
        report = validity_report(circuit, tight)
        assert not report.hold_ok          # shortest path 1.5 < hold 2
        assert report.floating_bound is None

    def test_setup_added_to_floating_bound(self):
        circuit, delays = fig2_circuit()
        report = validity_report(circuit, delays.with_setup_hold(setup=1, hold=0))
        assert report.floating_bound == 5

    def test_certified_transition(self):
        gates = [Gate("y", GateType.AND, ("a", "b"))]
        circuit = Circuit("and2", ["a", "b"], ["y"], gates)
        delays = unit_delays(circuit)
        report = validity_report(circuit, delays)
        assert report.transition_certified
        assert report.transition_bound == 1

    def test_min_register_path_includes_latch_delay(self):
        gates = [Gate("d", GateType.NOT, ("q",))]
        circuit = Circuit("t", [], [], gates, [Latch("q", "d")])
        pins = {("d", 0): PinTiming.symmetric(2)}
        delays = DelayMap(circuit, pins, latch_delay={"q": Interval.point(1)})
        assert min_register_path(circuit, delays) == 3
