"""The MCT daemon: caching, coalescing, cancellation, HTTP hygiene.

The contract under test is the PR 9 acceptance criterion: two
identical submissions must cost exactly one sweep — observable in
``ServiceStats`` — and return byte-identical result JSON, including
across a daemon restart pointed at the same ``--cache-dir``; a cancel
mid-sweep yields the partial, checkpointed, exit-3-shaped payload; and
no malformed submission can ever produce anything but a clean JSON
400.
"""

from __future__ import annotations

import asyncio
import contextlib
import json

import pytest

from repro.benchgen import S27_BENCH
from repro.cli import main
from repro.errors import OptionsError
from repro.service import (
    JobManager,
    JobSpec,
    MctService,
    ResultCache,
    ServiceStats,
    content_hash,
    job_key,
)

EXAMPLE2 = {"circuit": {"kind": "generator", "source": "example2"}}
S27_JOB = {
    "circuit": {"kind": "bench", "source": S27_BENCH},
    "delays": {"model": "fanout"},
}


def run(coro_fn, **manager_kwargs):
    """Run one async scenario against a live in-process daemon."""

    async def scenario():
        manager = JobManager(**manager_kwargs)
        service = MctService(manager)
        host, port = await service.start()
        try:
            return await coro_fn(service, host, port)
        finally:
            await service.close()

    return asyncio.run(scenario())


async def http(host, port, method, path, body=None, read_all=False):
    """One raw HTTP/1.1 exchange; returns (status, body_bytes)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = b""
        if body is not None:
            payload = body if isinstance(body, bytes) else json.dumps(
                body
            ).encode("utf-8")
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            + payload
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        with contextlib.suppress(ConnectionError, OSError):
            await writer.wait_closed()
    head, _, rest = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, rest


async def wait_done(host, port, job_id, timeout=30.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        status, body = await http(host, port, "GET", f"/jobs/{job_id}")
        assert status == 200
        doc = json.loads(body)
        if doc["state"] in ("done", "failed", "cancelled"):
            return doc
        assert asyncio.get_running_loop().time() < deadline, doc
        await asyncio.sleep(0.02)


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------
class TestJobSpec:
    def test_same_spec_same_key(self):
        assert JobSpec(EXAMPLE2).key == JobSpec(dict(EXAMPLE2)).key

    def test_resource_knobs_do_not_change_the_key(self):
        # The key hashes the engine's analysis fingerprint: budget and
        # time limit are resources, and a bound computed under any of
        # them is the same bound (the contract --resume is built on).
        base = JobSpec(S27_JOB)
        budgeted = JobSpec(
            {**S27_JOB, "options": {"work_budget": 10**9,
                                    "time_limit": 3600.0}}
        )
        assert budgeted.key == base.key

    def test_analysis_knobs_change_the_key(self):
        base = JobSpec(S27_JOB)
        aged = JobSpec({**S27_JOB, "options": {"max_age": 8}})
        reach = JobSpec({**S27_JOB, "options": {"use_reachability": True}})
        assert len({base.key, aged.key, reach.key}) == 3

    def test_netlist_enters_by_content_hash(self):
        spec = JobSpec(S27_JOB)
        assert spec.canonical()["source"] == content_hash(S27_BENCH)
        edited = JobSpec(
            {**S27_JOB, "circuit": {"kind": "bench",
                                    "source": S27_BENCH + "\n"}}
        )
        assert edited.key != spec.key

    def test_delay_transforms_change_the_key(self):
        base = JobSpec(S27_JOB)
        widened = JobSpec({**S27_JOB, "delays": {"model": "fanout",
                                                 "widen": "9/10"}})
        assert widened.key != base.key

    def test_key_is_stable_json(self):
        spec = JobSpec(EXAMPLE2)
        assert spec.key == job_key(spec.canonical())

    @pytest.mark.parametrize(
        "data",
        [
            "not an object",
            {},
            {"circuit": {"kind": "bench"}},
            {"circuit": {"kind": "nope", "source": "x"}},
            {"circuit": {"kind": "generator", "source": "nope"}},
            {"circuit": {"kind": "bench", "source": "GIBBERISH("}},
            {**EXAMPLE2, "delays": {"model": "fanout"}},
            {**EXAMPLE2, "unknown": 1},
            {**EXAMPLE2, "delays": {"widen": "zero/none"}},
            {**EXAMPLE2, "options": {"bdd_kernel": "quantum"}},
            {**EXAMPLE2, "options": {"nope": 1}},
            {**EXAMPLE2, "options": {"max_age": "many"}},
        ],
    )
    def test_defects_raise_options_error(self, data):
        with pytest.raises(OptionsError):
            JobSpec(data)


# ----------------------------------------------------------------------
# Caching and single-flight (the tentpole acceptance criterion)
# ----------------------------------------------------------------------
class TestCacheAndCoalesce:
    def test_identical_submissions_one_sweep_identical_bytes(self):
        async def scenario(service, host, port):
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            assert status == 200
            first = json.loads(body)
            assert first["cached"] is False
            await wait_done(host, port, first["job"])
            _, res1 = await http(
                host, port, "GET", f"/jobs/{first['job']}/result"
            )
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            second = json.loads(body)
            assert second["cached"] is True
            assert second["state"] == "done"
            _, res2 = await http(
                host, port, "GET", f"/jobs/{second['job']}/result"
            )
            assert res1 == res2  # byte-identical, not merely equal
            stats = service.stats
            assert stats.jobs_submitted == 2
            assert stats.cache_misses == 1
            assert stats.cache_hits == 1
            doc = json.loads(res1)
            assert doc["schema"] == "repro-mct-service-result/1"
            assert doc["bound"] == "5/2"
            assert doc["bound_display"] == "2.5"
            assert doc["partial"] is False
            assert doc["checkpoint"]["schema"] == "repro-mct-checkpoint/2"

        run(scenario)

    def test_concurrent_duplicates_coalesce_onto_one_sweep(self):
        # Submitted back-to-back in one event-loop tick, before the
        # sweep thread can start: the duplicates MUST attach to the
        # primary (same job id, one sweep, one BddStats) rather than
        # racing it.
        async def scenario(service, host, port):
            manager = service.manager
            primary = manager.submit(dict(EXAMPLE2))
            follower = manager.submit(dict(EXAMPLE2))
            third = manager.submit(dict(EXAMPLE2))
            assert follower is primary and third is primary
            assert primary.coalesced is True
            stats = service.stats
            assert stats.jobs_submitted == 3
            assert stats.cache_misses == 1
            assert stats.coalesced == 2
            doc = await wait_done(host, port, primary.id)
            assert doc["state"] == "done"
            # One sweep ran: every submitter reads the same bytes (and
            # hence the same embedded BDD counters — a second sweep
            # would have produced a distinct bdd_stats block object).
            _, res = await http(
                host, port, "GET", f"/jobs/{primary.id}/result"
            )
            assert json.loads(res)["bound"] == "5/2"
            assert manager.cache.get(primary.key) == res

        run(scenario)

    def test_http_level_duplicates_cost_one_sweep(self):
        # Over the wire the two posts race the sweep: whichever side
        # of the finish line the second lands on (coalesced or cache
        # hit), the sweep count stays one.
        async def scenario(service, host, port):
            results = await asyncio.gather(
                http(host, port, "POST", "/jobs", S27_JOB),
                http(host, port, "POST", "/jobs", S27_JOB),
            )
            ids = [json.loads(body)["job"] for status, body in results]
            for job_id in ids:
                await wait_done(host, port, job_id)
            bodies = {
                (await http(host, port, "GET", f"/jobs/{i}/result"))[1]
                for i in ids
            }
            assert len(bodies) == 1  # byte-identical either way
            stats = service.stats
            assert stats.jobs_submitted == 2
            assert stats.cache_misses == 1
            assert stats.coalesced + stats.cache_hits == 1
            assert json.loads(bodies.pop())["bound"] == "23/2"

        run(scenario)

    def test_restart_with_cache_dir_skips_recompute(self, tmp_path):
        async def first_life(service, host, port):
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            job = json.loads(body)["job"]
            await wait_done(host, port, job)
            _, res = await http(host, port, "GET", f"/jobs/{job}/result")
            return res

        res1 = run(first_life, cache=ResultCache(tmp_path / "cache"))

        async def second_life(service, host, port):
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            doc = json.loads(body)
            # Answered from disk: no sweep, already done at submit time.
            assert doc["cached"] is True and doc["state"] == "done"
            _, res = await http(host, port, "GET", f"/jobs/{doc['job']}/result")
            assert service.stats.cache_hits == 1
            assert service.stats.cache_misses == 0
            return res

        res2 = run(second_life, cache=ResultCache(tmp_path / "cache"))
        assert res1 == res2  # byte-identical across the restart

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k" * 64, b'{"ok": true}')
        (tmp_path / ("k" * 64 + ".json")).write_bytes(b'{"truncated')
        assert ResultCache(tmp_path).get("k" * 64) is None

    def test_memory_cache_roundtrip(self):
        cache = ResultCache()
        assert cache.get("a" * 64) is None
        cache.put("a" * 64, b"payload")
        assert cache.get("a" * 64) == b"payload"


# ----------------------------------------------------------------------
# Cancellation (the exit-3 contract over HTTP)
# ----------------------------------------------------------------------
class TestCancel:
    def test_cancel_yields_partial_exit3_shaped_payload(self):
        async def scenario(service, host, port):
            manager = service.manager
            job = manager.submit(dict(S27_JOB))
            # Cancel before the sweep thread takes its first window:
            # deterministic, and exactly the operator-interrupt path.
            assert manager.cancel(job) is True
            doc = await wait_done(host, port, job.id)
            assert doc["state"] == "cancelled"
            _, res = await http(host, port, "GET", f"/jobs/{job.id}/result")
            payload = json.loads(res)
            assert payload["cancelled"] is True
            assert payload["partial"] is True  # what CLI exit 3 means
            assert payload["checkpoint"]["schema"] == (
                "repro-mct-checkpoint/2"
            )
            assert service.stats.jobs_cancelled == 1
            # Partial results are never content-addressed.
            assert manager.cache.get(job.key) is None
            # ...so a re-submission runs the sweep for real.
            status, body = await http(host, port, "POST", "/jobs", S27_JOB)
            assert json.loads(body)["cached"] is False

        run(scenario)

    def test_cancel_finished_job_is_a_noop(self):
        async def scenario(service, host, port):
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            job = json.loads(body)["job"]
            await wait_done(host, port, job)
            status, body = await http(
                host, port, "POST", f"/jobs/{job}/cancel"
            )
            assert status == 200
            assert json.loads(body)["cancelling"] is False

        run(scenario)


# ----------------------------------------------------------------------
# Streaming
# ----------------------------------------------------------------------
class TestStream:
    def test_stream_replays_commits_then_terminal_event(self):
        async def scenario(service, host, port):
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            job = json.loads(body)["job"]
            status, raw = await http(
                host, port, "GET", f"/jobs/{job}/stream"
            )
            assert status == 200
            lines = [json.loads(l) for l in raw.splitlines() if l]
            assert lines, "stream must carry at least the terminal event"
            candidates = [l for l in lines if l["event"] == "candidate"]
            assert candidates, "ordered commits must be streamed"
            assert all(
                set(c) >= {"tau", "status", "m", "rung"} for c in candidates
            )
            assert lines[-1]["event"] == "done"
            # The streamed taus are the result's candidate sequence.
            _, res = await http(host, port, "GET", f"/jobs/{job}/result")
            doc = json.loads(res)
            assert len(candidates) == doc["candidates"]
            assert [c["tau"] for c in candidates] == [
                r["tau"] for r in doc["checkpoint"]["records"]
            ]

        run(scenario)

    def test_stream_of_cached_job_ends_immediately(self):
        async def scenario(service, host, port):
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            await wait_done(host, port, json.loads(body)["job"])
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            job = json.loads(body)["job"]
            status, raw = await http(
                host, port, "GET", f"/jobs/{job}/stream"
            )
            lines = [json.loads(l) for l in raw.splitlines() if l]
            assert lines[-1]["event"] == "done"
            assert lines[-1]["cached"] is True

        run(scenario)


# ----------------------------------------------------------------------
# HTTP hygiene: clean errors, never tracebacks
# ----------------------------------------------------------------------
class TestHttpHygiene:
    @pytest.mark.parametrize(
        "body",
        [
            b"this is not json",
            b"[1, 2, 3]",
            json.dumps({"circuit": {"kind": "nope", "source": "x"}}).encode(),
            json.dumps({"circuit": {"kind": "bench",
                                    "source": "NOT A NETLIST("}}).encode(),
            json.dumps({**EXAMPLE2, "options": {"bdd_kernel": "bad"}}).encode(),
        ],
    )
    def test_malformed_submissions_get_400(self, body):
        async def scenario(service, host, port):
            status, raw = await http(host, port, "POST", "/jobs", body)
            assert status == 400
            doc = json.loads(raw)  # the error itself is clean JSON
            assert "error" in doc and "Traceback" not in raw.decode()
            # The daemon survived: it still answers.
            status, raw = await http(host, port, "GET", "/healthz")
            assert status == 200

        run(scenario)

    def test_unknown_paths_and_methods(self):
        async def scenario(service, host, port):
            assert (await http(host, port, "GET", "/nope"))[0] == 404
            assert (await http(host, port, "GET", "/jobs/xx"))[0] == 404
            assert (
                await http(host, port, "DELETE", "/jobs/xx")
            )[0] == 404
            assert (await http(host, port, "PUT", "/jobs"))[0] == 405
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            job = json.loads(body)["job"]
            assert (
                await http(host, port, "POST", f"/jobs/{job}/result")
            )[0] == 405
            assert (
                await http(host, port, "GET", f"/jobs/{job}/cancel")
            )[0] == 405
            await wait_done(host, port, job)

        run(scenario)

    def test_result_of_running_job_is_409(self):
        async def scenario(service, host, port):
            manager = service.manager
            job = manager.submit(dict(S27_JOB))
            status, body = await http(
                host, port, "GET", f"/jobs/{job.id}/result"
            )
            if not job.finished:  # it was genuinely still running
                assert status == 409
            manager.cancel(job)
            await wait_done(host, port, job.id)

        run(scenario)

    def test_malformed_wire_requests(self):
        async def scenario(service, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GARBAGE\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            assert b" 400 " in raw.split(b"\r\n", 1)[0]
            status, _ = await http(host, port, "GET", "/healthz")
            assert status == 200

        run(scenario)

    def test_stats_endpoint_shape(self):
        async def scenario(service, host, port):
            status, body = await http(host, port, "GET", "/stats")
            assert status == 200
            doc = json.loads(body)
            assert set(doc) == set(ServiceStats().as_dict())

        run(scenario)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestServeCli:
    def test_rejects_bad_flags(self, capsys):
        assert main(["serve", "--max-inflight", "0"]) == 1
        assert "--max-inflight" in capsys.readouterr().err
        assert main(["serve", "--port", "-1"]) == 1
        assert "--port" in capsys.readouterr().err
        assert main(["serve", "--port", "70000"]) == 1
        assert main(["serve", "--jobs", "-1"]) == 1
        assert main(["serve", "--max-retries", "-1"]) == 1
        assert main(["serve", "--task-timeout", "0"]) == 1
        assert main(["serve", "--heartbeat-interval", "0"]) == 1
        assert main([
            "serve", "--heartbeat-interval", "0.5",
            "--heartbeat-timeout", "0.1",
        ]) == 1
