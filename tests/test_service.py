"""The MCT daemon: caching, coalescing, cancellation, HTTP hygiene.

The contract under test is the PR 9 acceptance criterion: two
identical submissions must cost exactly one sweep — observable in
``ServiceStats`` — and return byte-identical result JSON, including
across a daemon restart pointed at the same ``--cache-dir``; a cancel
mid-sweep yields the partial, checkpointed, exit-3-shaped payload; and
no malformed submission can ever produce anything but a clean JSON
400.
"""

from __future__ import annotations

import asyncio
import contextlib
import json

import pytest

from repro.benchgen import S27_BENCH
from repro.cli import main
from repro.errors import OptionsError
from repro.service import (
    JobManager,
    JobSpec,
    MctService,
    ResultCache,
    ServiceStats,
    content_hash,
    job_key,
)

EXAMPLE2 = {"circuit": {"kind": "generator", "source": "example2"}}
S27_JOB = {
    "circuit": {"kind": "bench", "source": S27_BENCH},
    "delays": {"model": "fanout"},
}


def run(coro_fn, *, service_kwargs=None, **manager_kwargs):
    """Run one async scenario against a live in-process daemon."""

    async def scenario():
        manager = JobManager(**manager_kwargs)
        service = MctService(manager, **(service_kwargs or {}))
        host, port = await service.start()
        try:
            return await coro_fn(service, host, port)
        finally:
            await service.close()

    return asyncio.run(scenario())


async def http(host, port, method, path, body=None, headers=None, ssl=None,
               return_headers=False):
    """One raw HTTP/1.1 exchange; returns (status, body_bytes)."""
    reader, writer = await asyncio.open_connection(host, port, ssl=ssl)
    try:
        payload = b""
        if body is not None:
            payload = body if isinstance(body, bytes) else json.dumps(
                body
            ).encode("utf-8")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"{extra}"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            + payload
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        with contextlib.suppress(ConnectionError, OSError):
            await writer.wait_closed()
    head, _, rest = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    if return_headers:
        return status, rest, head.decode("latin-1")
    return status, rest


async def wait_done(host, port, job_id, timeout=30.0, **http_kwargs):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        status, body = await http(
            host, port, "GET", f"/jobs/{job_id}", **http_kwargs
        )
        assert status == 200
        doc = json.loads(body)
        if doc["state"] in ("done", "failed", "cancelled"):
            return doc
        assert asyncio.get_running_loop().time() < deadline, doc
        await asyncio.sleep(0.02)


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------
class TestJobSpec:
    def test_same_spec_same_key(self):
        assert JobSpec(EXAMPLE2).key == JobSpec(dict(EXAMPLE2)).key

    def test_resource_knobs_do_not_change_the_key(self):
        # The key hashes the engine's analysis fingerprint: budget and
        # time limit are resources, and a bound computed under any of
        # them is the same bound (the contract --resume is built on).
        base = JobSpec(S27_JOB)
        budgeted = JobSpec(
            {**S27_JOB, "options": {"work_budget": 10**9,
                                    "time_limit": 3600.0}}
        )
        assert budgeted.key == base.key

    def test_analysis_knobs_change_the_key(self):
        base = JobSpec(S27_JOB)
        aged = JobSpec({**S27_JOB, "options": {"max_age": 8}})
        reach = JobSpec({**S27_JOB, "options": {"use_reachability": True}})
        assert len({base.key, aged.key, reach.key}) == 3

    def test_netlist_enters_by_content_hash(self):
        spec = JobSpec(S27_JOB)
        assert spec.canonical()["source"] == content_hash(S27_BENCH)
        edited = JobSpec(
            {**S27_JOB, "circuit": {"kind": "bench",
                                    "source": S27_BENCH + "\n"}}
        )
        assert edited.key != spec.key

    def test_delay_transforms_change_the_key(self):
        base = JobSpec(S27_JOB)
        widened = JobSpec({**S27_JOB, "delays": {"model": "fanout",
                                                 "widen": "9/10"}})
        assert widened.key != base.key

    def test_key_is_stable_json(self):
        spec = JobSpec(EXAMPLE2)
        assert spec.key == job_key(spec.canonical())

    @pytest.mark.parametrize(
        "data",
        [
            "not an object",
            {},
            {"circuit": {"kind": "bench"}},
            {"circuit": {"kind": "nope", "source": "x"}},
            {"circuit": {"kind": "generator", "source": "nope"}},
            {"circuit": {"kind": "bench", "source": "GIBBERISH("}},
            {**EXAMPLE2, "delays": {"model": "fanout"}},
            {**EXAMPLE2, "unknown": 1},
            {**EXAMPLE2, "delays": {"widen": "zero/none"}},
            {**EXAMPLE2, "options": {"bdd_kernel": "quantum"}},
            {**EXAMPLE2, "options": {"nope": 1}},
            {**EXAMPLE2, "options": {"max_age": "many"}},
        ],
    )
    def test_defects_raise_options_error(self, data):
        with pytest.raises(OptionsError):
            JobSpec(data)


# ----------------------------------------------------------------------
# Caching and single-flight (the tentpole acceptance criterion)
# ----------------------------------------------------------------------
class TestCacheAndCoalesce:
    def test_identical_submissions_one_sweep_identical_bytes(self):
        async def scenario(service, host, port):
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            assert status == 200
            first = json.loads(body)
            assert first["cached"] is False
            await wait_done(host, port, first["job"])
            _, res1 = await http(
                host, port, "GET", f"/jobs/{first['job']}/result"
            )
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            second = json.loads(body)
            assert second["cached"] is True
            assert second["state"] == "done"
            _, res2 = await http(
                host, port, "GET", f"/jobs/{second['job']}/result"
            )
            assert res1 == res2  # byte-identical, not merely equal
            stats = service.stats
            assert stats.jobs_submitted == 2
            assert stats.cache_misses == 1
            assert stats.cache_hits == 1
            doc = json.loads(res1)
            assert doc["schema"] == "repro-mct-service-result/2"
            assert doc["bound"] == "5/2"
            assert doc["bound_display"] == "2.5"
            assert doc["partial"] is False
            assert doc["checkpoint"]["schema"] == "repro-mct-checkpoint/2"

        run(scenario)

    def test_concurrent_duplicates_coalesce_onto_one_sweep(self):
        # Submitted back-to-back in one event-loop tick, before the
        # sweep thread can start: the duplicates MUST attach to the
        # primary (same job id, one sweep, one BddStats) rather than
        # racing it.
        async def scenario(service, host, port):
            manager = service.manager
            primary = manager.submit(dict(EXAMPLE2))
            follower = manager.submit(dict(EXAMPLE2))
            third = manager.submit(dict(EXAMPLE2))
            assert follower is primary and third is primary
            assert primary.coalesced is True
            stats = service.stats
            assert stats.jobs_submitted == 3
            assert stats.cache_misses == 1
            assert stats.coalesced == 2
            doc = await wait_done(host, port, primary.id)
            assert doc["state"] == "done"
            # One sweep ran: every submitter reads the same bytes (and
            # hence the same embedded BDD counters — a second sweep
            # would have produced a distinct bdd_stats block object).
            _, res = await http(
                host, port, "GET", f"/jobs/{primary.id}/result"
            )
            assert json.loads(res)["bound"] == "5/2"
            assert manager.cache.get(primary.key) == res

        run(scenario)

    def test_http_level_duplicates_cost_one_sweep(self):
        # Over the wire the two posts race the sweep: whichever side
        # of the finish line the second lands on (coalesced or cache
        # hit), the sweep count stays one.
        async def scenario(service, host, port):
            results = await asyncio.gather(
                http(host, port, "POST", "/jobs", S27_JOB),
                http(host, port, "POST", "/jobs", S27_JOB),
            )
            ids = [json.loads(body)["job"] for status, body in results]
            for job_id in ids:
                await wait_done(host, port, job_id)
            bodies = {
                (await http(host, port, "GET", f"/jobs/{i}/result"))[1]
                for i in ids
            }
            assert len(bodies) == 1  # byte-identical either way
            stats = service.stats
            assert stats.jobs_submitted == 2
            assert stats.cache_misses == 1
            assert stats.coalesced + stats.cache_hits == 1
            assert json.loads(bodies.pop())["bound"] == "23/2"

        run(scenario)

    def test_restart_with_cache_dir_skips_recompute(self, tmp_path):
        async def first_life(service, host, port):
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            job = json.loads(body)["job"]
            await wait_done(host, port, job)
            _, res = await http(host, port, "GET", f"/jobs/{job}/result")
            return res

        res1 = run(first_life, cache=ResultCache(tmp_path / "cache"))

        async def second_life(service, host, port):
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            doc = json.loads(body)
            # Answered from disk: no sweep, already done at submit time.
            assert doc["cached"] is True and doc["state"] == "done"
            _, res = await http(host, port, "GET", f"/jobs/{doc['job']}/result")
            assert service.stats.cache_hits == 1
            assert service.stats.cache_misses == 0
            return res

        res2 = run(second_life, cache=ResultCache(tmp_path / "cache"))
        assert res1 == res2  # byte-identical across the restart

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k" * 64, b'{"ok": true}')
        cache.close()  # release the single-writer lock for the reopen
        (tmp_path / ("k" * 64 + ".json")).write_bytes(b'{"truncated')
        reopened = ResultCache(tmp_path)
        try:
            assert reopened.get("k" * 64) is None
        finally:
            reopened.close()

    def test_memory_cache_roundtrip(self):
        cache = ResultCache()
        assert cache.get("a" * 64) is None
        cache.put("a" * 64, b"payload")
        assert cache.get("a" * 64) == b"payload"


# ----------------------------------------------------------------------
# Cancellation (the exit-3 contract over HTTP)
# ----------------------------------------------------------------------
class TestCancel:
    def test_cancel_yields_partial_exit3_shaped_payload(self):
        async def scenario(service, host, port):
            manager = service.manager
            job = manager.submit(dict(S27_JOB))
            # Cancel before the sweep thread takes its first window:
            # deterministic, and exactly the operator-interrupt path.
            assert manager.cancel(job) is True
            doc = await wait_done(host, port, job.id)
            assert doc["state"] == "cancelled"
            _, res = await http(host, port, "GET", f"/jobs/{job.id}/result")
            payload = json.loads(res)
            assert payload["cancelled"] is True
            assert payload["partial"] is True  # what CLI exit 3 means
            assert payload["checkpoint"]["schema"] == (
                "repro-mct-checkpoint/2"
            )
            assert service.stats.jobs_cancelled == 1
            # Partial results are never content-addressed.
            assert manager.cache.get(job.key) is None
            # ...so a re-submission runs the sweep for real.
            status, body = await http(host, port, "POST", "/jobs", S27_JOB)
            assert json.loads(body)["cached"] is False

        run(scenario)

    def test_cancel_finished_job_is_a_noop(self):
        async def scenario(service, host, port):
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            job = json.loads(body)["job"]
            await wait_done(host, port, job)
            status, body = await http(
                host, port, "POST", f"/jobs/{job}/cancel"
            )
            assert status == 200
            assert json.loads(body)["cancelling"] is False

        run(scenario)


# ----------------------------------------------------------------------
# Cancel-resume (the hardening tentpole: retained checkpoints)
# ----------------------------------------------------------------------
class TestCancelResume:
    def test_resubmission_resumes_from_retained_checkpoint(self):
        # The contract: cancel mid-sweep, resubmit the same spec, and
        # the second sweep recomputes strictly fewer windows — while
        # the final cached bytes are identical to an uninterrupted run.
        async def fresh(service, host, port):
            status, body = await http(host, port, "POST", "/jobs", S27_JOB)
            job = json.loads(body)["job"]
            await wait_done(host, port, job)
            _, res = await http(host, port, "GET", f"/jobs/{job}/result")
            return res

        baseline = run(fresh)
        total = json.loads(baseline)["candidates"]
        assert total > 1  # a one-window sweep could not show "fewer"

        async def interrupted(service, host, port):
            manager = service.manager
            # Gate the sweep thread after its first committed window so
            # the cancel deterministically lands mid-sweep (the engine
            # checks the cancel event between windows).
            real_sweep = manager._sweep

            def gated(spec, on_record, cancel_event, resume_from=None):
                seen = 0

                def hooked(record):
                    nonlocal seen
                    seen += 1
                    on_record(record)
                    if seen == 1:
                        cancel_event.wait(30.0)

                return real_sweep(spec, hooked, cancel_event, resume_from)

            manager._sweep = gated
            job = manager.submit(dict(S27_JOB))
            deadline = asyncio.get_running_loop().time() + 30.0
            while not any(
                e["event"] == "candidate" for e in job.events
            ):
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.005)
            manager.cancel(job)
            doc = await wait_done(host, port, job.id)
            assert doc["state"] == "cancelled"
            manager._sweep = real_sweep
            decided = sum(
                1 for e in job.events if e["event"] == "candidate"
            )
            assert decided >= 1
            # Resubmit the identical spec: same content address, so the
            # retained exit-3 checkpoint is replayed instead of redone.
            status, body = await http(host, port, "POST", "/jobs", S27_JOB)
            second = json.loads(body)
            assert second["cached"] is False
            job2 = manager.get(second["job"])
            await wait_done(host, port, job2.id)
            assert job2.state == "done"
            assert job2.resumed is True
            status, body = await http(host, port, "GET", f"/jobs/{job2.id}")
            assert json.loads(body)["resumed"] is True
            recomputed = sum(
                1 for e in job2.events if e["event"] == "candidate"
            )
            stats = service.stats
            assert stats.jobs_resumed == 1
            assert stats.jobs_cancelled == 1
            _, res = await http(
                host, port, "GET", f"/jobs/{job2.id}/result"
            )
            return decided, recomputed, res

        decided, recomputed, resumed_bytes = run(interrupted)
        # Strictly fewer windows recomputed: the replayed prefix was
        # not re-decided...
        assert recomputed < total
        assert decided + recomputed == total
        # ...and the result bytes are exactly an uninterrupted run's.
        assert resumed_bytes == baseline

    def test_budget_exhausted_job_resumes_on_resubmission(self):
        # Interruption by resource exhaustion retains its checkpoint
        # exactly like a cancel: the budget is not part of the content
        # address, so resubmitting with fresh resources resumes instead
        # of redoing the decided prefix.
        async def fresh(service, host, port):
            status, body = await http(host, port, "POST", "/jobs", S27_JOB)
            job = json.loads(body)["job"]
            await wait_done(host, port, job)
            _, res = await http(host, port, "GET", f"/jobs/{job}/result")
            return res

        baseline = run(fresh)
        total = json.loads(baseline)["candidates"]

        async def exhausted_then_resumed(service, host, port):
            manager = service.manager
            starved = dict(S27_JOB, options={"work_budget": 200})
            status, body = await http(host, port, "POST", "/jobs", starved)
            job = manager.get(json.loads(body)["job"])
            doc = await wait_done(host, port, job.id)
            assert doc["state"] == "done"
            _, res = await http(host, port, "GET", f"/jobs/{job.id}/result")
            partial = json.loads(res)
            assert partial["partial"] is True
            decided = partial["candidates"]
            assert 0 < decided < total
            # Partial results are never cached, but the checkpoint is
            # retained for the (budget-free) resubmission to resume.
            assert job.key in manager._resume
            status, body = await http(host, port, "POST", "/jobs", S27_JOB)
            second = json.loads(body)
            assert second["cached"] is False
            job2 = manager.get(second["job"])
            await wait_done(host, port, job2.id)
            assert job2.state == "done"
            assert job2.resumed is True
            assert service.stats.jobs_resumed == 1
            recomputed = sum(
                1 for e in job2.events if e["event"] == "candidate"
            )
            _, res = await http(host, port, "GET", f"/jobs/{job2.id}/result")
            return decided, recomputed, res

        decided, recomputed, resumed_bytes = run(exhausted_then_resumed)
        assert recomputed < total
        assert decided + recomputed == total
        assert resumed_bytes == baseline

    def test_completed_job_releases_retained_checkpoint(self):
        async def scenario(service, host, port):
            manager = service.manager
            job = manager.submit(dict(EXAMPLE2))
            await wait_done(host, port, job.id)
            # A completed bound retains nothing: resume state is only
            # for interrupted (cancelled or budget-exhausted) sweeps.
            assert job.key not in manager._resume
            assert service.stats.jobs_resumed == 0

        run(scenario)


# ----------------------------------------------------------------------
# Bearer auth (the hardening tentpole: 401s, never tracebacks)
# ----------------------------------------------------------------------
class TestBearerAuth:
    AUTH = {"Authorization": "Bearer sesame"}

    def test_wrong_or_missing_token_is_401_everywhere(self):
        async def scenario(service, host, port):
            for path in ("/healthz", "/stats", "/jobs", "/jobs/xx"):
                status, body = await http(host, port, "GET", path)
                assert status == 401
                assert "error" in json.loads(body)
            for headers in (
                {"Authorization": "Bearer wrong"},
                {"Authorization": "Basic sesame"},
                {"Authorization": "sesame"},
            ):
                status, body = await http(
                    host, port, "GET", "/healthz", headers=headers
                )
                assert status == 401
            status, body = await http(
                host, port, "POST", "/jobs", EXAMPLE2
            )
            assert status == 401
            stats = service.stats
            assert stats.auth_rejected == 8
            # No job was ever created for the unauthenticated submit.
            assert stats.jobs_submitted == 0
            # The daemon survived every rejection: a correct token
            # still gets full service.
            status, body = await http(
                host, port, "GET", "/healthz", headers=self.AUTH
            )
            assert status == 200

        run(scenario, service_kwargs={"auth_token": b"sesame"})

    def test_401_carries_www_authenticate(self):
        async def scenario(service, host, port):
            status, body, head = await http(
                host, port, "GET", "/healthz", return_headers=True
            )
            assert status == 401
            assert "www-authenticate: bearer" in head.lower()

        run(scenario, service_kwargs={"auth_token": b"sesame"})

    def test_authenticated_flow_end_to_end(self):
        async def scenario(service, host, port):
            status, body = await http(
                host, port, "POST", "/jobs", EXAMPLE2, headers=self.AUTH
            )
            assert status == 200
            job = json.loads(body)["job"]
            await wait_done(host, port, job, headers=self.AUTH)
            status, res = await http(
                host, port, "GET", f"/jobs/{job}/result", headers=self.AUTH
            )
            assert status == 200
            assert json.loads(res)["bound"] == "5/2"
            assert service.stats.auth_rejected == 0
            return res

        authed = run(scenario, service_kwargs={"auth_token": b"sesame"})

        async def plaintext(service, host, port):
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            job = json.loads(body)["job"]
            await wait_done(host, port, job)
            _, res = await http(host, port, "GET", f"/jobs/{job}/result")
            return res

        # Auth is deployment config, not identity: same bytes.
        assert authed == run(plaintext)

    def test_tokenless_deployment_stays_open(self):
        async def scenario(service, host, port):
            status, _ = await http(host, port, "GET", "/healthz")
            assert status == 200
            assert service.stats.auth_rejected == 0

        run(scenario)


# ----------------------------------------------------------------------
# TLS listener
# ----------------------------------------------------------------------
class TestTlsService:
    def test_tls_round_trip_byte_identical_to_plaintext(self, tls_certs):
        from repro.netsec import build_client_context, build_server_context

        client = build_client_context(tls_certs["ca"])

        async def scenario(service, host, port):
            status, body = await http(
                host, port, "POST", "/jobs", EXAMPLE2, ssl=client
            )
            assert status == 200
            job = json.loads(body)["job"]
            await wait_done(host, port, job, ssl=client)
            status, res = await http(
                host, port, "GET", f"/jobs/{job}/result", ssl=client
            )
            assert status == 200
            return res

        tls_bytes = run(
            scenario,
            service_kwargs={
                "ssl_context": build_server_context(
                    tls_certs["cert"], tls_certs["key"]
                )
            },
        )

        async def plaintext(service, host, port):
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            job = json.loads(body)["job"]
            await wait_done(host, port, job)
            _, res = await http(host, port, "GET", f"/jobs/{job}/result")
            return res

        assert tls_bytes == run(plaintext)

    def test_tls_and_auth_compose(self, tls_certs):
        from repro.netsec import build_client_context, build_server_context

        client = build_client_context(tls_certs["ca"])

        async def scenario(service, host, port):
            status, _ = await http(host, port, "GET", "/healthz", ssl=client)
            assert status == 401
            status, _ = await http(
                host, port, "GET", "/healthz", ssl=client,
                headers={"Authorization": "Bearer sesame"},
            )
            assert status == 200

        run(
            scenario,
            service_kwargs={
                "auth_token": b"sesame",
                "ssl_context": build_server_context(
                    tls_certs["cert"], tls_certs["key"]
                ),
            },
        )


# ----------------------------------------------------------------------
# Bounded job lifecycle (TTL + LRU table caps)
# ----------------------------------------------------------------------
class TestJobLifecycle:
    def test_ttl_evicts_terminal_jobs(self):
        async def scenario(service, host, port):
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            first = json.loads(body)["job"]
            await wait_done(host, port, first)
            await asyncio.sleep(0.15)  # past the TTL
            # Eviction runs at the next submit.
            status, body = await http(host, port, "POST", "/jobs", S27_JOB)
            second = json.loads(body)["job"]
            status, body = await http(host, port, "GET", f"/jobs/{first}")
            assert status == 404
            doc = json.loads(body)
            assert doc["evicted"] is True
            assert "evicted" in doc["error"]
            stats = service.stats
            assert stats.jobs_evicted == 1
            assert stats.jobs_not_found == 1
            # The result itself is NOT gone: the cache outlives the
            # job table, so a resubmission is still a hit.
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            assert json.loads(body)["cached"] is True
            await wait_done(host, port, second)

        run(scenario, job_ttl=0.1)

    def test_max_jobs_evicts_oldest_terminal_first(self):
        async def scenario(service, host, port):
            ids = []
            for _ in range(2):
                status, body = await http(
                    host, port, "POST", "/jobs", EXAMPLE2
                )
                ids.append(json.loads(body)["job"])
                await wait_done(host, port, ids[-1])
            # Third and fourth submissions push the table past the cap;
            # the oldest terminal job goes first.
            for _ in range(2):
                status, body = await http(
                    host, port, "POST", "/jobs", EXAMPLE2
                )
                ids.append(json.loads(body)["job"])
            status, _ = await http(host, port, "GET", f"/jobs/{ids[0]}")
            assert status == 404
            # Newer jobs survived.
            status, _ = await http(host, port, "GET", f"/jobs/{ids[-1]}")
            assert status == 200
            assert service.stats.jobs_evicted >= 1
            assert len(service.manager._jobs) <= 3  # cap + the newcomer

        run(scenario, max_jobs=2)

    def test_running_jobs_are_never_evicted(self):
        async def scenario(service, host, port):
            manager = service.manager
            # Park the sweep thread until cancelled, so the job stays
            # genuinely running across the TTL and table-cap checks.
            real_sweep = manager._sweep

            def parked(spec, on_record, cancel_event, resume_from=None):
                if spec.key == job.key:  # only the S27 sweep parks
                    cancel_event.wait(30.0)
                return real_sweep(spec, on_record, cancel_event, resume_from)

            manager._sweep = parked
            job = manager.submit(dict(S27_JOB))
            await asyncio.sleep(0.05)  # well past the TTL while running
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            other = json.loads(body)["job"]
            # The running sweep is structurally exempt from both caps.
            status, _ = await http(host, port, "GET", f"/jobs/{job.id}")
            assert status == 200
            assert not manager.was_evicted(job.id)
            manager.cancel(job)
            await wait_done(host, port, job.id)
            await wait_done(host, port, other)

        run(scenario, job_ttl=0.01, max_jobs=1)

    def test_unknown_vs_evicted_404s_are_distinct(self):
        async def scenario(service, host, port):
            status, body = await http(host, port, "GET", "/jobs/ghost")
            assert status == 404
            assert json.loads(body)["evicted"] is False
            assert service.stats.jobs_not_found == 1

        run(scenario)

    def test_soak_table_and_cache_stay_bounded(self, tmp_path):
        # A long-lived daemon under repeated submissions keeps both the
        # job table and the disk cache under their caps.
        max_bytes = 4096

        async def scenario(service, host, port):
            specs = [
                EXAMPLE2,
                {**EXAMPLE2, "options": {"use_reachability": True}},
                S27_JOB,
            ]
            for spec in specs:
                status, body = await http(host, port, "POST", "/jobs", spec)
                await wait_done(host, port, json.loads(body)["job"])
            for _ in range(10):  # a burst of duplicate (cache-hit) work
                for spec in specs:
                    status, body = await http(
                        host, port, "POST", "/jobs", spec
                    )
                    assert json.loads(body)["cached"] is True
            manager = service.manager
            cache = manager.cache
            assert len(manager._jobs) <= 5  # max_jobs + transients
            assert service.stats.jobs_evicted > 0
            assert (
                len(cache._sizes) == 1  # newest always survives
                or cache.total_bytes <= max_bytes
            )
            stats = service.stats
            assert stats.cache_evictions == cache.evictions

        run(
            scenario,
            max_jobs=4,
            cache=ResultCache(tmp_path, max_bytes=max_bytes),
        )


# ----------------------------------------------------------------------
# Bounded result cache (byte cap + single writer)
# ----------------------------------------------------------------------
class TestCacheBounds:
    def test_max_bytes_evicts_lru_from_both_tiers(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=100)
        try:
            cache.put("a" * 64, b'{"v": "' + b"x" * 53 + b'"}')  # 62 bytes
            cache.put("b" * 64, b'{"v": "' + b"y" * 53 + b'"}')
            assert cache.evictions == 1
            assert cache.get("a" * 64) is None  # memory AND disk gone
            assert not (tmp_path / ("a" * 64 + ".json")).exists()
            assert cache.get("b" * 64) is not None
            assert cache.total_bytes <= 100
        finally:
            cache.close()

    def test_get_refreshes_lru_order(self):
        cache = ResultCache(max_bytes=150)
        cache.put("a" * 64, b"x" * 60)
        cache.put("b" * 64, b"y" * 60)
        assert cache.get("a" * 64) is not None  # refresh: a is now MRU
        cache.put("c" * 64, b"z" * 60)  # over cap: evicts b, not a
        assert cache.get("b" * 64) is None
        assert cache.get("a" * 64) is not None
        assert cache.get("c" * 64) is not None
        assert cache.evictions == 1

    def test_newest_entry_survives_even_over_cap(self):
        cache = ResultCache(max_bytes=10)
        cache.put("a" * 64, b"x" * 100)
        assert cache.get("a" * 64) == b"x" * 100
        assert cache.evictions == 0

    def test_cap_spans_restarts(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a" * 64, b'{"v": 1}')
        cache.put("b" * 64, b'{"v": 2}')
        cache.close()
        reopened = ResultCache(tmp_path, max_bytes=10)
        try:
            # Preexisting entries were indexed and capped at startup.
            assert len(reopened._sizes) == 1
            assert reopened.evictions == 1
        finally:
            reopened.close()

    def test_second_writer_fails_fast(self, tmp_path):
        cache = ResultCache(tmp_path)
        try:
            with pytest.raises(OptionsError, match="already in use"):
                ResultCache(tmp_path)
        finally:
            cache.close()
        # Released: a sequential daemon restart reuses the directory.
        again = ResultCache(tmp_path)
        again.close()
        again.close()  # idempotent

    def test_max_bytes_validated(self):
        with pytest.raises(OptionsError):
            ResultCache(max_bytes=0)


# ----------------------------------------------------------------------
# Streaming
# ----------------------------------------------------------------------
class TestStream:
    def test_stream_replays_commits_then_terminal_event(self):
        async def scenario(service, host, port):
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            job = json.loads(body)["job"]
            status, raw = await http(
                host, port, "GET", f"/jobs/{job}/stream"
            )
            assert status == 200
            lines = [json.loads(l) for l in raw.splitlines() if l]
            assert lines, "stream must carry at least the terminal event"
            candidates = [l for l in lines if l["event"] == "candidate"]
            assert candidates, "ordered commits must be streamed"
            assert all(
                set(c) >= {"tau", "status", "m", "rung"} for c in candidates
            )
            assert lines[-1]["event"] == "done"
            # The streamed taus are the result's candidate sequence.
            _, res = await http(host, port, "GET", f"/jobs/{job}/result")
            doc = json.loads(res)
            assert len(candidates) == doc["candidates"]
            assert [c["tau"] for c in candidates] == [
                r["tau"] for r in doc["checkpoint"]["records"]
            ]

        run(scenario)

    def test_stream_of_cached_job_ends_immediately(self):
        async def scenario(service, host, port):
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            await wait_done(host, port, json.loads(body)["job"])
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            job = json.loads(body)["job"]
            status, raw = await http(
                host, port, "GET", f"/jobs/{job}/stream"
            )
            lines = [json.loads(l) for l in raw.splitlines() if l]
            assert lines[-1]["event"] == "done"
            assert lines[-1]["cached"] is True

        run(scenario)


# ----------------------------------------------------------------------
# HTTP hygiene: clean errors, never tracebacks
# ----------------------------------------------------------------------
class TestHttpHygiene:
    @pytest.mark.parametrize(
        "body",
        [
            b"this is not json",
            b"[1, 2, 3]",
            json.dumps({"circuit": {"kind": "nope", "source": "x"}}).encode(),
            json.dumps({"circuit": {"kind": "bench",
                                    "source": "NOT A NETLIST("}}).encode(),
            json.dumps({**EXAMPLE2, "options": {"bdd_kernel": "bad"}}).encode(),
        ],
    )
    def test_malformed_submissions_get_400(self, body):
        async def scenario(service, host, port):
            status, raw = await http(host, port, "POST", "/jobs", body)
            assert status == 400
            doc = json.loads(raw)  # the error itself is clean JSON
            assert "error" in doc and "Traceback" not in raw.decode()
            # The daemon survived: it still answers.
            status, raw = await http(host, port, "GET", "/healthz")
            assert status == 200

        run(scenario)

    def test_unknown_paths_and_methods(self):
        async def scenario(service, host, port):
            assert (await http(host, port, "GET", "/nope"))[0] == 404
            assert (await http(host, port, "GET", "/jobs/xx"))[0] == 404
            assert (
                await http(host, port, "DELETE", "/jobs/xx")
            )[0] == 404
            assert (await http(host, port, "PUT", "/jobs"))[0] == 405
            status, body = await http(host, port, "POST", "/jobs", EXAMPLE2)
            job = json.loads(body)["job"]
            assert (
                await http(host, port, "POST", f"/jobs/{job}/result")
            )[0] == 405
            assert (
                await http(host, port, "GET", f"/jobs/{job}/cancel")
            )[0] == 405
            await wait_done(host, port, job)

        run(scenario)

    def test_result_of_running_job_is_409(self):
        async def scenario(service, host, port):
            manager = service.manager
            job = manager.submit(dict(S27_JOB))
            status, body = await http(
                host, port, "GET", f"/jobs/{job.id}/result"
            )
            if not job.finished:  # it was genuinely still running
                assert status == 409
            manager.cancel(job)
            await wait_done(host, port, job.id)

        run(scenario)

    def test_malformed_wire_requests(self):
        async def scenario(service, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GARBAGE\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            assert b" 400 " in raw.split(b"\r\n", 1)[0]
            status, _ = await http(host, port, "GET", "/healthz")
            assert status == 200

        run(scenario)

    def test_stats_endpoint_shape(self):
        async def scenario(service, host, port):
            status, body = await http(host, port, "GET", "/stats")
            assert status == 200
            doc = json.loads(body)
            assert set(doc) == set(ServiceStats().as_dict())

        run(scenario)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestServeCli:
    def test_rejects_bad_flags(self, capsys):
        assert main(["serve", "--max-inflight", "0"]) == 1
        assert "--max-inflight" in capsys.readouterr().err
        assert main(["serve", "--port", "-1"]) == 1
        assert "--port" in capsys.readouterr().err
        assert main(["serve", "--port", "70000"]) == 1
        assert main(["serve", "--jobs", "-1"]) == 1
        assert main(["serve", "--max-retries", "-1"]) == 1
        assert main(["serve", "--task-timeout", "0"]) == 1
        assert main(["serve", "--heartbeat-interval", "0"]) == 1
        assert main([
            "serve", "--heartbeat-interval", "0.5",
            "--heartbeat-timeout", "0.1",
        ]) == 1

    def test_rejects_bad_hardening_flags(self, capsys):
        assert main(["serve", "--job-ttl", "0"]) == 1
        assert "--job-ttl" in capsys.readouterr().err
        assert main(["serve", "--max-jobs", "0"]) == 1
        assert "--max-jobs" in capsys.readouterr().err
        assert main(["serve", "--cache-max-bytes", "0"]) == 1
        assert "--cache-max-bytes" in capsys.readouterr().err
        assert main(["serve", "--connect-timeout", "0"]) == 1
        assert "--connect-timeout" in capsys.readouterr().err

    def test_rejects_unpaired_tls_flags(self, capsys):
        assert main(["serve", "--tls-cert", "c.pem"]) == 1
        assert "--tls-key" in capsys.readouterr().err
        assert main(["serve", "--tls-ca", "ca.pem"]) == 1
        assert "--tls-cert" in capsys.readouterr().err

    def test_rejects_broken_secret_sources(self, tmp_path, capsys):
        assert main([
            "serve", "--auth-token-file", str(tmp_path / "missing"),
        ]) == 1
        assert "token" in capsys.readouterr().err
        empty = tmp_path / "empty"
        empty.write_text("  \n")
        assert main(["serve", "--auth-token-file", str(empty)]) == 1
        assert "empty" in capsys.readouterr().err

    def test_rejects_locked_cache_dir(self, tmp_path, capsys):
        # Two daemons on one --cache-dir: the second exits 1 with the
        # single-writer message instead of racing the first.
        cache = ResultCache(tmp_path)
        try:
            assert main(["serve", "--cache-dir", str(tmp_path)]) == 1
            assert "already in use" in capsys.readouterr().err
        finally:
            cache.close()
