"""Tests for path enumeration and the gate-coupled exact LP (Sec. 7)."""

from fractions import Fraction

import pytest

from repro.errors import AnalysisError
from repro.logic import Circuit, DelayMap, Gate, GateType, Interval, Latch, PinTiming
from repro.mct.discretize import TimedLeaf, build_discretized_machine
from repro.mct.engine import MctOptions, minimum_cycle_time
from repro.mct.feasibility import sigma_is_feasible, sigma_sup_tau
from repro.mct.lp_exact import ExactFeasibility
from repro.timed.paths import enumerate_paths, paths_by_timed_leaf

from tests.test_timed_expansion import fig2_circuit


def shared_stem_circuit() -> tuple[Circuit, DelayMap]:
    """q -> S([1,2]) -> {A(+3), B(+1)} -> AND -> q.

    Both register paths share the stem S, so their delays are coupled:
    k_A - k_B = 2 for every manufacturing realization.
    """
    gates = [
        Gate("S", GateType.BUF, ("q",)),
        Gate("A", GateType.BUF, ("S",)),
        Gate("B", GateType.BUF, ("S",)),
        Gate("d", GateType.AND, ("A", "B")),
    ]
    circuit = Circuit("stem", [], [], gates, [Latch("q", "d")])
    pins = {
        ("S", 0): PinTiming.symmetric(Interval.of(1, 2)),
        ("A", 0): PinTiming.symmetric(3),
        ("B", 0): PinTiming.symmetric(1),
        ("d", 0): PinTiming.symmetric(0),
        ("d", 1): PinTiming.symmetric(0),
    }
    return circuit, DelayMap(circuit, pins)


class TestEnumeratePaths:
    def test_fig2_paths(self):
        circuit, delays = fig2_circuit()
        paths = enumerate_paths(circuit, delays, "g")
        assert len(paths) == 4
        totals = sorted(p.total.lo for p in paths)
        assert totals == [Fraction(3, 2), 2, 4, 5]
        assert all(p.leaf == "f" and p.root == "g" for p in paths)

    def test_edges_compose_total(self):
        circuit, delays = fig2_circuit()
        for path in enumerate_paths(circuit, delays, "g"):
            acc = Interval.point(0)
            for net, pin, kind in path.edges:
                timing = delays.pin(net, pin)
                acc = acc + (timing.rise if kind in ("s", "r") else timing.fall)
            assert acc == path.total

    def test_asymmetric_pin_doubles_paths(self):
        gates = [Gate("y", GateType.BUF, ("x",))]
        circuit = Circuit("a", ["x"], ["y"], gates)
        delays = DelayMap(circuit, {("y", 0): PinTiming.asym(3, 1)})
        paths = enumerate_paths(circuit, delays, "y")
        assert {p.total.lo for p in paths} == {1, 3}
        assert {p.edges[0][2] for p in paths} == {"r", "f"}

    def test_path_cap(self):
        circuit, delays = fig2_circuit()
        with pytest.raises(AnalysisError):
            enumerate_paths(circuit, delays, "g", max_paths=2)

    def test_grouping_matches_timed_leaves(self):
        circuit, delays = shared_stem_circuit()
        paths = enumerate_paths(circuit, delays, "d")
        grouped = paths_by_timed_leaf(paths)
        assert set(grouped) == {
            ("q", Interval.of(4, 5)),
            ("q", Interval.of(2, 3)),
        }


class TestExactLp:
    def setup_method(self):
        circuit, delays = shared_stem_circuit()
        self.machine = build_discretized_machine(circuit, delays)
        self.oracle = ExactFeasibility(self.machine)
        self.leaf_a = TimedLeaf("q", Interval.of(4, 5))
        self.leaf_b = TimedLeaf("q", Interval.of(2, 3))

    def test_relaxed_feasible_but_coupled_infeasible(self):
        """σ = (age 3 on the slow path, age 1 on the fast path) needs
        the shared stem to be simultaneously slow and fast."""
        sigma_options = {self.leaf_a: (3,), self.leaf_b: (1,)}
        window = (Fraction(2), Fraction(5, 2))
        assert sigma_is_feasible(sigma_options, window)          # relaxed: yes
        assert sigma_sup_tau(sigma_options, window) == Fraction(5, 2)
        sigma = {self.leaf_a: 3, self.leaf_b: 1}
        assert not self.oracle.feasible(sigma, window)           # coupled: no

    def test_coupled_feasible_combination(self):
        # Both paths at "natural" ages: realizable, sup inside window.
        sigma = {self.leaf_a: 1, self.leaf_b: 1}
        window = (Fraction(5), Fraction(8))
        sup = self.oracle.sup_tau(sigma, window)
        assert sup is not None
        assert Fraction(5) <= sup <= Fraction(8)

    def test_exact_never_exceeds_relaxed(self):
        window = (Fraction(2), Fraction(6))
        for age_a in (1, 2, 3):
            for age_b in (1, 2):
                options = {self.leaf_a: (age_a,), self.leaf_b: (age_b,)}
                relaxed = sigma_sup_tau(options, window)
                exact = self.oracle.sup_tau(
                    {self.leaf_a: age_a, self.leaf_b: age_b}, window
                )
                if exact is not None:
                    assert relaxed is not None
                    # float LP tolerance
                    assert exact <= relaxed + Fraction(1, 1000)

    def test_option_sets_take_max(self):
        options = {self.leaf_a: (1, 2), self.leaf_b: (1,)}
        window = (Fraction(3), Fraction(8))
        best = self.oracle.sup_tau_options(options, window)
        singles = [
            self.oracle.sup_tau({self.leaf_a: a, self.leaf_b: 1}, window)
            for a in (1, 2)
        ]
        singles = [s for s in singles if s is not None]
        assert best == max(singles)

    def test_combination_cap_raises(self):
        options = {self.leaf_a: tuple(range(1, 10)), self.leaf_b: tuple(range(1, 10))}
        with pytest.raises(AnalysisError):
            self.oracle.sup_tau_options(options, None, max_combinations=4)

    def test_missing_leaf_rejected(self):
        with pytest.raises(AnalysisError):
            self.oracle.sup_tau({self.leaf_a: 1}, None)


class TestEngineIntegration:
    def test_exact_option_agrees_on_uncoupled_circuit(self):
        """Fig. 2 has no shared gates: exact == relaxed bound."""
        circuit, delays = fig2_circuit()
        widened = delays.widen(Fraction(9, 10))
        relaxed = minimum_cycle_time(circuit, widened)
        exact = minimum_cycle_time(
            circuit, widened, MctOptions(exact_feasibility=True)
        )
        assert exact.failure_found == relaxed.failure_found
        # Float LP supremum may sit a hair under the rational bound.
        diff = abs(exact.mct_upper_bound - relaxed.mct_upper_bound)
        assert diff <= Fraction(1, 1000)

    def test_exact_option_on_coupled_circuit_not_looser(self):
        circuit, delays = shared_stem_circuit()
        relaxed = minimum_cycle_time(circuit, delays)
        exact = minimum_cycle_time(
            circuit, delays, MctOptions(exact_feasibility=True)
        )
        assert exact.mct_upper_bound <= relaxed.mct_upper_bound + Fraction(1, 1000)
