"""Tests for the classic-FSM generators (gray counter, traffic light)."""

from fractions import Fraction

import pytest

from repro.benchgen.generators import gray_counter, traffic_light
from repro.delay import floating_delay, longest_topological_delay
from repro.errors import AnalysisError
from repro.fsm import enumerate_reachable, extract_stg, reachable_state_count
from repro.mct import minimum_cycle_time


class TestGrayCounter:
    def test_sequence_is_gray(self):
        circuit, _ = gray_counter(3)
        init = {q: False for q in circuit.state_nets}
        states, outputs = circuit.simulate(init, [{}] * 8)
        codes = [
            tuple(o[po] for po in circuit.outputs) for o in outputs
        ]
        # Consecutive Gray outputs differ in exactly one bit...
        for a, b in zip(codes, codes[1:]):
            assert sum(x != y for x, y in zip(a, b)) == 1
        # ...and the full 8-cycle walk visits 8 distinct codes.
        assert len(set(codes)) == 8

    def test_full_state_space_reachable(self):
        circuit, _ = gray_counter(3)
        assert reachable_state_count(circuit) == 8

    def test_timing_profile(self):
        circuit, delays = gray_counter(4, stage_delay=1)
        top = longest_topological_delay(circuit, delays)
        assert floating_delay(circuit, delays).delay == top
        result = minimum_cycle_time(circuit, delays)
        assert result.mct_upper_bound <= top

    def test_min_size(self):
        with pytest.raises(AnalysisError):
            gray_counter(1)


class TestTrafficLight:
    def test_cycle(self):
        circuit, _ = traffic_light()
        init = {"q0": False, "q1": False}
        # Car arrives: green -> yellow -> red -> green.
        states, outputs = circuit.simulate(
            init, [{"car": True}, {"car": False}, {"car": False}]
        )
        assert states[0] == {"q0": True, "q1": False}    # yellow
        assert states[1] == {"q0": False, "q1": True}    # red
        assert states[2] == {"q0": False, "q1": False}   # green

    def test_green_holds_without_cars(self):
        circuit, _ = traffic_light()
        init = {"q0": False, "q1": False}
        states, _ = circuit.simulate(init, [{"car": False}] * 4)
        assert all(s == init for s in states)

    def test_unreachable_state(self):
        circuit, _ = traffic_light()
        reachable = enumerate_reachable(circuit)
        assert (True, True) not in reachable
        assert len(reachable) == 3

    def test_stg_shape(self):
        circuit, _ = traffic_light()
        stg = extract_stg(circuit)
        assert stg.number_of_nodes() == 3
        assert stg.number_of_edges() == 6  # 3 states x 2 inputs

    def test_exactly_one_lamp_lit(self):
        circuit, _ = traffic_light()
        for state in enumerate_reachable(circuit):
            state_map = dict(zip(circuit.state_nets, state))
            values = circuit.eval_combinational({**state_map, "car": False})
            lit = [values[lamp] for lamp in ("green", "yellow", "red")]
            assert sum(lit) == 1

    def test_analyzable(self):
        circuit, delays = traffic_light(stage_delay=2)
        result = minimum_cycle_time(circuit, delays)
        assert result.mct_upper_bound is not None
