"""The socket transport: cluster sweeps, heartbeats, lease recovery.

The contract under test is the ISSUE's acceptance criterion: a
three-worker loopback cluster in which one worker is killed mid-run
and another silently drops its heartbeats must still produce a bound,
candidate sequence, and checkpoint identical to the serial sweep, with
``MctResult.supervision`` recording the reclaimed leases.  Worker
death is a throughput event, never a correctness event — exactly the
PR 5 supervision contract, lifted across a process/host boundary.
"""

from __future__ import annotations

import contextlib
import os
import signal
import socket
from fractions import Fraction

import pytest

from repro.benchgen import S27_BENCH, paper_example2
from repro.benchgen.suite import suite_cases
from repro.cli import main
from repro.errors import AnalysisError, OptionsError
from repro.mct import MctOptions, minimum_cycle_time
from repro.parallel import (
    RetryPolicy,
    SocketTransport,
    WorkerServer,
    parse_worker_address,
    run_suite_sharded,
)
from repro.resilience import inject_faults

#: Fast-converging policy for tests: real backoff shape, tiny sleeps.
FAST = RetryPolicy(max_retries=2, backoff_base=0.001, backoff_cap=0.005)

#: Analysis options every cluster test uses: tight heartbeat cadence so
#: partition detection happens in milliseconds, fast retry ladder.
CLUSTER_OPTS = dict(
    retry_policy=FAST, heartbeat_interval=0.05, heartbeat_timeout=0.2
)


def candidate_keys(result):
    """The deterministic fields of the candidate sequence.

    ``elapsed_seconds``/``ite_calls``/``attempts``/``quarantined`` are
    measurements of one particular execution and legitimately differ
    between a disturbed and an undisturbed run.
    """
    return [(r.tau, r.status, r.m, r.rung) for r in result.candidates]


def assert_equivalent(serial, disturbed):
    assert disturbed.mct_upper_bound == serial.mct_upper_bound
    assert candidate_keys(disturbed) == candidate_keys(serial)
    assert disturbed.failure_found == serial.failure_found
    assert disturbed.failing_window == serial.failing_window
    assert disturbed.failing_sigmas == serial.failing_sigmas
    assert disturbed.failing_roots == serial.failing_roots
    assert disturbed.exhausted == serial.exhausted
    assert disturbed.notes == serial.notes


@contextlib.contextmanager
def fleet(*servers, **transport_kwargs):
    """Start in-process loopback workers, yield a transport over them."""
    started = [server.start() for server in servers]
    kwargs = dict(
        connect_timeout=2.0, heartbeat_interval=0.05, heartbeat_timeout=0.2
    )
    kwargs.update(transport_kwargs)
    try:
        yield SocketTransport(
            ["%s:%d" % server.address for server in started], **kwargs
        )
    finally:
        for server in started:
            server.stop()


def free_port() -> int:
    """A port that was just free (and is closed again)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# ----------------------------------------------------------------------
# Address parsing and option validation (satellite: clean errors, not
# deep tracebacks from inside a session)
# ----------------------------------------------------------------------
class TestValidation:
    def test_parse_worker_address(self):
        assert parse_worker_address("localhost:7761") == ("localhost", 7761)
        assert parse_worker_address(" 10.0.0.1:80 ") == ("10.0.0.1", 80)

    @pytest.mark.parametrize(
        "text", ["nohost", "host:", "host:abc", "host:0", "host:70000", ":80"]
    )
    def test_parse_worker_address_rejects(self, text):
        with pytest.raises(OptionsError):
            parse_worker_address(text)

    def test_parse_worker_address_port_zero_opt_in(self):
        # The worker CLI binds port 0 (ephemeral); coordinators cannot
        # dial it.
        assert parse_worker_address("h:0", allow_port_zero=True) == ("h", 0)

    def test_heartbeat_knobs_validated_at_construction(self):
        with pytest.raises(OptionsError):
            MctOptions(heartbeat_interval=0.0)
        with pytest.raises(OptionsError):
            MctOptions(heartbeat_interval=-1.0)
        with pytest.raises(OptionsError):
            MctOptions(heartbeat_interval=0.5, heartbeat_timeout=0.1)

    def test_options_error_is_both_kinds(self):
        # CLI handlers catch AnalysisError; legacy tests catch
        # ValueError.  OptionsError must satisfy both.
        assert issubclass(OptionsError, AnalysisError)
        assert issubclass(OptionsError, ValueError)
        with pytest.raises(ValueError):
            MctOptions(heartbeat_interval=0.0)

    def test_transport_rejects_bad_addresses_eagerly(self):
        with pytest.raises(OptionsError):
            SocketTransport(["good:1234", "bad"])
        with pytest.raises(OptionsError):
            SocketTransport([])

    def test_session_requires_positive_cadence(self):
        with pytest.raises(OptionsError):
            SocketTransport(["h:1"], heartbeat_interval=0.0).open_suite()

    def test_no_reachable_workers_is_analysis_error(self):
        circuit, delays = paper_example2()
        transport = SocketTransport(
            ["127.0.0.1:%d" % free_port()], connect_timeout=0.5
        )
        with pytest.raises(AnalysisError, match="no cluster workers"):
            minimum_cycle_time(
                circuit, delays, MctOptions(**CLUSTER_OPTS),
                transport=transport,
            )


# ----------------------------------------------------------------------
# Cluster sweeps (the tentpole's acceptance criterion)
# ----------------------------------------------------------------------
class TestClusterSweep:
    @pytest.fixture(scope="class")
    def widened(self):
        circuit, delays = paper_example2()
        return circuit, delays.widen(Fraction(9, 10))

    @pytest.fixture(scope="class")
    def serial(self, widened):
        circuit, delays = widened
        return minimum_cycle_time(circuit, delays)

    def test_clean_cluster_matches_serial(self, widened, serial):
        circuit, delays = widened
        with fleet(WorkerServer(), WorkerServer(), WorkerServer()) as tp:
            result = minimum_cycle_time(
                circuit, delays, MctOptions(**CLUSTER_OPTS), transport=tp
            )
        assert_equivalent(serial, result)
        assert result.supervision is not None
        assert result.supervision.crashes == 0
        assert result.supervision.workers_lost == 0
        assert all(r.attempts == 1 for r in result.candidates)
        assert not any(r.quarantined for r in result.candidates)

    def test_host_kill_reclaims_leases(self, widened, serial):
        # One worker dies after its first decide; its leased window is
        # reclaimed and re-dispatched, and the answer never changes.
        circuit, delays = widened
        with fleet(WorkerServer(), WorkerServer(kill_at=1)) as tp:
            result = minimum_cycle_time(
                circuit, delays, MctOptions(**CLUSTER_OPTS), transport=tp
            )
        assert_equivalent(serial, result)
        sup = result.supervision
        assert sup.workers_lost >= 1
        assert sup.crashes >= 1
        assert sup.leases_reclaimed >= 1
        assert sup.retries >= 1

    def test_heartbeat_partition_detected(self, widened, serial):
        # The partitioned worker still computes but sends nothing; only
        # heartbeat liveness can notice (the socket never EOFs).
        circuit, delays = widened
        with fleet(WorkerServer(), WorkerServer(drop_heartbeats_after=0)) as tp:
            result = minimum_cycle_time(
                circuit, delays, MctOptions(**CLUSTER_OPTS), transport=tp
            )
        assert_equivalent(serial, result)
        sup = result.supervision
        assert sup.heartbeat_failures >= 1
        assert sup.workers_lost >= 1
        assert sup.leases_reclaimed >= 1

    def test_mixed_faults_three_workers(self, widened, serial):
        # The acceptance scenario: one healthy worker, one killed, one
        # silently partitioned — answer identical to serial, leases
        # reclaimed from both casualties.
        circuit, delays = widened
        with fleet(
            WorkerServer(),
            WorkerServer(kill_at=1),
            WorkerServer(drop_heartbeats_after=0),
        ) as tp:
            result = minimum_cycle_time(
                circuit, delays, MctOptions(**CLUSTER_OPTS), transport=tp
            )
        assert_equivalent(serial, result)
        sup = result.supervision
        assert sup.workers_lost == 2
        assert sup.crashes >= 1
        assert sup.heartbeat_failures >= 1
        assert sup.leases_reclaimed >= 2

    def test_all_workers_partitioned_falls_back_serial(self, widened, serial):
        # Every worker goes silent: retries cannot help, so the ladder
        # escalates to quarantine and the parent decides every window
        # in-process — the sweep still finishes with the serial answer.
        circuit, delays = widened
        with fleet(
            WorkerServer(drop_heartbeats_after=0),
            WorkerServer(drop_heartbeats_after=0),
        ) as tp:
            result = minimum_cycle_time(
                circuit, delays, MctOptions(**CLUSTER_OPTS), transport=tp
            )
        assert_equivalent(serial, result)
        sup = result.supervision
        assert sup.heartbeat_failures >= 2
        assert sup.workers_lost == 2
        assert sup.quarantined >= 1
        assert any(r.quarantined for r in result.candidates)

    def test_all_workers_dead_falls_back_serial(self, widened, serial):
        circuit, delays = widened
        with fleet(WorkerServer(kill_at=1), WorkerServer(kill_at=1)) as tp:
            result = minimum_cycle_time(
                circuit, delays, MctOptions(**CLUSTER_OPTS), transport=tp
            )
        assert_equivalent(serial, result)
        assert result.supervision.workers_lost == 2
        assert result.supervision.quarantined >= 1

    def test_unreachable_worker_is_recorded_not_silent(self, widened, serial):
        # Satellite (PR 9): a partially reachable fleet must not
        # silently degrade — the dead address shows up in the
        # supervision stats (and hence --stats / result telemetry),
        # while the sweep still runs to the serial answer on survivors.
        circuit, delays = widened
        dead = "127.0.0.1:%d" % free_port()
        server = WorkerServer().start()
        try:
            tp = SocketTransport(
                ["%s:%d" % server.address, dead],
                connect_timeout=0.5,
                heartbeat_interval=0.05,
                heartbeat_timeout=0.2,
            )
            result = minimum_cycle_time(
                circuit, delays, MctOptions(**CLUSTER_OPTS), transport=tp
            )
        finally:
            server.stop()
        assert_equivalent(serial, result)
        sup = result.supervision
        assert sup.unreachable_workers == [dead]
        assert f"unreachable=1({dead})" in sup.summary()
        assert sup.as_dict()["unreachable_workers"] == [dead]

    def test_reachable_fleet_reports_no_unreachable(self, widened):
        circuit, delays = widened
        with fleet(WorkerServer()) as tp:
            result = minimum_cycle_time(
                circuit, delays, MctOptions(**CLUSTER_OPTS), transport=tp
            )
        sup = result.supervision
        assert sup.unreachable_workers == []
        assert "unreachable" not in sup.summary()
        assert "unreachable_workers" not in sup.as_dict()

    def test_fault_plan_arms_worker_servers(self):
        # In-process loopback workers inherit the active fault plan, so
        # cluster chaos tests need no explicit plumbing.
        with inject_faults(kill_host_at=1, drop_heartbeats_after=3):
            server = WorkerServer()
        assert server.kill_at == 1
        assert server.drop_heartbeats_after == 3
        server.stop()
        clean = WorkerServer()
        assert clean.kill_at is None
        assert clean.drop_heartbeats_after is None
        clean.stop()

    def test_serial_checkpoint_resumes_on_cluster(self, widened, serial):
        # Satellite: the fingerprint excludes execution knobs, so a
        # checkpoint written by a serial run resumes over any transport.
        circuit, delays = widened
        partial = minimum_cycle_time(
            circuit, delays, MctOptions(work_budget=120)
        )
        assert partial.checkpoint is not None
        with fleet(WorkerServer(), WorkerServer()) as tp:
            resumed = minimum_cycle_time(
                circuit,
                delays,
                MctOptions(**CLUSTER_OPTS),
                resume_from=partial.checkpoint,
                transport=tp,
            )
        assert_equivalent(serial, resumed)


# ----------------------------------------------------------------------
# Authenticated + TLS wire (the hardening tentpole)
# ----------------------------------------------------------------------
class TestClusterSecurity:
    @pytest.fixture(scope="class")
    def widened(self):
        circuit, delays = paper_example2()
        return circuit, delays.widen(Fraction(9, 10))

    @pytest.fixture(scope="class")
    def serial(self, widened):
        circuit, delays = widened
        return minimum_cycle_time(circuit, delays)

    def test_authenticated_fleet_matches_serial(self, widened, serial):
        circuit, delays = widened
        with fleet(
            WorkerServer(secret=b"s3cret"), WorkerServer(secret=b"s3cret"),
            secret=b"s3cret",
        ) as tp:
            result = minimum_cycle_time(
                circuit, delays, MctOptions(**CLUSTER_OPTS), transport=tp
            )
        assert_equivalent(serial, result)
        sup = result.supervision
        assert sup.auth_failures == 0
        assert "auth_failures" not in sup.as_dict()
        assert "auth_failures" not in sup.summary()

    def test_wrong_secret_is_permanent_not_retried(self, widened, serial):
        # One impostor worker among good ones: the handshake refusal is
        # recorded as an auth failure (permanent — no lease, no retry,
        # no quarantine ladder), and the survivors still produce the
        # exact serial answer.
        circuit, delays = widened
        with fleet(
            WorkerServer(secret=b"s3cret"), WorkerServer(secret=b"WRONG"),
            secret=b"s3cret",
        ) as tp:
            bad = "%s:%d" % tp.addresses[1]
            result = minimum_cycle_time(
                circuit, delays, MctOptions(**CLUSTER_OPTS), transport=tp
            )
        assert_equivalent(serial, result)
        sup = result.supervision
        assert sup.auth_failures == 1
        assert sup.unreachable_workers == [bad]
        assert sup.as_dict()["auth_failures"] == 1
        assert "auth_failures=1" in sup.summary()
        # Permanent means permanent: the refusal consumed no retry
        # budget and quarantined nothing.
        assert sup.retries == 0
        assert sup.quarantined == 0

    def test_all_wrong_secrets_is_clean_analysis_error(self, widened):
        circuit, delays = widened
        with fleet(WorkerServer(secret=b"WRONG"), secret=b"s3cret") as tp:
            with pytest.raises(AnalysisError, match="no cluster workers"):
                minimum_cycle_time(
                    circuit, delays, MctOptions(**CLUSTER_OPTS), transport=tp
                )

    def test_secretless_client_refused_by_secret_worker(self, widened):
        circuit, delays = widened
        with fleet(WorkerServer(secret=b"s3cret")) as tp:
            with pytest.raises(AnalysisError, match="no cluster workers"):
                minimum_cycle_time(
                    circuit, delays, MctOptions(**CLUSTER_OPTS), transport=tp
                )

    def test_secret_client_refuses_secretless_worker(self, widened):
        # The expectation is mutual: a coordinator configured for auth
        # must not ship pickles to a worker that never proved itself.
        circuit, delays = widened
        with fleet(WorkerServer(), secret=b"s3cret") as tp:
            with pytest.raises(AnalysisError, match="no cluster workers"):
                minimum_cycle_time(
                    circuit, delays, MctOptions(**CLUSTER_OPTS), transport=tp
                )

    def test_worker_survives_auth_probe(self, widened, serial):
        # A refused peer must not wedge the worker: after the impostor
        # is turned away, a correct coordinator gets the full answer.
        circuit, delays = widened
        server = WorkerServer(secret=b"s3cret").start()
        try:
            address = "%s:%d" % server.address
            with pytest.raises(AnalysisError, match="no cluster workers"):
                minimum_cycle_time(
                    circuit, delays, MctOptions(**CLUSTER_OPTS),
                    transport=SocketTransport(
                        [address], connect_timeout=2.0, secret=b"WRONG"
                    ),
                )
            result = minimum_cycle_time(
                circuit, delays, MctOptions(**CLUSTER_OPTS),
                transport=SocketTransport(
                    [address], connect_timeout=2.0, secret=b"s3cret"
                ),
            )
        finally:
            server.stop()
        assert_equivalent(serial, result)

    def test_tls_fleet_matches_serial(self, widened, serial, tls_certs):
        from repro.netsec import build_client_context, build_server_context

        circuit, delays = widened
        with fleet(
            WorkerServer(
                ssl_context=build_server_context(
                    tls_certs["cert"], tls_certs["key"]
                )
            ),
            WorkerServer(
                ssl_context=build_server_context(
                    tls_certs["cert"], tls_certs["key"]
                )
            ),
            ssl_context=build_client_context(tls_certs["ca"]),
        ) as tp:
            result = minimum_cycle_time(
                circuit, delays, MctOptions(**CLUSTER_OPTS), transport=tp
            )
        assert_equivalent(serial, result)

    def test_tls_and_auth_compose(self, widened, serial, tls_certs):
        from repro.netsec import build_client_context, build_server_context

        circuit, delays = widened
        with fleet(
            WorkerServer(
                secret=b"s3cret",
                ssl_context=build_server_context(
                    tls_certs["cert"], tls_certs["key"]
                ),
            ),
            secret=b"s3cret",
            ssl_context=build_client_context(tls_certs["ca"]),
        ) as tp:
            result = minimum_cycle_time(
                circuit, delays, MctOptions(**CLUSTER_OPTS), transport=tp
            )
        assert_equivalent(serial, result)
        assert result.supervision.auth_failures == 0

    def test_untrusted_worker_cert_is_refused(self, widened, tls_certs,
                                              tmp_path):
        # The client trusts exactly its CA bundle: a worker presenting
        # a certificate from outside it is unreachable, not trusted.
        import shutil
        import subprocess

        from repro.netsec import build_client_context, build_server_context

        openssl = shutil.which("openssl")
        if openssl is None:
            pytest.skip("openssl CLI not available")
        other_cert = tmp_path / "other.pem"
        other_key = tmp_path / "other.key"
        subprocess.run(
            [openssl, "req", "-x509", "-newkey", "rsa:2048",
             "-keyout", str(other_key), "-out", str(other_cert),
             "-days", "2", "-nodes", "-subj", "/CN=untrusted"],
            capture_output=True, check=True,
        )
        circuit, delays = widened
        with fleet(
            WorkerServer(
                ssl_context=build_server_context(other_cert, other_key)
            ),
            ssl_context=build_client_context(tls_certs["ca"]),
            connect_timeout=2.0,
        ) as tp:
            with pytest.raises(AnalysisError, match="no cluster workers"):
                minimum_cycle_time(
                    circuit, delays, MctOptions(**CLUSTER_OPTS), transport=tp
                )

    def test_half_open_worker_bounded_by_connect_timeout(self, widened,
                                                         serial):
        # A listener that accepts TCP but never answers the handshake
        # (a SYN-blackholed or wedged host): the dial must give up in
        # --connect-timeout seconds, not hang on an unbounded read.
        import time as _time

        circuit, delays = widened
        silent = socket.socket()
        silent.bind(("127.0.0.1", 0))
        silent.listen(8)  # backlog ACKs the connect; nobody ever reads
        server = WorkerServer().start()
        try:
            tp = SocketTransport(
                ["%s:%d" % server.address,
                 "127.0.0.1:%d" % silent.getsockname()[1]],
                connect_timeout=0.5,
                heartbeat_interval=0.05,
                heartbeat_timeout=0.2,
            )
            began = _time.monotonic()
            result = minimum_cycle_time(
                circuit, delays, MctOptions(**CLUSTER_OPTS), transport=tp
            )
            elapsed = _time.monotonic() - began
        finally:
            server.stop()
            silent.close()
        assert_equivalent(serial, result)
        assert len(result.supervision.unreachable_workers) == 1
        assert elapsed < 10.0  # bounded: one 0.5s dial, not a hang

    def test_transport_validates_connect_timeout(self):
        with pytest.raises(OptionsError):
            SocketTransport(["h:1"], connect_timeout=0.0)


# ----------------------------------------------------------------------
# Suite rows over the cluster
# ----------------------------------------------------------------------
class TestClusterSuite:
    @staticmethod
    def row_key(row):
        return (
            row.name,
            row.flags,
            row.topological,
            row.floating,
            row.transition,
            row.mct,
            row.mct_partial,
            row.mct_rung,
        )

    def test_rows_match_serial(self):
        from repro.report.harness import run_suite

        cases = [c for c in suite_cases() if c.name in ("g444", "g526")]
        serial = run_suite(cases=cases, include_s27=False)
        with fleet(WorkerServer(), WorkerServer()) as tp:
            rows, workers = run_suite_sharded(
                cases=cases, include_s27=False, retry=FAST, transport=tp
            )
        assert [self.row_key(r) for r in rows] == [
            self.row_key(r) for r in serial
        ]
        # Cluster worker stats carry a host:pid label, not a local pid.
        remote = [w for w in workers if isinstance(w.pid, str)]
        assert remote and all(":" in w.pid for w in remote)
        assert sum(w.tasks for w in workers) == len(rows)

    def test_killed_suite_worker_recovers(self):
        from repro.report.harness import run_suite

        cases = [c for c in suite_cases() if c.name in ("g444", "g526")]
        serial = run_suite(cases=cases, include_s27=False)
        with fleet(WorkerServer(), WorkerServer(kill_at=1)) as tp:
            rows, workers = run_suite_sharded(
                cases=cases, include_s27=False, retry=FAST, transport=tp
            )
        assert [self.row_key(r) for r in rows] == [
            self.row_key(r) for r in serial
        ]


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestClusterCli:
    @pytest.fixture()
    def bench(self, tmp_path):
        path = tmp_path / "s27.bench"
        path.write_text(S27_BENCH)
        return str(path)

    def test_analyze_over_cluster(self, bench, capsys):
        with fleet(WorkerServer(), WorkerServer()) as tp:
            addresses = ",".join("%s:%d" % a for a in tp.addresses)
            code = main([
                "analyze", bench, "--widen", "0.9", "--stats",
                "--workers", addresses,
                "--heartbeat-interval", "0.05",
                "--heartbeat-timeout", "0.2",
            ])
        out = capsys.readouterr().out
        assert code == 0
        assert "minimum cycle time" in out

    def test_analyze_rejects_zero_heartbeat_interval(self, bench, capsys):
        code = main(["analyze", bench, "--heartbeat-interval", "0"])
        assert code == 1
        assert "--heartbeat-interval" in capsys.readouterr().err

    def test_analyze_rejects_timeout_below_interval(self, bench, capsys):
        code = main([
            "analyze", bench,
            "--heartbeat-interval", "0.5", "--heartbeat-timeout", "0.1",
        ])
        assert code == 1
        assert "--heartbeat-timeout" in capsys.readouterr().err

    def test_analyze_rejects_bad_worker_address(self, bench, capsys):
        code = main(["analyze", bench, "--workers", "nonsense"])
        assert code == 1
        assert "--workers" in capsys.readouterr().err

    def test_analyze_unreachable_workers_clean_error(self, bench, capsys):
        code = main([
            "analyze", bench,
            "--workers", "127.0.0.1:%d" % free_port(),
        ])
        assert code == 1
        assert "no cluster workers" in capsys.readouterr().err

    def test_table_rejects_zero_heartbeat_interval(self, capsys):
        code = main([
            "table", "--rows", "g444", "--no-s27",
            "--heartbeat-interval", "0",
        ])
        assert code == 1
        assert "--heartbeat-interval" in capsys.readouterr().err

    def test_worker_rejects_bad_listen_address(self, capsys):
        assert main(["worker", "--listen", "nonsense"]) == 1
        assert "listen" in capsys.readouterr().err

    def test_worker_rejects_negative_fault_knobs(self, capsys):
        assert main(["worker", "--kill-at", "-1"]) == 1
        assert main(["worker", "--drop-heartbeats-after", "-2"]) == 1

    def test_analyze_authenticated_cluster(self, bench, tmp_path, capsys):
        secret = tmp_path / "secret"
        secret.write_text("cli-secret\n")
        with fleet(
            WorkerServer(secret=b"cli-secret"),
            WorkerServer(secret=b"cli-secret"),
        ) as tp:
            addresses = ",".join("%s:%d" % a for a in tp.addresses)
            code = main([
                "analyze", bench, "--widen", "0.9",
                "--workers", addresses,
                "--secret-file", str(secret),
                "--heartbeat-interval", "0.05",
                "--heartbeat-timeout", "0.2",
            ])
        out = capsys.readouterr().out
        assert code == 0
        assert "minimum cycle time" in out

    def test_analyze_wrong_secret_exits_cleanly(self, bench, tmp_path,
                                                capsys):
        secret = tmp_path / "secret"
        secret.write_text("WRONG")
        with fleet(WorkerServer(secret=b"cli-secret")) as tp:
            code = main([
                "analyze", bench,
                "--workers", "%s:%d" % tp.addresses[0],
                "--secret-file", str(secret),
            ])
        err = capsys.readouterr().err
        assert code == 1
        assert "no cluster workers" in err
        assert "Traceback" not in err

    def test_analyze_rejects_connect_timeout_zero(self, bench, capsys):
        code = main(["analyze", bench, "--connect-timeout", "0"])
        assert code == 1
        assert "--connect-timeout" in capsys.readouterr().err

    def test_analyze_rejects_missing_secret_file(self, bench, capsys):
        code = main([
            "analyze", bench, "--secret-file", "/nonexistent/secret",
        ])
        assert code == 1
        assert "secret" in capsys.readouterr().err

    def test_analyze_rejects_tls_flags_without_workers(self, bench, capsys):
        code = main(["analyze", bench, "--tls-ca", "ca.pem"])
        assert code == 1
        assert "--workers" in capsys.readouterr().err

    def test_analyze_rejects_unpaired_client_cert(self, bench, capsys):
        code = main([
            "analyze", bench, "--workers", "h:1", "--tls-ca", "ca.pem",
            "--tls-cert", "c.pem",
        ])
        assert code == 1
        assert "--tls-cert" in capsys.readouterr().err

    def test_worker_rejects_unpaired_tls_flags(self, capsys):
        assert main(["worker", "--tls-cert", "c.pem"]) == 1
        assert "--tls-key" in capsys.readouterr().err
        assert main(["worker", "--tls-ca", "ca.pem"]) == 1
        assert "--tls-cert" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Worker shutdown (satellite: SIGTERM/SIGINT must exit cleanly)
# ----------------------------------------------------------------------
class TestWorkerShutdown:
    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_worker_exits_cleanly_on_signal(self, signum):
        # Satellite (PR 9): an operator `kill` (or Ctrl-C) of
        # `repro-mct worker` must close the listener and exit 0 — not
        # hang on the stop event or die with a traceback.
        import subprocess
        import sys

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "worker",
             "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            assert line.startswith("listening on "), line
            host, port = parse_worker_address(line.split()[-1])
            # The worker is genuinely serving: the hello handshake works.
            with socket.create_connection((host, port), timeout=2.0):
                pass
            proc.send_signal(signum)
            code = proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert code == 0, proc.stderr.read()
        # The listener is really gone, not leaked to a zombie thread.
        with pytest.raises(OSError):
            with socket.create_connection((host, port), timeout=0.5):
                pass
