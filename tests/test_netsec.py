"""The shared security layer: frame codec, secrets, proofs, TLS.

The contract under test is the hardening ISSUE's satellite (a): no
byte sequence a peer can put on the cluster wire may produce anything
but a clean :class:`~repro.netsec.ProtocolError` — never an
out-of-memory allocation, never a stray ValueError escaping a reader
thread — plus the primitives the handshake and the HTTP bearer gate
are built from.
"""

from __future__ import annotations

import json
import socket
import ssl
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OptionsError
from repro.netsec import (
    AuthenticationError,
    ProtocolError,
    build_client_context,
    build_server_context,
    check_bearer,
    constant_time_eq,
    hmac_proof,
    load_secret,
    new_nonce,
)
from repro.parallel.cluster import (
    MAX_FRAME,
    PROTOCOL,
    recv_frame,
    send_frame,
)

_LEN = struct.Struct(">I")

#: JSON-representable frame payloads (what the protocol actually sends:
#: string-keyed objects of scalars, lists, and nested objects).
_json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**31), max_value=2**31)
    | st.text(max_size=40),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=12,
)
_frames = st.dictionaries(st.text(max_size=10), _json_values, max_size=6)


def _pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


# ----------------------------------------------------------------------
# Frame codec: round trips and hostile bytes
# ----------------------------------------------------------------------
class TestFrameCodec:
    @settings(max_examples=50, deadline=None)
    @given(message=_frames)
    def test_round_trip(self, message):
        a, b = _pair()
        try:
            send_frame(a, message)
            assert recv_frame(b) == message
        finally:
            a.close()
            b.close()

    @settings(max_examples=100, deadline=None)
    @given(junk=st.binary(max_size=256))
    def test_garbage_bytes_never_escape_protocol_error(self, junk):
        # Arbitrary bytes under a valid length prefix: the reader must
        # either parse a JSON object or raise exactly ProtocolError —
        # no UnicodeDecodeError, JSONDecodeError, or MemoryError.
        a, b = _pair()
        try:
            a.sendall(_LEN.pack(len(junk)) + junk)
            try:
                message = recv_frame(b)
            except ProtocolError:
                pass
            else:
                assert isinstance(message, dict)
        finally:
            a.close()
            b.close()

    def test_oversized_prefix_rejected_before_allocation(self):
        a, b = _pair()
        try:
            # A 4-byte lie claiming a larger-than-MAX_FRAME body: the
            # reader must refuse on the prefix alone.
            a.sendall(_LEN.pack(MAX_FRAME + 1))
            with pytest.raises(ProtocolError, match="oversized"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_truncated_frame_is_protocol_error(self):
        a, b = _pair()
        try:
            a.sendall(_LEN.pack(100) + b'{"partial"')
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_non_object_json_is_protocol_error(self):
        a, b = _pair()
        try:
            body = json.dumps([1, 2, 3]).encode()
            a.sendall(_LEN.pack(len(body)) + body)
            with pytest.raises(ProtocolError, match="not a JSON object"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_send_refuses_oversized_frame(self):
        a, b = _pair()
        try:
            with pytest.raises(ProtocolError, match="oversized"):
                send_frame(a, {"blob": "x" * (MAX_FRAME + 1)})
        finally:
            a.close()
            b.close()

    def test_protocol_errors_are_connection_errors(self):
        # Every existing reader loop catches ConnectionError; the new
        # defect types must ride that path, not crash threads.
        assert issubclass(ProtocolError, ConnectionError)
        assert issubclass(AuthenticationError, ConnectionError)


# ----------------------------------------------------------------------
# Secret material
# ----------------------------------------------------------------------
class TestLoadSecret:
    def test_file_wins_and_strips_whitespace(self, tmp_path, monkeypatch):
        path = tmp_path / "secret"
        path.write_text("  hunter2\n")
        monkeypatch.setenv("REPRO_TEST_SECRET", "from-env")
        assert load_secret(path, "REPRO_TEST_SECRET") == b"hunter2"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SECRET", " token \n")
        assert load_secret(None, "REPRO_TEST_SECRET") == b"token"

    def test_nothing_configured_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_SECRET", raising=False)
        assert load_secret(None, "REPRO_TEST_SECRET") is None

    def test_missing_file_is_options_error(self, tmp_path):
        with pytest.raises(OptionsError, match="cannot read"):
            load_secret(tmp_path / "nope")

    def test_empty_file_is_options_error(self, tmp_path):
        path = tmp_path / "secret"
        path.write_text("\n  \n")
        with pytest.raises(OptionsError, match="empty"):
            load_secret(path)

    def test_empty_env_is_options_error(self, monkeypatch):
        # A set-but-empty variable is a broken config, not "no auth".
        monkeypatch.setenv("REPRO_TEST_SECRET", "  ")
        with pytest.raises(OptionsError, match="empty"):
            load_secret(None, "REPRO_TEST_SECRET")


# ----------------------------------------------------------------------
# Proofs and bearer checks
# ----------------------------------------------------------------------
class TestProofs:
    def test_proof_is_deterministic_and_domain_separated(self):
        nonce = new_nonce()
        proof = hmac_proof(b"s", PROTOCOL, "client", nonce)
        assert proof == hmac_proof(b"s", PROTOCOL, "client", nonce)
        # Role, nonce, protocol, and secret each change the proof: a
        # recorded proof cannot be reflected into the other direction.
        assert proof != hmac_proof(b"s", PROTOCOL, "server", nonce)
        assert proof != hmac_proof(b"s", PROTOCOL, "client", new_nonce())
        assert proof != hmac_proof(b"s", "other/1", "client", nonce)
        assert proof != hmac_proof(b"z", PROTOCOL, "client", nonce)

    def test_nonces_are_fresh(self):
        assert len({new_nonce() for _ in range(64)}) == 64

    def test_constant_time_eq_mixed_types(self):
        assert constant_time_eq("abc", b"abc")
        assert constant_time_eq(b"abc", "abc")
        assert not constant_time_eq("abc", "abd")

    @pytest.mark.parametrize(
        "header, ok",
        [
            ("Bearer sesame", True),
            ("bearer sesame", True),  # scheme is case-insensitive
            ("Bearer  sesame ", True),  # surrounding space is stripped
            ("Bearer wrong", False),
            ("Basic sesame", False),
            ("sesame", False),
            ("", False),
            (None, False),
        ],
    )
    def test_check_bearer(self, header, ok):
        assert check_bearer(header, b"sesame") is ok


# ----------------------------------------------------------------------
# TLS context builders
# ----------------------------------------------------------------------
class TestTlsContexts:
    def test_server_context(self, tls_certs):
        context = build_server_context(tls_certs["cert"], tls_certs["key"])
        assert context.verify_mode == ssl.CERT_NONE

    def test_server_context_with_ca_demands_client_certs(self, tls_certs):
        context = build_server_context(
            tls_certs["cert"], tls_certs["key"], tls_certs["ca"]
        )
        assert context.verify_mode == ssl.CERT_REQUIRED

    def test_client_context_pins_ca_not_hostname(self, tls_certs):
        context = build_client_context(tls_certs["ca"])
        assert context.check_hostname is False
        assert context.verify_mode == ssl.CERT_REQUIRED

    def test_bad_material_is_options_error(self, tmp_path):
        junk = tmp_path / "junk.pem"
        junk.write_text("not a certificate")
        with pytest.raises(OptionsError, match="server TLS"):
            build_server_context(junk, junk)
        with pytest.raises(OptionsError, match="client TLS"):
            build_client_context(junk)
        with pytest.raises(OptionsError, match="server TLS"):
            build_server_context(tmp_path / "none.pem", tmp_path / "none.pem")
