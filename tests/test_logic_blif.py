"""Tests for the BLIF reader/writer."""

import itertools

import pytest

from repro.errors import BenchParseError
from repro.logic import Circuit, Gate, GateType, Latch, parse_bench
from repro.logic.blif import parse_blif, write_blif

from tests.test_logic_bench import S27_TEXT


SIMPLE = """\
# a tiny mealy machine
.model tiny
.inputs a b
.outputs y
.latch d q re clk 0
.names a b t
11 1
.names t q d
1- 1
-1 1
.names q y
0 1
.end
"""


class TestParse:
    def test_simple_structure(self):
        c = parse_blif(SIMPLE)
        assert c.name == "tiny"
        assert c.inputs == ("a", "b")
        assert c.outputs == ("y",)
        assert set(c.latches) == {"q"}
        assert c.blif_initial_state == {"q": False}

    def test_cover_semantics(self):
        c = parse_blif(SIMPLE)
        # t = a AND b; d = t OR q; y = NOT q.
        values = c.eval_combinational({"a": True, "b": True, "q": False})
        assert values["t"] is True
        assert values["d"] is True
        assert values["y"] is True
        values = c.eval_combinational({"a": True, "b": False, "q": False})
        assert values["d"] is False

    def test_offset_cover(self):
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n"
        c = parse_blif(text)
        # Single cube with output 0: y = NOT(a AND b).
        for a, b in itertools.product([False, True], repeat=2):
            assert c.eval_combinational({"a": a, "b": b})["y"] == (not (a and b))

    def test_constant_covers(self):
        text = (
            ".model m\n.outputs y z w\n"
            ".names y\n1\n"
            ".names z\n"
            ".names w\n# nothing\n.end\n"
        )
        c = parse_blif(text)
        values = c.eval_combinational({})
        assert values["y"] is True
        assert values["z"] is False
        assert values["w"] is False

    def test_dont_care_columns(self):
        text = ".model m\n.inputs a b c\n.outputs y\n.names a b c y\n1-0 1\n.end\n"
        c = parse_blif(text)
        assert c.eval_combinational({"a": True, "b": False, "c": False})["y"]
        assert not c.eval_combinational({"a": True, "b": False, "c": True})["y"]

    def test_continuation_lines(self):
        text = ".model m\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n"
        c = parse_blif(text)
        assert c.inputs == ("a", "b")

    def test_latch_without_init(self):
        text = ".model m\n.inputs a\n.outputs q\n.latch a q\n.end\n"
        c = parse_blif(text)
        assert c.blif_initial_state == {"q": None}

    def test_mixed_polarity_rejected(self):
        text = ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end\n"
        with pytest.raises(BenchParseError):
            parse_blif(text)

    def test_cube_width_mismatch(self):
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n"
        with pytest.raises(BenchParseError):
            parse_blif(text)

    def test_cube_outside_names(self):
        with pytest.raises(BenchParseError):
            parse_blif(".model m\n11 1\n.end\n")

    def test_subckt_unsupported(self):
        with pytest.raises(BenchParseError):
            parse_blif(".model m\n.subckt foo a=b\n.end\n")

    def test_bad_cube_char(self):
        text = ".model m\n.inputs a\n.outputs y\n.names a y\nX 1\n.end\n"
        with pytest.raises(BenchParseError):
            parse_blif(text)


class TestWriteRoundTrip:
    @pytest.mark.parametrize(
        "gtype,n",
        [
            (GateType.AND, 2), (GateType.OR, 3), (GateType.NAND, 2),
            (GateType.NOR, 2), (GateType.XOR, 2), (GateType.XNOR, 3),
            (GateType.NOT, 1), (GateType.BUF, 1),
        ],
    )
    def test_every_gate_type_round_trips(self, gtype, n):
        inputs = [f"i{k}" for k in range(n)]
        circuit = Circuit(
            "one", inputs, ["y"], [Gate("y", gtype, tuple(inputs))]
        )
        back = parse_blif(write_blif(circuit))
        for bits in itertools.product([False, True], repeat=n):
            env = dict(zip(inputs, bits))
            assert (
                back.eval_combinational(env)["y"]
                == circuit.eval_combinational(env)["y"]
            )

    def test_s27_bench_to_blif_round_trip(self):
        original = parse_bench(S27_TEXT, name="s27")
        back = parse_blif(write_blif(original, initial_state={
            q: False for q in original.state_nets
        }))
        assert set(back.latches) == set(original.latches)
        assert back.blif_initial_state == {q: False for q in original.state_nets}
        # Functional equivalence over a stimulus sweep.
        stim = [
            {"G0": bool(i & 1), "G1": bool(i & 2), "G2": bool(i & 4), "G3": bool(i & 8)}
            for i in range(16)
        ]
        init = {q: False for q in original.state_nets}
        _, out1 = original.simulate(init, stim)
        _, out2 = back.simulate(init, stim)
        assert out1 == out2

    def test_constants_round_trip(self):
        circuit = Circuit(
            "k", [], ["y", "z"],
            [Gate("y", GateType.CONST1, ()), Gate("z", GateType.CONST0, ())],
        )
        back = parse_blif(write_blif(circuit))
        values = back.eval_combinational({})
        assert values["y"] is True and values["z"] is False

    def test_latch_init_written(self):
        circuit = Circuit(
            "m", [], ["q"], [Gate("d", GateType.NOT, ("q",))], [Latch("q", "d")]
        )
        text = write_blif(circuit, initial_state={"q": True})
        assert ".latch d q re clk 1" in text
        back = parse_blif(text)
        assert back.blif_initial_state == {"q": True}
