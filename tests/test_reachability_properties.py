"""Symbolic vs explicit reachability must agree on random machines."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BddManager
from repro.benchgen.generators import random_fsm
from repro.fsm import enumerate_reachable, reachable_state_count, reachable_states


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_symbolic_matches_explicit(seed):
    circuit, _ = random_fsm(seed, n_inputs=2, n_latches=3, n_gates=10)
    mgr = BddManager()
    symbolic = reachable_states(circuit, manager=mgr)
    explicit = enumerate_reachable(circuit)
    for bits in itertools.product([False, True], repeat=3):
        env = dict(zip(circuit.state_nets, bits))
        assert symbolic.evaluate(env) == (bits in explicit)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.tuples(st.booleans(), st.booleans()),
)
def test_count_matches_for_any_initial_state(seed, init_bits):
    circuit, _ = random_fsm(seed, n_inputs=1, n_latches=2, n_gates=8)
    init = dict(zip(circuit.state_nets, init_bits))
    assert reachable_state_count(circuit, init) == len(
        enumerate_reachable(circuit, init)
    )


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_reachable_set_is_inductive(seed):
    """R contains the initial state and is closed under the image."""
    circuit, _ = random_fsm(seed, n_inputs=1, n_latches=2, n_gates=8)
    mgr = BddManager()
    reached = reachable_states(circuit, manager=mgr)
    init = {q: False for q in circuit.state_nets}
    assert reached.evaluate(init)
    for state in enumerate_reachable(circuit):
        state_map = dict(zip(circuit.state_nets, state))
        for bits in itertools.product([False, True], repeat=len(circuit.inputs)):
            stimulus = dict(zip(circuit.inputs, bits))
            nxt, _ = circuit.step(state_map, stimulus)
            assert reached.evaluate(nxt)
