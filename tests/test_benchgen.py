"""Tests for the benchmark generators and the table suite.

Each generator's timing profile is verified against the actual
analyses — the suite's table values must be *computed*, not asserted by
construction.
"""

from fractions import Fraction

import pytest

from repro.benchgen import (
    build_case,
    counter,
    fig2_rung,
    lfsr,
    merge,
    paper_example2,
    prefix_circuit,
    random_fsm,
    s27,
    shift_register,
    suite_cases,
    toggle_loop,
)
from repro.benchgen.generators import false_path_block, hold_loop
from repro.delay import floating_delay, longest_topological_delay, transition_delay
from repro.errors import AnalysisError
from repro.mct import MctOptions, minimum_cycle_time


class TestFixedCircuits:
    def test_example2_ground_truth(self):
        circuit, delays = paper_example2()
        assert longest_topological_delay(circuit, delays) == 5
        assert floating_delay(circuit, delays).delay == 4
        assert transition_delay(circuit, delays).delay == 2
        assert minimum_cycle_time(circuit, delays).mct_upper_bound == Fraction(5, 2)

    def test_s27_parses_and_analyzes(self):
        circuit, delays = s27()
        assert circuit.stats == {"inputs": 4, "outputs": 1, "gates": 10, "latches": 3}
        top = longest_topological_delay(circuit, delays)
        flt = floating_delay(circuit, delays).delay
        mct = minimum_cycle_time(circuit, delays).mct_upper_bound
        assert 0 < flt <= top
        assert mct is not None and mct <= flt


class TestGenerators:
    def test_toggle_profile(self):
        circuit, delays = toggle_loop(Fraction(7), chain_len=3)
        assert longest_topological_delay(circuit, delays) == 7
        assert floating_delay(circuit, delays).delay == 7
        assert transition_delay(circuit, delays).delay == 7
        assert minimum_cycle_time(circuit, delays).mct_upper_bound == 7

    def test_toggle_needs_odd_chain(self):
        with pytest.raises(AnalysisError):
            toggle_loop(5, chain_len=2)

    def test_hold_profile(self):
        """The unrealizable-transition block: comb bounds pessimistic."""
        circuit, delays = hold_loop(Fraction(9), chain_len=4)
        assert longest_topological_delay(circuit, delays) == 9
        assert floating_delay(circuit, delays).delay == 9
        assert transition_delay(circuit, delays).delay == 9
        result = minimum_cycle_time(circuit, delays)
        # The hold loop never constrains tau: the sweep exhausts.
        assert not result.failure_found

    def test_interval_bank_profile(self):
        """The exact-LP stress block: one huge multi-age option set."""
        from repro.benchgen.generators import interval_bank
        from repro.mct.engine import MctOptions

        circuit, delays = interval_bank(4)
        options = MctOptions(exact_feasibility=True, max_exact_combinations=64)
        result = minimum_cycle_time(circuit, delays, options)
        # The point-delay driver pins the bound at its own breakpoint,
        # and the exact supremum reaches it exactly.
        assert result.failure_found
        assert result.mct_upper_bound == Fraction(21, 5)
        lp = result.lp_stats
        # 4 two-age holds => 16 combinations; one solve prices the
        # window top and prunes the other 15.
        assert lp.solves + lp.prescreen_skips + lp.bound_prunes == 16
        assert lp.bound_prunes > lp.solves

    def test_interval_bank_validates_straddle(self):
        from repro.benchgen.generators import interval_bank

        with pytest.raises(AnalysisError):
            interval_bank(2, driver_delay=5, hold_lo=1, hold_hi=2)
        with pytest.raises(AnalysisError):
            interval_bank(0)

    def test_false_path_block_profile(self):
        circuit, delays = false_path_block(Fraction(10), Fraction(8))
        assert longest_topological_delay(circuit, delays) == 10
        assert floating_delay(circuit, delays).delay == 8
        result = minimum_cycle_time(circuit, delays)
        assert result.mct_upper_bound <= 8

    def test_fig2_rung_is_example2_scaled(self):
        circuit, delays = fig2_rung(scale=2)
        assert longest_topological_delay(circuit, delays) == 10
        assert floating_delay(circuit, delays).delay == 8
        assert minimum_cycle_time(circuit, delays).mct_upper_bound == 5

    def test_counter_profile(self):
        circuit, delays = counter(4, stage_delay=1)
        top = longest_topological_delay(circuit, delays)
        assert top == 4  # 3 AND stages + XOR
        assert floating_delay(circuit, delays).delay == top
        assert minimum_cycle_time(circuit, delays).mct_upper_bound == top

    def test_shift_register_profile(self):
        circuit, delays = shift_register(5, stage_delay=3)
        assert longest_topological_delay(circuit, delays) == 3
        assert minimum_cycle_time(circuit, delays).mct_upper_bound == 3

    def test_lfsr_profile(self):
        circuit, delays = lfsr(4, taps=(0, 1), stage_delay=2)
        top = longest_topological_delay(circuit, delays)
        assert top == 4  # two chained tap XORs
        assert minimum_cycle_time(circuit, delays).mct_upper_bound == top

    def test_random_fsm_reproducible(self):
        c1, d1 = random_fsm(seed=5)
        c2, d2 = random_fsm(seed=5)
        assert c1.gates == c2.gates
        assert c1.latches == c2.latches
        c3, _ = random_fsm(seed=6)
        assert c1.gates != c3.gates


class TestCompose:
    def test_prefix_keeps_behaviour(self):
        circuit, delays = toggle_loop(3)
        renamed, rdelays = prefix_circuit(circuit, delays, "x_")
        assert set(renamed.latches) == {"x_q"}
        assert minimum_cycle_time(renamed, rdelays).mct_upper_bound == 3

    def test_merge_mct_is_max(self):
        merged, delays = merge(
            "duo", [toggle_loop(3, name="a"), toggle_loop(5, name="b")]
        )
        assert minimum_cycle_time(merged, delays).mct_upper_bound == 5
        assert longest_topological_delay(merged, delays) == 5

    def test_merge_hold_plus_toggle_is_seq_gain(self):
        """The ‡ pattern: hold(10) ⊕ toggle(8)."""
        merged, delays = merge(
            "gx", [hold_loop(10, name="cfg"), toggle_loop(8, name="crit")]
        )
        assert longest_topological_delay(merged, delays) == 10
        assert floating_delay(merged, delays).delay == 10
        assert transition_delay(merged, delays).delay == 10
        assert minimum_cycle_time(merged, delays).mct_upper_bound == 8

    def test_merge_rejects_empty(self):
        from repro.errors import CircuitError

        with pytest.raises(CircuitError):
            merge("none", [])


class TestSuite:
    def test_suite_has_all_paper_rows(self):
        cases = suite_cases()
        assert len(cases) == 18
        assert [c.paper_name for c in cases][:3] == ["s444", "s526", "s526n"]

    def test_rows_are_buildable(self):
        for case in suite_cases():
            circuit, delays = build_case(case)
            assert circuit.stats["gates"] > 10
            assert delays.circuit is circuit

    @pytest.mark.parametrize("row", ["g444", "g526", "g641"])
    def test_representative_rows_match_paper_columns(self, row):
        case = next(c for c in suite_cases() if c.name == row)
        circuit, delays = build_case(case)
        assert longest_topological_delay(circuit, delays) == case.paper_top
        assert floating_delay(circuit, delays).delay == case.paper_float
        assert transition_delay(circuit, delays).delay == case.paper_trans
        mct = minimum_cycle_time(circuit, delays).mct_upper_bound
        assert mct == case.paper_mct

    def test_deep_multicycle_row(self):
        case = next(c for c in suite_cases() if c.name == "g38584")
        circuit, delays = build_case(case)
        assert longest_topological_delay(circuit, delays) == case.paper_top
        result = minimum_cycle_time(circuit, delays)
        assert result.mct_upper_bound == 82
        # The headline: MCT below a quarter of the topological delay.
        assert result.mct_upper_bound * 4 < case.paper_top

    def test_seq_gain_fraction_of_suite(self):
        """~20% of the paper's full ISCAS suite improved; in the table
        itself 7 of 18 rows are marked ‡."""
        cases = suite_cases()
        flagged = [c for c in cases if c.expects_seq_gain]
        assert len(flagged) == 7
