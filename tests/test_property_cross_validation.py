"""Cross-validation property tests: the analyses against each other.

Independent implementations must agree:

* **Transition delay vs. brute force** — the TBF-based 2-vector delay
  must equal the max over all vector pairs of the event simulator's
  last output transition (they share no code above the netlist).
* **MCT ≤ floating** — a theorem: above the floating delay every stale
  leaf lies on a settled-masked path, so the decision algorithm passes;
  the computed bound can therefore never exceed the floating delay.
* **MCT soundness vs. exact equivalence** — at the computed bound the
  τ-machine is I/O-equivalent to the steady machine (ground truth by
  product-machine BFS over all pre-start histories).
* **MCT soundness vs. simulation** — clocking any delay realization at
  the bound reproduces the ideal machine on random stimuli.
"""

import itertools
import random
from fractions import Fraction

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.benchgen.generators import random_combinational, random_fsm
from repro.delay import floating_delay, longest_topological_delay, transition_delay
from repro.errors import AnalysisError
from repro.fsm import equivalent_to_steady
from repro.mct import MctOptions, minimum_cycle_time
from repro.sim import ClockedSimulator, last_output_transition, sample_delay_map


def brute_force_transition(circuit, delays) -> Fraction:
    best = Fraction(0)
    vectors = [
        dict(zip(circuit.inputs, bits))
        for bits in itertools.product([False, True], repeat=len(circuit.inputs))
    ]
    for v1 in vectors:
        for v2 in vectors:
            t = last_output_transition(circuit, delays, v1, v2)
            if t > best:
                best = t
    return best


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_transition_delay_matches_event_simulation(seed):
    circuit, delays = random_combinational(seed, n_inputs=3, n_gates=7)
    analytic = transition_delay(circuit, delays).delay
    simulated = brute_force_transition(circuit, delays)
    assert analytic == simulated


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_floating_at_least_transition_at_most_topological(seed):
    circuit, delays = random_combinational(seed, n_inputs=3, n_gates=8)
    top = longest_topological_delay(circuit, delays)
    flt = floating_delay(circuit, delays).delay
    trans = transition_delay(circuit, delays).delay
    assert trans <= flt <= top


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_mct_never_exceeds_floating(seed):
    """Failing windows lie strictly below the floating delay, so a
    *found* bound can never exceed it.  (When no failure is found the
    reported value is just the sweep floor — a valid but unrelated
    number, e.g. for machines whose outputs are constant.)"""
    circuit, delays = random_fsm(seed, n_inputs=2, n_latches=3, n_gates=10)
    result = minimum_cycle_time(circuit, delays, MctOptions(max_age=8))
    assert result.mct_upper_bound is not None
    if result.failure_found:
        flt = floating_delay(circuit, delays).delay
        assert result.mct_upper_bound <= flt


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_mct_interval_bound_bounded_by_floating(seed):
    circuit, delays = random_fsm(seed, n_inputs=1, n_latches=2, n_gates=8)
    widened = delays.widen(Fraction(9, 10))
    result = minimum_cycle_time(circuit, widened, MctOptions(max_age=8))
    if result.failure_found:
        flt = floating_delay(circuit, widened).delay
        assert result.mct_upper_bound <= flt


@pytest.mark.parametrize("seed", range(12))
def test_mct_sound_against_exact_equivalence(seed):
    """At the computed bound, the exact machines are I/O-equivalent."""
    circuit, delays = random_fsm(seed, n_inputs=1, n_latches=2, n_gates=6)
    result = minimum_cycle_time(circuit, delays, MctOptions(max_age=6))
    bound = result.mct_upper_bound
    try:
        assert equivalent_to_steady(circuit, delays, bound, max_pairs=1 << 14)
    except AnalysisError:
        pytest.skip("product machine too large for the exact oracle")


@pytest.mark.parametrize("seed", range(10))
def test_mct_sound_against_simulation(seed):
    """Clocking at the bound reproduces the ideal machine (sampled)."""
    circuit, delays = random_fsm(seed, n_inputs=2, n_latches=3, n_gates=10)
    result = minimum_cycle_time(circuit, delays, MctOptions(max_age=8))
    bound = result.mct_upper_bound
    sim = ClockedSimulator(circuit, delays)
    rng = random.Random(seed)
    init = {q: False for q in circuit.latches}
    stimulus = [
        {u: rng.random() < 0.5 for u in circuit.inputs} for _ in range(24)
    ]
    assert sim.matches_ideal(bound, init, stimulus)


@pytest.mark.parametrize("seed", range(10))
def test_mct_sound_under_delay_variation(seed):
    """Interval bound: every sampled realization behaves ideally at it."""
    circuit, delays = random_fsm(seed, n_inputs=1, n_latches=2, n_gates=8)
    widened = delays.widen(Fraction(9, 10))
    result = minimum_cycle_time(circuit, widened, MctOptions(max_age=8))
    bound = result.mct_upper_bound
    rng = random.Random(seed + 999)
    init = {q: False for q in circuit.latches}
    stimulus = [
        {u: rng.random() < 0.5 for u in circuit.inputs} for _ in range(20)
    ]
    for _ in range(3):
        realization = sample_delay_map(widened, rng)
        sim = ClockedSimulator(circuit, realization)
        assert sim.matches_ideal(bound, init, stimulus)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
# Regression: both sweeps exhaust their breakpoint stream, and the
# guard band used to add grid points below the base sweep's smallest
# breakpoint, shrinking the *reported* bound of a strictly more
# pessimistic machine.  The engine now examines the τ floor itself, so
# the exhausted-sweep bound is grid-independent.
@example(2476)
def test_setup_guard_band_monotone(seed):
    circuit, delays = random_fsm(seed, n_inputs=1, n_latches=2, n_gates=6)
    base = minimum_cycle_time(circuit, delays, MctOptions(max_age=8))
    guarded = minimum_cycle_time(
        circuit,
        delays.with_setup_hold(setup=Fraction(1, 2), hold=0),
        MctOptions(max_age=8),
    )
    assert guarded.mct_upper_bound >= base.mct_upper_bound
