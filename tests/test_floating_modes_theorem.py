"""Reproduction of the [6] relationship the paper relies on (Sec. 5).

"A theorem in [6] says that single vector delay is the same as delay by
sequences of vectors **for most practical circuits**."  We implement
both semantics independently:

* :func:`floating_delay` — sequences of vectors: pre-settlement leaf
  reads are time-consistent (fanout branches reading the same leaf at
  the same shifted time agree);
* :func:`uncorrelated_floating_delay` — classic single-vector floating
  mode: arbitrary node values, no fanout correlation.

Checks: the two agree on the paper's example and on random circuits;
``uncorrelated ≥ sequence`` always; and the known divergence pattern
(re-convergent equal-delay fanout of one signal) actually diverges,
which is why the theorem says "most".
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.benchgen.generators import random_combinational
from repro.delay import (
    floating_delay,
    longest_topological_delay,
    uncorrelated_floating_delay,
)
from repro.logic import Circuit, DelayMap, Gate, GateType, Interval, PinTiming

from tests.test_timed_expansion import fig2_circuit


class TestUncorrelatedMode:
    def test_fig2_matches_paper(self):
        circuit, delays = fig2_circuit()
        assert uncorrelated_floating_delay(circuit, delays).delay == 4

    def test_plain_and_gate(self):
        gates = [Gate("y", GateType.AND, ("a", "b"))]
        circuit = Circuit("and2", ["a", "b"], ["y"], gates)
        pins = {("y", 0): PinTiming.symmetric(3), ("y", 1): PinTiming.symmetric(1)}
        delays = DelayMap(circuit, pins)
        assert uncorrelated_floating_delay(circuit, delays).delay == 3

    def test_interval_delays(self):
        gates = [Gate("y", GateType.BUF, ("a",))]
        circuit = Circuit("b", ["a"], ["y"], gates)
        pins = {("y", 0): PinTiming.symmetric(Interval.of(2, 3))}
        delays = DelayMap(circuit, pins)
        assert uncorrelated_floating_delay(circuit, delays).delay == 3

    def test_divergence_pattern(self):
        """y = XOR(buf1(x), buf2(x)), equal delays: physically y ≡ 0 and
        the sequence mode sees it (delay 0); the uncorrelated floating
        mode must conservatively report the full 3."""
        gates = [
            Gate("p", GateType.BUF, ("x",)),
            Gate("q", GateType.BUF, ("x",)),
            Gate("y", GateType.XOR, ("p", "q")),
        ]
        circuit = Circuit("reconv", ["x"], ["y"], gates)
        pins = {
            ("p", 0): PinTiming.symmetric(3),
            ("q", 0): PinTiming.symmetric(3),
            ("y", 0): PinTiming.symmetric(0),
            ("y", 1): PinTiming.symmetric(0),
        }
        delays = DelayMap(circuit, pins)
        assert floating_delay(circuit, delays).delay == 0
        assert uncorrelated_floating_delay(circuit, delays).delay == 3


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_uncorrelated_never_below_sequence(seed):
    circuit, delays = random_combinational(seed, n_inputs=3, n_gates=8)
    seq = floating_delay(circuit, delays).delay
    unc = uncorrelated_floating_delay(circuit, delays).delay
    assert seq <= unc <= longest_topological_delay(circuit, delays)


def test_modes_agree_on_most_circuits():
    """The "for most practical circuits" claim, quantified on our
    random family: the two modes agree on the overwhelming majority."""
    agree = 0
    total = 120
    for seed in range(total):
        circuit, delays = random_combinational(seed, n_inputs=3, n_gates=8)
        seq = floating_delay(circuit, delays).delay
        unc = uncorrelated_floating_delay(circuit, delays).delay
        assert seq <= unc
        if seq == unc:
            agree += 1
    assert agree >= total * 9 // 10
