"""Tests for forward retiming."""

import random
from fractions import Fraction

import pytest

from repro.errors import AnalysisError
from repro.logic import Circuit, DelayMap, Gate, GateType, Interval, Latch, PinTiming
from repro.mct import minimum_cycle_time
from repro.synthesis import forward_retime, legal_forward_moves, optimize_retiming


def staged_pipe() -> tuple[Circuit, DelayMap, dict]:
    """u -(1)-> q1 -(2+6)-> q2 -(1)-> y: the register sits before the
    heavy logic, so the q1->q2 stage dominates (9 with clk-to-q 1)."""
    gates = [
        Gate("s1", GateType.BUF, ("u",)),
        Gate("g", GateType.NOT, ("q1",)),
        Gate("heavy", GateType.BUF, ("g",)),
        Gate("y", GateType.BUF, ("q2",)),
    ]
    circuit = Circuit(
        "staged", ["u"], ["y"], gates,
        [Latch("q1", "s1"), Latch("q2", "heavy")],
    )
    pins = {
        ("s1", 0): PinTiming.symmetric(1),
        ("g", 0): PinTiming.symmetric(2),
        ("heavy", 0): PinTiming.symmetric(6),
        ("y", 0): PinTiming.symmetric(1),
    }
    latch_delay = {"q1": Interval.point(1), "q2": Interval.point(1)}
    delays = DelayMap(circuit, pins, latch_delay)
    return circuit, delays, {"q1": False, "q2": False}


class TestLegality:
    def test_moves_found(self):
        circuit, _, _ = staged_pipe()
        assert legal_forward_moves(circuit) == ["g"]

    def test_po_gate_illegal(self):
        gates = [Gate("y", GateType.NOT, ("q",)), Gate("d", GateType.BUF, ("u",))]
        c = Circuit("p", ["u"], ["y"], gates, [Latch("q", "d")])
        assert "y" not in legal_forward_moves(c)

    def test_shared_latch_illegal(self):
        gates = [
            Gate("a", GateType.NOT, ("q",)),
            Gate("b", GateType.BUF, ("q",)),   # q has fanout 2
            Gate("d", GateType.BUF, ("u",)),
        ]
        c = Circuit("p", ["u"], ["a", "b"], gates, [Latch("q", "d")])
        assert legal_forward_moves(c) == []

    def test_illegal_move_raises(self):
        circuit, delays, init = staged_pipe()
        with pytest.raises(AnalysisError):
            forward_retime(circuit, delays, "y", init)


class TestForwardRetime:
    def test_improves_bound(self):
        circuit, delays, init = staged_pipe()
        base = minimum_cycle_time(circuit, delays).mct_upper_bound
        assert base == 9  # clk2q 1 + 2 + 6
        retimed, rdelays, rinit = forward_retime(circuit, delays, "g", init)
        bound = minimum_cycle_time(
            retimed, rdelays,
        ).mct_upper_bound
        # After the move: u->s1->g into the new latch (1+1(clk2q q1?)..)
        # critical stage becomes latch(g)->heavy->q2 = 1 + 6 = 7.
        assert bound == 7

    def test_behaviour_preserved(self):
        circuit, delays, init = staged_pipe()
        retimed, rdelays, rinit = forward_retime(circuit, delays, "g", init)
        rng = random.Random(9)
        stim = [{"u": rng.random() < 0.5} for _ in range(16)]
        _, out_before = circuit.simulate(init, stim)
        _, out_after = retimed.simulate(rinit, stim)
        assert out_before == out_after

    def test_initial_state_transformed(self):
        circuit, delays, init = staged_pipe()
        init = {"q1": True, "q2": False}
        _, _, rinit = forward_retime(circuit, delays, "g", init)
        # g = NOT(q1): the moved latch holds NOT(True) = False.
        assert rinit == {"q2": False, "g": False}

    def test_structure(self):
        circuit, delays, init = staged_pipe()
        retimed, rdelays, _ = forward_retime(circuit, delays, "g", init)
        assert "q1" not in retimed.latches
        assert "g" in retimed.latches
        assert set(retimed.outputs) == {"y"}
        # Pin timing of the moved gate is preserved.
        new_gate = retimed.latches["g"].data
        assert rdelays.pin(new_gate, 0) == PinTiming.symmetric(2)


class TestOptimizeRetiming:
    def test_greedy_finds_the_move(self):
        circuit, delays, init = staged_pipe()
        result = optimize_retiming(circuit, delays, init)
        assert result.baseline == 9
        assert result.bound == 7
        assert result.moves == ("g",)
        assert result.improvement == Fraction(2, 9)

    def test_balanced_design_stays(self):
        gates = [
            Gate("s1", GateType.BUF, ("u",)),
            Gate("s2", GateType.BUF, ("q1",)),
        ]
        c = Circuit("b", ["u"], ["q2"], gates, [Latch("q1", "s1"), Latch("q2", "s2")])
        pins = {("s1", 0): PinTiming.symmetric(4), ("s2", 0): PinTiming.symmetric(4)}
        delays = DelayMap(c, pins, {"q1": Interval.point(1), "q2": Interval.point(1)})
        result = optimize_retiming(c, delays)
        assert result.bound == result.baseline
        assert result.moves == ()

    def test_result_behaviour_preserved(self):
        circuit, delays, init = staged_pipe()
        result = optimize_retiming(circuit, delays, init)
        rng = random.Random(4)
        stim = [{"u": rng.random() < 0.5} for _ in range(20)]
        _, before = circuit.simulate(init, stim)
        _, after = result.circuit.simulate(result.initial_state, stim)
        assert before == after
