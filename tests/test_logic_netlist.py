"""Unit tests for gates, netlists, and functional simulation."""

import itertools

import pytest

from repro.errors import CircuitError
from repro.logic import Circuit, Gate, GateType, Latch, eval_gate
from repro.logic.gate import gate_bdd, gate_type_from_name
from repro.bdd import BddManager


class TestGateSemantics:
    @pytest.mark.parametrize(
        "gtype,inputs,expected",
        [
            (GateType.AND, [True, True], True),
            (GateType.AND, [True, False], False),
            (GateType.OR, [False, False], False),
            (GateType.OR, [True, False], True),
            (GateType.NAND, [True, True], False),
            (GateType.NOR, [False, False], True),
            (GateType.XOR, [True, False], True),
            (GateType.XOR, [True, True], False),
            (GateType.XNOR, [True, True], True),
            (GateType.NOT, [True], False),
            (GateType.BUF, [True], True),
            (GateType.CONST0, [], False),
            (GateType.CONST1, [], True),
        ],
    )
    def test_eval_gate(self, gtype, inputs, expected):
        assert eval_gate(gtype, inputs) is expected

    def test_nary_parity_gates(self):
        assert eval_gate(GateType.XOR, [True, True, True]) is True
        assert eval_gate(GateType.XNOR, [True, True, True]) is False

    def test_arity_checks(self):
        with pytest.raises(CircuitError):
            eval_gate(GateType.NOT, [True, False])
        with pytest.raises(CircuitError):
            eval_gate(GateType.AND, [True])
        with pytest.raises(CircuitError):
            eval_gate(GateType.CONST0, [True])

    def test_gate_type_aliases(self):
        assert gate_type_from_name("BUFF") is GateType.BUF
        assert gate_type_from_name("buff") is GateType.BUF
        assert gate_type_from_name("inv") is GateType.NOT
        assert gate_type_from_name("nand") is GateType.NAND
        with pytest.raises(CircuitError):
            gate_type_from_name("MAJ3")

    @pytest.mark.parametrize("gtype", [g for g in GateType if not g.is_constant])
    def test_gate_bdd_matches_eval(self, gtype):
        n = gtype.min_arity if gtype.max_arity == 1 else 3
        mgr = BddManager()
        names = [f"i{k}" for k in range(n)]
        fs = mgr.add_vars(names)
        f = gate_bdd(gtype, mgr, fs)
        for bits in itertools.product([False, True], repeat=n):
            env = dict(zip(names, bits))
            assert f.evaluate(env) == eval_gate(gtype, list(bits))

    def test_gate_bdd_constants(self):
        mgr = BddManager()
        assert gate_bdd(GateType.CONST0, mgr, []).is_zero()
        assert gate_bdd(GateType.CONST1, mgr, []).is_one()


def make_toggle() -> Circuit:
    """One FF whose input is its inverted output: a divide-by-two."""
    return Circuit(
        name="toggle",
        inputs=[],
        outputs=["q"],
        gates=[Gate("d", GateType.NOT, ("q",))],
        latches=[Latch("q", "d")],
    )


def make_sr_counter() -> Circuit:
    """Two-bit counter with an enable input."""
    gates = [
        Gate("n0", GateType.XOR, ("q0", "en")),
        Gate("carry", GateType.AND, ("q0", "en")),
        Gate("n1", GateType.XOR, ("q1", "carry")),
    ]
    return Circuit(
        name="count2",
        inputs=["en"],
        outputs=["q0", "q1"],
        gates=gates,
        latches=[Latch("q0", "n0"), Latch("q1", "n1")],
    )


class TestCircuitStructure:
    def test_stats_and_repr(self):
        c = make_sr_counter()
        assert c.stats == {"inputs": 1, "outputs": 2, "gates": 3, "latches": 2}
        assert "count2" in repr(c)

    def test_leaves_and_roots(self):
        c = make_sr_counter()
        assert c.leaves == ("en", "q0", "q1")
        assert set(c.combinational_roots) == {"n0", "n1", "q0", "q1"}

    def test_duplicate_gate_driver_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(
                "bad", ["a"], [],
                gates=[Gate("x", GateType.BUF, ("a",)), Gate("x", GateType.NOT, ("a",))],
            )

    def test_pi_gate_conflict_rejected(self):
        with pytest.raises(CircuitError):
            Circuit("bad", ["a"], [], gates=[Gate("a", GateType.CONST1, ())])

    def test_undriven_net_rejected(self):
        with pytest.raises(CircuitError):
            Circuit("bad", ["a"], [], gates=[Gate("x", GateType.AND, ("a", "ghost"))])

    def test_undriven_output_rejected(self):
        with pytest.raises(CircuitError):
            Circuit("bad", ["a"], ["ghost"], gates=[])

    def test_undriven_latch_data_rejected(self):
        with pytest.raises(CircuitError):
            Circuit("bad", [], [], gates=[], latches=[Latch("q", "ghost")])

    def test_combinational_cycle_rejected(self):
        c = Circuit(
            "cyc", [], [],
            gates=[Gate("a", GateType.NOT, ("b",)), Gate("b", GateType.NOT, ("a",))],
        )
        with pytest.raises(CircuitError):
            c.topological_order()

    def test_latch_breaks_cycle(self):
        c = make_toggle()
        assert c.topological_order() == ["d"]

    def test_topological_order_respects_fanins(self):
        c = make_sr_counter()
        order = c.topological_order()
        assert order.index("carry") < order.index("n1")

    def test_cone(self):
        c = make_sr_counter()
        assert c.cone("n1") == ["carry", "n1"]
        assert c.cone("n0") == ["n0"]
        assert c.cone_leaves("n1") == ["q1", "q0", "en"]

    def test_cone_of_leaf_is_empty(self):
        c = make_sr_counter()
        assert c.cone_leaves("q0") == ["q0"]
        assert c.cone("q0") == []

    def test_fanout_count(self):
        c = make_sr_counter()
        assert c.fanout_count("q0") == 2   # n0 and carry
        assert c.fanout_count("carry") == 1
        assert c.fanout_count("n0") == 1   # latched
        assert c.fanout_count("unused") == 0

    def test_driver_of(self):
        c = make_sr_counter()
        assert isinstance(c.driver_of("n0"), Gate)
        assert isinstance(c.driver_of("q0"), Latch)
        assert c.driver_of("en") == "en"
        with pytest.raises(CircuitError):
            c.driver_of("ghost")


class TestFunctionalSimulation:
    def test_missing_leaf_values(self):
        c = make_sr_counter()
        with pytest.raises(CircuitError):
            c.eval_combinational({"en": True})

    def test_toggle_alternates(self):
        c = make_toggle()
        states, outputs = c.simulate({"q": False}, [{}] * 4)
        assert [s["q"] for s in states] == [True, False, True, False]
        assert [o["q"] for o in outputs] == [False, True, False, True]

    def test_counter_counts(self):
        c = make_sr_counter()
        stimulus = [{"en": True}] * 5
        states, _ = c.simulate({"q0": False, "q1": False}, stimulus)
        values = [int(s["q0"]) + 2 * int(s["q1"]) for s in states]
        assert values == [1, 2, 3, 0, 1]

    def test_counter_holds_when_disabled(self):
        c = make_sr_counter()
        states, _ = c.simulate({"q0": True, "q1": False}, [{"en": False}] * 3)
        assert all(s == {"q0": True, "q1": False} for s in states)

    def test_outputs_reflect_current_cycle(self):
        c = make_sr_counter()
        _, outputs = c.simulate({"q0": False, "q1": False}, [{"en": True}])
        # POs are the FF outputs themselves: sampled *before* the edge.
        assert outputs[0] == {"q0": False, "q1": False}
