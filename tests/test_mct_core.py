"""Tests for the minimum-cycle-time core (Example 2 is the anchor)."""

from fractions import Fraction

import pytest

from repro.errors import AnalysisError
from repro.logic import (
    Circuit,
    DelayMap,
    Gate,
    GateType,
    Interval,
    Latch,
    PinTiming,
)
from repro.mct import (
    MctOptions,
    age_of,
    age_set,
    build_discretized_machine,
    minimum_cycle_time,
    tau_breakpoints,
)
from repro.mct.discretize import TimedLeaf

from tests.test_timed_expansion import fig2_circuit


class TestAges:
    def test_age_basic(self):
        assert age_of(Fraction(4), Fraction(4)) == 1   # arrival at edge counts
        assert age_of(Fraction(4), Fraction(5)) == 1
        assert age_of(Fraction(4), Fraction(3)) == 2
        assert age_of(Fraction(5), Fraction(2)) == 3
        assert age_of(Fraction(0), Fraction(2)) == 0

    def test_age_requires_positive_tau(self):
        with pytest.raises(AnalysisError):
            age_of(Fraction(1), Fraction(0))

    def test_age_set_point(self):
        assert age_set(Interval.point(4), Fraction(3)) == (2,)

    def test_age_set_interval(self):
        # k in [3.6, 4] at tau = 3.8: ages ceil(3.6/3.8)=1 .. ceil(4/3.8)=2
        assert age_set(Interval.of(Fraction(18, 5), 4), Fraction(19, 5)) == (1, 2)

    def test_age_set_wide(self):
        assert age_set(Interval.of(1, 5), Fraction(1)) == (1, 2, 3, 4, 5)


class TestBreakpoints:
    def test_descending_dedup(self):
        values = [Fraction(4), Fraction(5), Fraction(2)]
        stream = tau_breakpoints(values, tau_floor=Fraction(1))
        got = list(stream)
        assert got == sorted(set(got), reverse=True)
        assert got[0] == 5
        # 2 = 4/2 = 2/1 must appear once.
        assert got.count(Fraction(2)) == 1

    def test_example2_candidates(self):
        # Paper: "The first few τ's need to be examined are 4, 2.5, 2, 5/3."
        got = list(tau_breakpoints([Fraction(3, 2), 2, 4, 5], tau_floor=Fraction(7, 5)))
        assert got[:6] == [
            Fraction(5),
            Fraction(4),
            Fraction(5, 2),
            Fraction(2),
            Fraction(5, 3),
            Fraction(3, 2),
        ]

    def test_floor_stops_stream(self):
        got = list(tau_breakpoints([Fraction(4)], tau_floor=Fraction(1)))
        assert got == [4, 2, Fraction(4, 3)]

    def test_empty(self):
        assert list(tau_breakpoints([], tau_floor=None)) == []


class TestDiscretizedMachine:
    def test_fig2_machine(self):
        circuit, delays = fig2_circuit()
        machine = build_discretized_machine(circuit, delays)
        assert machine.L == 5
        totals = sorted(tl.total.lo for tl in machine.timed_leaves)
        assert totals == [Fraction(3, 2), 2, 4, 5]

    def test_latch_delay_folded(self):
        circuit, delays = fig2_circuit()
        pins = delays._pins  # reuse pin timing, add latch delay
        delays2 = DelayMap(circuit, pins, latch_delay={"f": Interval.point(1)})
        machine = build_discretized_machine(circuit, delays2)
        totals = sorted(tl.total.lo for tl in machine.timed_leaves)
        assert totals == [Fraction(5, 2), 3, 5, 6]
        assert machine.L == 6

    def test_setup_folded_into_state_paths_only(self):
        # A circuit with both a latch path and a PO path.
        gates = [
            Gate("d", GateType.NOT, ("q",)),
            Gate("y", GateType.BUF, ("q",)),
        ]
        circuit = Circuit("s", [], ["y"], gates, [Latch("q", "d")])
        pins = {("d", 0): PinTiming.symmetric(2), ("y", 0): PinTiming.symmetric(1)}
        delays = DelayMap(circuit, pins).with_setup_hold(setup=Fraction(1, 2), hold=0)
        machine = build_discretized_machine(circuit, delays)
        totals = {tl.total.lo for tl in machine.timed_leaves}
        assert totals == {Fraction(5, 2), 1}  # 2 + setup, PO path unchanged

    def test_zero_delay_register_loop_rejected(self):
        gates = [Gate("d", GateType.NOT, ("q",))]
        circuit = Circuit("z", [], [], gates, [Latch("q", "d")])
        pins = {("d", 0): PinTiming.symmetric(0)}
        with pytest.raises(AnalysisError):
            build_discretized_machine(circuit, DelayMap(circuit, pins))

    def test_steady_regime_all_age_one(self):
        circuit, delays = fig2_circuit()
        machine = build_discretized_machine(circuit, delays)
        assert all(v == (1,) for v in machine.steady_regime().values())

    def test_regime_at_tau(self):
        circuit, delays = fig2_circuit()
        machine = build_discretized_machine(circuit, delays)
        regime = machine.regime(Fraction(2))
        by_delay = {tl.total.lo: ages for tl, ages in regime.items()}
        assert by_delay == {
            Fraction(3, 2): (1,),
            Fraction(2): (1,),
            Fraction(4): (2,),
            Fraction(5): (3,),
        }


class TestExample2MinimumCycleTime:
    """The paper's Example 2: minimum cycle time exactly 2.5."""

    def test_fixed_delays(self):
        circuit, delays = fig2_circuit()
        result = minimum_cycle_time(circuit, delays)
        assert result.mct_upper_bound == Fraction(5, 2)
        assert result.failure_found
        assert result.failing_window == (Fraction(2), Fraction(5, 2))
        assert result.L == 5

    def test_candidate_trace_matches_paper(self):
        circuit, delays = fig2_circuit()
        result = minimum_cycle_time(circuit, delays)
        trace = [(r.tau, r.status) for r in result.candidates]
        assert trace == [
            (Fraction(5), "steady"),
            (Fraction(4), "pass"),
            (Fraction(5, 2), "pass"),
            (Fraction(2), "fail"),
        ]

    def test_initial_state_irrelevant_here(self):
        circuit, delays = fig2_circuit()
        result = minimum_cycle_time(
            circuit, delays, MctOptions(initial_state={"f": True})
        )
        assert result.mct_upper_bound == Fraction(5, 2)

    def test_outputs_only_same_answer(self):
        circuit, delays = fig2_circuit()
        result = minimum_cycle_time(circuit, delays, MctOptions(check_outputs=False))
        assert result.mct_upper_bound == Fraction(5, 2)

    def test_mct_beats_floating_and_topological(self):
        """MCT 2.5 < transition's *certified* floor and < floating 4."""
        circuit, delays = fig2_circuit()
        result = minimum_cycle_time(circuit, delays)
        assert result.mct_upper_bound < 4       # floating delay
        assert result.mct_upper_bound < 5       # topological
        assert result.mct_upper_bound > 2       # 2-vector delay is wrong


class TestSimpleMachines:
    def test_toggle_mct_is_loop_delay(self):
        # q <- NOT q with delay 3: the only breakpoints are 3/m; at
        # tau = 1.5 the machine reads q(n-2): parity flips -> fail.
        gates = [Gate("d", GateType.NOT, ("q",))]
        circuit = Circuit("tog", [], ["q"], gates, [Latch("q", "d")])
        pins = {("d", 0): PinTiming.symmetric(3)}
        delays = DelayMap(circuit, pins)
        result = minimum_cycle_time(circuit, delays)
        assert result.mct_upper_bound == 3
        assert result.failing_window == (Fraction(3, 2), Fraction(3))

    def test_constant_next_state_never_fails(self):
        # d = q OR NOT q ... as a *timed* function with equal delays,
        # every age regime gives the constant 1: MCT is unbounded below.
        gates = [
            Gate("nq", GateType.NOT, ("q",)),
            Gate("d", GateType.OR, ("q", "nq")),
        ]
        circuit = Circuit("one", [], [], gates, [Latch("q", "d")])
        pins = {
            ("nq", 0): PinTiming.symmetric(1),
            ("d", 0): PinTiming.symmetric(2),
            ("d", 1): PinTiming.symmetric(1),
        }
        delays = DelayMap(circuit, pins)
        result = minimum_cycle_time(circuit, delays, MctOptions(max_age=8))
        assert not result.failure_found
        assert result.exhausted
        # Equivalent for every examined breakpoint.
        assert all(r.status != "fail" for r in result.candidates)

    def test_pipeline_input_latency(self):
        # u -> FF -> FF chain: state ignores its own history; the input
        # path delay bounds tau from below.
        gates = [
            Gate("d1", GateType.BUF, ("u",)),
            Gate("d2", GateType.BUF, ("q1",)),
        ]
        circuit = Circuit(
            "pipe", ["u"], ["q2"], gates, [Latch("q1", "d1"), Latch("q2", "d2")]
        )
        pins = {("d1", 0): PinTiming.symmetric(4), ("d2", 0): PinTiming.symmetric(2)}
        delays = DelayMap(circuit, pins)
        result = minimum_cycle_time(circuit, delays)
        # Below tau=4 the first stage reads u(n-2) instead of u(n-1):
        # observable two cycles later -> MCT = 4.
        assert result.mct_upper_bound == 4

    def test_interval_delays_example2(self):
        """Example 2 with 90%-100% delays: the bound is D̄_s."""
        circuit, delays = fig2_circuit()
        widened = delays.widen(Fraction(9, 10))
        result = minimum_cycle_time(circuit, widened)
        assert result.failure_found
        # The failing combination needs the k=[1.8,2] leaf at age 1 and
        # the k=[4.5,5] leaf at age >= 2... the sup of feasible failing
        # tau cannot exceed the fixed-delay answer and must stay above
        # the 90% scaled one.
        assert Fraction(9, 4) <= result.mct_upper_bound <= Fraction(5, 2)

    def test_work_budget_partial_result(self):
        circuit, delays = fig2_circuit()
        result = minimum_cycle_time(circuit, delays, MctOptions(work_budget=10))
        assert result.budget_exceeded or result.mct_upper_bound is not None

    def test_missing_initial_state_bits_rejected(self):
        circuit, delays = fig2_circuit()
        with pytest.raises(AnalysisError):
            minimum_cycle_time(circuit, delays, MctOptions(initial_state={}))
