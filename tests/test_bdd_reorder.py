"""Tests for order search: the classic 2^n vs 3n comb function."""

import itertools

import pytest

from repro.bdd import BddManager
from repro.bdd.reorder import order_size, reorder, sift_order
from repro.errors import (
    BddError,
    Budget,
    DeadlineExceeded,
    ResourceBudgetExceeded,
)
from repro.resilience import Deadline
from repro.resilience.faults import inject_faults, observe_calls


def comb_function(mgr: BddManager, n: int, interleaved: bool):
    """f = x1·y1 + x2·y2 + ... — exponential when all x's precede all
    y's, linear when interleaved."""
    if interleaved:
        for i in range(n):
            mgr.var(f"x{i}")
            mgr.var(f"y{i}")
    else:
        for i in range(n):
            mgr.var(f"x{i}")
        for i in range(n):
            mgr.var(f"y{i}")
    f = mgr.false
    for i in range(n):
        f = f | (mgr.var(f"x{i}") & mgr.var(f"y{i}"))
    return f


def terminals(mgr: BddManager) -> int:
    """Terminal-node count of the kernel: complement edges share one."""
    return 1 if mgr.kernel_name == "array" else 2


class TestOrderSize:
    @pytest.mark.parametrize("kernel", ["array", "object"])
    def test_known_gap(self, kernel):
        mgr = BddManager(kernel=kernel)
        f = comb_function(mgr, 5, interleaved=False)
        bad = [f"x{i}" for i in range(5)] + [f"y{i}" for i in range(5)]
        good = [v for i in range(5) for v in (f"x{i}", f"y{i}")]
        assert order_size([f], good) < order_size([f], bad)
        # The interleaved order is linear: 2n nodes + terminal(s).
        assert order_size([f], good) == 2 * 5 + terminals(mgr)

    def test_missing_variable_rejected(self):
        mgr = BddManager()
        f = mgr.var("a") & mgr.var("b")
        with pytest.raises(BddError):
            order_size([f], ["a"])

    def test_empty_rejected(self):
        with pytest.raises(BddError):
            order_size([], ["a"])


class TestReorder:
    def test_semantics_preserved(self):
        mgr = BddManager()
        f = comb_function(mgr, 3, interleaved=False)
        order = [v for i in range(3) for v in (f"x{i}", f"y{i}")]
        new_mgr, (g,) = reorder([f], order)
        for bits in itertools.product([False, True], repeat=6):
            names = [f"x{i}" for i in range(3)] + [f"y{i}" for i in range(3)]
            env = dict(zip(names, bits))
            assert f.evaluate(env) == g.evaluate(env)

    def test_multiple_functions_share_manager(self):
        mgr = BddManager()
        a, b = mgr.var("a"), mgr.var("b")
        new_mgr, (f, g) = reorder([a & b, a | b], ["b", "a"])
        assert f.manager is new_mgr and g.manager is new_mgr
        assert new_mgr.level_of("b") < new_mgr.level_of("a")


class TestSifting:
    @pytest.mark.parametrize("kernel", ["array", "object"])
    def test_recovers_interleaved_order(self, kernel):
        mgr = BddManager(kernel=kernel)
        f = comb_function(mgr, 4, interleaved=False)
        bad = [f"x{i}" for i in range(4)] + [f"y{i}" for i in range(4)]
        start = order_size([f], bad)
        order, size = sift_order([f], max_passes=3, initial_order=bad)
        assert size < start
        assert size == 2 * 4 + terminals(mgr)  # the optimal linear size

    @pytest.mark.parametrize("kernel", ["array", "object"])
    def test_already_optimal_stays(self, kernel):
        mgr = BddManager(kernel=kernel)
        f = comb_function(mgr, 3, interleaved=True)
        good = [v for i in range(3) for v in (f"x{i}", f"y{i}")]
        order, size = sift_order([f], initial_order=good)
        assert size == 2 * 3 + terminals(mgr)

    def test_sift_multiple_functions(self):
        mgr = BddManager()
        f = comb_function(mgr, 3, interleaved=False)
        g = mgr.var("x0") ^ mgr.var("y2")
        order, size = sift_order([f, g])
        assert size <= order_size([f, g], sorted(f.support() | g.support()))

    def test_empty_rejected(self):
        with pytest.raises(BddError):
            sift_order([])


class TestResourcePropagation:
    """reorder()/order_size()/sift_order() must run under the caller's
    Budget and Deadline — a sift inside a time-limited sweep has to be
    chargeable and interruptible (it used to build bare managers that
    silently dropped both)."""

    def _comb(self, n=4):
        mgr = BddManager()
        return comb_function(mgr, n, interleaved=False)

    def test_reorder_charges_budget(self):
        f = self._comb(3)
        order = sorted(f.support())
        with observe_calls() as plan:
            reorder([f], order, budget=Budget(10**9, "reorder"))
        assert plan.budget_calls > 0

    def test_reorder_budget_fault_interrupts(self):
        f = self._comb()
        order = sorted(f.support())
        with inject_faults(budget_at=5):
            with pytest.raises(ResourceBudgetExceeded):
                reorder([f], order, budget=Budget(10**9, "reorder"))

    def test_order_size_deadline_fault_interrupts(self):
        f = self._comb()
        order = sorted(f.support())
        with inject_faults(deadline_at=5):
            with pytest.raises(DeadlineExceeded):
                order_size([f], order, deadline=Deadline(3600.0))

    def test_sift_order_budget_fault_interrupts(self):
        f = self._comb()
        with inject_faults(budget_at=50):
            with pytest.raises(ResourceBudgetExceeded):
                sift_order([f], budget=Budget(10**9, "sift"))

    def test_sift_order_deadline_fault_interrupts(self):
        f = self._comb()
        with inject_faults(deadline_at=50):
            with pytest.raises(DeadlineExceeded):
                sift_order([f], deadline=Deadline(3600.0))

    def test_sift_real_budget_exhausts(self):
        # A genuinely tiny budget (no fault hook) also stops the sift.
        f = self._comb()
        with pytest.raises(ResourceBudgetExceeded):
            sift_order([f], budget=Budget(3, "sift"))

    def test_unfaulted_results_unchanged(self):
        f = self._comb(3)
        bad = sorted(f.support())
        plain = sift_order([f], initial_order=bad)
        resourced = sift_order(
            [f],
            initial_order=bad,
            budget=Budget(10**9, "sift"),
            deadline=Deadline(3600.0),
        )
        assert plain == resourced
