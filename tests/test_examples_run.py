"""Every shipped example must run clean (they are part of the API)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # says something


def test_example_inventory():
    """At least the documented quartet plus the extension demos."""
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "iscas_table",
        "config_register_pessimism",
        "bench_netlist_flow",
        "useful_skew",
        "level_sensitive_clocking",
    } <= names
