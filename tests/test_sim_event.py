"""Tests for the event-driven timing simulator."""

import random
from fractions import Fraction

import pytest

from repro.errors import AnalysisError
from repro.logic import (
    Circuit,
    DelayMap,
    Gate,
    GateType,
    Interval,
    Latch,
    PinTiming,
    unit_delays,
    widen_to_intervals,
)
from repro.sim import ClockedSimulator, sample_delay_map

from tests.test_logic_netlist import make_sr_counter
from tests.test_timed_expansion import fig2_circuit


class TestBasics:
    def test_interval_delays_rejected(self):
        c = make_sr_counter()
        delays = widen_to_intervals(unit_delays(c))
        with pytest.raises(AnalysisError):
            ClockedSimulator(c, delays)

    def test_asymmetric_pins_rejected(self):
        gates = [Gate("y", GateType.BUF, ("a",))]
        c = Circuit("b", ["a"], ["y"], gates)
        delays = DelayMap(c, {("y", 0): PinTiming.asym(1, 2)})
        with pytest.raises(AnalysisError):
            ClockedSimulator(c, delays)

    def test_nonpositive_tau_rejected(self):
        c = make_sr_counter()
        sim = ClockedSimulator(c, unit_delays(c))
        with pytest.raises(AnalysisError):
            sim.run(0, {"q0": False, "q1": False}, [{"en": True}])

    def test_empty_stimulus(self):
        c = make_sr_counter()
        sim = ClockedSimulator(c, unit_delays(c))
        trace = sim.run(10, {"q0": False, "q1": False}, [])
        assert trace.sampled_states == []

    def test_sample_delay_map_within_bounds(self):
        c = make_sr_counter()
        delays = widen_to_intervals(unit_delays(c))
        rng = random.Random(7)
        fixed = sample_delay_map(delays, rng)
        assert fixed.is_fixed
        for net, gate in c.gates.items():
            for pin in range(len(gate.inputs)):
                v = fixed.pin(net, pin).rise.lo
                assert Fraction(9, 10) <= v <= 1


class TestSlowClockMatchesIdeal:
    def test_counter_slow_clock(self):
        c = make_sr_counter()
        sim = ClockedSimulator(c, unit_delays(c))
        rng = random.Random(1)
        stimulus = [{"en": rng.random() < 0.5} for _ in range(32)]
        assert sim.matches_ideal(100, {"q0": False, "q1": False}, stimulus)

    def test_counter_at_exact_critical_path(self):
        # Longest register path in the counter is 2 (xor after and);
        # at tau exactly 2 the sampled behaviour is still ideal (closed
        # edge convention).
        c = make_sr_counter()
        sim = ClockedSimulator(c, unit_delays(c))
        stimulus = [{"en": True}] * 16
        assert sim.matches_ideal(2, {"q0": False, "q1": False}, stimulus)

    def test_counter_too_fast_diverges(self):
        c = make_sr_counter()
        sim = ClockedSimulator(c, unit_delays(c))
        stimulus = [{"en": True}] * 16
        assert not sim.matches_ideal(1, {"q0": False, "q1": False}, stimulus)

    def test_random_realizations_stay_ideal_above_L(self):
        c = make_sr_counter()
        base = widen_to_intervals(unit_delays(c))
        rng = random.Random(42)
        stimulus = [{"en": rng.random() < 0.7} for _ in range(24)]
        for _ in range(5):
            fixed = sample_delay_map(base, rng)
            sim = ClockedSimulator(c, fixed)
            assert sim.matches_ideal(10, {"q0": True, "q1": False}, stimulus)


class TestFig2Witness:
    """Example 2 at the sampled level: fine at 2.5, broken at 2."""

    def test_tau_25_matches_ideal(self):
        circuit, delays = fig2_circuit()
        sim = ClockedSimulator(circuit, delays)
        for init in (False, True):
            assert sim.matches_ideal(Fraction(5, 2), {"f": init}, [{}] * 12)

    def test_tau_4_matches_ideal(self):
        circuit, delays = fig2_circuit()
        sim = ClockedSimulator(circuit, delays)
        for init in (False, True):
            assert sim.matches_ideal(4, {"f": init}, [{}] * 12)

    def test_tau_2_diverges_from_init_true(self):
        # The base-case analysis predicts divergence at n = 3 when the
        # latch starts at 1; the simulator must reproduce it.
        circuit, delays = fig2_circuit()
        sim = ClockedSimulator(circuit, delays)
        trace = sim.run(2, {"f": True}, [{}] * 6)
        ideal, _ = circuit.simulate({"f": True}, [{}] * 6)
        assert trace.sampled_states != ideal
        assert trace.sampled_states[0] == ideal[0]
        assert trace.sampled_states[1] == ideal[1]
        assert trace.sampled_states[2] != ideal[2]  # x(3) differs

    def test_outputs_sampled(self):
        circuit, delays = fig2_circuit()
        sim = ClockedSimulator(circuit, delays)
        trace = sim.run(4, {"f": False}, [{}] * 4)
        assert len(trace.sampled_outputs) == 4
        assert all(set(o) == {"g"} for o in trace.sampled_outputs)

    def test_activity_counter_nonzero(self):
        circuit, delays = fig2_circuit()
        sim = ClockedSimulator(circuit, delays)
        trace = sim.run(4, {"f": False}, [{}] * 4)
        assert trace.events_processed > 0
