"""Property-based tests for the BDD package.

Strategy: generate random Boolean expression trees over a small variable
set, build them both as BDDs and as plain Python closures, and check
that every BDD-level operation agrees with brute-force evaluation over
all 2^n assignments.  This pins down canonicity, all connectives,
restrict/compose/quantify, and the counting/enumeration queries.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BddManager, dfs_variable_order, interleave_orders

VARS = ["a", "b", "c", "d", "e"]


def exprs(depth: int = 4):
    """Hypothesis strategy producing expression ASTs as nested tuples."""
    leaf = st.one_of(
        st.sampled_from([("var", v) for v in VARS]),
        st.sampled_from([("const", False), ("const", True)]),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.just("not"), children),
            st.tuples(st.sampled_from(["and", "or", "xor"]), children, children),
            st.tuples(st.just("ite"), children, children, children),
        )

    return st.recursive(leaf, extend, max_leaves=12)


def build_bdd(mgr: BddManager, ast):
    op = ast[0]
    if op == "var":
        return mgr.var(ast[1])
    if op == "const":
        return mgr.constant(ast[1])
    if op == "not":
        return ~build_bdd(mgr, ast[1])
    if op == "and":
        return build_bdd(mgr, ast[1]) & build_bdd(mgr, ast[2])
    if op == "or":
        return build_bdd(mgr, ast[1]) | build_bdd(mgr, ast[2])
    if op == "xor":
        return build_bdd(mgr, ast[1]) ^ build_bdd(mgr, ast[2])
    if op == "ite":
        return build_bdd(mgr, ast[1]).ite(build_bdd(mgr, ast[2]), build_bdd(mgr, ast[3]))
    raise AssertionError(op)


def eval_ast(ast, env) -> bool:
    op = ast[0]
    if op == "var":
        return env[ast[1]]
    if op == "const":
        return ast[1]
    if op == "not":
        return not eval_ast(ast[1], env)
    if op == "and":
        return eval_ast(ast[1], env) and eval_ast(ast[2], env)
    if op == "or":
        return eval_ast(ast[1], env) or eval_ast(ast[2], env)
    if op == "xor":
        return eval_ast(ast[1], env) != eval_ast(ast[2], env)
    if op == "ite":
        return eval_ast(ast[2], env) if eval_ast(ast[1], env) else eval_ast(ast[3], env)
    raise AssertionError(op)


def all_envs():
    for bits in itertools.product([False, True], repeat=len(VARS)):
        yield dict(zip(VARS, bits))


@settings(max_examples=120, deadline=None)
@given(exprs())
def test_bdd_matches_bruteforce_evaluation(ast):
    mgr = BddManager()
    mgr.add_vars(VARS)
    f = build_bdd(mgr, ast)
    for env in all_envs():
        assert f.evaluate(env) == eval_ast(ast, env)


@settings(max_examples=80, deadline=None)
@given(exprs(), exprs())
def test_equality_iff_same_truth_table(ast1, ast2):
    mgr = BddManager()
    mgr.add_vars(VARS)
    f, g = build_bdd(mgr, ast1), build_bdd(mgr, ast2)
    same_table = all(eval_ast(ast1, env) == eval_ast(ast2, env) for env in all_envs())
    assert (f == g) == same_table


@settings(max_examples=80, deadline=None)
@given(exprs())
def test_sat_count_matches_bruteforce(ast):
    mgr = BddManager()
    mgr.add_vars(VARS)
    f = build_bdd(mgr, ast)
    expected = sum(eval_ast(ast, env) for env in all_envs())
    assert f.sat_count(nvars=len(VARS)) == expected


@settings(max_examples=60, deadline=None)
@given(exprs(), st.sampled_from(VARS), st.booleans())
def test_restrict_matches_bruteforce(ast, var, value):
    mgr = BddManager()
    mgr.add_vars(VARS)
    f = build_bdd(mgr, ast).restrict({var: value})
    for env in all_envs():
        env2 = dict(env)
        env2[var] = value
        assert f.evaluate(env) == eval_ast(ast, env2)


@settings(max_examples=60, deadline=None)
@given(exprs(), exprs(), st.sampled_from(VARS))
def test_compose_matches_substituted_evaluation(ast, sub_ast, var):
    mgr = BddManager()
    mgr.add_vars(VARS)
    f = build_bdd(mgr, ast)
    g = build_bdd(mgr, sub_ast)
    composed = f.compose(var, g)
    for env in all_envs():
        env2 = dict(env)
        env2[var] = eval_ast(sub_ast, env)
        assert composed.evaluate(env) == eval_ast(ast, env2)


@settings(max_examples=60, deadline=None)
@given(exprs(), st.sets(st.sampled_from(VARS), min_size=1, max_size=3))
def test_exists_forall_shannon(ast, qvars):
    mgr = BddManager()
    mgr.add_vars(VARS)
    f = build_bdd(mgr, ast)
    ex, fa = f.exists(qvars), f.forall(qvars)
    for env in all_envs():
        cofactor_values = []
        for bits in itertools.product([False, True], repeat=len(qvars)):
            env2 = dict(env)
            env2.update(zip(sorted(qvars), bits))
            cofactor_values.append(eval_ast(ast, env2))
        assert ex.evaluate(env) == any(cofactor_values)
        assert fa.evaluate(env) == all(cofactor_values)


@settings(max_examples=60, deadline=None)
@given(exprs(), exprs(), st.sets(st.sampled_from(VARS), min_size=1, max_size=3))
def test_and_exists_equals_two_step(ast1, ast2, qvars):
    mgr = BddManager()
    mgr.add_vars(VARS)
    f, g = build_bdd(mgr, ast1), build_bdd(mgr, ast2)
    assert mgr.and_exists(qvars, f, g) == (f & g).exists(qvars)


@settings(max_examples=60, deadline=None)
@given(exprs())
def test_pick_one_is_a_model(ast):
    mgr = BddManager()
    mgr.add_vars(VARS)
    f = build_bdd(mgr, ast)
    model = f.pick_one()
    if model is None:
        assert f.is_zero()
    else:
        env = {v: model.get(v, False) for v in VARS}
        assert eval_ast(ast, env)


@settings(max_examples=40, deadline=None)
@given(exprs())
def test_sat_iter_enumerates_exactly_the_models(ast):
    mgr = BddManager()
    mgr.add_vars(VARS)
    f = build_bdd(mgr, ast)
    models = {
        tuple(env[v] for v in VARS)
        for env in f.sat_iter(care_vars=VARS)
    }
    expected = {
        tuple(env[v] for v in VARS)
        for env in all_envs()
        if eval_ast(ast, env)
    }
    assert models == expected


def test_dfs_variable_order_simple_dag():
    # y = (a & b) | c with fanins modelled as a dict.
    fanins = {"y": ["n1", "c"], "n1": ["a", "b"]}
    order = dfs_variable_order(
        ["y"],
        fanins=lambda n: fanins.get(n, []),
        is_leaf=lambda n: n in {"a", "b", "c"},
    )
    assert order == ["a", "b", "c"]


def test_dfs_variable_order_deep_chain():
    """A linear netlist deeper than CPython's recursion limit.

    The traversal is an explicit-stack DFS precisely so a pathological
    chain (deep carry/scan logic) cannot blow the interpreter stack;
    this chain is ~50x the default recursion limit.
    """
    depth = 50_000
    fanins = {f"n{i}": [f"n{i + 1}"] for i in range(depth)}
    fanins[f"n{depth}"] = ["x"]
    order = dfs_variable_order(
        ["n0"],
        fanins=lambda n: fanins.get(n, []),
        is_leaf=lambda n: n == "x",
    )
    assert order == ["x"]


def test_dfs_variable_order_matches_recursive_reference():
    """The iterative DFS visits leaves in recursive first-visit order."""
    import random

    rng = random.Random(7)
    nodes = [f"g{i}" for i in range(60)]
    leaves = {f"v{i}" for i in range(12)}
    pool = list(leaves)
    fanins = {}
    for i, node in enumerate(nodes):
        kids = rng.sample(pool, k=rng.randint(1, 3))
        fanins[node] = kids
        pool.append(node)

    def recursive(roots):
        seen, order = set(), []

        def walk(n):
            if n in seen:
                return
            seen.add(n)
            if n in leaves:
                order.append(n)
                return
            for kid in fanins.get(n, []):
                walk(kid)

        for root in roots:
            walk(root)
        return order

    roots = nodes[-5:]
    got = dfs_variable_order(
        roots,
        fanins=lambda n: fanins.get(n, []),
        is_leaf=lambda n: n in leaves,
    )
    assert got == recursive(roots)


def test_interleave_orders():
    assert interleave_orders(["a", "b"], ["x", "y", "z"]) == ["a", "x", "b", "y", "z"]
    assert interleave_orders(["a", "b"], ["a", "c"]) == ["a", "b", "c"]
    assert interleave_orders() == []
