"""Fuzz-style robustness: parsers must reject garbage with clean errors.

Whatever bytes arrive, the parsers raise :class:`ReproError` subclasses
(never ``IndexError``/``KeyError``/... leaking implementation details).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.logic import parse_bench
from repro.logic.blif import parse_blif

text_lines = st.lists(
    st.text(
        alphabet=st.characters(
            whitelist_categories=("Lu", "Ll", "Nd", "Po", "Ps", "Pe", "Zs"),
            whitelist_characters="=_().,#-\\",
        ),
        max_size=40,
    ),
    max_size=12,
)


@settings(max_examples=150, deadline=None)
@given(text_lines)
def test_bench_parser_never_crashes(lines):
    try:
        parse_bench("\n".join(lines))
    except ReproError:
        pass  # clean, typed rejection


@settings(max_examples=150, deadline=None)
@given(text_lines)
def test_blif_parser_never_crashes(lines):
    try:
        parse_blif("\n".join(lines))
    except ReproError:
        pass


@settings(max_examples=60, deadline=None)
@given(st.text(max_size=200))
def test_bench_parser_arbitrary_text(blob):
    try:
        parse_bench(blob)
    except ReproError:
        pass


@settings(max_examples=60, deadline=None)
@given(st.text(max_size=200))
def test_blif_parser_arbitrary_text(blob):
    try:
        parse_blif(blob)
    except ReproError:
        pass


class TestSpecificMalice:
    @pytest.mark.parametrize(
        "text",
        [
            "INPUT(a)\na = DFF(a)\n",            # self-latch: legal actually
            "b = AND(b, b)\n",                   # combinational self-loop
            "INPUT(a)\nINPUT(a)\n",              # duplicate PI
            "OUTPUT(x)\n",                       # undriven PO
            "q = DFF()\n",                       # empty DFF
            "y = AND(,)\n",                      # empty operands
        ],
    )
    def test_bench_bad_structures(self, text):
        try:
            circuit = parse_bench(text)
            # Some of these parse but must fail structurally on use.
            circuit.topological_order()
        except ReproError:
            return
        # Self-latch (q=DFF(q)) is structurally fine: nothing to assert.

    @pytest.mark.parametrize(
        "text",
        [
            ".model m\n.inputs a\n.names a y\n1\n.end\n",  # width mismatch
            ".model m\n.latch\n.end\n",
            ".model m\n.names\n.end\n",
            ".model m\n.subckt sub a=b\n.end\n",
        ],
    )
    def test_blif_bad_structures(self, text):
        with pytest.raises(ReproError):
            parse_blif(text)
