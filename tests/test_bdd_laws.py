"""Algebraic laws of the BDD operations (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.bdd import BddManager

from tests.test_bdd_properties import VARS, build_bdd, exprs


def pair():
    return st.tuples(exprs(), exprs())


@settings(max_examples=60, deadline=None)
@given(exprs(), exprs())
def test_quantifier_duality(ast_f, ast_g):
    """∀x.f == ¬∃x.¬f, on every subset of variables."""
    mgr = BddManager()
    mgr.add_vars(VARS)
    f = build_bdd(mgr, ast_f)
    for qvars in (["a"], ["b", "c"], VARS):
        assert f.forall(qvars) == ~((~f).exists(qvars))


@settings(max_examples=60, deadline=None)
@given(exprs(), exprs())
def test_shannon_expansion(ast_f, ast_g):
    mgr = BddManager()
    mgr.add_vars(VARS)
    f = build_bdd(mgr, ast_f)
    for name in VARS:
        v = mgr.var(name)
        hi = f.restrict({name: True})
        lo = f.restrict({name: False})
        assert f == (v & hi) | (~v & lo)
        assert f == v.ite(hi, lo)


@settings(max_examples=60, deadline=None)
@given(exprs(), exprs())
def test_implication_and_iff_laws(ast_f, ast_g):
    mgr = BddManager()
    mgr.add_vars(VARS)
    f, g = build_bdd(mgr, ast_f), build_bdd(mgr, ast_g)
    assert f.implies(g) == (~f | g)
    assert f.iff(g) == (f.implies(g) & g.implies(f))
    assert (f ^ g) == ~(f.iff(g))
    # Contrapositive.
    assert f.implies(g) == (~g).implies(~f)


@settings(max_examples=60, deadline=None)
@given(exprs(), exprs())
def test_quantification_commutes_with_disjunction(ast_f, ast_g):
    """∃ distributes over OR (and ∀ over AND)."""
    mgr = BddManager()
    mgr.add_vars(VARS)
    f, g = build_bdd(mgr, ast_f), build_bdd(mgr, ast_g)
    q = ["a", "d"]
    assert (f | g).exists(q) == f.exists(q) | g.exists(q)
    assert (f & g).forall(q) == f.forall(q) & g.forall(q)


@settings(max_examples=60, deadline=None)
@given(exprs())
def test_support_respects_quantification(ast_f):
    mgr = BddManager()
    mgr.add_vars(VARS)
    f = build_bdd(mgr, ast_f)
    for name in VARS:
        assert name not in f.exists([name]).support()
        assert name not in f.forall([name]).support()


@settings(max_examples=60, deadline=None)
@given(exprs())
def test_sat_count_shannon_split(ast_f):
    """#f = #f|x=0 + #f|x=1 over the full variable space."""
    mgr = BddManager()
    mgr.add_vars(VARS)
    f = build_bdd(mgr, ast_f)
    n = len(VARS)
    total = f.sat_count(nvars=n)
    lo = f.restrict({"a": False}).sat_count(nvars=n - 1)
    hi = f.restrict({"a": True}).sat_count(nvars=n - 1)
    assert total == lo + hi
