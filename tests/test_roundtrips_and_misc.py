"""Round-trip properties, DOT exports, and the package doctest."""

import doctest
import itertools

from hypothesis import given, settings, strategies as st

import repro
from repro.benchgen.generators import random_combinational, random_fsm
from repro.fsm import extract_stg
from repro.fsm.dot import stg_to_dot
from repro.logic import parse_bench, write_bench
from repro.logic.blif import parse_blif, write_blif

from tests.test_logic_netlist import make_sr_counter


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_bench_round_trip_random_fsm(seed):
    circuit, _ = random_fsm(seed, n_inputs=2, n_latches=2, n_gates=8)
    back = parse_bench(write_bench(circuit), name=circuit.name)
    assert back.gates == circuit.gates
    assert back.latches == circuit.latches
    assert back.inputs == circuit.inputs
    assert back.outputs == circuit.outputs


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_blif_round_trip_random_combinational(seed):
    circuit, _ = random_combinational(seed, n_inputs=3, n_gates=6)
    back = parse_blif(write_blif(circuit))
    for bits in itertools.product([False, True], repeat=3):
        env = dict(zip(circuit.inputs, bits))
        want = circuit.eval_combinational(env)
        got = back.eval_combinational(env)
        for po in circuit.outputs:
            assert got[po] == want[po]


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_blif_round_trip_random_fsm_behaviour(seed):
    import random as pyrandom

    circuit, _ = random_fsm(seed, n_inputs=1, n_latches=2, n_gates=6)
    init = {q: False for q in circuit.state_nets}
    back = parse_blif(write_blif(circuit, initial_state=init))
    rng = pyrandom.Random(seed)
    stim = [{u: rng.random() < 0.5 for u in circuit.inputs} for _ in range(12)]
    assert circuit.simulate(init, stim) == back.simulate(init, stim)


class TestStgDot:
    def test_counter_dot(self):
        graph = extract_stg(make_sr_counter())
        dot = stg_to_dot(graph)
        assert dot.startswith('digraph "count2"')
        assert "doublecircle" in dot       # initial state highlighted
        assert '"00" -> "10"' in dot       # en=1 from reset sets q0
        assert "1/00" in dot               # input/output labels

    def test_custom_name(self):
        graph = extract_stg(make_sr_counter())
        assert stg_to_dot(graph, name="x").startswith('digraph "x"')


def test_package_docstring_examples():
    """The quickstart in the package docstring must actually run."""
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 2
