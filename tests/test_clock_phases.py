"""Tests for per-latch clock phases (useful skew).

The paper's closing remark points the TBF formulation at "the synthesis
of high speed sequential circuits"; useful skew is the classic instance:
delaying a latch's clock re-balances unequal register-to-register paths
and lowers the minimum cycle time.  The extension folds the phase
difference into every effective path delay (``k + φ_src - φ_dst``) and
everything else — breakpoints, decision algorithm, interval algebra —
applies unchanged.
"""

import random
from fractions import Fraction

import pytest

from repro.errors import AnalysisError, DelayModelError
from repro.logic import Circuit, DelayMap, Gate, GateType, Latch, PinTiming
from repro.mct import build_discretized_machine, minimum_cycle_time
from repro.mct.discretize import TimedLeaf
from repro.logic.delays import Interval
from repro.sim import ClockedSimulator


def unbalanced_pipe() -> tuple[Circuit, DelayMap]:
    """u -(6)-> q1 -(2)-> q2: common-clock MCT is 6."""
    gates = [
        Gate("d1", GateType.BUF, ("u",)),
        Gate("d2", GateType.BUF, ("q1",)),
    ]
    circuit = Circuit(
        "pipe", ["u"], ["q2"], gates, [Latch("q1", "d1"), Latch("q2", "d2")]
    )
    pins = {("d1", 0): PinTiming.symmetric(6), ("d2", 0): PinTiming.symmetric(2)}
    return circuit, DelayMap(circuit, pins)


class TestDelayMapPhases:
    def test_default_zero(self):
        circuit, delays = unbalanced_pipe()
        assert delays.phase("q1") == 0
        assert not delays.has_phases

    def test_with_phases(self):
        circuit, delays = unbalanced_pipe()
        skewed = delays.with_phases({"q1": 2})
        assert skewed.phase("q1") == 2
        assert skewed.phase("q2") == 0
        assert skewed.has_phases

    def test_unknown_latch_rejected(self):
        circuit, delays = unbalanced_pipe()
        with pytest.raises(DelayModelError):
            delays.with_phases({"ghost": 1})

    def test_negative_phase_rejected(self):
        circuit, delays = unbalanced_pipe()
        with pytest.raises(DelayModelError):
            delays.with_phases({"q1": -1})

    def test_phases_survive_widen_and_setup(self):
        circuit, delays = unbalanced_pipe()
        skewed = delays.with_phases({"q1": 2})
        assert skewed.widen(Fraction(9, 10)).phase("q1") == 2
        assert skewed.with_setup_hold(1, 0).phase("q1") == 2
        assert skewed.at_max().phase("q1") == 2


class TestDiscretizationWithPhases:
    def test_effective_delays_folded(self):
        circuit, delays = unbalanced_pipe()
        skewed = delays.with_phases({"q1": 2})
        machine = build_discretized_machine(circuit, skewed)
        totals = sorted(tl.total.lo for tl in machine.timed_leaves)
        # u->q1: 6 - 2 = 4; q1->q2: 2 + 2 = 4; q2->PO: 0.
        assert totals == [0, 4, 4]

    def test_race_rejected(self):
        circuit, delays = unbalanced_pipe()
        # Destination clocked 6+ after launch: the data races through.
        with pytest.raises(AnalysisError):
            build_discretized_machine(circuit, delays.with_phases({"q1": 6}))

    def test_fold_identity(self):
        circuit, delays = unbalanced_pipe()
        skewed = delays.with_phases({"q1": 2})
        machine = build_discretized_machine(circuit, skewed)
        assert TimedLeaf("u", Interval.point(4)) in machine.timed_leaves


class TestUsefulSkew:
    def test_common_clock_bound(self):
        circuit, delays = unbalanced_pipe()
        assert minimum_cycle_time(circuit, delays).mct_upper_bound == 6

    def test_skew_balances_pipeline(self):
        circuit, delays = unbalanced_pipe()
        skewed = delays.with_phases({"q1": 2})
        result = minimum_cycle_time(circuit, skewed)
        assert result.mct_upper_bound == 4

    def test_partial_skew_partial_gain(self):
        circuit, delays = unbalanced_pipe()
        skewed = delays.with_phases({"q1": 1})
        result = minimum_cycle_time(circuit, skewed)
        assert result.mct_upper_bound == 5  # u->q1 becomes the 5 path

    def test_skew_with_interval_delays(self):
        circuit, delays = unbalanced_pipe()
        skewed = delays.with_phases({"q1": 2}).widen(Fraction(9, 10))
        result = minimum_cycle_time(circuit, skewed)
        assert result.mct_upper_bound == 4  # sup of the failing window

    def test_simulation_confirms_skewed_bound(self):
        circuit, delays = unbalanced_pipe()
        skewed = delays.with_phases({"q1": 2})
        sim = ClockedSimulator(circuit, skewed)
        rng = random.Random(11)
        stimulus = [{"u": rng.random() < 0.5} for _ in range(24)]
        init = {"q1": False, "q2": False}
        # Safe at the skewed bound (4) where the common clock needs 6...
        assert sim.matches_ideal(4, init, stimulus)
        assert sim.matches_ideal(5, init, stimulus)
        # ...and genuinely unsafe below it.
        assert not sim.matches_ideal(3, init, stimulus)

    def test_simulation_without_skew_fails_at_4(self):
        circuit, delays = unbalanced_pipe()
        sim = ClockedSimulator(circuit, delays)
        rng = random.Random(12)
        stimulus = [{"u": rng.random() < 0.5} for _ in range(24)]
        init = {"q1": False, "q2": False}
        assert not sim.matches_ideal(4, init, stimulus)
        assert sim.matches_ideal(6, init, stimulus)


class TestPhasePropagation:
    """Regression: every DelayMap copy path must keep the phases."""

    def test_sample_delay_map_keeps_phases(self):
        from repro.sim import sample_delay_map

        circuit, delays = unbalanced_pipe()
        skewed = delays.with_phases({"q1": 2}).widen(Fraction(9, 10))
        fixed = sample_delay_map(skewed, random.Random(0))
        assert fixed.phase("q1") == 2

    def test_compose_keeps_phases(self):
        from repro.benchgen import merge, prefix_circuit

        circuit, delays = unbalanced_pipe()
        skewed = delays.with_phases({"q1": 2})
        renamed, rdelays = prefix_circuit(circuit, skewed, "x_")
        assert rdelays.phase("x_q1") == 2
        merged, mdelays = merge("m", [(circuit, skewed)], prefixes=["a_"])
        assert mdelays.phase("a_q1") == 2

    def test_skewed_simulation_under_variation(self):
        """End-to-end: skewed + widened + sampled realization at the
        certified bound behaves ideally (the bug this guards against
        made the realization silently drop the skew)."""
        from repro.sim import sample_delay_map

        circuit, delays = unbalanced_pipe()
        skewed = delays.with_phases({"q1": 2}).widen(Fraction(9, 10))
        bound = minimum_cycle_time(circuit, skewed).mct_upper_bound
        rng = random.Random(7)
        stimulus = [{"u": rng.random() < 0.5} for _ in range(32)]
        for _ in range(3):
            realization = sample_delay_map(skewed, rng)
            sim = ClockedSimulator(circuit, realization)
            assert sim.matches_ideal(bound, {"q1": False, "q2": False}, stimulus)


class TestGuards:
    def test_explicit_machines_reject_phases(self):
        from repro.fsm import tau_machine

        circuit, delays = unbalanced_pipe()
        skewed = delays.with_phases({"q1": 2})
        with pytest.raises(AnalysisError):
            tau_machine(circuit, skewed, Fraction(6))

    def test_exact_lp_rejects_phases(self):
        from repro.mct.lp_exact import ExactFeasibility

        circuit, delays = unbalanced_pipe()
        skewed = delays.with_phases({"q1": 2})
        machine = build_discretized_machine(circuit, skewed)
        with pytest.raises(AnalysisError):
            ExactFeasibility(machine)
