"""Deep recursion, garbage collection, and cache-discipline tests.

Three concerns of the iterative BDD core:

* **depth** — the explicit-stack traversals must handle chain BDDs far
  deeper than CPython's recursion limit, with no ``sys.setrecursionlimit``
  side effect anywhere in ``src/``;
* **identity** — ITE normalization and the iterative rewrite are pure
  cache/scheduling changes: results must stay node-identical to the
  naive semantics (checked against brute-force evaluation and against
  an unnormalized manager);
* **preservation** — mark-and-sweep GC may only delete dead nodes:
  every live handle must represent exactly the same function
  afterwards, and canonicity (same function ⇒ same node) must survive
  the rebuild.
"""

from __future__ import annotations

import itertools
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BddManager, set_default_ite_normalization

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"

VARS = ["a", "b", "c", "d", "e"]


# ----------------------------------------------------------------------
# Expression ASTs (same shape as test_bdd_properties, kept local so the
# two modules stay independently runnable).
# ----------------------------------------------------------------------
def exprs(depth: int = 4):
    leaf = st.one_of(
        st.sampled_from([("var", v) for v in VARS]),
        st.sampled_from([("const", False), ("const", True)]),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.just("not"), children),
            st.tuples(st.sampled_from(["and", "or", "xor"]), children, children),
            st.tuples(st.just("ite"), children, children, children),
        )

    return st.recursive(leaf, extend, max_leaves=12)


def build_bdd(mgr: BddManager, ast):
    op = ast[0]
    if op == "var":
        return mgr.var(ast[1])
    if op == "const":
        return mgr.constant(ast[1])
    if op == "not":
        return ~build_bdd(mgr, ast[1])
    if op == "and":
        return build_bdd(mgr, ast[1]) & build_bdd(mgr, ast[2])
    if op == "or":
        return build_bdd(mgr, ast[1]) | build_bdd(mgr, ast[2])
    if op == "xor":
        return build_bdd(mgr, ast[1]) ^ build_bdd(mgr, ast[2])
    if op == "ite":
        return build_bdd(mgr, ast[1]).ite(
            build_bdd(mgr, ast[2]), build_bdd(mgr, ast[3])
        )
    raise AssertionError(op)


def eval_ast(ast, env) -> bool:
    op = ast[0]
    if op == "var":
        return env[ast[1]]
    if op == "const":
        return ast[1]
    if op == "not":
        return not eval_ast(ast[1], env)
    if op == "and":
        return eval_ast(ast[1], env) and eval_ast(ast[2], env)
    if op == "or":
        return eval_ast(ast[1], env) or eval_ast(ast[2], env)
    if op == "xor":
        return eval_ast(ast[1], env) != eval_ast(ast[2], env)
    if op == "ite":
        return eval_ast(ast[2], env) if eval_ast(ast[1], env) else eval_ast(ast[3], env)
    raise AssertionError(op)


def all_envs():
    for bits in itertools.product([False, True], repeat=len(VARS)):
        yield dict(zip(VARS, bits))


def truth_table(f) -> tuple[bool, ...]:
    return tuple(f.evaluate(env) for env in all_envs())


# ----------------------------------------------------------------------
# Depth: the explicit stacks must not depend on interpreter recursion
# ----------------------------------------------------------------------
class TestDeepChains:
    #: Comfortably above both the default interpreter limit (~1000) and
    #: the 20k bump the seed used to install at import time.
    DEPTH = 25_000

    def test_no_recursionlimit_mutation_in_src(self):
        offenders = [
            str(path)
            for path in SRC_ROOT.rglob("*.py")
            if "setrecursionlimit(" in path.read_text()
        ]
        assert offenders == []

    def test_import_leaves_interpreter_limit_alone(self):
        # The seed bumped the global limit to 20k as an import side
        # effect; importing the package must not touch it anymore.
        assert sys.getrecursionlimit() < 20_000

    @pytest.mark.parametrize("kernel,terminals", [("array", 1), ("object", 2)])
    def test_deep_chain_conjunction_builds(self, kernel, terminals):
        mgr = BddManager(kernel=kernel)
        names = [f"v{i}" for i in range(self.DEPTH)]
        mgr.add_vars(names)
        # Build bottom-up: each step ANDs a variable *above* the
        # accumulated chain, which is O(1) per step.
        f = mgr.true
        for name in reversed(names):
            f = mgr.var(name) & f
        assert f.node_count() == self.DEPTH + terminals

        # Full-depth traversals over the 25k-level chain.
        g = ~f  # a DAG copy on the object kernel, one XOR on array
        assert g.node_count() == self.DEPTH + terminals
        assert (~g) == f

        assert f.evaluate({name: True for name in names})
        env = {name: True for name in names}
        env[names[-1]] = False
        assert not f.evaluate(env)

        # ITE against the chain (f | var deep in the order).
        h = f | mgr.var(names[0])
        assert h == mgr.var(names[0]) | f

        # Quantify out the deepest variable: still a 20k+ chain.
        ex = f.exists([names[-1]])
        assert ex.node_count() == self.DEPTH - 1 + terminals
        assert f.sat_count(nvars=self.DEPTH) == 1

    @pytest.mark.parametrize("kernel,terminals", [("array", 1), ("object", 2)])
    def test_deep_chain_survives_gc(self, kernel, terminals):
        mgr = BddManager(kernel=kernel)
        names = [f"v{i}" for i in range(self.DEPTH)]
        mgr.add_vars(names)
        f = mgr.true
        for name in reversed(names):
            f = mgr.var(name) & f
        dead = f ^ mgr.var(names[1])  # garbage after this statement
        dead_size = dead.node_count()
        assert dead_size > 2
        del dead
        reclaimed = mgr.collect_garbage()
        assert reclaimed > 0
        assert f.node_count() == self.DEPTH + terminals
        assert f.evaluate({name: True for name in names})


# ----------------------------------------------------------------------
# Identity: normalization and iteration are pure cache changes
# ----------------------------------------------------------------------
class TestIterativeIdentity:
    @settings(max_examples=100, deadline=None)
    @given(exprs())
    def test_matches_bruteforce(self, ast):
        mgr = BddManager()
        mgr.add_vars(VARS)
        f = build_bdd(mgr, ast)
        for env in all_envs():
            assert f.evaluate(env) == eval_ast(ast, env)

    @settings(max_examples=100, deadline=None)
    @given(exprs())
    def test_normalization_does_not_change_results(self, ast):
        plain = BddManager(normalize_ite=False)
        plain.add_vars(VARS)
        normalized = BddManager(normalize_ite=True)
        normalized.add_vars(VARS)
        f = build_bdd(plain, ast)
        g = build_bdd(normalized, ast)
        assert truth_table(f) == truth_table(g)
        # Canonical ROBDDs of the same function under the same order
        # are isomorphic regardless of cache discipline.
        assert f.node_count() == g.node_count()

    @settings(max_examples=60, deadline=None)
    @given(exprs())
    def test_rebuild_is_canonical(self, ast):
        mgr = BddManager()
        mgr.add_vars(VARS)
        assert build_bdd(mgr, ast) == build_bdd(mgr, ast)

    def test_default_normalization_toggle(self):
        previous = set_default_ite_normalization(False)
        try:
            assert BddManager()._normalize is False
            assert BddManager(normalize_ite=True)._normalize is True
        finally:
            set_default_ite_normalization(previous)
        assert BddManager()._normalize is previous


# ----------------------------------------------------------------------
# Preservation: GC keeps every live function intact
# ----------------------------------------------------------------------
class TestGarbageCollection:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(exprs(), min_size=2, max_size=5), st.data())
    def test_live_functions_preserved_byte_for_byte(self, asts, data):
        mgr = BddManager()
        mgr.add_vars(VARS)
        handles = [build_bdd(mgr, ast) for ast in asts]
        keep_mask = data.draw(
            st.lists(
                st.booleans(), min_size=len(handles), max_size=len(handles)
            )
        )
        kept = [h for h, keep in zip(handles, keep_mask) if keep]
        kept_asts = [a for a, keep in zip(asts, keep_mask) if keep]
        before = [(truth_table(h), h.node_count()) for h in kept]
        del handles
        mgr.collect_garbage()
        after = [(truth_table(h), h.node_count()) for h in kept]
        assert before == after
        # Canonicity survives: rebuilding an expression finds the same
        # (relocated) node as the surviving handle.
        for ast, h in zip(kept_asts, kept):
            assert build_bdd(mgr, ast) == h

    @settings(max_examples=40, deadline=None)
    @given(exprs())
    def test_canonicity_after_gc(self, ast):
        mgr = BddManager()
        mgr.add_vars(VARS)
        f = build_bdd(mgr, ast)
        scratch = build_bdd(mgr, ("not", ast)) ^ mgr.var("a")
        del scratch
        mgr.collect_garbage()
        assert build_bdd(mgr, ast) == f

    def test_collect_reclaims_dead_nodes(self):
        mgr = BddManager()
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        keep = a & b
        dead = (a ^ b) | (b & c)
        size_with_garbage = len(mgr)
        del dead
        reclaimed = mgr.collect_garbage()
        assert reclaimed > 0
        assert len(mgr) == size_with_garbage - reclaimed
        assert keep == a & b
        stats = mgr.stats
        assert stats.gc_runs == 1
        assert stats.nodes_reclaimed == reclaimed

    @pytest.mark.parametrize("kernel,terminals", [("array", 1), ("object", 2)])
    def test_variables_survive_without_handles(self, kernel, terminals):
        mgr = BddManager(kernel=kernel)
        mgr.add_vars(["a", "b"])
        mgr.collect_garbage()
        # Variable nodes are roots even with no live Function handles.
        assert mgr.var("a").node_count() == 1 + terminals
        assert (mgr.var("a") & mgr.var("b")).sat_count(nvars=2) == 1

    def test_auto_gc_triggers_at_threshold(self):
        mgr = BddManager(gc_threshold=50)
        mgr.add_vars(VARS)
        for i in range(40):
            scratch = (
                mgr.var("a") & mgr.var("b")
            ) ^ (mgr.var("c") | mgr.var(f"t{i}"))
            del scratch
        assert mgr.stats.gc_runs > 0
        # The live table stays near the root set despite the churn.
        assert len(mgr) < 200

    def test_manual_only_without_threshold(self):
        mgr = BddManager()
        mgr.add_vars(VARS)
        for i in range(40):
            scratch = mgr.var("a") ^ mgr.var(f"t{i}")
            del scratch
        assert mgr.stats.gc_runs == 0


# ----------------------------------------------------------------------
# Bounded operation cache
# ----------------------------------------------------------------------
class TestCacheEviction:
    def test_eviction_fires_and_results_stay_correct(self):
        mgr = BddManager(max_cache_size=64)
        mgr.add_vars(VARS + [f"w{i}" for i in range(8)])
        fns = []
        for i in range(8):
            f = mgr.var("a") ^ mgr.var(f"w{i}")
            for v in VARS:
                f = f | (mgr.var(v) & mgr.var(f"w{(i + 1) % 8}"))
            fns.append(f)
        assert mgr.stats.cache_evictions > 0
        assert len(mgr._ite_cache) <= 64
        # Spot-check semantics after heavy eviction churn.
        env = {name: False for name in mgr.var_names}
        env["a"] = True
        for i, f in enumerate(fns):
            expected = True ^ env[f"w{i}"]
            assert f.evaluate(env) == expected

    def test_invalid_bounds_rejected(self):
        from repro.errors import BddError

        with pytest.raises(BddError):
            BddManager(max_cache_size=1)
        with pytest.raises(BddError):
            BddManager(gc_threshold=0)
