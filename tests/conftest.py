"""Shared fixtures: TLS material for the network-hardening tests."""

from __future__ import annotations

import shutil
import subprocess

import pytest


@pytest.fixture(scope="session")
def tls_certs(tmp_path_factory):
    """A self-signed certificate/key pair (also its own CA bundle).

    Generated once per session with the openssl CLI — exactly how the
    CI jobs and the USAGE.md cookbook provision a test fleet.  Tests
    that need TLS skip cleanly on machines without openssl.
    """
    openssl = shutil.which("openssl")
    if openssl is None:
        pytest.skip("openssl CLI not available")
    directory = tmp_path_factory.mktemp("tls")
    cert = directory / "cert.pem"
    key = directory / "key.pem"
    proc = subprocess.run(
        [
            openssl, "req", "-x509", "-newkey", "rsa:2048",
            "-keyout", str(key), "-out", str(cert),
            "-days", "2", "-nodes", "-subj", "/CN=repro-mct-test",
        ],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        pytest.skip(f"openssl could not generate a test cert: {proc.stderr}")
    return {"cert": str(cert), "key": str(key), "ca": str(cert)}
