"""Differential tests: array/complement-edge kernel vs object kernel.

The array kernel (flat integer columns, complement edges, packed int
cache keys) must be observationally identical to the historical
object kernel behind the :class:`~repro.bdd.Function` API: same truth
tables, same ``sat_count``, same sweep bounds and candidate verdicts.
These tests pin that equivalence on random formula DAGs (hypothesis)
and on the paper's Example 2 plus a benchgen suite circuit, in serial
and on the process pool.  The cache-discipline regressions for the
NOT cache bound and the recency-aware ITE eviction live here too.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.bdd import BddManager, transfer
from repro.benchgen import build_case, paper_example2, suite_cases
from repro.mct import MctOptions, minimum_cycle_time

from tests.test_bdd_properties import (
    VARS,
    all_envs,
    build_bdd,
    eval_ast,
    exprs,
)


def both_kernels(ast):
    """Build the same AST in a fresh manager of each kernel."""
    pairs = []
    for kernel in ("array", "object"):
        mgr = BddManager(kernel=kernel)
        for name in VARS:
            mgr.var(name)
        pairs.append((mgr, build_bdd(mgr, ast)))
    return pairs


class TestDifferentialSemantics:
    """Random formula DAGs evaluate identically under both kernels."""

    @settings(max_examples=60, deadline=None)
    @given(ast=exprs())
    def test_truth_tables_and_counts_match(self, ast):
        (amgr, af), (omgr, of) = both_kernels(ast)
        for env in all_envs():
            expected = eval_ast(ast, env)
            assert amgr.evaluate(af, env) == expected
            assert omgr.evaluate(of, env) == expected
        assert amgr.sat_count(af) == omgr.sat_count(of)
        assert sorted(amgr.support(af)) == sorted(omgr.support(of))
        assert af.is_zero() == of.is_zero()
        assert af.is_one() == of.is_one()

    @settings(max_examples=30, deadline=None)
    @given(ast=exprs())
    def test_cross_kernel_transfer_round_trip(self, ast):
        (amgr, af), (omgr, of) = both_kernels(ast)
        # Array -> object lands on the node the object kernel built
        # itself (canonicity), and back again.
        assert transfer(af, omgr).node == of.node
        assert transfer(of, amgr).node == af.node

    @settings(max_examples=30, deadline=None)
    @given(ast=exprs())
    def test_sat_iter_enumerations_agree(self, ast):
        (amgr, af), (omgr, of) = both_kernels(ast)
        a_sats = sorted(tuple(sorted(s.items())) for s in amgr.sat_iter(af))
        o_sats = sorted(tuple(sorted(s.items())) for s in omgr.sat_iter(of))
        assert a_sats == o_sats


class TestComplementEdges:
    """Negation is free and shares structure in the array kernel."""

    def test_not_is_tag_flip(self):
        mgr = BddManager(kernel="array")
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        f = (a & b) | c
        g = ~f
        assert g.node == f.node ^ 1
        assert (~g).node == f.node

    def test_negation_allocates_no_nodes(self):
        mgr = BddManager(kernel="array")
        f = (mgr.var("a") & mgr.var("b")) ^ mgr.var("c")
        before = len(mgr)
        g = ~f
        assert len(mgr) == before
        assert mgr.dag_size([g]) == mgr.dag_size([f])

    def test_constants_are_complements(self):
        mgr = BddManager(kernel="array")
        assert mgr.true.node == mgr.false.node ^ 1

    def test_high_edges_are_regular(self):
        """Canonical form: no stored node has a complemented high edge."""
        mgr = BddManager(kernel="array")
        for name in VARS:
            mgr.var(name)
        f = (mgr.var("a") ^ mgr.var("b")) | (~mgr.var("c") & mgr.var("d"))
        g = f.ite(mgr.var("e"), ~f)
        del f, g
        assert all(hi & 1 == 0 for hi in mgr._hi_col[1:])


class TestNotCacheBound:
    """The object kernel's NOT cache honours ``max_cache_size``."""

    def test_not_cache_is_bounded_and_counts_evictions(self):
        mgr = BddManager(kernel="object", max_cache_size=16)
        names = [f"x{i}" for i in range(40)]
        for name in names:
            mgr.var(name)
        f = mgr.false
        for name in reversed(names):
            f = mgr.var(name) | f
            ~f  # populate the NOT cache (bidirectional entries)
        # Entry-point eviction keeps the cache near the cap: one
        # traversal can legitimately add many entries, but each new
        # top-level NOT call trims back below max_cache_size first.
        assert mgr.stats.not_cache_evictions > 0
        assert len(mgr._not_cache) <= 16 + 2 * len(names)

    def test_eviction_does_not_change_results(self):
        def truth_table(mgr):
            for name in VARS:
                mgr.var(name)
            f = (mgr.var("a") & mgr.var("b")) | (mgr.var("c") ^ mgr.var("d"))
            g = ~f | mgr.var("e")
            return [mgr.evaluate(~g, env) for env in all_envs()]

        bounded = truth_table(BddManager(kernel="object", max_cache_size=8))
        unbounded = truth_table(BddManager(kernel="object"))
        assert bounded == unbounded


class TestIteCacheRecency:
    """ITE cache eviction is LRU: hits refresh an entry's position."""

    @pytest.mark.parametrize("kernel", ["array", "object"])
    def test_hit_moves_entry_to_end(self, kernel):
        mgr = BddManager(kernel=kernel)
        a, b, c, d = (mgr.var(n) for n in "abcd")
        (a & b)  # seed one cacheable triple
        first = next(iter(mgr._ite_cache))
        (c | d)  # push later entries behind it
        assert next(iter(mgr._ite_cache)) == first
        (a & b)  # cache hit must refresh recency
        assert list(mgr._ite_cache)[-1] == first
        assert next(iter(mgr._ite_cache)) != first

    @pytest.mark.parametrize("kernel", ["array", "object"])
    def test_repeated_workload_hit_rate(self, kernel):
        """A hot working set survives eviction pressure under LRU.

        The workload re-runs one fixed conjunction trace between
        bursts of one-off garbage ITEs that keep the eviction pressure
        on.  Because every hot lookup refreshes its entry to the newest
        half, oldest-half eviction only ever drops cold entries; with
        the previous insertion-ordered eviction the warm-up-era hot
        entries sat in the oldest half and were flushed every burst.
        """
        mgr = BddManager(kernel=kernel, max_cache_size=64)
        hot = [mgr.var(f"h{i}") for i in range(6)]
        cold = [mgr.var(f"c{i}") for i in range(24)]

        def run_hot():
            f = hot[0]
            for v in hot[1:]:
                f = f & v
            return f

        run_hot()  # warm the cache
        n = len(cold)
        hot_lookups = hot_hits = 0
        for round_ in range(6):
            for i in range(n):  # unique pairings each round: all misses
                j = (i + round_ + 1) % n
                if i != j:
                    cold[i] ^ cold[j]
            before = (mgr.stats.cache_lookups, mgr.stats.cache_hits)
            run_hot()
            hot_lookups += mgr.stats.cache_lookups - before[0]
            hot_hits += mgr.stats.cache_hits - before[1]
        assert mgr.stats.cache_evictions > 0
        assert hot_lookups > 0
        assert hot_hits / hot_lookups >= 0.9


def _candidate_keys(result):
    """Verdict identity of a sweep, stripped of measurements.

    ``elapsed_seconds``/``ite_calls``/``attempts`` are measurements of
    *how* a window was decided and legitimately differ across kernels
    and worker placements; everything else must be byte-identical.
    """
    return [(c.tau, c.status, c.m, c.rung) for c in result.candidates]


def _sweep(circuit, delays, kernel, *, jobs=1, **extra):
    options = MctOptions(bdd_kernel=kernel, **extra)
    return minimum_cycle_time(circuit, delays, options, jobs=jobs)


class TestSweepIdentity:
    """Both kernels produce byte-identical analysis verdicts."""

    def test_example2_serial(self):
        circuit, delays = paper_example2()
        array = _sweep(circuit, delays, "array")
        obj = _sweep(circuit, delays, "object")
        assert array.mct_upper_bound == obj.mct_upper_bound == Fraction(5, 2)
        assert array.failing_window == obj.failing_window
        assert array.failing_roots == obj.failing_roots
        assert array.L == obj.L
        assert _candidate_keys(array) == _candidate_keys(obj)

    def test_example2_parallel_pool(self):
        circuit, delays = paper_example2()
        serial = _sweep(circuit, delays, "array")
        for kernel in ("array", "object"):
            pooled = _sweep(circuit, delays, kernel, jobs=2)
            assert pooled.mct_upper_bound == serial.mct_upper_bound
            assert pooled.failing_window == serial.failing_window
            assert _candidate_keys(pooled) == _candidate_keys(serial)

    def test_example2_cluster(self):
        """Both kernels land on the serial verdicts over a loopback
        cluster (the ``--workers`` path: state pickled to socket
        workers, results merged by the lease scheduler)."""
        from tests.test_cluster import CLUSTER_OPTS, fleet

        circuit, delays = paper_example2()
        serial = _sweep(circuit, delays, "array")
        for kernel in ("array", "object"):
            from repro.parallel import WorkerServer

            with fleet(WorkerServer(), WorkerServer()) as transport:
                clustered = minimum_cycle_time(
                    circuit,
                    delays,
                    MctOptions(bdd_kernel=kernel, **CLUSTER_OPTS),
                    transport=transport,
                )
            assert clustered.mct_upper_bound == serial.mct_upper_bound
            assert clustered.failing_window == serial.failing_window
            assert _candidate_keys(clustered) == _candidate_keys(serial)

    def test_suite_case_bounds_match(self):
        case = next(c for c in suite_cases() if c.name == "g444")
        circuit, delays = build_case(case)
        array = _sweep(circuit, delays, "array")
        obj = _sweep(circuit, delays, "object")
        assert array.mct_upper_bound == obj.mct_upper_bound
        assert array.failing_window == obj.failing_window
        assert _candidate_keys(array) == _candidate_keys(obj)

    def test_sifting_mid_sweep_preserves_bound(self):
        """A tiny sift threshold forces reorders mid-sweep; the bound
        and verdict sequence must not move."""
        circuit, delays = paper_example2()
        plain = _sweep(circuit, delays, "array")
        sifted = _sweep(
            circuit, delays, "array", bdd_sift_threshold=1
        )
        assert sifted.mct_upper_bound == plain.mct_upper_bound
        assert sifted.failing_window == plain.failing_window
        assert _candidate_keys(sifted) == _candidate_keys(plain)
        assert sifted.bdd_stats.sift_runs > 0


class TestKernelSelection:
    def test_default_is_array(self):
        assert BddManager().kernel_name == "array"

    def test_explicit_object(self):
        assert BddManager(kernel="object").kernel_name == "object"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(Exception):
            BddManager(kernel="quantum")

    def test_options_validate_kernel(self):
        from repro.errors import OptionsError

        with pytest.raises(OptionsError):
            MctOptions(bdd_kernel="quantum")
        with pytest.raises(OptionsError):
            MctOptions(bdd_sift_threshold=0)

    def test_kernel_not_in_fingerprint(self):
        """Representation knobs must not split checkpoint identity."""
        from repro.mct.engine import _fingerprint

        a = _fingerprint(MctOptions(bdd_kernel="array"))
        b = _fingerprint(MctOptions(bdd_kernel="object"))
        assert a == b
