"""Property tests for the discretization math (ages, windows, regimes).

These pin the exact-arithmetic core the whole sweep rests on: the floor
convention, the age-set algebra of Def. 4, and the window invariant —
between consecutive breakpoints the discretized machine is constant.
"""

import math
from fractions import Fraction

from hypothesis import assume, given, settings, strategies as st

from repro.benchgen.generators import random_fsm
from repro.logic import Interval
from repro.mct import age_of, age_set, build_discretized_machine, tau_breakpoints
from repro.mct.decision import DecisionContext

fractions_pos = st.fractions(min_value=Fraction(1, 100), max_value=Fraction(100))
fractions_nonneg = st.fractions(min_value=0, max_value=Fraction(100))


@settings(max_examples=200, deadline=None)
@given(fractions_nonneg, fractions_pos)
def test_age_matches_floor_definition(k, tau):
    """age = -⌊-k/τ⌋ exactly (the paper's Eq. 3 convention)."""
    assert age_of(k, tau) == -math.floor(-k / tau)


@settings(max_examples=200, deadline=None)
@given(fractions_pos, fractions_pos)
def test_age_window_is_left_closed(k, tau):
    """k realizes age a exactly on τ ∈ [k/a, k/(a-1))."""
    a = age_of(k, tau)
    assert a >= 1
    assert k / a <= tau
    if a > 1:
        assert tau < k / (a - 1)


@settings(max_examples=200, deadline=None)
@given(fractions_pos, fractions_pos, fractions_pos)
def test_age_set_is_contiguous_and_covers(lo, hi, tau):
    assume(lo <= hi)
    interval = Interval(lo, hi)
    ages = age_set(interval, tau)
    assert list(ages) == list(range(ages[0], ages[-1] + 1))
    # Every realizable age is in the set and vice versa.
    for a in ages:
        # Some k in [lo, hi] realizes a: the window [aτ(a-1), aτ]...
        window_lo = tau * (a - 1)
        window_hi = tau * a
        assert hi > window_lo and lo <= window_hi
    assert age_of(lo, tau) == ages[0]
    assert age_of(hi, tau) == ages[-1]


@settings(max_examples=100, deadline=None)
@given(fractions_pos, st.integers(min_value=1, max_value=6))
def test_age_monotone_in_tau(k, steps):
    """Ages never decrease as τ shrinks."""
    taus = [k / Fraction(i) for i in range(1, steps + 1)]
    ages = [age_of(k, t) for t in taus]
    assert ages == sorted(ages)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_regime_constant_between_breakpoints(seed):
    """The window invariant: regimes change only at breakpoints."""
    circuit, delays = random_fsm(seed, n_inputs=1, n_latches=2, n_gates=6)
    machine = build_discretized_machine(circuit, delays)
    bps = list(tau_breakpoints(machine.endpoint_values, machine.L / 6))
    for upper, lower in zip(bps, bps[1:]):
        midpoint = (upper + lower) / 2
        assert machine.regime(lower) == machine.regime(midpoint) or midpoint == upper
        # The upper breakpoint starts a *different* (older) window.
        if machine.regime(upper) == machine.regime(lower):
            continue  # interval leaves may share sets; allowed
        for tl, ages in machine.regime(upper).items():
            assert ages[-1] <= machine.regime(lower)[tl][-1]


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_decision_depends_only_on_regime(seed):
    """Two τ in the same window must get identical verdicts."""
    circuit, delays = random_fsm(seed, n_inputs=1, n_latches=2, n_gates=6)
    machine = build_discretized_machine(circuit, delays)
    bps = list(tau_breakpoints(machine.endpoint_values, machine.L / 4))
    if len(bps) < 2:
        return
    upper, lower = bps[-2], bps[-1]
    mid = (upper + lower) / 2
    if machine.regime(lower) != machine.regime(mid):
        return  # mid crossed an interval-endpoint boundary
    ctx = DecisionContext(machine)
    assert (
        ctx.decide(machine.regime(lower)).passed_structurally
        == ctx.decide(machine.regime(mid)).passed_structurally
    )
