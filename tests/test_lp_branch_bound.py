"""The exact-LP branch-and-bound fast path (perf tentpole).

Contract under test: the prescreened, bound-pruned, optionally sharded
``sup_tau_options`` returns *byte-identical* bounds to the blind
cartesian-product loop it replaced — pruning and sharding change how
much work finds the maximum, never the maximum itself — and every call
preserves the accounting identity ``solves + prescreen_skips +
bound_prunes == enumerated combinations``.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.benchgen import paper_example2, random_fsm
from repro.errors import AnalysisError, DeadlineExceeded, OptionsError
from repro.logic import Interval
from repro.mct.breakpoints import tau_breakpoints
from repro.mct.discretize import TimedLeaf, build_discretized_machine
from repro.mct.engine import (
    CandidateRecord,
    MctOptions,
    _fingerprint,
    minimum_cycle_time,
)
from repro.mct.feasibility import point_sigma_sup_tau
from repro.mct.lp_exact import SHARD_MIN_SURVIVORS, ExactFeasibility
from repro.mct.lp_stats import LpStats
from repro.parallel.pool import shard_interleaved
from repro.parallel.supervise import Quarantined
from repro.parallel.windows import LpShardRunner
from repro.resilience.checkpoint import SweepCheckpoint
from repro.resilience.deadline import Deadline

from tests.test_paths_and_exact_lp import shared_stem_circuit


def blind_loop_max(oracle, options, window):
    """The PR-7 reference: solve every combination, take the max."""
    leaves = list(options)
    best = None
    for combo in itertools.product(*(options[tl] for tl in leaves)):
        value = oracle.sup_tau(dict(zip(leaves, combo)), window)
        if value is not None and (best is None or value > best):
            best = value
    return best


def stem_oracle():
    circuit, delays = shared_stem_circuit()
    machine = build_discretized_machine(circuit, delays)
    oracle = ExactFeasibility(machine)
    leaf_a = TimedLeaf("q", Interval.of(4, 5))
    leaf_b = TimedLeaf("q", Interval.of(2, 3))
    return oracle, leaf_a, leaf_b


# ----------------------------------------------------------------------
# Satellite: the limit_denominator clamp
# ----------------------------------------------------------------------
class TestRelaxedClamp:
    def test_adversarial_denominator_is_clamped(self, monkeypatch):
        """A float supremum a hair above the rational one used to
        round *past* it: ``limit_denominator(10**9)`` picks the closest
        fraction with a bounded denominator, which can exceed the true
        relaxed supremum.  The clamp pins it back."""
        oracle, leaf_a, leaf_b = stem_oracle()
        sigma = {leaf_a: 1, leaf_b: 1}
        window = (Fraction(5), Fraction(8))
        feasible, relaxed = point_sigma_sup_tau(sigma, window)
        assert feasible and relaxed is not None
        # Adversarial drift: 3/(4e9) has denominator 4e9 > the 1e9
        # limit, so the re-rationalized float lands strictly above the
        # relaxed supremum — exactly the drift the clamp must absorb.
        drift = float(relaxed + Fraction(3, 4 * 10**9))
        assert Fraction(drift).limit_denominator(10**9) > relaxed

        class _Fake:
            success = True
            x = [0.0] * (oracle._tau_index + 1)

        _Fake.x[oracle._tau_index] = drift
        monkeypatch.setattr(
            "repro.mct.lp_exact.linprog", lambda *a, **k: _Fake()
        )
        assert oracle.sup_tau(sigma, window) == relaxed

    def test_exact_never_exceeds_relaxed_exactly(self):
        """With the clamp the invariant is exact, no float tolerance."""
        oracle, leaf_a, leaf_b = stem_oracle()
        window = (Fraction(2), Fraction(6))
        for age_a in (1, 2, 3):
            for age_b in (1, 2):
                sigma = {leaf_a: age_a, leaf_b: age_b}
                exact = oracle.sup_tau(sigma, window)
                if exact is None:
                    continue
                feasible, relaxed = point_sigma_sup_tau(sigma, window)
                assert feasible
                assert relaxed is None or exact <= relaxed


# ----------------------------------------------------------------------
# Tentpole: prescreen + bound prune + accounting
# ----------------------------------------------------------------------
class TestBranchAndBound:
    WINDOW = (Fraction(2), Fraction(8))
    OPTIONS_AGES = ((1, 2, 3), (1, 2))

    def options(self, leaf_a, leaf_b):
        ages_a, ages_b = self.OPTIONS_AGES
        return {leaf_a: ages_a, leaf_b: ages_b}

    def test_accounting_identity(self):
        oracle, leaf_a, leaf_b = stem_oracle()
        options = self.options(leaf_a, leaf_b)
        oracle.sup_tau_options(options, self.WINDOW)
        stats = oracle.stats
        total = len(self.OPTIONS_AGES[0]) * len(self.OPTIONS_AGES[1])
        assert (
            stats.solves + stats.prescreen_skips + stats.bound_prunes
            == total
        )

    def test_bound_prune_fires_and_preserves_max(self):
        oracle, leaf_a, leaf_b = stem_oracle()
        options = self.options(leaf_a, leaf_b)
        pruned = oracle.sup_tau_options(options, self.WINDOW)
        reference, _, _ = stem_oracle()
        blind = blind_loop_max(reference, options, self.WINDOW)
        assert pruned == blind
        # The descending order means the first solved σ dominates its
        # window-capped peers, so at least one σ was discarded unsolved.
        assert oracle.stats.bound_prunes > 0
        assert oracle.stats.solves < (
            len(self.OPTIONS_AGES[0]) * len(self.OPTIONS_AGES[1])
        )

    def test_prescreen_skips_relaxed_infeasible(self):
        oracle, leaf_a, leaf_b = stem_oracle()
        # Tight window: most age combinations are relaxed-infeasible.
        window = (Fraction(2), Fraction(5, 2))
        oracle.sup_tau_options({leaf_a: (1, 2, 3), leaf_b: (1, 2)}, window)
        assert oracle.stats.prescreen_skips > 0

    def test_skeleton_rows_cached_across_sigmas(self):
        oracle, leaf_a, leaf_b = stem_oracle()
        window = (Fraction(5), Fraction(8))
        oracle.sup_tau({leaf_a: 1, leaf_b: 1}, window)
        before = oracle.stats.skeleton_hits
        oracle.sup_tau({leaf_a: 1, leaf_b: 1}, window)
        assert oracle.stats.skeleton_hits > before
        assert oracle.stats.solves == 2

    def test_deadline_polled_during_prescreen(self):
        oracle, leaf_a, leaf_b = stem_oracle()
        deadline = Deadline(1e-9, stride=1)
        time.sleep(0.002)
        with pytest.raises(DeadlineExceeded):
            oracle.sup_tau_options(
                self.options(leaf_a, leaf_b), self.WINDOW, deadline=deadline
            )
        assert oracle.stats.solves == 0

    def test_cap_raises_before_any_work(self):
        oracle, leaf_a, leaf_b = stem_oracle()
        options = {leaf_a: tuple(range(1, 9)), leaf_b: tuple(range(1, 9))}
        with pytest.raises(AnalysisError, match="exceed the exact-LP cap"):
            oracle.sup_tau_options(options, self.WINDOW, max_combinations=8)
        assert oracle.stats.solves == 0
        assert oracle.stats.prescreen_skips == 0


# ----------------------------------------------------------------------
# Satellite: randomized differential against the blind loop
# ----------------------------------------------------------------------
class TestDifferential:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_bb_matches_blind_loop_on_random_machines(self, seed):
        circuit, delays = random_fsm(seed)
        try:
            machine = build_discretized_machine(circuit, delays.widen(Fraction(9, 10)))
        except AnalysisError:
            return  # zero-delay register loop: not this test's concern
        breakpoints = list(
            itertools.islice(
                tau_breakpoints(machine.endpoint_values), 6
            )
        )
        windows = [
            (lo, hi)
            for hi, lo in zip(breakpoints, breakpoints[1:])
        ]
        try:
            bb_oracle = ExactFeasibility(machine)
        except AnalysisError:
            return  # path cap / phases: exactness fallback, tested elsewhere
        blind_oracle = ExactFeasibility(machine)
        checked = 0
        for lo, hi in windows:
            mid = (lo + hi) / 2
            options = machine.regime(mid)
            total = 1
            for ages in options.values():
                total *= len(ages)
            if total > 64:
                continue
            bb = bb_oracle.sup_tau_options(options, (lo, hi))
            blind = blind_loop_max(blind_oracle, options, (lo, hi))
            assert bb == blind
            checked += 1
        if checked:
            stats = bb_oracle.stats
            assert stats.solves <= blind_oracle.stats.solves
            assert (
                stats.solves + stats.prescreen_skips + stats.bound_prunes
                == blind_oracle.stats.solves + blind_oracle.stats.prescreen_skips
            )

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_exact_sup_never_exceeds_relaxed(self, seed):
        circuit, delays = random_fsm(seed)
        try:
            machine = build_discretized_machine(circuit, delays.widen(Fraction(9, 10)))
            oracle = ExactFeasibility(machine)
        except AnalysisError:
            return
        breakpoints = list(
            itertools.islice(tau_breakpoints(machine.endpoint_values), 4)
        )
        for hi, lo in zip(breakpoints, breakpoints[1:]):
            mid = (lo + hi) / 2
            options = machine.regime(mid)
            leaves = list(options)
            combos = itertools.islice(
                itertools.product(*(options[tl] for tl in leaves)), 16
            )
            for combo in combos:
                sigma = dict(zip(leaves, combo))
                exact = oracle.sup_tau(sigma, (lo, hi))
                if exact is None:
                    continue
                feasible, relaxed = point_sigma_sup_tau(sigma, (lo, hi))
                assert feasible
                assert relaxed is None or exact <= relaxed


# ----------------------------------------------------------------------
# Tentpole: sharded solving
# ----------------------------------------------------------------------
class TestSharding:
    def survivors(self, oracle, leaf_a, leaf_b, window):
        options = {leaf_a: (1, 2, 3), leaf_b: (1, 2, 3)}
        leaves = list(options)
        survivors = []
        for combo in itertools.product(*(options[tl] for tl in leaves)):
            feasible, relaxed = point_sigma_sup_tau(
                dict(zip(leaves, combo)), window
            )
            if feasible:
                survivors.append((relaxed, combo))
        from repro.mct.lp_exact import _survivor_order

        survivors.sort(key=_survivor_order)
        return leaves, survivors

    def test_shard_interleaved_is_deterministic(self):
        items = list(range(10))
        assert shard_interleaved(items, 3) == [
            [0, 3, 6, 9],
            [1, 4, 7],
            [2, 5, 8],
        ]
        assert shard_interleaved([], 3) == []
        assert shard_interleaved(items, 1) == [items]

    def test_dispatch_matches_serial_solve(self):
        oracle, leaf_a, leaf_b = stem_oracle()
        window = (Fraction(2), Fraction(8))
        leaves, survivors = self.survivors(oracle, leaf_a, leaf_b, window)
        assert survivors  # the comparison must exercise real work
        serial_oracle, _, _ = stem_oracle()
        serial = serial_oracle.solve_batch(leaves, survivors, window)
        runner = LpShardRunner(oracle, shards=2)
        try:
            results = runner.dispatch(leaves, survivors, window)
        finally:
            runner.shutdown()
        best = None
        merged = LpStats()
        for shard_best, stats_dict in results:
            if stats_dict is not None:
                merged.merge(LpStats.from_dict(stats_dict))
            if shard_best is not None and (best is None or shard_best > best):
                best = shard_best
        assert best == serial
        # Worker shards really ran and reported their counters.
        assert merged.solves > 0

    def test_quarantined_shard_falls_back_to_parent(self, monkeypatch):
        oracle, leaf_a, leaf_b = stem_oracle()
        window = (Fraction(2), Fraction(8))
        leaves, survivors = self.survivors(oracle, leaf_a, leaf_b, window)
        serial_oracle, _, _ = stem_oracle()
        serial = serial_oracle.solve_batch(leaves, survivors, window)
        runner = LpShardRunner(oracle, shards=2)
        monkeypatch.setattr(
            runner._supervisor,
            "map_ordered",
            lambda fn, batches: [Quarantined(3, "crash")] * len(batches),
        )
        try:
            results = runner.dispatch(leaves, survivors, window)
        finally:
            runner.shutdown()
        # Every shard was re-solved in the parent: stats=None pairs
        # (the parent oracle charged itself), same merged maximum.
        assert all(stats is None for _, stats in results)
        best = max(
            (b for b, _ in results if b is not None), default=None
        )
        assert best == serial
        assert oracle.stats.solves > 0

    def test_small_survivor_lists_never_dispatch(self):
        oracle, leaf_a, leaf_b = stem_oracle()
        calls = []

        def spy(leaves, survivors, window):
            calls.append(len(survivors))
            return []

        options = {leaf_a: (1,), leaf_b: (1,)}
        window = (Fraction(5), Fraction(8))
        oracle.sup_tau_options(options, window, shard_dispatch=spy)
        assert calls == []  # 1 survivor < SHARD_MIN_SURVIVORS
        assert oracle.stats.shard_dispatches == 0
        assert 1 < SHARD_MIN_SURVIVORS

    def test_engine_lp_shards_matches_serial(self):
        circuit, delays = paper_example2()
        delays = delays.widen(Fraction(9, 10))
        serial = minimum_cycle_time(
            circuit, delays, MctOptions(exact_feasibility=True)
        )
        sharded = minimum_cycle_time(
            circuit, delays, MctOptions(exact_feasibility=True, lp_shards=3)
        )
        assert sharded.mct_upper_bound == serial.mct_upper_bound
        assert [
            (r.tau, r.status, r.m, r.rung) for r in sharded.candidates
        ] == [(r.tau, r.status, r.m, r.rung) for r in serial.candidates]
        assert sharded.failing_window == serial.failing_window


# ----------------------------------------------------------------------
# Telemetry plumbing: LpStats, results, checkpoints
# ----------------------------------------------------------------------
class TestLpStats:
    def test_merge_and_round_trip(self):
        a = LpStats(solves=2, prescreen_skips=3, wall_seconds=0.5)
        b = LpStats(solves=1, bound_prunes=4, skeleton_hits=7,
                    shard_dispatches=2, wall_seconds=0.25)
        a.merge(b)
        assert (a.solves, a.prescreen_skips, a.bound_prunes) == (3, 3, 4)
        assert (a.skeleton_hits, a.shard_dispatches) == (7, 2)
        assert a.wall_seconds == pytest.approx(0.75)
        assert LpStats.from_dict(a.as_dict()) == a

    def test_from_dict_ignores_unknown_keys(self):
        stats = LpStats.from_dict({"solves": 5, "not_a_field": 9})
        assert stats.solves == 5

    def test_summary_mentions_avoided_work(self):
        text = LpStats(solves=1, prescreen_skips=2, bound_prunes=3).summary()
        assert "1 LP solves" in text
        assert "5 avoided" in text

    def test_result_carries_lp_stats(self):
        circuit, delays = paper_example2()
        delays = delays.widen(Fraction(9, 10))
        exact = minimum_cycle_time(
            circuit, delays, MctOptions(exact_feasibility=True)
        )
        assert exact.lp_stats is not None
        assert exact.lp_stats.solves > 0
        relaxed = minimum_cycle_time(circuit, delays)
        assert relaxed.lp_stats is None

    def checkpoint(self):
        record = CandidateRecord(
            tau=Fraction(3, 2), status="fail", m=2,
            elapsed_seconds=0.5, ite_calls=12, lp_solves=4,
        )
        return SweepCheckpoint(
            circuit_name="stem",
            L=Fraction(5),
            last_tau=Fraction(3, 2),
            records=(record,),
            rung="exact",
            reason="test",
            fingerprint=_fingerprint(MctOptions(exact_feasibility=True)),
            lp_stats=LpStats(solves=4, prescreen_skips=2).as_dict(),
        )

    def test_checkpoint_round_trips_lp_fields(self):
        checkpoint = self.checkpoint()
        data = checkpoint.to_dict()
        loaded = SweepCheckpoint.from_dict(data)
        assert loaded.lp_stats == checkpoint.lp_stats
        assert [r.lp_solves for r in loaded.records] == [
            r.lp_solves for r in checkpoint.records
        ]
        # Older v2 checkpoints carry neither key: defaults apply.
        for record in data["records"]:
            record.pop("lp_solves")
        data.pop("lp_stats")
        legacy = SweepCheckpoint.from_dict(data)
        assert legacy.lp_stats is None
        assert all(r.lp_solves == 0 for r in legacy.records)

    def test_checkpoint_merge_joins_lp_counters(self):
        ours = self.checkpoint()
        theirs = SweepCheckpoint.from_dict(ours.to_dict())
        bumped = dict(theirs.lp_stats)
        bumped["solves"] = bumped["solves"] + 5
        theirs = dataclasses.replace(theirs, lp_stats=bumped)
        merged = ours.merge(theirs)
        assert merged.lp_stats["solves"] == bumped["solves"]


# ----------------------------------------------------------------------
# Satellite: option validation and the cap fallback
# ----------------------------------------------------------------------
class TestKnobs:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_exact_paths": 0},
            {"max_exact_combinations": 0},
            {"max_exact_combinations": -3},
            {"lp_shards": 0},
        ],
    )
    def test_non_positive_knobs_rejected(self, kwargs):
        with pytest.raises(OptionsError):
            MctOptions(**kwargs)

    def test_combo_cap_falls_back_to_relaxed_bound(self):
        circuit, delays = shared_stem_circuit()
        relaxed = minimum_cycle_time(circuit, delays)
        capped = minimum_cycle_time(
            circuit,
            delays,
            MctOptions(exact_feasibility=True, max_exact_combinations=1),
        )
        assert capped.mct_upper_bound == relaxed.mct_upper_bound

    def test_path_cap_falls_back_to_relaxed_bound(self):
        circuit, delays = shared_stem_circuit()
        relaxed = minimum_cycle_time(circuit, delays)
        capped = minimum_cycle_time(
            circuit,
            delays,
            MctOptions(exact_feasibility=True, max_exact_paths=1),
        )
        assert capped.mct_upper_bound == relaxed.mct_upper_bound

    def test_caps_excluded_from_fingerprint(self):
        base = _fingerprint(MctOptions(exact_feasibility=True))
        tweaked = _fingerprint(
            MctOptions(
                exact_feasibility=True,
                max_exact_paths=77,
                max_exact_combinations=99,
                lp_shards=4,
            )
        )
        assert base == tweaked

    def test_cli_rejects_non_positive_lp_flags(self, tmp_path, capsys):
        from repro.benchgen import S27_BENCH
        from repro.cli import main

        path = tmp_path / "s27.bench"
        path.write_text(S27_BENCH)
        for flags in (
            ["--max-exact-paths", "0"],
            ["--max-exact-combos", "-1"],
            ["--lp-shards", "0"],
        ):
            assert main(["analyze", str(path)] + flags) == 1
            assert "must be positive" in capsys.readouterr().err

    def test_cli_stats_prints_lp_line(self, tmp_path, capsys):
        from repro.benchgen import S27_BENCH
        from repro.cli import main

        path = tmp_path / "s27.bench"
        path.write_text(S27_BENCH)
        assert main([
            "analyze", str(path), "--delay-model", "unit",
            "--widen", "0.9", "--exact", "--stats",
        ]) == 0
        out = capsys.readouterr().out
        assert "LP stats" in out
        assert "LP solves" in out


# ----------------------------------------------------------------------
# Serial vs pooled vs clustered: identical bounds under --exact
# ----------------------------------------------------------------------
class TestParallelIdentity:
    @pytest.fixture(scope="class")
    def widened(self):
        circuit, delays = paper_example2()
        return circuit, delays.widen(Fraction(9, 10))

    @pytest.fixture(scope="class")
    def serial(self, widened):
        circuit, delays = widened
        return minimum_cycle_time(
            circuit, delays, MctOptions(exact_feasibility=True)
        )

    def assert_same(self, serial, other):
        assert other.mct_upper_bound == serial.mct_upper_bound
        assert [
            (r.tau, r.status, r.m, r.rung) for r in other.candidates
        ] == [(r.tau, r.status, r.m, r.rung) for r in serial.candidates]
        assert other.failing_window == serial.failing_window
        assert other.failure_found == serial.failure_found

    def test_pool_matches_serial(self, widened, serial):
        circuit, delays = widened
        pooled = minimum_cycle_time(
            circuit, delays, MctOptions(exact_feasibility=True), jobs=2
        )
        self.assert_same(serial, pooled)
        assert pooled.lp_stats is not None
        assert pooled.lp_stats.solves == serial.lp_stats.solves

    def test_cluster_matches_serial(self, widened, serial):
        from repro.parallel import WorkerServer

        from tests.test_cluster import CLUSTER_OPTS, fleet

        circuit, delays = widened
        with fleet(WorkerServer(), WorkerServer()) as transport:
            clustered = minimum_cycle_time(
                circuit,
                delays,
                MctOptions(exact_feasibility=True, **CLUSTER_OPTS),
                transport=transport,
            )
        self.assert_same(serial, clustered)
        assert clustered.lp_stats is not None
        assert clustered.lp_stats.solves == serial.lp_stats.solves
