"""Direct unit tests of the decision procedure's internals."""

from fractions import Fraction

import pytest

from repro.bdd import BddManager
from repro.errors import AnalysisError
from repro.fsm import reachable_states
from repro.logic import Interval
from repro.mct.decision import DecisionContext, DecisionOutcome
from repro.mct.discretize import TimedLeaf, build_discretized_machine

from tests.test_timed_expansion import fig2_circuit
from tests.test_benchgen import merge  # re-exported convenience
from repro.benchgen.generators import mirrored_pair


@pytest.fixture()
def fig2_context():
    circuit, delays = fig2_circuit()
    machine = build_discretized_machine(circuit, delays)
    return machine, DecisionContext(machine)


def regime_for(machine, tau):
    return machine.regime(Fraction(tau))


class TestDecide:
    def test_steady_regime_passes(self, fig2_context):
        machine, ctx = fig2_context
        outcome = ctx.decide(machine.steady_regime())
        assert outcome.passed_structurally
        assert outcome.m == 1

    def test_fig2_verdicts(self, fig2_context):
        machine, ctx = fig2_context
        assert ctx.decide(regime_for(machine, 4)).passed_structurally
        assert ctx.decide(regime_for(machine, Fraction(5, 2))).passed_structurally
        failing = ctx.decide(regime_for(machine, 2))
        assert not failing.passed_structurally
        assert failing.m == 3
        assert not failing.has_choices
        assert failing.mismatch_phase in ("base", "induction")

    def test_memoization(self, fig2_context):
        machine, ctx = fig2_context
        before = ctx.decisions_run
        a = ctx.decide(regime_for(machine, 2))
        mid = ctx.decisions_run
        b = ctx.decide(regime_for(machine, 2))
        assert mid == before + 1
        assert ctx.decisions_run == mid  # cache hit
        assert a is b

    def test_missing_initial_state(self):
        circuit, delays = fig2_circuit()
        machine = build_discretized_machine(circuit, delays)
        with pytest.raises(AnalysisError):
            DecisionContext(machine, initial_state={"nope": True})

    def test_failing_options_in_interval_mode(self):
        circuit, delays = fig2_circuit()
        widened = delays.widen(Fraction(9, 10))
        machine = build_discretized_machine(circuit, widened)
        ctx = DecisionContext(machine)
        # A regime straddling: pick tau just below the fixed bound.
        regime = machine.regime(Fraction(12, 5))
        outcome = ctx.decide(regime)
        assert outcome.has_choices
        if not outcome.passed_structurally:
            assert outcome.failing_options
            for options in outcome.failing_options:
                assert set(options) == set(regime)
                for tl, ages in options.items():
                    assert set(ages) <= set(regime[tl])


class TestReachabilityCare:
    def test_care_set_flips_verdict(self):
        circuit, delays = mirrored_pair(long_delay=10, loop_delay=2)
        machine = build_discretized_machine(circuit, delays)
        plain = DecisionContext(machine)
        regime = machine.regime(Fraction(5))
        assert not plain.decide(regime).passed_structurally

        mgr = BddManager()
        reached = reachable_states(circuit, manager=mgr)
        with_care = DecisionContext(machine, reachable=reached)
        assert with_care.decide(regime).passed_structurally

    def test_care_cached_per_m(self):
        circuit, delays = mirrored_pair(long_delay=10, loop_delay=2)
        machine = build_discretized_machine(circuit, delays)
        mgr = BddManager()
        reached = reachable_states(circuit, manager=mgr)
        ctx = DecisionContext(machine, reachable=reached)
        ctx.decide(machine.regime(Fraction(5)))
        ctx.decide(machine.regime(Fraction(10, 3)))
        assert len(ctx._care_cache) >= 1


class TestOutputsToggle:
    def test_check_outputs_false_ignores_po_mismatch(self):
        # Pure-feedthrough machine: a PO cone with latency but a state
        # loop that is insensitive to age changes (hold register).
        from repro.benchgen.generators import hold_loop
        from repro.logic import Circuit, DelayMap, Gate, GateType, Latch, PinTiming

        gates = [
            Gate("h", GateType.BUF, ("q",)),
            Gate("y", GateType.BUF, ("u",)),
        ]
        circuit = Circuit("mix", ["u"], ["y"], gates, [Latch("q", "h")])
        pins = {("h", 0): PinTiming.symmetric(2), ("y", 0): PinTiming.symmetric(6)}
        delays = DelayMap(circuit, pins)
        machine = build_discretized_machine(circuit, delays)
        regime = machine.regime(Fraction(3))  # y-path at age 2
        strict = DecisionContext(machine, check_outputs=True)
        relaxed = DecisionContext(machine, check_outputs=False)
        assert not strict.decide(regime).passed_structurally
        assert relaxed.decide(regime).passed_structurally
