"""Unit tests for the exception hierarchy and resource budgets."""

from fractions import Fraction

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_reproerror(self):
        for exc_type in (
            errors.CircuitError,
            errors.BenchParseError,
            errors.DelayModelError,
            errors.BddError,
            errors.TbfError,
            errors.AnalysisError,
            errors.InfeasibleError,
            errors.ResourceBudgetExceeded,
            errors.DeadlineExceeded,
            errors.CheckpointError,
        ):
            assert issubclass(exc_type, errors.ReproError)

    def test_bench_parse_error_carries_line(self):
        err = errors.BenchParseError("bad token", line_no=42)
        assert "line 42" in str(err)
        assert err.line_no == 42

    def test_bench_parse_error_without_line(self):
        err = errors.BenchParseError("bad token")
        assert str(err) == "bad token"
        assert err.line_no is None

    def test_budget_exceeded_message(self):
        err = errors.ResourceBudgetExceeded("bdd nodes", 100)
        assert "bdd nodes" in str(err)
        assert err.limit == 100


class TestBudget:
    def test_charge_until_limit(self):
        budget = errors.Budget(limit=3, resource="work")
        budget.charge()
        budget.charge(2)
        assert budget.remaining == 0
        with pytest.raises(errors.ResourceBudgetExceeded):
            budget.charge()

    def test_unlimited(self):
        budget = errors.Budget()
        budget.charge(10**9)
        assert budget.remaining is None

    def test_bad_limit(self):
        with pytest.raises(ValueError):
            errors.Budget(limit=0)
        with pytest.raises(ValueError):
            errors.Budget(limit=-5)

    def test_shared_across_phases(self):
        """One budget bounds a multi-phase computation end to end."""
        budget = errors.Budget(limit=10)
        for _ in range(2):
            budget.charge(4)
        assert budget.remaining == 2
        with pytest.raises(errors.ResourceBudgetExceeded):
            budget.charge(3)

    def test_used_never_overshoots_limit(self):
        budget = errors.Budget(limit=2)
        budget.charge(2)
        with pytest.raises(errors.ResourceBudgetExceeded):
            budget.charge(5)
        assert budget.used == 2  # the failed charge is not recorded
        assert budget.remaining == 0
        # and the invariant holds for any interleaving
        budget = errors.Budget(limit=10)
        for amount in (4, 4, 9, 1, 3, 2):
            try:
                budget.charge(amount)
            except errors.ResourceBudgetExceeded:
                pass
            assert budget.used <= 10

    def test_child_budget_shares_parent(self):
        parent = errors.Budget(limit=100, resource="work")
        child = parent.child(Fraction(1, 2))
        assert child.limit == 50
        child.charge(30)
        assert child.used == 30
        assert parent.used == 30  # charges propagate upward
        parent.charge(60)
        # parent now at 90; child has 20 nominal but only 10 real
        with pytest.raises(errors.ResourceBudgetExceeded):
            child.charge(11)
        assert parent.used == 90
        assert child.used == 30

    def test_child_of_unlimited_budget(self):
        parent = errors.Budget()
        child = parent.child(0.25)
        assert child.limit is None
        child.charge(10**6)
        assert parent.used == 10**6

    def test_child_fraction_validation(self):
        parent = errors.Budget(limit=10)
        with pytest.raises(ValueError):
            parent.child(0)
        with pytest.raises(ValueError):
            parent.child(1.5)
        # a tiny fraction still yields a usable budget of at least 1
        assert parent.child(0.001).limit == 1
