"""Unit tests for the exception hierarchy and resource budgets."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_reproerror(self):
        for exc_type in (
            errors.CircuitError,
            errors.BenchParseError,
            errors.DelayModelError,
            errors.BddError,
            errors.TbfError,
            errors.AnalysisError,
            errors.InfeasibleError,
            errors.ResourceBudgetExceeded,
        ):
            assert issubclass(exc_type, errors.ReproError)

    def test_bench_parse_error_carries_line(self):
        err = errors.BenchParseError("bad token", line_no=42)
        assert "line 42" in str(err)
        assert err.line_no == 42

    def test_bench_parse_error_without_line(self):
        err = errors.BenchParseError("bad token")
        assert str(err) == "bad token"
        assert err.line_no is None

    def test_budget_exceeded_message(self):
        err = errors.ResourceBudgetExceeded("bdd nodes", 100)
        assert "bdd nodes" in str(err)
        assert err.limit == 100


class TestBudget:
    def test_charge_until_limit(self):
        budget = errors.Budget(limit=3, resource="work")
        budget.charge()
        budget.charge(2)
        assert budget.remaining == 0
        with pytest.raises(errors.ResourceBudgetExceeded):
            budget.charge()

    def test_unlimited(self):
        budget = errors.Budget()
        budget.charge(10**9)
        assert budget.remaining is None

    def test_bad_limit(self):
        with pytest.raises(ValueError):
            errors.Budget(limit=0)
        with pytest.raises(ValueError):
            errors.Budget(limit=-5)

    def test_shared_across_phases(self):
        """One budget bounds a multi-phase computation end to end."""
        budget = errors.Budget(limit=10)
        for _ in range(2):
            budget.charge(4)
        assert budget.remaining == 2
        with pytest.raises(errors.ResourceBudgetExceeded):
            budget.charge(3)

    def test_used_keeps_counting(self):
        budget = errors.Budget(limit=2)
        budget.charge(2)
        with pytest.raises(errors.ResourceBudgetExceeded):
            budget.charge(5)
        assert budget.used == 7  # records the attempted total
        assert budget.remaining == 0
