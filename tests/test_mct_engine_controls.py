"""Unit tests for the sweep engine's control knobs and reporting."""

from fractions import Fraction

import pytest

from repro.benchgen.generators import hold_loop, toggle_loop
from repro.errors import AnalysisError
from repro.mct import MctOptions, minimum_cycle_time
from repro.mct.engine import CandidateRecord

from tests.test_timed_expansion import fig2_circuit


class TestResultShape:
    def test_records_carry_m(self):
        circuit, delays = fig2_circuit()
        result = minimum_cycle_time(circuit, delays)
        by_tau = {r.tau: r for r in result.candidates}
        assert by_tau[Fraction(4)].m == 2
        assert by_tau[Fraction(2)].m == 3

    def test_failing_sigmas_fixed_mode(self):
        circuit, delays = fig2_circuit()
        result = minimum_cycle_time(circuit, delays)
        assert result.failing_sigmas
        sigma, sup = result.failing_sigmas[0]
        assert sup == Fraction(5, 2)
        # All age options are singletons in fixed mode.
        assert all(len(ages) == 1 for ages in sigma.values())

    def test_failing_roots_attributed(self):
        circuit, delays = fig2_circuit()
        result = minimum_cycle_time(circuit, delays)
        # Both the latch data cone (g) and the PO (g) fail; the root
        # list names the latch and/or the output net.
        assert result.failing_roots
        assert set(result.failing_roots) <= {"f", "g"}

    def test_failing_roots_name_the_critical_block(self):
        from repro.benchgen import merge, suite_cases, build_case

        case = next(c for c in suite_cases() if c.name == "g526")
        circuit, delays = build_case(case)
        result = minimum_cycle_time(circuit, delays)
        # seq_gain rows merge [hold ("b0_"), toggle ("b1_"), fillers];
        # the bound must be pinned on the toggle block, never the hold.
        assert result.failing_roots
        assert all(root.startswith("b1_") for root in result.failing_roots)

    def test_improves_on_alias(self):
        circuit, delays = fig2_circuit()
        result = minimum_cycle_time(circuit, delays)
        assert result.improves_on == result.mct_upper_bound

    def test_elapsed_and_decisions_counted(self):
        circuit, delays = fig2_circuit()
        result = minimum_cycle_time(circuit, delays)
        assert result.elapsed_seconds >= 0
        assert result.decisions_run == 3  # 4, 2.5, 2 (5 is steady)


class TestControls:
    def test_tau_floor_limits_sweep(self):
        circuit, delays = hold_loop(Fraction(8))
        result = minimum_cycle_time(
            circuit, delays, MctOptions(tau_floor=Fraction(3))
        )
        assert not result.failure_found
        assert result.exhausted
        # The floor itself is examined (grid-independent bound); nothing
        # below it ever is.
        assert all(r.tau >= 3 for r in result.candidates)
        assert result.mct_upper_bound >= 3

    def test_max_age_stops_sweep(self):
        circuit, delays = hold_loop(Fraction(8))
        result = minimum_cycle_time(
            circuit, delays, MctOptions(max_age=3, tau_floor=Fraction(1, 100))
        )
        assert result.exhausted
        assert "age cap" in result.notes
        assert all(r.m <= 3 for r in result.candidates)

    def test_max_candidates_cap(self):
        circuit, delays = hold_loop(Fraction(8))
        result = minimum_cycle_time(
            circuit,
            delays,
            MctOptions(max_candidates=2, tau_floor=Fraction(1, 100), max_age=1000),
        )
        assert result.exhausted
        assert "candidate cap" in result.notes
        assert len(result.candidates) == 2

    def test_time_limit_zero_trips_immediately(self):
        circuit, delays = fig2_circuit()
        result = minimum_cycle_time(
            circuit, delays, MctOptions(time_limit=0.0)
        )
        assert result.exhausted
        assert "time limit" in result.notes

    def test_steady_candidates_not_decided(self):
        circuit, delays = toggle_loop(Fraction(5))
        result = minimum_cycle_time(circuit, delays)
        statuses = {r.tau: r.status for r in result.candidates}
        assert statuses[Fraction(5)] == "steady"

    def test_budget_none_vs_zero(self):
        circuit, delays = fig2_circuit()
        # work_budget=None is unlimited; 0 is falsy and also unlimited.
        a = minimum_cycle_time(circuit, delays, MctOptions(work_budget=None))
        b = minimum_cycle_time(circuit, delays, MctOptions(work_budget=0))
        assert a.mct_upper_bound == b.mct_upper_bound == Fraction(5, 2)


class TestDegenerateCircuits:
    def test_no_timed_paths_rejected(self):
        from repro.logic import Circuit, DelayMap

        circuit = Circuit("empty", ["a"], [], [])
        with pytest.raises(AnalysisError):
            minimum_cycle_time(circuit, DelayMap(circuit, {}))

    def test_combinational_circuit_mct_is_latency(self):
        # A latch-free pipeline: y(n) must read u(n-1); below the PO
        # path delay it reads u(n-2) instead.
        from repro.logic import Circuit, DelayMap, Gate, GateType, PinTiming

        gates = [Gate("y", GateType.NOT, ("u",))]
        circuit = Circuit("comb", ["u"], ["y"], gates)
        delays = DelayMap(circuit, {("y", 0): PinTiming.symmetric(3)})
        result = minimum_cycle_time(circuit, delays)
        assert result.mct_upper_bound == 3

    def test_output_only_equality_can_be_disabled(self):
        from repro.logic import Circuit, DelayMap, Gate, GateType, PinTiming

        gates = [Gate("y", GateType.NOT, ("u",))]
        circuit = Circuit("comb", ["u"], ["y"], gates)
        delays = DelayMap(circuit, {("y", 0): PinTiming.symmetric(3)})
        result = minimum_cycle_time(
            circuit, delays, MctOptions(check_outputs=False, max_age=4)
        )
        # With outputs ignored there is nothing to fail on.
        assert not result.failure_found
