"""Unit tests for the ISCAS'89 .bench reader/writer."""

import pytest

from repro.errors import BenchParseError
from repro.logic import GateType, parse_bench, write_bench

S27_TEXT = """
# s27 (ISCAS'89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
"""


class TestParse:
    def test_s27_shape(self):
        c = parse_bench(S27_TEXT, name="s27")
        assert c.stats == {"inputs": 4, "outputs": 1, "gates": 10, "latches": 3}
        assert c.inputs == ("G0", "G1", "G2", "G3")
        assert c.outputs == ("G17",)
        assert set(c.state_nets) == {"G5", "G6", "G7"}
        assert c.gates["G9"].gtype is GateType.NAND

    def test_comments_and_blank_lines_ignored(self):
        c = parse_bench("# hi\n\nINPUT(a)\nOUTPUT(b)\nb = NOT(a) # trailing\n")
        assert c.stats["gates"] == 1

    def test_buff_alias(self):
        c = parse_bench("INPUT(a)\nOUTPUT(b)\nb = BUFF(a)\n")
        assert c.gates["b"].gtype is GateType.BUF

    def test_case_insensitive_keywords(self):
        c = parse_bench("input(a)\noutput(b)\nb = nand(a, a)\n")
        assert c.stats["inputs"] == 1
        assert c.gates["b"].gtype is GateType.NAND

    def test_garbage_line_rejected(self):
        with pytest.raises(BenchParseError) as err:
            parse_bench("INPUT(a)\nwat is this\n")
        assert err.value.line_no == 2

    def test_unknown_gate_rejected(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nb = FROB(a)\n")

    def test_dff_arity_enforced(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nINPUT(b)\nq = DFF(a, b)\n")

    def test_empty_operand_rejected(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nb = AND(a, )\n")

    def test_structural_validation_applies(self):
        # References an undriven net -> CircuitError via Circuit ctor.
        from repro.errors import CircuitError

        with pytest.raises(CircuitError):
            parse_bench("INPUT(a)\nOUTPUT(b)\nb = AND(a, ghost)\n")


class TestRoundTrip:
    def test_s27_round_trips(self):
        c1 = parse_bench(S27_TEXT, name="s27")
        c2 = parse_bench(write_bench(c1), name="s27")
        assert c1.stats == c2.stats
        assert c1.inputs == c2.inputs
        assert c1.outputs == c2.outputs
        assert c1.latches == c2.latches
        assert c1.gates == c2.gates

    def test_buf_written_as_buff(self):
        c = parse_bench("INPUT(a)\nOUTPUT(b)\nb = BUFF(a)\n")
        assert "BUFF(a)" in write_bench(c)

    def test_functional_equivalence_after_round_trip(self):
        c1 = parse_bench(S27_TEXT, name="s27")
        c2 = parse_bench(write_bench(c1), name="s27")
        stimulus = [
            {"G0": bool(i & 1), "G1": bool(i & 2), "G2": bool(i & 4), "G3": bool(i & 8)}
            for i in range(16)
        ]
        init = {q: False for q in c1.state_nets}
        assert c1.simulate(init, stimulus) == c2.simulate(init, stimulus)
