"""Property tests for the generalized-cofactor operators."""

import itertools

import pytest
from hypothesis import given, settings

from repro.bdd import BddManager
from repro.errors import BddError

from tests.test_bdd_properties import VARS, all_envs, build_bdd, eval_ast, exprs


class TestBasics:
    def test_constrain_on_true_is_identity(self):
        mgr = BddManager()
        f = mgr.var("a") ^ mgr.var("b")
        assert f.constrain(mgr.true) == f
        assert f.restrict_care(mgr.true) == f

    def test_constrain_by_false_rejected(self):
        mgr = BddManager()
        f = mgr.var("a")
        with pytest.raises(BddError):
            f.constrain(mgr.false)
        with pytest.raises(BddError):
            f.restrict_care(mgr.false)

    def test_constrain_collapses_on_literal_care(self):
        mgr = BddManager()
        a, b = mgr.var("a"), mgr.var("b")
        f = a & b
        assert f.constrain(a) == b
        assert f.constrain(~a).is_zero()

    def test_restrict_drops_foreign_care_vars(self):
        mgr = BddManager()
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        f = a & b
        # Care splits on c, which f ignores: restrict must not import c.
        g = f.restrict_care(c | (a & b))
        assert "c" not in g.support()

    def test_constrain_self_is_true(self):
        mgr = BddManager()
        f = mgr.var("a") & mgr.var("b")
        assert f.constrain(f).is_one()


@settings(max_examples=60, deadline=None)
@given(exprs(), exprs())
def test_constrain_agrees_on_care(ast_f, ast_c):
    mgr = BddManager()
    mgr.add_vars(VARS)
    f, c = build_bdd(mgr, ast_f), build_bdd(mgr, ast_c)
    if c.is_zero():
        return
    g = f.constrain(c)
    for env in all_envs():
        if eval_ast(ast_c, env):
            assert g.evaluate({v: env[v] for v in VARS}) == eval_ast(ast_f, env)


@settings(max_examples=60, deadline=None)
@given(exprs(), exprs())
def test_restrict_agrees_on_care(ast_f, ast_c):
    mgr = BddManager()
    mgr.add_vars(VARS)
    f, c = build_bdd(mgr, ast_f), build_bdd(mgr, ast_c)
    if c.is_zero():
        return
    g = f.restrict_care(c)
    for env in all_envs():
        if eval_ast(ast_c, env):
            assert g.evaluate({v: env[v] for v in VARS}) == eval_ast(ast_f, env)


@settings(max_examples=40, deadline=None)
@given(exprs(), exprs())
def test_constrain_never_larger_support_than_union(ast_f, ast_c):
    mgr = BddManager()
    mgr.add_vars(VARS)
    f, c = build_bdd(mgr, ast_f), build_bdd(mgr, ast_c)
    if c.is_zero():
        return
    assert f.constrain(c).support() <= f.support() | c.support()
    # Restrict additionally never exceeds f's own support.
    assert f.restrict_care(c).support() <= f.support()
