"""Full netlist flow on a real ISCAS'89 circuit (s27).

Demonstrates the library as a downstream user would drive it: parse a
``.bench`` file, pick a delay model, run every analysis (including the
Theorem 1/2 validity checks and reachability don't cares), inspect the
state-transition graph, and write the netlist back out.

Run:  python examples/bench_netlist_flow.py
"""

import tempfile
from pathlib import Path

from repro import parse_bench_file, write_bench
from repro.benchgen import S27_BENCH
from repro.delay import validity_report
from repro.fsm import extract_stg, reachable_state_count
from repro.logic.delays import fanout_loaded_delays, widen_to_intervals
from repro.mct import MctOptions, minimum_cycle_time
from repro.report.tables import format_fraction


def main() -> None:
    # Write the embedded netlist to disk and parse it like a user would.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "s27.bench"
        path.write_text(S27_BENCH)
        circuit = parse_bench_file(path)
    print(f"Parsed {circuit!r}")

    delays = widen_to_intervals(fanout_loaded_delays(circuit))
    report = validity_report(circuit, delays)
    print(f"topological delay : {format_fraction(report.topological)}")
    print(f"floating delay    : {format_fraction(report.floating)}"
          f" (Theorem 1 bound: {format_fraction(report.floating_bound)})")
    print(f"transition delay  : {format_fraction(report.transition)}"
          f" (Theorem 2 certified: {report.transition_certified})")

    # Sequential structure.
    n_states = reachable_state_count(circuit)
    stg = extract_stg(circuit)
    print(f"reachable states  : {n_states} of {2 ** len(circuit.latches)}"
          f" ({stg.number_of_edges()} STG edges)")

    # MCT, with and without the reachable-state don't cares.
    plain = minimum_cycle_time(circuit, delays)
    with_reach = minimum_cycle_time(
        circuit, delays, MctOptions(use_reachability=True)
    )
    print(f"minimum cycle time: {format_fraction(plain.mct_upper_bound)}"
          f" (plain C_x), {format_fraction(with_reach.mct_upper_bound)}"
          f" (with sequential don't cares)")

    # Round-trip the netlist.
    text = write_bench(circuit)
    print(f"\nwrite_bench round-trip: {len(text.splitlines())} lines, "
          f"starts with {text.splitlines()[0]!r}")


if __name__ == "__main__":
    main()
