"""FSM exploration: STGs, reachability, minimization, and timing.

Uses a textbook traffic-light controller to demonstrate the sequential
semantics layer the paper's analysis stands on: the explicit state
transition graph (with graphviz export), the symbolic reachable set
(note the unreachable state), machine minimization, and finally how the
unreachable space feeds the timing analysis as sequential don't cares.

Run:  python examples/fsm_explorer.py
"""

from fractions import Fraction

from repro.benchgen.generators import traffic_light
from repro.fsm import (
    extract_stg,
    minimize_mealy,
    reachable_state_count,
    steady_machine,
    stg_to_dot,
)
from repro.mct import MctOptions, minimum_cycle_time
from repro.report.tables import format_fraction


def main() -> None:
    circuit, delays = traffic_light(stage_delay=2)
    print(f"Design: {circuit!r}")
    print("states (q0 q1): 00=green, 10=yellow, 01=red, 11=unreachable\n")

    # --- explicit structure ---------------------------------------------
    stg = extract_stg(circuit)
    print(f"STG: {stg.number_of_nodes()} states, {stg.number_of_edges()} edges")
    reachable = reachable_state_count(circuit)
    print(f"symbolic reachability: {reachable} of {2 ** len(circuit.latches)} "
          "states reachable")
    classes, _ = minimize_mealy(steady_machine(circuit, delays))
    print(f"minimized machine (history form): {classes} states\n")

    dot = stg_to_dot(stg)
    print("graphviz (paste into dot -Tpng):")
    for line in dot.splitlines()[:8]:
        print("  " + line)
    print("  ...\n")

    # --- timing with and without the sequential don't cares -------------
    plain = minimum_cycle_time(circuit, delays)
    with_reach = minimum_cycle_time(
        circuit, delays, MctOptions(use_reachability=True)
    )
    print(f"minimum cycle time, plain C_x      : "
          f"{format_fraction(plain.mct_upper_bound)}")
    print(f"minimum cycle time, + reachability : "
          f"{format_fraction(with_reach.mct_upper_bound)}")
    if plain.failing_roots:
        print(f"bound pinned by: {', '.join(plain.failing_roots)}")


if __name__ == "__main__":
    main()
