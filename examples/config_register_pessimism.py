"""Domain scenario: configuration registers make STA pessimistic.

A realistic motif behind the paper's ‡ rows: a design has a *mode /
configuration register* that is written once and then holds its value,
feeding wide, slow decode logic.  Static timing (and even exact
floating/transition delay) must assume the register toggles every
cycle, so the slow decode path caps the clock.  Sequentially that
transition is unrealizable — the register never changes — and the true
minimum cycle time is set by the actual datapath loop.

This script builds such a design, shows the gap, and validates with
simulation that clocking at the sequential bound is safe.

Run:  python examples/config_register_pessimism.py
"""

import random
from fractions import Fraction

from repro.benchgen import merge, toggle_loop
from repro.benchgen.generators import counter, hold_loop
from repro.delay import floating_delay, longest_topological_delay, transition_delay
from repro.mct import minimum_cycle_time
from repro.sim import ClockedSimulator, sample_delay_map
from repro.logic.delays import widen_to_intervals


def main() -> None:
    # A mode register with a slow 40ns decode loop, an 8-bit counter
    # datapath (24ns carry path), and a control toggle at 24ns.
    design, delays = merge(
        "mode_reg_design",
        [
            hold_loop(Fraction(40), chain_len=20, name="mode_decode"),
            counter(8, stage_delay=3, name="datapath"),
            toggle_loop(Fraction(24), chain_len=5, name="control"),
        ],
    )
    print(f"Design: {design!r}\n")

    top = longest_topological_delay(design, delays)
    flt = floating_delay(design, delays).delay
    trans = transition_delay(design, delays).delay
    print(f"static (topological) delay : {top} ns")
    print(f"exact floating delay       : {flt} ns")
    print(f"exact transition delay     : {trans} ns")
    print("-> every combinational method says: clock no faster than 40 ns\n")

    result = minimum_cycle_time(design, delays)
    print(f"sequential minimum cycle time: {result.mct_upper_bound} ns")
    gain = (1 - result.mct_upper_bound / flt) * 100
    print(f"-> {float(gain):.0f}% faster clock, proven safe "
          f"({result.decisions_run} equivalence decisions, "
          f"{result.elapsed_seconds:.2f}s)\n")

    # Same story under manufacturing variation (90%-100% delays).
    varied = widen_to_intervals(delays)
    result_varied = minimum_cycle_time(design, varied)
    print(f"with 90%-100% delay variation: bound = "
          f"{result_varied.mct_upper_bound} ns "
          f"({len(result_varied.failing_sigmas)} failing combination(s) "
          f"located by the interval algebra)\n")

    # Validate by simulating a random delay realization at the bound.
    rng = random.Random(2024)
    realization = sample_delay_map(varied, rng)
    sim = ClockedSimulator(design, realization)
    init = {q: False for q in design.latches}
    stimulus = [
        {u: rng.random() < 0.5 for u in design.inputs} for _ in range(64)
    ]
    tau = result_varied.mct_upper_bound
    ok = sim.matches_ideal(tau, init, stimulus)
    print(f"simulation at tau = {tau} ns over 64 cycles: "
          f"{'sampled behaviour is exact' if ok else 'DIVERGED (bug!)'}")
    assert ok


if __name__ == "__main__":
    main()
