"""Useful clock skew: sequential timing as a synthesis lever.

The paper closes by pointing its TBF formulation at "the synthesis of
high speed sequential circuits".  This example shows the smallest such
application: an unbalanced two-stage pipeline whose minimum cycle time
drops 33% when one latch's clock is intentionally delayed — and the
analysis machinery (breakpoints, decision algorithm, interval algebra)
handles the skewed machine unchanged, because a phase difference just
shifts every effective path delay.

Run:  python examples/useful_skew.py
"""

import random
from fractions import Fraction

from repro.logic import Circuit, DelayMap, Gate, GateType, Latch, PinTiming
from repro.logic.delays import widen_to_intervals
from repro.mct import minimum_cycle_time
from repro.sim import ClockedSimulator


def build_pipe() -> tuple[Circuit, DelayMap]:
    """u -(6ns)-> q1 -(2ns)-> q2."""
    gates = [
        Gate("d1", GateType.BUF, ("u",)),
        Gate("d2", GateType.BUF, ("q1",)),
    ]
    circuit = Circuit(
        "pipe", ["u"], ["q2"], gates, [Latch("q1", "d1"), Latch("q2", "d2")]
    )
    pins = {("d1", 0): PinTiming.symmetric(6), ("d2", 0): PinTiming.symmetric(2)}
    return circuit, DelayMap(circuit, pins)


def main() -> None:
    circuit, delays = build_pipe()
    print(f"Design: {circuit!r} — stage delays 6 ns and 2 ns\n")

    base = minimum_cycle_time(circuit, delays)
    print(f"common clock          : minimum cycle time = {base.mct_upper_bound} ns")

    print("\nsweeping the skew on q1's clock:")
    best = (base.mct_upper_bound, Fraction(0))
    for phi in [Fraction(1), Fraction(2), Fraction(3)]:
        try:
            result = minimum_cycle_time(circuit, delays.with_phases({"q1": phi}))
        except Exception as exc:  # race guard
            print(f"  φ(q1) = {phi} ns -> rejected ({exc})")
            continue
        print(f"  φ(q1) = {phi} ns -> minimum cycle time = "
              f"{result.mct_upper_bound} ns")
        if result.mct_upper_bound < best[0]:
            best = (result.mct_upper_bound, phi)
    bound, phi = best
    print(f"\nbest: φ(q1) = {phi} ns gives {bound} ns "
          f"({float((1 - bound / base.mct_upper_bound) * 100):.0f}% faster)\n")

    # Validate with event-driven simulation under 90%-100% variation.
    skewed = widen_to_intervals(delays.with_phases({"q1": phi}))
    result = minimum_cycle_time(circuit, skewed)
    print(f"with delay variation the certified bound is {result.mct_upper_bound} ns")
    from repro.sim import sample_delay_map

    rng = random.Random(7)
    stimulus = [{"u": rng.random() < 0.5} for _ in range(64)]
    init = {"q1": False, "q2": False}
    realization = sample_delay_map(skewed, rng)
    sim = ClockedSimulator(circuit, realization)
    ok = sim.matches_ideal(result.mct_upper_bound, init, stimulus)
    print(f"simulation at the bound over 64 cycles: "
          f"{'exact sampled behaviour' if ok else 'DIVERGED (bug!)'}")
    assert ok


if __name__ == "__main__":
    main()
