"""Analysis-driven retiming: the paper's synthesis loop, closed.

A register parked in front of heavy logic caps the clock; forward
retiming migrates it across the light gate so both stages carry similar
delay.  The cost function steering the move is the *certified* minimum
cycle time from the exact sequential analysis — "bringing these
analysis techniques into the synthesis of high speed sequential
circuits", as the paper's closing sentence proposes.

Run:  python examples/retiming_flow.py
"""

import random

from repro.logic import (
    Circuit,
    DelayMap,
    Gate,
    GateType,
    Interval,
    Latch,
    PinTiming,
)
from repro.mct import minimum_cycle_time
from repro.report.tables import format_fraction
from repro.synthesis import optimize_retiming


def build() -> tuple[Circuit, DelayMap, dict]:
    gates = [
        Gate("s1", GateType.BUF, ("u",)),      # 1 ns input stage
        Gate("g", GateType.NOT, ("q1",)),      # 2 ns
        Gate("heavy", GateType.BUF, ("g",)),   # 6 ns datapath
        Gate("y", GateType.BUF, ("q2",)),      # 1 ns output stage
    ]
    circuit = Circuit(
        "staged", ["u"], ["y"], gates,
        [Latch("q1", "s1"), Latch("q2", "heavy")],
    )
    pins = {
        ("s1", 0): PinTiming.symmetric(1),
        ("g", 0): PinTiming.symmetric(2),
        ("heavy", 0): PinTiming.symmetric(6),
        ("y", 0): PinTiming.symmetric(1),
    }
    latch_delay = {"q1": Interval.point(1), "q2": Interval.point(1)}
    return circuit, DelayMap(circuit, pins, latch_delay), {"q1": False, "q2": False}


def main() -> None:
    circuit, delays, init = build()
    print(f"Design: {circuit!r}")
    base = minimum_cycle_time(circuit, delays)
    print(f"baseline bound: {format_fraction(base.mct_upper_bound)} ns "
          f"(pinned by {', '.join(base.failing_roots)})\n")

    result = optimize_retiming(circuit, delays, init)
    print(f"greedy retiming applied moves: {list(result.moves)}")
    print(f"bound: {format_fraction(result.baseline)} ns -> "
          f"{format_fraction(result.bound)} ns "
          f"({float(result.improvement * 100):.0f}% faster)")
    print(f"registers now: {sorted(result.circuit.latches)} "
          f"(initial state {result.initial_state})\n")

    # Prove behaviour is untouched.
    rng = random.Random(1)
    stim = [{"u": rng.random() < 0.5} for _ in range(32)]
    _, before = circuit.simulate(init, stim)
    _, after = result.circuit.simulate(result.initial_state, stim)
    assert before == after
    print("32-cycle output sequences before/after retiming: identical.")


if __name__ == "__main__":
    main()
