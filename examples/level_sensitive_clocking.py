"""Level-sensitive latches: the paper's future-work direction, applied.

Transparent latches promise cheaper storage but add a flush-through
race: while a latch is open, a fast path can shoot a new value through
two stages in one cycle.  The borrow-free analysis in
`repro.mct.level_sensitive` turns the main theorem machinery into a
certified *range* of clock periods: at least the sequential minimum
cycle time, at most the race limit ``shortest_path / duty``.

This script walks the paper's Fig. 2 circuit through the analysis,
shows how the duty cycle trades the two constraints, and how min-delay
padding repairs an infeasible design.

Run:  python examples/level_sensitive_clocking.py
"""

from fractions import Fraction

from repro.benchgen import paper_example2
from repro.logic import Circuit, DelayMap, Gate, GateType, Latch, PinTiming
from repro.mct import level_sensitive_mct
from repro.report.tables import format_fraction


def show(result, label):
    lo, hi = result.min_period, result.max_period
    status = (
        f"certified range [{format_fraction(lo)}, {format_fraction(hi)}]"
        if result.feasible
        else f"INFEASIBLE (bound {format_fraction(lo)} > race limit {format_fraction(hi)})"
    )
    print(f"  {label:<12} {status}")


def main() -> None:
    circuit, delays = paper_example2()
    print("Fig. 2 with transparent latches (borrow-free analysis):")
    for duty in (Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)):
        show(level_sensitive_mct(circuit, delays, duty=duty), f"duty {duty}:")
    print("""
Narrow transparency behaves like an edge clock (wide safe range);
wide transparency leaves the fast f'(t-2) path racing through.
""")

    # An unbalanced pipeline that is infeasible, repaired by padding.
    def pipe(fast_delay):
        gates = [
            Gate("d1", GateType.BUF, ("u",)),
            Gate("d2", GateType.BUF, ("q1",)),
        ]
        c = Circuit(
            "pipe", ["u"], ["q2"], gates, [Latch("q1", "d1"), Latch("q2", "d2")]
        )
        pins = {
            ("d1", 0): PinTiming.symmetric(6),
            ("d2", 0): PinTiming.symmetric(fast_delay),
        }
        return c, DelayMap(c, pins)

    print("6ns/2ns pipeline at duty 1/2:")
    c, d = pipe(2)
    show(level_sensitive_mct(c, d), "as designed:")
    c, d = pipe(4)
    show(level_sensitive_mct(c, d), "padded +2ns:")
    print("\nMin-delay padding widens the race limit past the sequential")
    print("bound, exactly the fix a latch-based design flow would apply.")


if __name__ == "__main__":
    main()
