"""Quickstart: the paper's Example 2, end to end.

Builds the Fig. 2 circuit, runs every combinational baseline and the
sequential minimum-cycle-time analysis, and cross-checks the result
three independent ways: exact FSM equivalence, and event-driven
simulation above and below the bound.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import floating_delay, minimum_cycle_time, transition_delay
from repro.benchgen import paper_example2
from repro.delay import longest_topological_delay, validity_report
from repro.fsm import equivalent_to_steady
from repro.sim import ClockedSimulator, render_waveforms


def main() -> None:
    circuit, delays = paper_example2()
    print(f"Circuit: {circuit!r}")
    print("Flattened TBF: g(t) = f(t-1.5)·f'(t-4)·f(t-5) + f'(t-2)\n")

    # --- the combinational bounds every prior approach would report ---
    top = longest_topological_delay(circuit, delays)
    flt = floating_delay(circuit, delays).delay
    trans = transition_delay(circuit, delays).delay
    print(f"topological delay        = {top}    (paper: 5)")
    print(f"floating (1-vector) delay = {flt}    (paper: 4, pessimistic)")
    print(f"transition (2-vector)     = {trans}    (paper: 2, INCORRECT bound)")

    report = validity_report(circuit, delays)
    print(f"Theorem 2 certifies the 2-vector bound? {report.transition_certified}")
    print("  (2 < topological/2 = 2.5, so Theorem 2 refuses to certify it.)\n")

    # --- the sequential answer ---------------------------------------
    result = minimum_cycle_time(circuit, delays)
    print(f"minimum cycle time = {result.mct_upper_bound}  (paper: 2.5)")
    print("candidate sweep:")
    for record in result.candidates:
        print(f"  tau = {str(record.tau):>4}  ->  {record.status}")
    print()

    # --- three independent confirmations ------------------------------
    assert result.mct_upper_bound == Fraction(5, 2)

    print("exact FSM-equivalence ground truth:")
    for tau in (Fraction(4), Fraction(5, 2), Fraction(2)):
        verdict = equivalent_to_steady(circuit, delays, tau)
        print(f"  tau = {tau}: machine ≡ steady?  {verdict}")

    print("\nevent-driven simulation (both initial states, 12 cycles):")
    sim = ClockedSimulator(circuit, delays)
    for tau in (Fraction(5, 2), Fraction(2)):
        verdicts = [
            sim.matches_ideal(tau, {"f": init}, [{}] * 12)
            for init in (False, True)
        ]
        print(f"  tau = {tau}: sampled behaviour ideal?  {verdicts}")
    print("\nAt tau = 2 the machine visibly misbehaves; at 2.5 it is exact —")
    print("the 2-vector delay (2) really is an unsafe clock period.")

    # --- see it: the latch waveform at both clock periods --------------
    print("\nlatch output f from initial state 1 (12 cycles):")
    for tau in (Fraction(5, 2), Fraction(2)):
        trace = sim.run(tau, {"f": True}, [{}] * 12, record_waveforms=True)
        art = render_waveforms(
            trace.waveforms, nets=["f"], end_time=tau * 12, columns=48
        )
        label = "(correct alternation)" if tau == Fraction(5, 2) else "(breaks at cycle 3)"
        print(f"  tau = {tau} {label}")
        print("   " + art)


if __name__ == "__main__":
    main()
