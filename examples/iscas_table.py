"""Regenerate the paper's Sec. 8 results table.

Runs topological / floating / transition / minimum-cycle-time analyses
over the whole benchmark suite under the paper's condition (gate delays
varied within 90%-100% of their maxima) and prints the table in the
paper's layout, followed by a paper-vs-measured comparison.

Run:  python examples/iscas_table.py [--fixed] [--rows g526,g641]
"""

import argparse
from fractions import Fraction

from repro.benchgen import suite_cases
from repro.report import render_rows, run_suite
from repro.report.tables import format_fraction, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fixed", action="store_true",
                        help="use fixed (maximum) delays instead of 90%%-100%%")
    parser.add_argument("--rows", default=None,
                        help="comma-separated subset of suite rows")
    args = parser.parse_args()

    cases = suite_cases()
    if args.rows:
        wanted = set(args.rows.split(","))
        cases = [c for c in cases if c.name in wanted or c.paper_name in wanted]
    widen = None if args.fixed else Fraction(9, 10)
    rows = run_suite(cases, include_s27=True, widen=widen)
    condition = "fixed delays" if args.fixed else "delays in [90%, 100%] of max"
    print(render_rows(rows, title=f"Reproduction table ({condition})"))

    # Paper-vs-measured digest for the rows that mirror published data.
    digest = []
    for row in rows:
        if not row.paper:
            continue
        paper = row.paper
        digest.append([
            f"{row.name} ({paper['name']})",
            format_fraction(paper["mct"]),
            format_fraction(row.mct) + ("†" if row.mct_partial else ""),
            "yes" if paper["mct"] == row.mct else "no",
        ])
    print()
    print(format_table(
        ["Row", "paper MCT", "measured MCT", "match"],
        digest,
        title="Paper vs measured (MCT column)",
    ))
    improved = [
        row for row in rows
        if row.mct is not None and row.floating is not None and row.mct < row.floating
    ]
    print(f"\nRows where the sequential bound beats the combinational ones: "
          f"{len(improved)}/{len(rows)}")
    for row in improved:
        gain = (1 - row.mct / row.floating) * 100
        print(f"  {row.name}: {format_fraction(row.floating)} -> "
              f"{format_fraction(row.mct)}  ({float(gain):.1f}% tighter)")


if __name__ == "__main__":
    main()
