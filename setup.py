"""Shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The offline environment has no `wheel` package, so PEP 517 editable
installs cannot build a wheel; this file lets pip fall back to
`setup.py develop`.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
