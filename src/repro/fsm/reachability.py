"""Symbolic reachable-state computation.

The classic BDD fixpoint: build the transition relation
``T(x, u, x') = ∧_i (x'_i ↔ g_i(x, u))`` as a partitioned conjunction
and iterate images until closure.  The result feeds the decision
algorithm's sequential don't cares (the paper: the state vector "is
restricted to this machine's reachable space, which can be a proper
subspace of the entire Boolean space").

Variable conventions: current-state variables carry the latch output
net name, inputs their net name, next-state variables the latch name
primed (``q'``).  Current/next variables are interleaved in the order
for small transition-relation BDDs.
"""

from __future__ import annotations

from repro.bdd import BddManager, Function
from repro.errors import AnalysisError, Budget
from repro.logic.netlist import Circuit
from repro.timed.expansion import CombinationalBdd


def _primed(q: str) -> str:
    return q + "'"


def reachable_states(
    circuit: Circuit,
    initial_state: dict[str, bool] | None = None,
    manager: BddManager | None = None,
    budget: Budget | None = None,
    max_iterations: int | None = None,
) -> Function:
    """BDD of the reachable state set over current-state variables.

    Parameters
    ----------
    circuit:
        The machine; its ideal (zero-delay) next-state function defines
        reachability, matching the steady-state machine of Def. 2.
    initial_state:
        Defaults to all-zero.
    manager:
        Supply one to control variable order / share with a caller;
        a fresh manager is created otherwise.
    max_iterations:
        Safety valve; ``None`` runs to the fixpoint.
    """
    if not circuit.latches:
        raise AnalysisError("combinational circuit has no state to reach")
    if manager is None:
        manager = BddManager(budget=budget)
    if initial_state is None:
        initial_state = {q: False for q in circuit.latches}
    # Interleave current/next state vars, then inputs.
    for q in circuit.latches:
        manager.var(q)
        manager.var(_primed(q))
    for u in circuit.inputs:
        manager.var(u)

    leaf_map = {q: manager.var(q) for q in circuit.latches}
    leaf_map.update({u: manager.var(u) for u in circuit.inputs})
    cones = CombinationalBdd(circuit, leaf_map, manager)
    next_state = cones.next_state()

    # Partitioned transition relation: one conjunct per latch.
    partitions = [
        manager.var(_primed(q)).iff(next_state[q]) for q in circuit.latches
    ]
    quantify_away = list(circuit.latches) + list(circuit.inputs)

    init = manager.conjoin(
        manager.var(q) if bool(v) else ~manager.var(q)
        for q, v in initial_state.items()
    )
    reached = init
    frontier = init
    rename_back = {_primed(q): q for q in circuit.latches}
    iteration = 0
    while not frontier.is_zero():
        iteration += 1
        if max_iterations is not None and iteration > max_iterations:
            raise AnalysisError(
                f"reachability did not converge in {max_iterations} iterations"
            )
        # Image of the frontier: conjoin partitions, quantifying early.
        image = frontier
        for part in partitions:
            image = image & part
        image = image.exists(quantify_away).rename(rename_back)
        frontier = image & ~reached
        reached = reached | image
    return reached


def reachable_state_count(
    circuit: Circuit,
    initial_state: dict[str, bool] | None = None,
) -> int:
    """Number of reachable states (exact, via BDD model counting)."""
    manager = BddManager()
    reached = reachable_states(circuit, initial_state, manager=manager)
    return reached.sat_count(nvars=len(circuit.latches))
