"""FSM-level semantics: reachability, explicit STGs, equivalence.

The paper leans on three sequential facts that combinational analyses
cannot see: the reachable state space, the initial state, and machine
equivalence ("deciding y(n,τ) = y(n,L) is equivalent to deciding
whether two finite state machines are equivalent").  This package
provides all three:

* :mod:`~repro.fsm.reachability` — symbolic (BDD) reachable-state
  computation, powering the decision algorithm's sequential don't
  cares;
* :mod:`~repro.fsm.stg` — explicit state-transition-graph extraction
  for small machines (networkx graphs);
* :mod:`~repro.fsm.equivalence` — product-machine equivalence and
  Hopcroft minimization, plus the *exact* τ-machine equivalence check
  that the paper rejects as too expensive in general but which we use
  on small circuits to validate that C_x is conservative.
"""

from repro.fsm.reachability import reachable_states, reachable_state_count
from repro.fsm.stg import extract_stg, enumerate_reachable
from repro.fsm.equivalence import (
    ExplicitMealy,
    equivalent_to_steady,
    machines_equivalent,
    minimize_mealy,
    steady_machine,
    tau_machine,
)
from repro.fsm.symbolic_exact import (
    ExactMctResult,
    SymbolicTauMachine,
    exact_minimum_cycle_time,
)
from repro.fsm.dot import stg_to_dot

__all__ = [
    "reachable_states",
    "reachable_state_count",
    "extract_stg",
    "enumerate_reachable",
    "ExplicitMealy",
    "machines_equivalent",
    "equivalent_to_steady",
    "minimize_mealy",
    "steady_machine",
    "tau_machine",
    "SymbolicTauMachine",
    "ExactMctResult",
    "exact_minimum_cycle_time",
    "stg_to_dot",
]
