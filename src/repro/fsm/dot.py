"""Graphviz export of state-transition graphs.

Small FSMs are best understood visually; this renders the explicit STG
of :func:`repro.fsm.stg.extract_stg` (and, optionally, a minimized
quotient) as dot text.
"""

from __future__ import annotations

import networkx as nx


def _bits(state) -> str:
    return "".join("1" if b else "0" for b in state)


def stg_to_dot(graph: nx.MultiDiGraph, name: str | None = None) -> str:
    """Dot text for an STG extracted by :func:`extract_stg`.

    Edge labels show ``inputs/outputs`` as bit strings; the initial
    state is drawn with a double circle.
    """
    title = name or graph.graph.get("name", "stg")
    lines = [f'digraph "{title}" {{', "  rankdir=LR;", "  node [shape=circle];"]
    for node, data in graph.nodes(data=True):
        shape = "doublecircle" if data.get("initial") else "circle"
        lines.append(f'  "{_bits(node)}" [shape={shape}];')
    # Merge parallel edges with identical endpoints into one label.
    grouped: dict[tuple, list[str]] = {}
    for src, dst, data in graph.edges(data=True):
        label = f"{_bits(data.get('input', ()))}/{_bits(data.get('output', ()))}"
        grouped.setdefault((src, dst), []).append(label)
    for (src, dst), labels in grouped.items():
        text = "\\n".join(sorted(set(labels)))
        lines.append(f'  "{_bits(src)}" -> "{_bits(dst)}" [label="{text}"];')
    lines.append("}")
    return "\n".join(lines)
