"""Exact Definition-2 equivalence, symbolically (the paper's gold standard).

Sec. 6: deciding ``y(n,τ) = y(n,L)`` exactly "is equivalent to decide
whether two finite state machines are equivalent ... However this
explicit method takes too much memory space for most practical
circuits", which motivates the sufficient condition ``C_x``.  This
module implements the exact route *symbolically*: the τ-machine's
extra memory (the length-``m`` histories of state and input vectors)
becomes extra BDD state variables, and product reachability decides
equivalence.  It is still exponential in the worst case — exactly the
trade-off the paper describes — but BDDs push the practical boundary
far past explicit enumeration, and it subsumes every refinement C_x
needs options for (reachable space, initial states, output-only
observability).

Construction (fixed delays, single clock phase):

* extended state: ``x@a`` = x(n-a) and ``u@a`` = u(n-a) for
  ``a = 1..m``, plus the steady machine's state ``x̂(n-1)``;
* transition on fresh input ``w = u(n)``: the τ-machine's next state
  is its discretized cone over the histories, histories shift, the
  steady state advances by ``g``;
* initial set: all histories at the initial state, input history
  *free* (pre-start garbage is universally quantified by reachability);
* failure: a reachable extended state where some primary output of the
  two machines differs for some ``w``.

:func:`exact_minimum_cycle_time` runs the usual breakpoint sweep with
this check instead of Decision 6.1, yielding the exact minimum cycle
time (not just an upper bound) for fixed delays.
"""

from __future__ import annotations

import dataclasses
import time
from fractions import Fraction

from repro.bdd import BddManager, Function
from repro.errors import AnalysisError, Budget, ResourceBudgetExceeded
from repro.logic.delays import DelayMap, Interval
from repro.logic.netlist import Circuit
from repro.mct.breakpoints import tau_breakpoints
from repro.mct.discretize import DiscretizedMachine, build_discretized_machine
from repro.timed.expansion import TimedExpander


class SymbolicTauMachine:
    """The product of the τ-machine and the steady machine, as BDDs."""

    def __init__(
        self,
        circuit: Circuit,
        delays: DelayMap,
        tau: Fraction,
        initial_state: dict[str, bool] | None = None,
        machine: DiscretizedMachine | None = None,
        budget: Budget | None = None,
    ):
        if delays.has_phases:
            raise AnalysisError("symbolic exact equivalence assumes one phase")
        if machine is None:
            machine = build_discretized_machine(circuit, delays, budget=budget)
        if not all(tl.total.is_point for tl in machine.timed_leaves):
            raise AnalysisError(
                "symbolic exact equivalence needs fixed delays; "
                "collapse intervals first (DelayMap.at_max())"
            )
        self.circuit = circuit
        self.machine = machine
        self.tau = tau
        regime = machine.regime(tau)
        self.m = max(
            1, max((max(ages) for ages in regime.values()), default=1)
        )
        self._regime = {tl: ages[0] for tl, ages in regime.items()}
        if initial_state is None:
            initial_state = {q: False for q in circuit.latches}
        self.initial_state = {q: bool(initial_state[q]) for q in circuit.latches}
        self.manager = BddManager(budget=budget)
        self._declare_vars()
        self._build_functions(delays, budget)

    # -- variable layout -------------------------------------------------
    def _declare_vars(self) -> None:
        mgr = self.manager
        circuit = self.circuit
        self.current: list[str] = []
        self.primed: list[str] = []
        # Interleave current/primed per bit for a compact relation.
        for a in range(1, self.m + 1):
            for q in circuit.state_nets:
                self._pair(f"x|{q}@{a}")
            for u in circuit.inputs:
                self._pair(f"u|{u}@{a}")
        for q in circuit.state_nets:
            self._pair(f"s|{q}")
        for u in circuit.inputs:
            mgr.var(f"w|{u}")
        self.fresh_inputs = [f"w|{u}" for u in circuit.inputs]

    def _pair(self, name: str) -> None:
        self.manager.var(name)
        self.manager.var(name + "'")
        self.current.append(name)
        self.primed.append(name + "'")

    def _var(self, name: str) -> Function:
        return self.manager.var(name)

    # -- cone construction -------------------------------------------------
    def _build_functions(self, delays: DelayMap, budget: Budget | None) -> None:
        circuit = self.circuit
        mgr = self.manager
        expander = TimedExpander(circuit, delays, mgr, budget=budget)
        setup_extra = Interval.point(self.machine.setup)

        def tau_value(leaf: str, age: int) -> Function:
            if leaf in circuit.latches:
                if age == 0:
                    return self.next_tau[leaf]  # x(n), built first
                return self._var(f"x|{leaf}@{age}")
            if age == 0:
                return self._var(f"w|{leaf}")
            return self._var(f"u|{leaf}@{age}")

        def steady_value(leaf: str, age: int) -> Function:
            if leaf in circuit.latches:
                if age == 0:
                    return self.next_steady[leaf]
                if age != 1:  # pragma: no cover - steady ages are 0/1
                    raise AnalysisError("steady regime out of range")
                return self._var(f"s|{leaf}")
            if age == 0:
                return self._var(f"w|{leaf}")
            return self._var(f"u|{leaf}@{age}")

        def tau_resolver(inst):
            tl = self.machine.fold(inst)
            return tau_value(tl.leaf, self._regime[tl])

        steady_regime = self.machine.steady_regime()

        def steady_resolver(inst):
            tl = self.machine.fold(inst)
            return steady_value(tl.leaf, steady_regime[tl][0])

        # Next-state functions (state roots never reference age 0).
        self.next_tau: dict[str, Function] = {}
        self.next_steady: dict[str, Function] = {}
        for q, latch in circuit.latches.items():
            self.next_tau[q] = expander.expand(
                latch.data, tau_resolver, extra=setup_extra
            )
            steady_leaf_map = {p: self._var(f"s|{p}") for p in circuit.state_nets}
            steady_leaf_map.update(
                {u: self._var(f"u|{u}@1") for u in circuit.inputs}
            )
            from repro.timed.expansion import combinational_bdd

            self.next_steady[q] = combinational_bdd(
                circuit, latch.data, steady_leaf_map, mgr
            )
        # Output mismatch (may reference age-0 state = the next values).
        mismatch = mgr.false
        for po in circuit.outputs:
            y_tau = expander.expand(po, tau_resolver)
            y_steady = expander.expand(po, steady_resolver)
            mismatch = mismatch | (y_tau ^ y_steady)
        self.mismatch = mismatch

    # -- reachability -------------------------------------------------------
    def _transition_relation(self) -> Function:
        mgr = self.manager
        circuit = self.circuit
        parts: list[Function] = []
        for q in circuit.state_nets:
            parts.append(self._var(f"x|{q}@1'").iff(self.next_tau[q]))
            for a in range(2, self.m + 1):
                parts.append(
                    self._var(f"x|{q}@{a}'").iff(self._var(f"x|{q}@{a - 1}"))
                )
            parts.append(self._var(f"s|{q}'").iff(self.next_steady[q]))
        for u in circuit.inputs:
            parts.append(self._var(f"u|{u}@1'").iff(self._var(f"w|{u}")))
            for a in range(2, self.m + 1):
                parts.append(
                    self._var(f"u|{u}@{a}'").iff(self._var(f"u|{u}@{a - 1}"))
                )
        return mgr.conjoin(parts)

    def initial_set(self) -> Function:
        mgr = self.manager
        parts: list[Function] = []
        for q, value in self.initial_state.items():
            for a in range(1, self.m + 1):
                v = self._var(f"x|{q}@{a}")
                parts.append(v if value else ~v)
            v = self._var(f"s|{q}")
            parts.append(v if value else ~v)
        # Input histories free: pre-start inputs are arbitrary.
        return mgr.conjoin(parts)

    def equivalent(self, max_iterations: int | None = None) -> bool:
        """True iff the two machines have identical sampled output
        behaviour from the initial state, for every input stream and
        every pre-start input history."""
        mgr = self.manager
        bad = self.mismatch.exists(self.fresh_inputs)
        relation = self._transition_relation()
        quantify = list(self.current) + list(self.fresh_inputs)
        rename_back = {p: c for c, p in zip(self.current, self.primed)}
        reached = self.initial_set()
        frontier = reached
        iteration = 0
        while not frontier.is_zero():
            if not (frontier & bad).is_zero():
                return False
            iteration += 1
            if max_iterations is not None and iteration > max_iterations:
                raise AnalysisError("reachability iteration cap hit")
            image = mgr.and_exists(quantify, frontier, relation).rename(rename_back)
            frontier = image & ~reached
            reached = reached | image
        return True


@dataclasses.dataclass(frozen=True)
class ExactMctResult:
    """Outcome of the exact sweep."""

    circuit_name: str
    L: Fraction
    exact_mct: Fraction | None
    failure_found: bool
    candidates: tuple[tuple[Fraction, bool], ...]
    elapsed_seconds: float
    exhausted: bool = False
    budget_exceeded: bool = False


def exact_minimum_cycle_time(
    circuit: Circuit,
    delays: DelayMap,
    initial_state: dict[str, bool] | None = None,
    max_age: int = 8,
    tau_floor: Fraction | None = None,
    work_budget: int | None = None,
) -> ExactMctResult:
    """The exact minimum cycle time via symbolic product equivalence.

    Fixed delays only.  Unlike :func:`repro.mct.minimum_cycle_time`
    (which bounds via the sufficient condition ``C_x``), a passing τ
    here is *exactly* Definition 2's requirement, so the returned value
    is the true minimum cycle time (modulo the sweep floor).
    """
    start = time.monotonic()
    budget = Budget(work_budget, "exact mct") if work_budget else None
    records: list[tuple[Fraction, bool]] = []
    prev_tau: Fraction | None = None
    exact: Fraction | None = None
    failure = False
    exhausted = False
    budget_exceeded = False
    try:
        machine = build_discretized_machine(circuit, delays, budget=budget)
    except ResourceBudgetExceeded:
        return ExactMctResult(
            circuit_name=circuit.name,
            L=Fraction(0),
            exact_mct=None,
            failure_found=False,
            candidates=(),
            elapsed_seconds=time.monotonic() - start,
            budget_exceeded=True,
        )
    if tau_floor is None:
        tau_floor = machine.L / max_age
    steady = machine.steady_regime()
    try:
        for tau in tau_breakpoints(machine.endpoint_values, tau_floor):
            regime = machine.regime(tau)
            if max(max(ages) for ages in regime.values()) > max_age:
                exhausted = True
                break
            if regime == steady:
                records.append((tau, True))
                prev_tau = tau
                continue
            product = SymbolicTauMachine(
                circuit, delays, tau,
                initial_state=initial_state, machine=machine, budget=budget,
            )
            ok = product.equivalent()
            records.append((tau, ok))
            if not ok:
                exact = prev_tau if prev_tau is not None else machine.L
                failure = True
                break
            prev_tau = tau
        else:
            exhausted = True
    except ResourceBudgetExceeded:
        budget_exceeded = True
    if exact is None and records:
        exact = min(t for t, ok in records if ok)
    return ExactMctResult(
        circuit_name=circuit.name,
        L=machine.L,
        exact_mct=exact,
        failure_found=failure,
        candidates=tuple(records),
        elapsed_seconds=time.monotonic() - start,
        exhausted=exhausted,
        budget_exceeded=budget_exceeded,
    )
