"""FSM equivalence: the paper's exact (but expensive) alternative.

Sec. 6 observes that deciding ``y(n,τ) = y(n,L)`` exactly amounts to
FSM equivalence — reduce both machines and compare — but rejects it as
too memory-hungry in general, introducing the sufficient condition
``C_x`` instead.  This module implements the exact route for *small*
circuits:

* :func:`tau_machine` — the explicit Mealy machine of the discretized
  τ-machine, whose state is the length-``m`` history of state and
  input vectors (the extra state cycles the decision algorithm hides
  inside BDD substitutions);
* :func:`steady_machine` — the same construction at τ = L;
* :func:`machines_equivalent` — product-machine BFS equivalence over
  all pre-start input histories (pre-start inputs are free, exactly as
  in the decision algorithm's base step);
* :func:`minimize_mealy` — classic partition-refinement reduction
  (Hopcroft/Ullman style), used to report minimal machine sizes.

Tests use this to validate that C_x is a sound, conservative
approximation: whenever the exact machines are inequivalent at τ, the
decision algorithm must reject τ as well.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections.abc import Callable, Sequence
from fractions import Fraction

from repro.bdd import BddManager, Function
from repro.errors import AnalysisError
from repro.logic.delays import DelayMap, Interval
from repro.logic.netlist import Circuit
from repro.mct.discretize import build_discretized_machine
from repro.timed.expansion import TimedExpander

#: Explicit machine state: an opaque hashable.
State = tuple
#: Input vector: tuple of bools in circuit.inputs order.
InputVec = tuple[bool, ...]
#: Output vector: tuple of bools in circuit.outputs order.
OutputVec = tuple[bool, ...]


@dataclasses.dataclass(frozen=True)
class ExplicitMealy:
    """An explicit Mealy machine given by an initial state and a step
    function ``step(state, input) -> (next_state, output)``."""

    initial: State
    step: Callable[[State, InputVec], tuple[State, OutputVec]]
    n_inputs: int


def _build_root_bdds(
    circuit: Circuit, delays: DelayMap, tau: Fraction
) -> tuple[dict[str, Function], dict[str, Function], int, BddManager]:
    """Discretized next-state and output BDDs over ``leaf@age`` vars."""
    if delays.has_phases:
        raise AnalysisError("explicit τ-machines model a common clock only")
    machine = build_discretized_machine(circuit, delays)
    if not all(tl.total.is_point for tl in machine.timed_leaves):
        raise AnalysisError(
            "explicit τ-machines require fixed (point) delays; "
            "collapse intervals first (DelayMap.at_max())"
        )
    regime = machine.regime(tau)
    manager = BddManager()
    expander = TimedExpander(circuit, delays, manager)

    def resolver(inst):
        tl = machine.fold(inst)
        (age,) = regime[tl]
        return manager.var(f"{tl.leaf}@{age}")

    setup_extra = Interval.point(machine.setup)
    next_state = {
        q: expander.expand(latch.data, resolver, extra=setup_extra)
        for q, latch in circuit.latches.items()
    }
    outputs = {po: expander.expand(po, resolver) for po in circuit.outputs}
    m = max((max(ages) for ages in regime.values()), default=1)
    return next_state, outputs, max(m, 1), manager


def tau_machine(
    circuit: Circuit,
    delays: DelayMap,
    tau: Fraction,
    initial_state: dict[str, bool] | None = None,
    pre_start_inputs: Sequence[InputVec] | None = None,
) -> ExplicitMealy:
    """The explicit Mealy machine of the τ-discretized circuit.

    The machine state is ``(x(n-1)..x(n-m), u(n-1)..u(n-m))``; on input
    ``u(n)`` it emits ``y(n)`` and advances the histories.

    ``pre_start_inputs`` fixes the fictitious inputs ``u(0-m..-1)``
    (newest first); they default to all-False — callers comparing
    machines should sweep them (see :func:`equivalent_to_steady`).
    """
    if initial_state is None:
        initial_state = {q: False for q in circuit.latches}
    next_state, outputs, m, manager = _build_root_bdds(circuit, delays, tau)
    state_nets = circuit.state_nets
    n_in = len(circuit.inputs)
    if pre_start_inputs is None:
        pre_start_inputs = [(False,) * n_in] * m
    if len(pre_start_inputs) != m:
        raise AnalysisError(f"need exactly {m} pre-start input vectors")
    init_bits = tuple(bool(initial_state[q]) for q in state_nets)
    initial: State = (
        tuple(init_bits for _ in range(m)),
        tuple(tuple(v) for v in pre_start_inputs),
    )

    def assignment(xh, uh, u_now: InputVec | None) -> dict[str, bool]:
        env: dict[str, bool] = {}
        for age in range(1, m + 1):
            for qi, q in enumerate(state_nets):
                env[f"{q}@{age}"] = xh[age - 1][qi]
            for ui, u in enumerate(circuit.inputs):
                env[f"{u}@{age}"] = uh[age - 1][ui]
        if u_now is not None:
            for ui, u in enumerate(circuit.inputs):
                env[f"{u}@0"] = u_now[ui]
        return env

    def step(state: State, u_now: InputVec) -> tuple[State, OutputVec]:
        xh, uh = state
        env = assignment(xh, uh, u_now)

        def ev(f: Function) -> bool:
            missing = f.support() - set(env)
            if missing:
                raise AnalysisError(f"unassigned timed variables {sorted(missing)}")
            return f.evaluate(env)

        # State roots never reference age 0 (positive loop delays), so
        # x(n) is well-defined from the histories alone...
        x_now = tuple(ev(next_state[q]) for q in state_nets)
        # ...while zero-delay output feedthrough may read x(n) (age 0).
        for qi, q in enumerate(state_nets):
            env[f"{q}@0"] = x_now[qi]
        y_now = tuple(ev(outputs[po]) for po in circuit.outputs)
        new_state: State = ((x_now,) + xh[:-1], (tuple(u_now),) + uh[:-1])
        return new_state, y_now

    return ExplicitMealy(initial=initial, step=step, n_inputs=n_in)


def steady_machine(
    circuit: Circuit,
    delays: DelayMap,
    initial_state: dict[str, bool] | None = None,
    pre_start_inputs: Sequence[InputVec] | None = None,
) -> ExplicitMealy:
    """The steady-state machine: the τ-machine at τ = L (Def. 2)."""
    machine = build_discretized_machine(circuit, delays)
    if pre_start_inputs is None:
        pre_start_inputs = [(False,) * len(circuit.inputs)]
    # The steady machine has m = 1; reuse the first pre-start vector.
    return tau_machine(
        circuit, delays, machine.L, initial_state, [tuple(pre_start_inputs[0])]
    )


def machines_equivalent(
    left: ExplicitMealy,
    right: ExplicitMealy,
    max_pairs: int = 1 << 16,
) -> bool:
    """Product-machine BFS: identical I/O behaviour from the initials."""
    if left.n_inputs != right.n_inputs:
        raise AnalysisError("machines have different input arity")
    stimuli = [
        tuple(bits)
        for bits in itertools.product([False, True], repeat=left.n_inputs)
    ]
    seen = {(left.initial, right.initial)}
    frontier = [(left.initial, right.initial)]
    while frontier:
        new_frontier = []
        for ls, rs in frontier:
            for u in stimuli:
                ln, lo = left.step(ls, u)
                rn, ro = right.step(rs, u)
                if lo != ro:
                    return False
                pair = (ln, rn)
                if pair not in seen:
                    if len(seen) >= max_pairs:
                        raise AnalysisError(
                            f"product machine exceeds {max_pairs} pairs"
                        )
                    seen.add(pair)
                    new_frontier.append(pair)
        frontier = new_frontier
    return True


def equivalent_to_steady(
    circuit: Circuit,
    delays: DelayMap,
    tau: Fraction,
    initial_state: dict[str, bool] | None = None,
    max_pairs: int = 1 << 16,
) -> bool:
    """Exact Definition-2 check at one τ, over every pre-start history.

    This is the ground truth the decision algorithm approximates: it
    returns True iff the sampled *output* behaviour at τ equals the
    steady behaviour for all input streams and all pre-start input
    garbage.  Exponential in (pre-start depth × inputs): small circuits
    only.
    """
    _, _, m, _ = _build_root_bdds(circuit, delays, tau)
    n_in = len(circuit.inputs)
    histories = itertools.product(
        itertools.product([False, True], repeat=n_in), repeat=m
    )
    for history in histories:
        left = tau_machine(
            circuit, delays, tau, initial_state, [tuple(v) for v in history]
        )
        # u(0) (the newest history entry) is a *real* input shared by
        # both machines; older entries are τ-machine-only garbage.
        steady = steady_machine(
            circuit, delays, initial_state, pre_start_inputs=[tuple(history[0])]
        )
        if not machines_equivalent(left, steady, max_pairs=max_pairs):
            return False
    return True


def minimize_mealy(
    machine: ExplicitMealy,
    max_states: int = 1 << 14,
) -> tuple[int, dict[State, int]]:
    """Partition-refinement reduction of the reachable machine.

    Returns ``(number_of_classes, state -> class index)``.  Classic
    Moore-style refinement (the paper cites Hopcroft/Ullman for this
    step); quadratic but ample for explicit machines.
    """
    stimuli = [
        tuple(bits)
        for bits in itertools.product([False, True], repeat=machine.n_inputs)
    ]
    # Explore the reachable state space and tabulate.
    states: list[State] = [machine.initial]
    index = {machine.initial: 0}
    delta: dict[tuple[int, InputVec], int] = {}
    lam: dict[tuple[int, InputVec], OutputVec] = {}
    frontier = [machine.initial]
    while frontier:
        new_frontier = []
        for s in frontier:
            si = index[s]
            for u in stimuli:
                nxt, out = machine.step(s, u)
                if nxt not in index:
                    if len(states) >= max_states:
                        raise AnalysisError(f"more than {max_states} states")
                    index[nxt] = len(states)
                    states.append(nxt)
                    new_frontier.append(nxt)
                delta[(si, u)] = index[nxt]
                lam[(si, u)] = out
        frontier = new_frontier

    # Initial partition: by full output signature.
    def out_signature(si: int) -> tuple:
        return tuple(lam[(si, u)] for u in stimuli)

    classes = {}
    for si in range(len(states)):
        classes.setdefault(out_signature(si), []).append(si)
    labels = [0] * len(states)
    for ci, members in enumerate(classes.values()):
        for si in members:
            labels[si] = ci
    # Refine until stable.
    changed = True
    while changed:
        changed = False
        signature_map: dict[tuple, int] = {}
        new_labels = [0] * len(states)
        for si in range(len(states)):
            sig = (labels[si],) + tuple(labels[delta[(si, u)]] for u in stimuli)
            if sig not in signature_map:
                signature_map[sig] = len(signature_map)
            new_labels[si] = signature_map[sig]
        if new_labels != labels:
            labels = new_labels
            changed = True
    n_classes = len(set(labels))
    return n_classes, {states[i]: labels[i] for i in range(len(states))}
