"""Explicit state-transition graphs for small machines.

Exhaustive enumeration over input vectors; practical up to a dozen or
so input bits and a few thousand reachable states.  Used by examples,
by the exact equivalence layer, and by tests that validate the
symbolic reachability against brute force.
"""

from __future__ import annotations

import itertools

import networkx as nx

from repro.errors import AnalysisError
from repro.logic.netlist import Circuit

#: A state is a tuple of latch-output bits in declaration order.
State = tuple[bool, ...]


def _state_of(circuit: Circuit, values: dict[str, bool]) -> State:
    return tuple(bool(values[q]) for q in circuit.state_nets)


def _input_vectors(circuit: Circuit, max_inputs: int) -> list[dict[str, bool]]:
    if len(circuit.inputs) > max_inputs:
        raise AnalysisError(
            f"{len(circuit.inputs)} inputs exceed the explicit "
            f"enumeration cap ({max_inputs})"
        )
    return [
        dict(zip(circuit.inputs, bits))
        for bits in itertools.product([False, True], repeat=len(circuit.inputs))
    ]


def enumerate_reachable(
    circuit: Circuit,
    initial_state: dict[str, bool] | None = None,
    max_inputs: int = 16,
    max_states: int = 1 << 16,
) -> set[State]:
    """Breadth-first reachable-state set by explicit simulation."""
    if initial_state is None:
        initial_state = {q: False for q in circuit.latches}
    stimuli = _input_vectors(circuit, max_inputs)
    start = _state_of(circuit, initial_state)
    seen = {start}
    frontier = [start]
    while frontier:
        new_frontier: list[State] = []
        for state in frontier:
            state_map = dict(zip(circuit.state_nets, state))
            for stimulus in stimuli:
                nxt, _ = circuit.step(state_map, stimulus)
                key = _state_of(circuit, nxt)
                if key not in seen:
                    if len(seen) >= max_states:
                        raise AnalysisError(
                            f"more than {max_states} reachable states"
                        )
                    seen.add(key)
                    new_frontier.append(key)
        frontier = new_frontier
    return seen


def extract_stg(
    circuit: Circuit,
    initial_state: dict[str, bool] | None = None,
    max_inputs: int = 16,
    max_states: int = 1 << 12,
) -> nx.MultiDiGraph:
    """The reachable state-transition graph as a networkx MultiDiGraph.

    Nodes are state tuples; each edge carries the input vector
    (``input``) and the sampled output vector (``output``).
    """
    if initial_state is None:
        initial_state = {q: False for q in circuit.latches}
    stimuli = _input_vectors(circuit, max_inputs)
    graph = nx.MultiDiGraph(name=circuit.name)
    start = _state_of(circuit, initial_state)
    graph.add_node(start, initial=True)
    frontier = [start]
    while frontier:
        new_frontier: list[State] = []
        for state in frontier:
            state_map = dict(zip(circuit.state_nets, state))
            for stimulus in stimuli:
                nxt, outs = circuit.step(state_map, stimulus)
                key = _state_of(circuit, nxt)
                if key not in graph:
                    if graph.number_of_nodes() >= max_states:
                        raise AnalysisError(
                            f"more than {max_states} reachable states"
                        )
                    graph.add_node(key, initial=False)
                    new_frontier.append(key)
                graph.add_edge(
                    state,
                    key,
                    input=tuple(stimulus[u] for u in circuit.inputs),
                    output=tuple(outs[o] for o in circuit.outputs),
                )
        frontier = new_frontier
    return graph
