"""Function handles: user-facing references to BDD nodes.

A :class:`Function` pairs a manager with a node index.  Because the
manager's node table is canonical, two handles from the same manager are
semantically equal exactly when their node indices match, which makes
``==`` a constant-time tautology check.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bdd.manager import BddManager


class Function:
    """A handle on a Boolean function owned by a manager.

    Handles are semantically immutable, but the manager's garbage
    collector may re-point ``node`` when it compacts the node table —
    the referenced *function* never changes.  Managers track live
    handles through weak references, which is why ``__weakref__`` is in
    the slots.
    """

    __slots__ = ("manager", "node", "__weakref__")

    def __init__(self, manager: "BddManager", node: int):
        self.manager = manager
        self.node = node
        manager._register(self)

    # -- identity ------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Function):
            return NotImplemented
        return self.manager is other.manager and self.node == other.node

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    def __bool__(self) -> bool:
        raise TypeError(
            "a BDD Function has no truth value; use .is_one() / .is_zero() "
            "or compare with == explicitly"
        )

    def __repr__(self) -> str:
        if self.is_zero():
            return "Function(FALSE)"
        if self.is_one():
            return "Function(TRUE)"
        size = self.manager.node_count(self)
        return f"Function(node={self.node}, nodes={size})"

    # -- constants -----------------------------------------------------
    def is_zero(self) -> bool:
        """True iff this is the constant-0 function."""
        return self.node == self.manager._false_ref

    def is_one(self) -> bool:
        """True iff this is the constant-1 function."""
        return self.node == self.manager._true_ref

    def is_constant(self) -> bool:
        """True iff this is a constant (both kernels use refs <= 1)."""
        return self.node <= 1

    # -- Boolean algebra (operator sugar) ------------------------------
    def __invert__(self) -> "Function":
        return self.manager.apply_not(self)

    def __and__(self, other: "Function") -> "Function":
        return self.manager.apply_and(self, other)

    def __or__(self, other: "Function") -> "Function":
        return self.manager.apply_or(self, other)

    def __xor__(self, other: "Function") -> "Function":
        return self.manager.apply_xor(self, other)

    def iff(self, other: "Function") -> "Function":
        """Equivalence (XNOR)."""
        return self.manager.apply_xnor(self, other)

    def implies(self, other: "Function") -> "Function":
        """Implication."""
        return self.manager.apply_implies(self, other)

    def ite(self, then_f: "Function", else_f: "Function") -> "Function":
        """``self ? then_f : else_f``."""
        return self.manager.ite(self, then_f, else_f)

    # -- structural / semantic queries ----------------------------------
    def support(self) -> set[str]:
        """Variables this function depends on."""
        return self.manager.support(self)

    def node_count(self) -> int:
        """Size of this function's BDD."""
        return self.manager.node_count(self)

    def restrict(self, assignment: Mapping[str, bool]) -> "Function":
        """Cofactor by a partial assignment."""
        return self.manager.restrict(self, assignment)

    def compose(self, name: str, g: "Function") -> "Function":
        """Substitute ``g`` for variable ``name``."""
        return self.manager.compose(self, name, g)

    def vector_compose(self, substitution: Mapping[str, "Function"]) -> "Function":
        """Simultaneous substitution of functions for variables."""
        return self.manager.vector_compose(self, substitution)

    def rename(self, mapping: Mapping[str, str]) -> "Function":
        """Rename variables."""
        return self.manager.rename(self, mapping)

    def exists(self, names: Iterable[str]) -> "Function":
        """Existentially quantify the named variables."""
        return self.manager.exists(names, self)

    def forall(self, names: Iterable[str]) -> "Function":
        """Universally quantify the named variables."""
        return self.manager.forall(names, self)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate under a concrete assignment."""
        return self.manager.evaluate(self, assignment)

    def pick_one(self) -> dict[str, bool] | None:
        """A satisfying assignment, or None if unsatisfiable."""
        return self.manager.pick_one(self)

    def sat_iter(self, care_vars: Iterable[str] | None = None) -> Iterator[dict[str, bool]]:
        """Iterate satisfying assignments."""
        return self.manager.sat_iter(self, care_vars)

    def sat_count(self, nvars: int | None = None) -> int:
        """Count satisfying assignments."""
        return self.manager.sat_count(self, nvars)

    def constrain(self, care: "Function") -> "Function":
        """Coudert–Madre generalized cofactor (agrees on ``care``)."""
        return self.manager.constrain(self, care)

    def restrict_care(self, care: "Function") -> "Function":
        """The restrict heuristic (constrain that never grows support)."""
        return self.manager.restrict_care(self, care)

    def equivalent_under(self, other: "Function", care: "Function") -> bool:
        """True iff ``self`` equals ``other`` on every point of ``care``.

        Used for sequential don't-care comparisons (reachability-
        restricted equivalence in the decision algorithm).
        """
        return ((self ^ other) & care).is_zero()
