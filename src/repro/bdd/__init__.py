"""Reduced Ordered Binary Decision Diagrams (ROBDDs).

A from-scratch, dependency-free BDD package.  The decision algorithm of
the paper (Sec. 6.1) reduces sequential-equivalence questions to BDD
equality, and every delay analysis in :mod:`repro.delay` and
:mod:`repro.mct` manipulates circuit cones as BDDs, so this package is
the substrate everything else stands on.

Quick example::

    >>> from repro.bdd import BddManager
    >>> mgr = BddManager()
    >>> a, b = mgr.var("a"), mgr.var("b")
    >>> f = (a & ~b) | (~a & b)
    >>> f == a ^ b
    True
    >>> sorted(f.support())
    ['a', 'b']

Canonicity: two :class:`~repro.bdd.function.Function` handles from the
same manager represent the same Boolean function if and only if they
compare equal.
"""

from repro.bdd.function import Function
from repro.bdd.manager import (
    KERNELS,
    BddManager,
    set_default_ite_normalization,
    set_default_kernel,
)
from repro.bdd.ordering import dfs_variable_order, interleave_orders
from repro.bdd.reorder import order_size, reorder, sift_order
from repro.bdd.stats import BddStats
from repro.bdd.transfer import transfer

__all__ = [
    "BddManager",
    "BddStats",
    "Function",
    "KERNELS",
    "dfs_variable_order",
    "interleave_orders",
    "order_size",
    "reorder",
    "set_default_ite_normalization",
    "set_default_kernel",
    "sift_order",
    "transfer",
]
