"""Performance counters for the BDD engine.

Every :class:`~repro.bdd.manager.BddManager` owns one mutable
:class:`BddStats` and updates it from the hot paths (node creation, the
ITE operation cache, garbage collection).  The counters are cheap
integer increments, always on, and surfaced three ways:

* ``manager.stats`` — live counters of one manager;
* :attr:`repro.mct.engine.MctResult.bdd_stats` — the merged counters
  of every decision context a τ-sweep used;
* ``repro-mct analyze --stats`` / ``BENCH_mct.json`` — the operator
  and benchmark views.

``merge`` sums counters across managers (peaks are summed too: the
aggregate is the combined table footprint, which is what a memory
budget cares about).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class BddStats:
    """Counters of one BDD manager (or a merged set of managers)."""

    #: Nodes ever inserted into the unique table (terminals excluded).
    nodes_created: int = 0
    #: Largest node-table size observed (terminals included).  GC can
    #: shrink the live table below this high-water mark.
    peak_nodes: int = 0
    #: ITE subproblems examined, including terminal-resolved ones.
    ite_calls: int = 0
    #: Probes of the operation-cache layer: ITE triples that survived
    #: the plain terminal shortcuts (one count per triple, whether or
    #: not normalization then rewrites it).  The definition is
    #: identical with normalization on or off, so the two modes'
    #: hit rates are directly comparable.
    cache_lookups: int = 0
    #: Probes answered *without Shannon expansion* — found in the
    #: operation cache under the canonical key, or reduced to a known
    #: node by the normalization front-end.
    cache_hits: int = 0
    #: Times the bounded ITE cache dropped its least-recently-used half.
    cache_evictions: int = 0
    #: Times the bounded NOT cache (object kernel only; the array
    #: kernel's complement edges need no NOT cache) dropped its oldest
    #: half.
    not_cache_evictions: int = 0
    #: Completed mark-and-sweep passes.
    gc_runs: int = 0
    #: Dead nodes reclaimed across all GC passes.
    nodes_reclaimed: int = 0
    #: Completed dynamic-sifting passes (``BddManager.sift_now``),
    #: whether or not the trial order improved on the current one.
    sift_runs: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of ITE cache probes answered from the cache."""
        if not self.cache_lookups:
            return 0.0
        return self.cache_hits / self.cache_lookups

    def merge(self, other: "BddStats") -> "BddStats":
        """Add ``other``'s counters into ``self`` (returns ``self``)."""
        self.nodes_created += other.nodes_created
        self.peak_nodes += other.peak_nodes
        self.ite_calls += other.ite_calls
        self.cache_lookups += other.cache_lookups
        self.cache_hits += other.cache_hits
        self.cache_evictions += other.cache_evictions
        self.not_cache_evictions += other.not_cache_evictions
        self.gc_runs += other.gc_runs
        self.nodes_reclaimed += other.nodes_reclaimed
        self.sift_runs += other.sift_runs
        return self

    @classmethod
    def from_dict(cls, data: dict) -> "BddStats":
        """Rebuild counters from an :meth:`as_dict` payload.

        The inverse used when counters cross a process boundary (the
        parallel sweep ships worker stats as plain dicts).  Derived
        fields like ``cache_hit_rate`` are ignored; unknown keys are
        too, so older payloads stay readable.
        """
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: int(v) for k, v in data.items() if k in fields})

    def as_dict(self) -> dict:
        """JSON-ready view (the ``BENCH_mct.json`` ``bdd`` object)."""
        return {
            "nodes_created": self.nodes_created,
            "peak_nodes": self.peak_nodes,
            "ite_calls": self.ite_calls,
            "cache_lookups": self.cache_lookups,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": round(self.cache_hit_rate, 6),
            "cache_evictions": self.cache_evictions,
            "not_cache_evictions": self.not_cache_evictions,
            "gc_runs": self.gc_runs,
            "nodes_reclaimed": self.nodes_reclaimed,
            "sift_runs": self.sift_runs,
        }

    def summary(self) -> str:
        """One-line human rendering (the CLI ``--stats`` row)."""
        return (
            f"{self.nodes_created} nodes created, peak {self.peak_nodes}, "
            f"{self.ite_calls} ite calls, "
            f"cache hit rate {self.cache_hit_rate:.1%}, "
            f"{self.gc_runs} GC runs ({self.nodes_reclaimed} reclaimed)"
        )
