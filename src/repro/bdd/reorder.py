"""Variable-order optimization by rebuild (sifting-style search).

The manager's node table is immutable, so instead of in-place level
swaps this module searches over orders and *rebuilds* functions into a
fresh manager via :func:`repro.bdd.transfer.transfer`.  That trades the
classic sifting's O(swap) step for an O(rebuild) step — perfectly
adequate for the support sizes our analyses see (tens of variables),
and much simpler to trust.

Every entry point accepts the caller's ``budget`` and ``deadline`` and
installs them on the scratch managers it creates: node creation during
a rebuild is charged like any other BDD work, and a wall-clock deadline
interrupts a sift mid-search instead of waiting for it to finish.

Entry points:

* :func:`order_size` — total node count of a function set under a
  candidate order;
* :func:`sift_order` — classic sifting at rebuild granularity: move
  each variable through every position, keep the best, repeat until a
  pass yields no improvement;
* :func:`reorder` — rebuild functions into a manager with a given
  order.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.bdd.function import Function
from repro.bdd.manager import BddManager
from repro.bdd.transfer import transfer
from repro.errors import BddError, Budget


def reorder(
    functions: Sequence[Function],
    order: Sequence[str],
    budget: Budget | None = None,
    deadline=None,
    kernel: str | None = None,
) -> tuple[BddManager, list[Function]]:
    """Rebuild ``functions`` in a fresh manager using ``order``.

    Every support variable must appear in ``order``; extra names are
    declared but harmless.  ``budget``/``deadline`` are installed on
    the new manager, so the rebuild itself is charged and
    interruptible.  The new manager uses the *source* manager's kernel
    unless ``kernel`` overrides it — a reorder never silently switches
    representations.
    """
    if not functions:
        raise BddError("nothing to reorder")
    support: set[str] = set()
    for f in functions:
        support |= f.support()
    missing = support - set(order)
    if missing:
        raise BddError(f"order misses variables {sorted(missing)}")
    if kernel is None:
        kernel = functions[0].manager.kernel_name
    manager = BddManager(budget=budget, deadline=deadline, kernel=kernel)
    manager.add_vars(order)
    return manager, [transfer(f, manager) for f in functions]


def order_size(
    functions: Sequence[Function],
    order: Sequence[str],
    budget: Budget | None = None,
    deadline=None,
    kernel: str | None = None,
) -> int:
    """Combined distinct-node count of the set under ``order``.

    Counted with :meth:`BddManager.dag_size` in the rebuilt manager, so
    the number is representation-honest: under the array kernel shared
    complement nodes count once and there is a single terminal.
    """
    manager, rebuilt = reorder(
        functions, order, budget=budget, deadline=deadline, kernel=kernel
    )
    return manager.dag_size(rebuilt)


def sift_order(
    functions: Sequence[Function],
    max_passes: int = 4,
    initial_order: Sequence[str] | None = None,
    budget: Budget | None = None,
    deadline=None,
) -> tuple[list[str], int]:
    """Search for a small order; returns ``(order, node_count)``.

    One pass moves each variable (largest potential first) through all
    positions, keeping the best placement; passes repeat until no
    improvement or ``max_passes``.  Each trial rebuild charges
    ``budget`` and polls ``deadline``, so a sift inside a time-limited
    sweep stops cooperatively instead of running to completion.
    """
    if not functions:
        raise BddError("nothing to sift")
    support: set[str] = set()
    for f in functions:
        support |= f.support()
    source = functions[0].manager
    if initial_order is None:
        order = sorted(support, key=source.level_of)
    else:
        order = [name for name in initial_order if name in support]
        leftover = support - set(order)
        order += sorted(leftover, key=source.level_of)
    best_size = order_size(functions, order, budget=budget, deadline=deadline)
    for _ in range(max_passes):
        improved = False
        for name in list(order):
            base = order.index(name)
            candidate_best = (best_size, base)
            without = order[:base] + order[base + 1:]
            for position in range(len(order)):
                if position == base:
                    continue
                trial = without[:position] + [name] + without[position:]
                size = order_size(
                    functions, trial, budget=budget, deadline=deadline
                )
                if size < candidate_best[0]:
                    candidate_best = (size, position)
            if candidate_best[1] != base:
                order = without[:candidate_best[1]] + [name] + without[candidate_best[1]:]
                best_size = candidate_best[0]
                improved = True
        if not improved:
            break
    return order, best_size
