"""The BDD manager facade: kernel selection and the shared algebra.

Architecture
------------
:class:`BddManager` is now a *facade over two interchangeable kernels*:

* ``kernel="array"`` (the default) — :mod:`repro.bdd.array_kernel`:
  flat integer columns (``array('q')``: var, lo, hi) with **complement
  edges**.  A function is a *tagged* node reference ``(index << 1) |
  phase``; negation is one XOR, a function and its complement share
  every node, and the unique table and operation cache are keyed by
  packed integers instead of tuples.
* ``kernel="object"`` — :mod:`repro.bdd.object_kernel`: the historical
  two-terminal store without complement edges, kept as a *cross-check
  oracle*: differential tests run both kernels against each other, and
  any analysis accepts ``kernel=`` to reproduce a result on the
  alternate substrate.

Both kernels expose the same small primitive surface (`_ref_level`,
`_ref_cofactors`, `_mk_sem`, `_not`, `_ite`, ...) over *semantically
canonical* node references, so every derived algorithm — restrict,
compose, quantification, ``and_exists``, constrain, SAT queries,
transfer, ordering search — is written once, here, in kernel-neutral
form.  The invariants the base class relies on:

* references are non-negative ints; the two constants are the refs
  ``<= 1`` (the object kernel uses FALSE=0/TRUE=1, the array kernel
  ONE=0 and its complement edge 1);
* references are canonical: two refs are equal iff they denote the
  same Boolean function;
* ``_ref_cofactors(u, level)`` returns the *semantic* (low, high)
  cofactors, with any complement phase already pushed down.

Shared engineering (both kernels):

* every traversal runs on an **explicit stack** — no Python recursion,
  no ``sys.setrecursionlimit`` mutation;
* the ITE operation cache is **bounded** (``max_cache_size``) with
  *recency-aware* eviction: a cache hit moves the entry to the young
  end, and overflow drops the least-recently-used half — long-lived
  hot triples survive churn (the insertion-order eviction of earlier
  revisions evicted exactly the hottest entries first);
* the object kernel's NOT cache is bounded under the same knob (it
  used to grow without limit between GCs);
* dead nodes are reclaimed by mark-and-sweep
  (:meth:`BddManager.collect_garbage`), with ``gc_threshold`` enabling
  automatic collection at public-operation boundaries;
* **dynamic sifting hooks**: :meth:`BddManager.sift_now` reorders the
  live functions *in place* (handles are re-pointed, levels change,
  semantics do not), and ``sift_threshold=N`` arms an automatic
  mid-sweep trigger.  Sifting work is charged to the manager's
  :class:`~repro.errors.Budget` and polls its deadline, so a sift
  inside a time-limited sweep stops cooperatively;
* the manager charges an optional :class:`repro.errors.Budget` one
  unit per *created* node, so runaway analyses fail deterministically
  with :class:`repro.errors.ResourceBudgetExceeded`.

Performance counters (:class:`repro.bdd.stats.BddStats`) are always on
and exposed as :attr:`BddManager.stats`.
"""

from __future__ import annotations

import weakref
from collections.abc import Iterable, Iterator, Mapping

from repro.errors import BddError, Budget
from repro.bdd.function import Function
from repro.bdd.stats import BddStats

#: Sentinel level for terminal nodes; compares *greater* than any
#: variable level so terminals sort below all variables in the order.
TERMINAL_LEVEL = 1 << 60

#: Object-kernel terminal refs (module-level for the object kernel and
#: its tests; the array kernel's terminals are ONE=0 / ZERO=1).
FALSE = 0
TRUE = 1

#: Default for managers constructed with ``normalize_ite=None``.  The
#: benchmark harness flips this to measure the pre-normalization
#: baseline in the same process (see ``benchmarks/perf_baseline.py``).
_DEFAULT_NORMALIZE = True

#: Default node-store kernel for ``BddManager(kernel=None)``.
_DEFAULT_KERNEL = "array"

#: Valid ``kernel=`` names (the registry itself lives in ``_kernel_class``
#: to keep imports lazy and cycle-free).
KERNELS = ("array", "object")


def set_default_ite_normalization(enabled: bool) -> bool:
    """Set the default ITE-normalization mode for *new* managers.

    Returns the previous default so callers can restore it.  Existing
    managers are unaffected.  Normalization never changes results —
    only which operation-cache entries equivalent triples share — so
    this knob exists purely to benchmark the cache discipline itself.
    """
    global _DEFAULT_NORMALIZE
    previous = _DEFAULT_NORMALIZE
    _DEFAULT_NORMALIZE = bool(enabled)
    return previous


def set_default_kernel(name: str) -> str:
    """Set the node-store kernel for *new* ``BddManager()`` calls.

    Returns the previous default so callers can restore it.  Both
    kernels implement the same canonical ROBDD semantics; switching
    never changes any analysis answer, only the representation (and
    therefore speed/memory).  Existing managers are unaffected.
    """
    global _DEFAULT_KERNEL
    if name not in KERNELS:
        raise BddError(f"unknown BDD kernel {name!r}; choose from {KERNELS}")
    previous = _DEFAULT_KERNEL
    _DEFAULT_KERNEL = name
    return previous


def _kernel_class(name: str):
    """Resolve a kernel name to its manager subclass (lazy imports)."""
    if name == "array":
        from repro.bdd.array_kernel import ArrayKernelManager

        return ArrayKernelManager
    if name == "object":
        from repro.bdd.object_kernel import ObjectKernelManager

        return ObjectKernelManager
    raise BddError(f"unknown BDD kernel {name!r}; choose from {KERNELS}")


class BddManager:
    """Owns a shared node table and provides Boolean-function algebra.

    Parameters
    ----------
    budget:
        Optional node-creation budget.  When exhausted, operations raise
        :class:`~repro.errors.ResourceBudgetExceeded`.
    deadline:
        Optional cooperative :class:`repro.resilience.Deadline` polled
        on every node creation (the manager's hot loop), so a
        wall-clock limit interrupts even one giant ``ite`` instead of
        waiting for the caller's next coarse-grained check.
    kernel:
        Node-store implementation: ``"array"`` (flat integer columns
        with complement edges, the default) or ``"object"`` (the
        historical two-terminal store, kept as a cross-check oracle).
        ``None`` uses the module default (:func:`set_default_kernel`).
    normalize_ite:
        Apply standard ITE triple normalization before the operation
        cache (default: the module default, normally on).
    max_cache_size:
        Bound on the operation caches; the least-recently-used half is
        evicted on overflow.  ``None`` disables the bound.
    gc_threshold:
        Run :meth:`collect_garbage` automatically once the node table
        has grown by this many nodes since the last collection (checked
        at public-operation boundaries, never mid-traversal).  ``None``
        (the default) leaves collection fully manual.
    sift_threshold:
        Run :meth:`sift_now` automatically once the node table has
        grown by this many nodes since the last sift (same boundaries
        as ``gc_threshold``).  ``None`` (the default) disables dynamic
        reordering.
    """

    #: Overridden by each kernel subclass.
    kernel_name = "abstract"
    _false_ref = FALSE
    _true_ref = TRUE

    def __new__(cls, *args, kernel: str | None = None, **kwargs):
        if cls is BddManager:
            cls = _kernel_class(_DEFAULT_KERNEL if kernel is None else kernel)
        return object.__new__(cls)

    def __init__(
        self,
        budget: Budget | None = None,
        deadline=None,
        *,
        kernel: str | None = None,
        normalize_ite: bool | None = None,
        max_cache_size: int | None = 1_000_000,
        gc_threshold: int | None = None,
        sift_threshold: int | None = None,
    ):
        self._budget = budget
        self._deadline = deadline
        self._normalize = (
            _DEFAULT_NORMALIZE if normalize_ite is None else bool(normalize_ite)
        )
        if max_cache_size is not None and max_cache_size < 2:
            raise BddError("max_cache_size must be at least 2 or None")
        self._max_cache_size = max_cache_size
        if gc_threshold is not None and gc_threshold < 1:
            raise BddError("gc_threshold must be positive or None")
        self._gc_threshold = gc_threshold
        if sift_threshold is not None and sift_threshold < 1:
            raise BddError("sift_threshold must be positive or None")
        self._sift_threshold = sift_threshold
        self._in_sift = False
        # Variable bookkeeping (shared by both kernels).
        self._var_level: dict[str, int] = {}
        self._level_var: list[str] = []
        self._var_node: dict[str, int] = {}
        # Live-handle registry (GC roots) and counters.
        self._handles: list[weakref.ref] = []
        self._handle_prune_at = 1024
        self._stats = BddStats()
        self._init_store()
        self._last_gc_size = len(self)
        self._last_sift_size = len(self)

    # ------------------------------------------------------------------
    # Kernel primitive surface (implemented by each kernel subclass)
    # ------------------------------------------------------------------
    def _init_store(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _mk_var(self, level: int) -> int:  # pragma: no cover - abstract
        """Create (or find) the node of a fresh variable at ``level``."""
        raise NotImplementedError

    def _mk_sem(self, level: int, lo: int, hi: int) -> int:  # pragma: no cover
        """Canonical node with *semantic* cofactors ``lo``/``hi``."""
        raise NotImplementedError

    def _not(self, u: int) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def _ite(self, f: int, g: int, h: int) -> int:  # pragma: no cover
        raise NotImplementedError

    def _ref_level(self, u: int) -> int:  # pragma: no cover - abstract
        """The variable level ``u`` branches on (TERMINAL_LEVEL for consts)."""
        raise NotImplementedError

    def _ref_cofactors(self, u: int, level: int) -> tuple[int, int]:  # pragma: no cover
        """Semantic (low, high) cofactors of ``u`` with respect to ``level``."""
        raise NotImplementedError

    def _ref_index(self, u: int) -> int:  # pragma: no cover - abstract
        """The structural node index behind reference ``u``."""
        raise NotImplementedError

    def collect_garbage(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def clear_caches(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def __len__(self) -> int:  # pragma: no cover - abstract
        """Current node-table size (terminals included)."""
        raise NotImplementedError

    def _adopt_store(self, other: "BddManager") -> None:  # pragma: no cover
        """Replace this manager's node store with ``other``'s (sifting)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Counters and handle registry
    # ------------------------------------------------------------------
    @property
    def stats(self) -> BddStats:
        """Live performance counters (peak refreshed on read)."""
        stats = self._stats
        size = len(self)
        if size > stats.peak_nodes:
            stats.peak_nodes = size
        return stats

    def _register(self, handle: Function) -> None:
        """Track a live handle as a GC root (called by ``Function``)."""
        handles = self._handles
        handles.append(weakref.ref(handle))
        if len(handles) > self._handle_prune_at:
            self._handles = [ref for ref in handles if ref() is not None]
            self._handle_prune_at = max(1024, 2 * len(self._handles))

    def _live_handles(self) -> list[Function]:
        """Every still-alive Function handle of this manager."""
        live: list[Function] = []
        for ref in self._handles:
            handle = ref()
            if handle is not None:
                live.append(handle)
        return live

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def var(self, name: str) -> Function:
        """Return the function of variable ``name``, creating it if new.

        Variables are ordered by creation time: earlier-created variables
        sit closer to the root of every BDD in this manager.
        """
        if name not in self._var_level:
            level = len(self._level_var)
            self._var_level[name] = level
            self._level_var.append(name)
            self._var_node[name] = self._mk_var(level)
        return Function(self, self._var_node[name])

    def add_vars(self, names: Iterable[str]) -> list[Function]:
        """Declare several variables in order; returns their functions."""
        return [self.var(name) for name in names]

    def has_var(self, name: str) -> bool:
        """True if ``name`` has already been declared in this manager."""
        return name in self._var_level

    def level_of(self, name: str) -> int:
        """The variable's position in the global order (0 = topmost)."""
        try:
            return self._var_level[name]
        except KeyError:
            raise BddError(f"unknown variable {name!r}") from None

    def var_at_level(self, level: int) -> str:
        """Inverse of :meth:`level_of`."""
        try:
            return self._level_var[level]
        except IndexError:
            raise BddError(f"no variable at level {level}") from None

    @property
    def var_names(self) -> list[str]:
        """All declared variables, in order."""
        return list(self._level_var)

    # ------------------------------------------------------------------
    # Constants
    # ------------------------------------------------------------------
    @property
    def false(self) -> Function:
        """The constant-0 function."""
        return Function(self, self._false_ref)

    @property
    def true(self) -> Function:
        """The constant-1 function."""
        return Function(self, self._true_ref)

    def constant(self, value: bool) -> Function:
        """The constant function for ``value``."""
        return self.true if value else self.false

    def _is_const(self, u: int) -> bool:
        """True for the two constant references (both kernels use <= 1)."""
        return u <= 1

    def _check(self, f: Function) -> int:
        """Validate that ``f`` belongs to this manager; return its node."""
        if f.manager is not self:
            raise BddError("function belongs to a different BddManager")
        return f.node

    # ------------------------------------------------------------------
    # Shared cache discipline
    # ------------------------------------------------------------------
    def _evict_ite_cache(self) -> None:
        """Drop the least-recently-used half of the ITE cache.

        Hits re-insert their entry at the young end (see the kernels'
        ``_ite``), so plain insertion order *is* recency order and
        dropping the oldest half evicts the coldest triples.
        """
        cache = self._ite_cache
        drop = max(1, len(cache) // 2)
        for key in list(cache.keys())[:drop]:
            del cache[key]
        self._stats.cache_evictions += 1

    # ------------------------------------------------------------------
    # Public Boolean algebra (used by Function operators)
    # ------------------------------------------------------------------
    def ite(self, f: Function, g: Function, h: Function) -> Function:
        """If-then-else: ``f & g | ~f & h``."""
        self._maybe_gc()
        return Function(self, self._ite(self._check(f), self._check(g), self._check(h)))

    def apply_not(self, f: Function) -> Function:
        """Complement of ``f``."""
        self._maybe_gc()
        return Function(self, self._not(self._check(f)))

    def apply_and(self, f: Function, g: Function) -> Function:
        """Conjunction of ``f`` and ``g``."""
        self._maybe_gc()
        return Function(
            self, self._ite(self._check(f), self._check(g), self._false_ref)
        )

    def apply_or(self, f: Function, g: Function) -> Function:
        """Disjunction of ``f`` and ``g``."""
        self._maybe_gc()
        return Function(
            self, self._ite(self._check(f), self._true_ref, self._check(g))
        )

    def apply_xor(self, f: Function, g: Function) -> Function:
        """Exclusive-or of ``f`` and ``g``."""
        self._maybe_gc()
        gn = self._check(g)
        return Function(self, self._ite(self._check(f), self._not(gn), gn))

    def apply_xnor(self, f: Function, g: Function) -> Function:
        """Equivalence (complement of xor)."""
        self._maybe_gc()
        gn = self._check(g)
        return Function(self, self._ite(self._check(f), gn, self._not(gn)))

    def apply_implies(self, f: Function, g: Function) -> Function:
        """Implication ``f -> g``."""
        self._maybe_gc()
        return Function(
            self, self._ite(self._check(f), self._check(g), self._true_ref)
        )

    def conjoin(self, functions: Iterable[Function]) -> Function:
        """AND of an iterable of functions (TRUE for empty input)."""
        self._maybe_gc()
        false_ref = self._false_ref
        acc = self._true_ref
        for f in functions:
            acc = self._ite(self._check(f), acc, false_ref)
            if acc == false_ref:
                break
        return Function(self, acc)

    def disjoin(self, functions: Iterable[Function]) -> Function:
        """OR of an iterable of functions (FALSE for empty input)."""
        self._maybe_gc()
        true_ref = self._true_ref
        acc = self._false_ref
        for f in functions:
            acc = self._ite(self._check(f), true_ref, acc)
            if acc == true_ref:
                break
        return Function(self, acc)

    # ------------------------------------------------------------------
    # Generic memoized postorder (the iterative-recursion workhorse)
    # ------------------------------------------------------------------
    def _run_postorder(self, root, children, combine, cache) -> int:
        """Evaluate a memoized structural recursion without recursing.

        ``children(key)`` lists the sub-keys a key depends on;
        ``combine(key, values)`` computes its result once every child's
        value is in ``cache``.  Keys may be refs or tuples of refs.
        LIFO scheduling gives the exact evaluation order (and therefore
        the exact cache behaviour) of the recursive original.
        """
        hit = cache.get(root)
        if hit is not None:
            return hit
        stack: list[tuple] = [(root, None)]
        while stack:
            key, kids = stack.pop()
            if key in cache:
                continue
            if kids is None:
                kids = children(key)
                stack.append((key, kids))
                for kid in kids:
                    if kid not in cache:
                        stack.append((kid, None))
                continue
            cache[key] = combine(key, [cache[kid] for kid in kids])
        return cache[root]

    # ------------------------------------------------------------------
    # Restriction, composition, quantification
    # ------------------------------------------------------------------
    def restrict(self, f: Function, assignment: Mapping[str, bool]) -> Function:
        """Cofactor ``f`` by fixing the variables in ``assignment``."""
        self._maybe_gc()
        by_level = {self.level_of(name): bool(val) for name, val in assignment.items()}
        false_ref, true_ref = self._false_ref, self._true_ref
        cache: dict[int, int] = {false_ref: false_ref, true_ref: true_ref}

        def children(u: int) -> tuple:
            level = self._ref_level(u)
            lo, hi = self._ref_cofactors(u, level)
            if level in by_level:
                return (hi if by_level[level] else lo,)
            return (lo, hi)

        def combine(u: int, values: list[int]) -> int:
            level = self._ref_level(u)
            if level in by_level:
                return values[0]
            return self._mk_sem(level, values[0], values[1])

        return Function(
            self, self._run_postorder(self._check(f), children, combine, cache)
        )

    def compose(self, f: Function, name: str, g: Function) -> Function:
        """Substitute function ``g`` for variable ``name`` in ``f``."""
        return self.vector_compose(f, {name: g})

    def vector_compose(self, f: Function, substitution: Mapping[str, Function]) -> Function:
        """Simultaneously substitute functions for variables in ``f``.

        The substitution is simultaneous: substituted results are not
        re-substituted, so ``{x: y, y: x}`` swaps the two variables.
        """
        self._maybe_gc()
        subs_by_level = {
            self.level_of(name): self._check(g) for name, g in substitution.items()
        }
        if not subs_by_level:
            return f
        false_ref, true_ref = self._false_ref, self._true_ref
        cache: dict[int, int] = {false_ref: false_ref, true_ref: true_ref}

        def children(u: int) -> tuple:
            return self._ref_cofactors(u, self._ref_level(u))

        def combine(u: int, values: list[int]) -> int:
            level = self._ref_level(u)
            branch = subs_by_level.get(level)
            if branch is None:
                branch = self._var_node[self._level_var[level]]
            return self._ite(branch, values[1], values[0])

        return Function(
            self, self._run_postorder(self._check(f), children, combine, cache)
        )

    def rename(self, f: Function, mapping: Mapping[str, str]) -> Function:
        """Rename variables (a special case of vector composition)."""
        return self.vector_compose(f, {old: self.var(new) for old, new in mapping.items()})

    def exists(self, names: Iterable[str], f: Function) -> Function:
        """Existential quantification over ``names``."""
        self._maybe_gc()
        return self._quantify(f, names, conj=False)

    def forall(self, names: Iterable[str], f: Function) -> Function:
        """Universal quantification over ``names``."""
        self._maybe_gc()
        return self._quantify(f, names, conj=True)

    def _quantify(self, f: Function, names: Iterable[str], conj: bool) -> Function:
        # No _maybe_gc here: and_exists calls this mid-traversal with raw
        # node refs live on its stack — a remap would corrupt them.
        levels = frozenset(self.level_of(name) for name in names)
        if not levels:
            return f
        false_ref, true_ref = self._false_ref, self._true_ref
        cache: dict[int, int] = {false_ref: false_ref, true_ref: true_ref}

        def children(u: int) -> tuple:
            return self._ref_cofactors(u, self._ref_level(u))

        def combine(u: int, values: list[int]) -> int:
            low, high = values
            level = self._ref_level(u)
            if level in levels:
                if conj:
                    return self._ite(low, high, false_ref)
                return self._ite(low, true_ref, high)
            return self._mk_sem(level, low, high)

        return Function(
            self, self._run_postorder(self._check(f), children, combine, cache)
        )

    def and_exists(self, names: Iterable[str], f: Function, g: Function) -> Function:
        """Relational product ``exists names . f & g`` in one traversal.

        The workhorse of BDD reachability (image computation): fusing the
        conjunction with the quantification avoids building the full
        conjunct, which is often the peak-memory step.
        """
        self._maybe_gc()
        names = [str(name) for name in names]
        levels = frozenset(self.level_of(name) for name in names)
        false_ref, true_ref = self._false_ref, self._true_ref
        cache: dict[tuple[int, int], int] = {}

        def key_of(u: int, v: int) -> tuple[int, int]:
            return (u, v) if u <= v else (v, u)

        def children(key: tuple[int, int]) -> tuple:
            u, v = key
            if self._is_const(u) or self._is_const(v):
                return ()
            level = min(self._ref_level(u), self._ref_level(v))
            u0, u1 = self._ref_cofactors(u, level)
            v0, v1 = self._ref_cofactors(v, level)
            return (key_of(u0, v0), key_of(u1, v1))

        def combine(key: tuple[int, int], values: list[int]) -> int:
            u, v = key
            if u == false_ref or v == false_ref:
                return false_ref
            if u == true_ref and v == true_ref:
                return true_ref
            if u == true_ref or v == true_ref:
                # Reduce to single-operand quantification.
                w = v if u == true_ref else u
                return self._check(
                    self._quantify(Function(self, w), names, conj=False)
                )
            level = min(self._ref_level(u), self._ref_level(v))
            low, high = values
            if level in levels:
                return self._ite(low, true_ref, high)
            return self._mk_sem(level, low, high)

        return Function(
            self,
            self._run_postorder(
                key_of(self._check(f), self._check(g)), children, combine, cache
            ),
        )

    def constrain(self, f: Function, c: Function) -> Function:
        """Coudert–Madre generalized cofactor ``f ↓ c``.

        Agrees with ``f`` everywhere ``c`` holds; off ``c`` it takes
        whatever values shrink the BDD (the image-restrictor used in
        reachability optimizations).  ``c`` must be satisfiable.
        """
        self._maybe_gc()
        fn, cn = self._check(f), self._check(c)
        false_ref, true_ref = self._false_ref, self._true_ref
        if cn == false_ref:
            raise BddError("constrain by the empty care set")
        cache: dict[tuple[int, int], int] = {}

        def children(key: tuple[int, int]) -> tuple:
            u, k = key
            if k == true_ref or self._is_const(u) or u == k:
                return ()
            level = min(self._ref_level(u), self._ref_level(k))
            k0, k1 = self._ref_cofactors(k, level)
            u0, u1 = self._ref_cofactors(u, level)
            if k0 == false_ref:
                return ((u1, k1),)
            if k1 == false_ref:
                return ((u0, k0),)
            return ((u0, k0), (u1, k1))

        def combine(key: tuple[int, int], values: list[int]) -> int:
            u, k = key
            if k == true_ref or self._is_const(u):
                return u
            if u == k:
                return true_ref
            if len(values) == 1:
                return values[0]
            level = min(self._ref_level(u), self._ref_level(k))
            return self._mk_sem(level, values[0], values[1])

        return Function(self, self._run_postorder((fn, cn), children, combine, cache))

    def restrict_care(self, f: Function, c: Function) -> Function:
        """The "restrict" heuristic: like :meth:`constrain` but a care
        variable absent from ``f``'s support never enters the result
        (restrict quantifies it out of the care set instead)."""
        self._maybe_gc()
        fn, cn = self._check(f), self._check(c)
        false_ref, true_ref = self._false_ref, self._true_ref
        if cn == false_ref:
            raise BddError("restrict by the empty care set")
        cache: dict[tuple[int, int], int] = {}

        def children(key: tuple[int, int]) -> tuple:
            u, k = key
            if k == true_ref or self._is_const(u):
                return ()
            u_level, k_level = self._ref_level(u), self._ref_level(k)
            if k_level < u_level:
                # Care splits on a variable f ignores: drop it.
                k0, k1 = self._ref_cofactors(k, k_level)
                return ((u, self._ite(k0, true_ref, k1)),)
            u0, u1 = self._ref_cofactors(u, u_level)
            k0, k1 = self._ref_cofactors(k, u_level)
            if k0 == false_ref:
                return ((u1, k1),)
            if k1 == false_ref:
                return ((u0, k0),)
            return ((u0, k0), (u1, k1))

        def combine(key: tuple[int, int], values: list[int]) -> int:
            u, k = key
            if k == true_ref or self._is_const(u):
                return u
            if len(values) == 1:
                return values[0]
            return self._mk_sem(self._ref_level(u), values[0], values[1])

        return Function(self, self._run_postorder((fn, cn), children, combine, cache))

    # ------------------------------------------------------------------
    # Inspection: support, evaluation, satisfiability, counting
    # ------------------------------------------------------------------
    def support(self, f: Function) -> set[str]:
        """The set of variables ``f`` actually depends on."""
        seen: set[int] = set()
        levels: set[int] = set()
        stack = [self._check(f)]
        while stack:
            u = stack.pop()
            if self._is_const(u):
                continue
            idx = self._ref_index(u)
            if idx in seen:
                continue
            seen.add(idx)
            level = self._ref_level(u)
            levels.add(level)
            lo, hi = self._ref_cofactors(u, level)
            stack.append(lo)
            stack.append(hi)
        return {self._level_var[level] for level in levels}

    def evaluate(self, f: Function, assignment: Mapping[str, bool]) -> bool:
        """Evaluate ``f`` under a (complete-on-support) assignment."""
        u = self._check(f)
        while not self._is_const(u):
            level = self._ref_level(u)
            name = self._level_var[level]
            try:
                branch = assignment[name]
            except KeyError:
                raise BddError(f"assignment missing variable {name!r}") from None
            lo, hi = self._ref_cofactors(u, level)
            u = hi if branch else lo
        return u == self._true_ref

    def pick_one(self, f: Function) -> dict[str, bool] | None:
        """One satisfying assignment over ``f``'s support, or ``None``."""
        u = self._check(f)
        false_ref = self._false_ref
        if u == false_ref:
            return None
        result: dict[str, bool] = {}
        while not self._is_const(u):
            level = self._ref_level(u)
            name = self._level_var[level]
            lo, hi = self._ref_cofactors(u, level)
            if lo != false_ref:
                result[name] = False
                u = lo
            else:
                result[name] = True
                u = hi
        return result

    def sat_iter(self, f: Function, care_vars: Iterable[str] | None = None) -> Iterator[dict[str, bool]]:
        """Iterate all satisfying assignments over ``care_vars``.

        ``care_vars`` defaults to the support of ``f``; variables in
        ``care_vars`` that ``f`` does not depend on are enumerated both
        ways, so the iteration is exhaustive over the named cube space.
        """
        names = sorted(
            self.support(f) if care_vars is None else set(care_vars),
            key=self.level_of,
        )
        order = {name: i for i, name in enumerate(names)}
        node = self._check(f)
        false_ref, true_ref = self._false_ref, self._true_ref

        def walk(u: int, idx: int) -> Iterator[dict[str, bool]]:
            if u == false_ref:
                return
            if idx == len(names):
                if u == true_ref:
                    yield {}
                return
            name = names[idx]
            level = self._var_level[name]
            u_level = TERMINAL_LEVEL if self._is_const(u) else self._ref_level(u)
            if u_level == level:
                low, high = self._ref_cofactors(u, level)
            elif u_level < level:
                # f depends on a variable outside care_vars: refuse.
                raise BddError(
                    f"function depends on {self._level_var[u_level]!r}, "
                    "which is not in care_vars"
                )
            else:
                low = high = u
            for value, child in ((False, low), (True, high)):
                for tail in walk(child, idx + 1):
                    tail[name] = value
                    yield tail

        # Guard: support must be within care_vars.
        extra = self.support(f) - set(names)
        if extra:
            raise BddError(f"function depends on {sorted(extra)} outside care_vars")
        for assignment in walk(node, 0):
            yield dict(sorted(assignment.items(), key=lambda kv: order[kv[0]]))

    def sat_count(self, f: Function, nvars: int | None = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables.

        ``nvars`` defaults to the size of ``f``'s support.
        """
        u = self._check(f)
        false_ref, true_ref = self._false_ref, self._true_ref
        support_levels = sorted(
            self._var_level[name] for name in self.support(Function(self, u))
        )
        if nvars is None:
            nvars = len(support_levels)
        if nvars < len(support_levels):
            raise BddError("nvars smaller than the function's support")
        if self._is_const(u):
            return (1 if u == true_ref else 0) << nvars
        # Count over the support only, then scale by free variables.
        index_of = {level: i for i, level in enumerate(support_levels)}
        total = len(support_levels)
        cache: dict[int, int] = {}

        def count_child(child: int, position: int) -> int:
            """Assignments of support vars strictly below ``position``."""
            if child == false_ref:
                return 0
            if child == true_ref:
                return 1 << (total - position - 1)
            return cache[child] << (
                index_of[self._ref_level(child)] - position - 1
            )

        def children(node: int) -> tuple:
            return tuple(
                child
                for child in self._ref_cofactors(node, self._ref_level(node))
                if not self._is_const(child)
            )

        def combine(node: int, _values: list[int]) -> int:
            level = self._ref_level(node)
            position = index_of[level]
            lo, hi = self._ref_cofactors(node, level)
            return count_child(lo, position) + count_child(hi, position)

        self._run_postorder(u, children, combine, cache)
        root_count = cache[u] << index_of[self._ref_level(u)]
        return root_count << (nvars - total)

    def node_count(self, f: Function) -> int:
        """Number of structural nodes in ``f``'s DAG (terminals included).

        With complement edges (the array kernel) a function and its
        complement share every node and there is a single terminal, so
        counts are smaller than the object kernel's for the same
        function; within one kernel the count is the usual BDD size.
        """
        return self.dag_size([Function(self, self._check(f))])

    def dag_size(self, functions: Iterable[Function]) -> int:
        """Distinct structural nodes over a *set* of functions.

        Shared subgraphs are counted once; terminals are included.
        This is the combined-size objective the ordering search
        (:mod:`repro.bdd.reorder`) minimizes.
        """
        seen: set[int] = set()
        stack = [self._check(f) for f in functions]
        while stack:
            u = stack.pop()
            idx = self._ref_index(u)
            if idx in seen:
                continue
            seen.add(idx)
            if not self._is_const(u):
                level = self._ref_level(u)
                lo, hi = self._ref_cofactors(u, level)
                stack.append(lo)
                stack.append(hi)
        return len(seen)

    # ------------------------------------------------------------------
    # Maintenance: GC trigger and dynamic sifting hooks
    # ------------------------------------------------------------------
    def _maybe_gc(self) -> None:
        """Run automatic maintenance if the table grew past a threshold.

        Called only at public-operation boundaries: mid-traversal state
        (raw node refs on explicit stacks) must never see a remap.
        Checks the GC threshold first (collection is cheaper), then the
        dynamic-sifting threshold.
        """
        size = len(self)
        if (
            self._gc_threshold is not None
            and size - self._last_gc_size >= self._gc_threshold
        ):
            self.collect_garbage()
            size = len(self)
        if (
            self._sift_threshold is not None
            and not self._in_sift
            and size - self._last_sift_size >= self._sift_threshold
        ):
            self.sift_now(max_passes=1)

    def sift_now(self, max_passes: int = 1) -> bool:
        """Dynamically reorder this manager's variables *in place*.

        Sifts the live functions (every still-alive handle) to a
        smaller combined order, rebuilds the node store under the new
        order, and re-points every live handle — callers keep their
        ``Function`` objects and semantics, only levels (and sizes)
        change.  Trial rebuilds are charged to the manager's budget and
        poll its deadline, so a sift inside a resource-limited sweep is
        interruptible; arm ``sift_threshold=N`` at construction to
        trigger this automatically mid-sweep.

        Returns ``True`` when a reorder was applied, ``False`` when
        there was nothing to sift (or no improvement was found).
        """
        if self._in_sift:
            return False
        from repro.bdd.reorder import sift_order
        from repro.bdd.transfer import transfer

        self._in_sift = True
        try:
            handles = self._live_handles()
            funcs = [h for h in handles if not self._is_const(h.node)]
            # Dedupe by ref: sifting cost scales with the function set.
            by_ref: dict[int, Function] = {}
            for fn in funcs:
                by_ref.setdefault(fn.node, fn)
            roots = list(by_ref.values())
            self._last_sift_size = len(self)
            if not roots:
                return False
            before = self.dag_size(roots)
            order, after = sift_order(
                roots,
                max_passes=max_passes,
                budget=self._budget,
                deadline=self._deadline,
            )
            self._stats.sift_runs += 1
            if after >= before:
                return False
            # Preserve every declared variable: sifted support first,
            # then the untouched remainder in its old relative order.
            placed = set(order)
            full_order = list(order) + [
                name for name in self._level_var if name not in placed
            ]
            scratch = type(self)(
                budget=self._budget,
                deadline=self._deadline,
                normalize_ite=self._normalize,
                max_cache_size=self._max_cache_size,
            )
            scratch.add_vars(full_order)
            moved = [transfer(h, scratch) for h in handles]
            # Adopt the scratch store and re-point the live handles.
            self._adopt_store(scratch)
            self._var_level = dict(scratch._var_level)
            self._level_var = list(scratch._level_var)
            self._var_node = dict(scratch._var_node)
            for handle, twin in zip(handles, moved):
                handle.node = twin.node
            self._handles = [weakref.ref(h) for h in handles]
            self._handle_prune_at = max(1024, 2 * len(self._handles))
            self._last_gc_size = len(self)
            self._last_sift_size = len(self)
            # The rebuild's allocation work is real work of this manager.
            rebuilt = scratch._stats
            self._stats.nodes_created += rebuilt.nodes_created
            self._stats.ite_calls += rebuilt.ite_calls
            self._stats.cache_lookups += rebuilt.cache_lookups
            self._stats.cache_hits += rebuilt.cache_hits
            return True
        finally:
            self._in_sift = False

    def to_dot(self, f: Function, name: str = "bdd") -> str:
        """Graphviz dot text for ``f`` (debugging / documentation aid).

        Rendered in *semantic* form: complement edges are expanded, so
        a node whose both phases are referenced appears once per phase.
        """
        lines = [f"digraph {name} {{", '  node [shape=circle];']
        lines.append(f'  n{self._false_ref} [shape=box, label="0"];')
        lines.append(f'  n{self._true_ref} [shape=box, label="1"];')
        seen: set[int] = set()
        stack = [self._check(f)]
        while stack:
            u = stack.pop()
            if self._is_const(u) or u in seen:
                continue
            seen.add(u)
            level = self._ref_level(u)
            label = self._level_var[level]
            lo, hi = self._ref_cofactors(u, level)
            lines.append(f'  n{u} [label="{label}"];')
            lines.append(f"  n{u} -> n{lo} [style=dashed];")
            lines.append(f"  n{u} -> n{hi};")
            stack.append(lo)
            stack.append(hi)
        lines.append("}")
        return "\n".join(lines)
