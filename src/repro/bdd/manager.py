"""The BDD manager: node storage, unique table, and core operations.

Implementation notes
--------------------
* Nodes are integers indexing parallel lists (``_level``, ``_low``,
  ``_high``).  Node ``0`` is the constant FALSE, node ``1`` the constant
  TRUE; both live at a sentinel level below every variable.
* No complement edges: simpler invariants, and profiling on our
  workloads showed the canonical-NOT cache recovers most of the win.
* All Boolean operations are routed through a memoized Shannon-style
  ``ite`` (if-then-else) with standard triple normalisation.
* The manager charges an optional :class:`repro.errors.Budget` one unit
  per *created* node, so runaway analyses fail deterministically with
  :class:`repro.errors.ResourceBudgetExceeded` (the paper's "memory
  out") instead of thrashing the host.
"""

from __future__ import annotations

import sys
from collections.abc import Iterable, Iterator, Mapping

from repro.errors import BddError, Budget
from repro.bdd.function import Function

# The memoized recursions (_ite, _not, quantify, ...) descend one level
# per variable in a function's support; wide-support conjunctions (e.g.
# transition relations of large machines) exceed CPython's default 1000
# frames long before they exceed memory.
sys.setrecursionlimit(max(sys.getrecursionlimit(), 20_000))

#: Sentinel level for the two terminal nodes; compares *greater* than any
#: variable level so terminals sort below all variables in the order.
TERMINAL_LEVEL = 1 << 60

FALSE = 0
TRUE = 1


class BddManager:
    """Owns a shared node table and provides Boolean-function algebra.

    Parameters
    ----------
    budget:
        Optional node-creation budget.  When exhausted, operations raise
        :class:`~repro.errors.ResourceBudgetExceeded`.
    deadline:
        Optional cooperative :class:`repro.resilience.Deadline` polled
        on every node creation (the manager's hot loop), so a
        wall-clock limit interrupts even one giant ``ite`` instead of
        waiting for the caller's next coarse-grained check.
    """

    def __init__(self, budget: Budget | None = None, deadline=None):
        self._budget = budget
        self._deadline = deadline
        # Parallel node arrays; slots 0/1 are the terminals.
        self._level: list[int] = [TERMINAL_LEVEL, TERMINAL_LEVEL]
        self._low: list[int] = [FALSE, TRUE]
        self._high: list[int] = [FALSE, TRUE]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._not_cache: dict[int, int] = {}
        # Variable bookkeeping.
        self._var_level: dict[str, int] = {}
        self._level_var: list[str] = []
        self._var_node: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def var(self, name: str) -> Function:
        """Return the function of variable ``name``, creating it if new.

        Variables are ordered by creation time: earlier-created variables
        sit closer to the root of every BDD in this manager.
        """
        if name not in self._var_level:
            level = len(self._level_var)
            self._var_level[name] = level
            self._level_var.append(name)
            self._var_node[name] = self._mk(level, FALSE, TRUE)
        return Function(self, self._var_node[name])

    def add_vars(self, names: Iterable[str]) -> list[Function]:
        """Declare several variables in order; returns their functions."""
        return [self.var(name) for name in names]

    def has_var(self, name: str) -> bool:
        """True if ``name`` has already been declared in this manager."""
        return name in self._var_level

    def level_of(self, name: str) -> int:
        """The variable's position in the global order (0 = topmost)."""
        try:
            return self._var_level[name]
        except KeyError:
            raise BddError(f"unknown variable {name!r}") from None

    def var_at_level(self, level: int) -> str:
        """Inverse of :meth:`level_of`."""
        try:
            return self._level_var[level]
        except IndexError:
            raise BddError(f"no variable at level {level}") from None

    @property
    def var_names(self) -> list[str]:
        """All declared variables, in order."""
        return list(self._level_var)

    # ------------------------------------------------------------------
    # Constants and sizes
    # ------------------------------------------------------------------
    @property
    def false(self) -> Function:
        """The constant-0 function."""
        return Function(self, FALSE)

    @property
    def true(self) -> Function:
        """The constant-1 function."""
        return Function(self, TRUE)

    def constant(self, value: bool) -> Function:
        """The constant function for ``value``."""
        return self.true if value else self.false

    def __len__(self) -> int:
        """Total number of nodes ever created (including terminals)."""
        return len(self._level)

    # ------------------------------------------------------------------
    # Core node construction
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the canonical node ``(level, low, high)``."""
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            if self._budget is not None:
                self._budget.charge()
            if self._deadline is not None:
                self._deadline.check("bdd node creation")
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def _check(self, f: Function) -> int:
        """Validate that ``f`` belongs to this manager; return its node."""
        if f.manager is not self:
            raise BddError("function belongs to a different BddManager")
        return f.node

    # ------------------------------------------------------------------
    # NOT / ITE — the core memoized recursions
    # ------------------------------------------------------------------
    def _not(self, u: int) -> int:
        if u == FALSE:
            return TRUE
        if u == TRUE:
            return FALSE
        cached = self._not_cache.get(u)
        if cached is not None:
            return cached
        result = self._mk(self._level[u], self._not(self._low[u]), self._not(self._high[u]))
        self._not_cache[u] = result
        self._not_cache[result] = u
        return result

    def _ite(self, f: int, g: int, h: int) -> int:
        # Terminal shortcuts.
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        if g == FALSE and h == TRUE:
            return self._not(f)
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level[f], self._level[g], self._level[h])
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        result = self._mk(level, self._ite(f0, g0, h0), self._ite(f1, g1, h1))
        self._ite_cache[key] = result
        return result

    def _cofactors(self, u: int, level: int) -> tuple[int, int]:
        """(low, high) cofactors of ``u`` with respect to ``level``."""
        if self._level[u] == level:
            return self._low[u], self._high[u]
        return u, u

    # ------------------------------------------------------------------
    # Public Boolean algebra (used by Function operators)
    # ------------------------------------------------------------------
    def ite(self, f: Function, g: Function, h: Function) -> Function:
        """If-then-else: ``f & g | ~f & h``."""
        return Function(self, self._ite(self._check(f), self._check(g), self._check(h)))

    def apply_not(self, f: Function) -> Function:
        """Complement of ``f``."""
        return Function(self, self._not(self._check(f)))

    def apply_and(self, f: Function, g: Function) -> Function:
        """Conjunction of ``f`` and ``g``."""
        return Function(self, self._ite(self._check(f), self._check(g), FALSE))

    def apply_or(self, f: Function, g: Function) -> Function:
        """Disjunction of ``f`` and ``g``."""
        return Function(self, self._ite(self._check(f), TRUE, self._check(g)))

    def apply_xor(self, f: Function, g: Function) -> Function:
        """Exclusive-or of ``f`` and ``g``."""
        gn = self._check(g)
        return Function(self, self._ite(self._check(f), self._not(gn), gn))

    def apply_xnor(self, f: Function, g: Function) -> Function:
        """Equivalence (complement of xor)."""
        gn = self._check(g)
        return Function(self, self._ite(self._check(f), gn, self._not(gn)))

    def apply_implies(self, f: Function, g: Function) -> Function:
        """Implication ``f -> g``."""
        return Function(self, self._ite(self._check(f), self._check(g), TRUE))

    def conjoin(self, functions: Iterable[Function]) -> Function:
        """AND of an iterable of functions (TRUE for empty input)."""
        acc = TRUE
        for f in functions:
            acc = self._ite(self._check(f), acc, FALSE)
            if acc == FALSE:
                break
        return Function(self, acc)

    def disjoin(self, functions: Iterable[Function]) -> Function:
        """OR of an iterable of functions (FALSE for empty input)."""
        acc = FALSE
        for f in functions:
            acc = self._ite(self._check(f), TRUE, acc)
            if acc == TRUE:
                break
        return Function(self, acc)

    # ------------------------------------------------------------------
    # Restriction, composition, quantification
    # ------------------------------------------------------------------
    def restrict(self, f: Function, assignment: Mapping[str, bool]) -> Function:
        """Cofactor ``f`` by fixing the variables in ``assignment``."""
        by_level = {self.level_of(name): bool(val) for name, val in assignment.items()}
        cache: dict[int, int] = {}

        def rec(u: int) -> int:
            if u <= TRUE:
                return u
            hit = cache.get(u)
            if hit is not None:
                return hit
            level = self._level[u]
            if level in by_level:
                result = rec(self._high[u] if by_level[level] else self._low[u])
            else:
                result = self._mk(level, rec(self._low[u]), rec(self._high[u]))
            cache[u] = result
            return result

        return Function(self, rec(self._check(f)))

    def compose(self, f: Function, name: str, g: Function) -> Function:
        """Substitute function ``g`` for variable ``name`` in ``f``."""
        return self.vector_compose(f, {name: g})

    def vector_compose(self, f: Function, substitution: Mapping[str, Function]) -> Function:
        """Simultaneously substitute functions for variables in ``f``.

        The substitution is simultaneous: substituted results are not
        re-substituted, so ``{x: y, y: x}`` swaps the two variables.
        """
        subs_by_level = {
            self.level_of(name): self._check(g) for name, g in substitution.items()
        }
        if not subs_by_level:
            return f
        cache: dict[int, int] = {}

        def rec(u: int) -> int:
            if u <= TRUE:
                return u
            hit = cache.get(u)
            if hit is not None:
                return hit
            level = self._level[u]
            low = rec(self._low[u])
            high = rec(self._high[u])
            branch = subs_by_level.get(level)
            if branch is None:
                branch = self._var_node[self._level_var[level]]
            result = self._ite(branch, high, low)
            cache[u] = result
            return result

        return Function(self, rec(self._check(f)))

    def rename(self, f: Function, mapping: Mapping[str, str]) -> Function:
        """Rename variables (a special case of vector composition)."""
        return self.vector_compose(f, {old: self.var(new) for old, new in mapping.items()})

    def exists(self, names: Iterable[str], f: Function) -> Function:
        """Existential quantification over ``names``."""
        return self._quantify(f, names, conj=False)

    def forall(self, names: Iterable[str], f: Function) -> Function:
        """Universal quantification over ``names``."""
        return self._quantify(f, names, conj=True)

    def _quantify(self, f: Function, names: Iterable[str], conj: bool) -> Function:
        levels = frozenset(self.level_of(name) for name in names)
        if not levels:
            return f
        cache: dict[int, int] = {}

        def rec(u: int) -> int:
            if u <= TRUE:
                return u
            hit = cache.get(u)
            if hit is not None:
                return hit
            level = self._level[u]
            low = rec(self._low[u])
            high = rec(self._high[u])
            if level in levels:
                if conj:
                    result = self._ite(low, high, FALSE)
                else:
                    result = self._ite(low, TRUE, high)
            else:
                result = self._mk(level, low, high)
            cache[u] = result
            return result

        return Function(self, rec(self._check(f)))

    def and_exists(self, names: Iterable[str], f: Function, g: Function) -> Function:
        """Relational product ``exists names . f & g`` in one recursion.

        The workhorse of BDD reachability (image computation): fusing the
        conjunction with the quantification avoids building the full
        conjunct, which is often the peak-memory step.
        """
        levels = frozenset(self.level_of(name) for name in names)
        cache: dict[tuple[int, int], int] = {}

        def rec(u: int, v: int) -> int:
            if u == FALSE or v == FALSE:
                return FALSE
            if u == TRUE and v == TRUE:
                return TRUE
            if u == TRUE or v == TRUE:
                # Reduce to single-operand quantification.
                w = v if u == TRUE else u
                return self._check(self._quantify(Function(self, w),
                                                  (self._level_var[l] for l in levels),
                                                  conj=False))
            key = (u, v) if u <= v else (v, u)
            hit = cache.get(key)
            if hit is not None:
                return hit
            level = min(self._level[u], self._level[v])
            u0, u1 = self._cofactors(u, level)
            v0, v1 = self._cofactors(v, level)
            low = rec(u0, v0)
            if level in levels and low == TRUE:
                result = TRUE
            else:
                high = rec(u1, v1)
                if level in levels:
                    result = self._ite(low, TRUE, high)
                else:
                    result = self._mk(level, low, high)
            cache[key] = result
            return result

        return Function(self, rec(self._check(f), self._check(g)))

    def constrain(self, f: Function, c: Function) -> Function:
        """Coudert–Madre generalized cofactor ``f ↓ c``.

        Agrees with ``f`` everywhere ``c`` holds; off ``c`` it takes
        whatever values shrink the BDD (the image-restrictor used in
        reachability optimizations).  ``c`` must be satisfiable.
        """
        fn, cn = self._check(f), self._check(c)
        if cn == FALSE:
            raise BddError("constrain by the empty care set")
        cache: dict[tuple[int, int], int] = {}

        def rec(u: int, k: int) -> int:
            if k == TRUE or u <= TRUE:
                return u
            if u == k:
                return TRUE
            key = (u, k)
            hit = cache.get(key)
            if hit is not None:
                return hit
            level = min(self._level[u], self._level[k])
            k0, k1 = self._cofactors(k, level)
            u0, u1 = self._cofactors(u, level)
            if k0 == FALSE:
                result = rec(u1, k1)
            elif k1 == FALSE:
                result = rec(u0, k0)
            else:
                result = self._mk(level, rec(u0, k0), rec(u1, k1))
            cache[key] = result
            return result

        return Function(self, rec(fn, cn))

    def restrict_care(self, f: Function, c: Function) -> Function:
        """The "restrict" heuristic: like :meth:`constrain` but a care
        variable absent from ``f``'s support never enters the result
        (restrict quantifies it out of the care set instead)."""
        fn, cn = self._check(f), self._check(c)
        if cn == FALSE:
            raise BddError("restrict by the empty care set")
        cache: dict[tuple[int, int], int] = {}

        def rec(u: int, k: int) -> int:
            if k == TRUE or u <= TRUE:
                return u
            key = (u, k)
            hit = cache.get(key)
            if hit is not None:
                return hit
            u_level, k_level = self._level[u], self._level[k]
            if k_level < u_level:
                # Care splits on a variable f ignores: drop it.
                result = rec(u, self._ite(self._low[k], TRUE, self._high[k]))
            else:
                level = u_level
                k0, k1 = self._cofactors(k, level)
                if k0 == FALSE:
                    result = rec(self._high[u], k1)
                elif k1 == FALSE:
                    result = rec(self._low[u], k0)
                else:
                    result = self._mk(
                        level, rec(self._low[u], k0), rec(self._high[u], k1)
                    )
            cache[key] = result
            return result

        return Function(self, rec(fn, cn))

    # ------------------------------------------------------------------
    # Inspection: support, evaluation, satisfiability, counting
    # ------------------------------------------------------------------
    def support(self, f: Function) -> set[str]:
        """The set of variables ``f`` actually depends on."""
        seen: set[int] = set()
        levels: set[int] = set()
        stack = [self._check(f)]
        while stack:
            u = stack.pop()
            if u <= TRUE or u in seen:
                continue
            seen.add(u)
            levels.add(self._level[u])
            stack.append(self._low[u])
            stack.append(self._high[u])
        return {self._level_var[level] for level in levels}

    def evaluate(self, f: Function, assignment: Mapping[str, bool]) -> bool:
        """Evaluate ``f`` under a (complete-on-support) assignment."""
        u = self._check(f)
        while u > TRUE:
            name = self._level_var[self._level[u]]
            try:
                branch = assignment[name]
            except KeyError:
                raise BddError(f"assignment missing variable {name!r}") from None
            u = self._high[u] if branch else self._low[u]
        return u == TRUE

    def pick_one(self, f: Function) -> dict[str, bool] | None:
        """One satisfying assignment over ``f``'s support, or ``None``."""
        u = self._check(f)
        if u == FALSE:
            return None
        result: dict[str, bool] = {}
        while u > TRUE:
            name = self._level_var[self._level[u]]
            if self._low[u] != FALSE:
                result[name] = False
                u = self._low[u]
            else:
                result[name] = True
                u = self._high[u]
        return result

    def sat_iter(self, f: Function, care_vars: Iterable[str] | None = None) -> Iterator[dict[str, bool]]:
        """Iterate all satisfying assignments over ``care_vars``.

        ``care_vars`` defaults to the support of ``f``; variables in
        ``care_vars`` that ``f`` does not depend on are enumerated both
        ways, so the iteration is exhaustive over the named cube space.
        """
        names = sorted(
            self.support(f) if care_vars is None else set(care_vars),
            key=self.level_of,
        )
        order = {name: i for i, name in enumerate(names)}
        node = self._check(f)

        def rec(u: int, idx: int) -> Iterator[dict[str, bool]]:
            if u == FALSE:
                return
            if idx == len(names):
                if u == TRUE:
                    yield {}
                return
            name = names[idx]
            level = self._var_level[name]
            if u > TRUE and self._level[u] == level:
                low, high = self._low[u], self._high[u]
            elif u > TRUE and self._level[u] < level:
                # f depends on a variable outside care_vars: refuse.
                raise BddError(
                    f"function depends on {self._level_var[self._level[u]]!r}, "
                    "which is not in care_vars"
                )
            else:
                low = high = u
            for value, child in ((False, low), (True, high)):
                for tail in rec(child, idx + 1):
                    tail[name] = value
                    yield tail

        # Guard: support must be within care_vars.
        extra = self.support(f) - set(names)
        if extra:
            raise BddError(f"function depends on {sorted(extra)} outside care_vars")
        for assignment in rec(node, 0):
            yield dict(sorted(assignment.items(), key=lambda kv: order[kv[0]]))

    def sat_count(self, f: Function, nvars: int | None = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables.

        ``nvars`` defaults to the size of ``f``'s support.
        """
        u = self._check(f)
        support_levels = sorted(
            self._var_level[name] for name in self.support(Function(self, u))
        )
        if nvars is None:
            nvars = len(support_levels)
        if nvars < len(support_levels):
            raise BddError("nvars smaller than the function's support")
        cache: dict[int, int] = {}
        # Count over the support only, then scale by free variables.
        index_of = {level: i for i, level in enumerate(support_levels)}

        def rec(u: int, depth: int) -> int:
            """Assignments of support vars from position ``depth`` on."""
            if u == FALSE:
                return 0
            if u == TRUE:
                return 1 << (len(support_levels) - depth)
            position = index_of[self._level[u]]
            hit = cache.get(u)
            if hit is None:
                hit = rec(self._low[u], position + 1) + rec(self._high[u], position + 1)
                cache[u] = hit
            return hit << (position - depth)

        return rec(u, 0) << (nvars - len(support_levels))

    def node_count(self, f: Function) -> int:
        """Number of nodes in ``f``'s DAG (terminals included)."""
        seen: set[int] = set()
        stack = [self._check(f)]
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            if u > TRUE:
                stack.append(self._low[u])
                stack.append(self._high[u])
        return len(seen)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop operation caches (keeps the node table and variables)."""
        self._ite_cache.clear()
        self._not_cache.clear()

    def to_dot(self, f: Function, name: str = "bdd") -> str:
        """Graphviz dot text for ``f`` (debugging / documentation aid)."""
        lines = [f"digraph {name} {{", '  node [shape=circle];']
        lines.append('  n0 [shape=box, label="0"];')
        lines.append('  n1 [shape=box, label="1"];')
        seen: set[int] = set()
        stack = [self._check(f)]
        while stack:
            u = stack.pop()
            if u <= TRUE or u in seen:
                continue
            seen.add(u)
            label = self._level_var[self._level[u]]
            lines.append(f'  n{u} [label="{label}"];')
            lines.append(f"  n{u} -> n{self._low[u]} [style=dashed];")
            lines.append(f"  n{u} -> n{self._high[u]};")
            stack.append(self._low[u])
            stack.append(self._high[u])
        lines.append("}")
        return "\n".join(lines)
