"""The BDD manager: node storage, unique table, and core operations.

Implementation notes
--------------------
* Nodes are integers indexing parallel lists (``_level``, ``_low``,
  ``_high``).  Node ``0`` is the constant FALSE, node ``1`` the constant
  TRUE; both live at a sentinel level below every variable.
* No complement edges: simpler invariants, and profiling on our
  workloads showed the canonical-NOT cache recovers most of the win.
* All Boolean operations are routed through a memoized Shannon-style
  ``ite`` (if-then-else) with standard triple normalisation (see
  :meth:`BddManager._normalize_triple`): commuted and complemented
  forms of the same subproblem share one operation-cache entry.
* Every traversal runs on an **explicit stack** — no Python recursion,
  no ``sys.setrecursionlimit`` mutation.  A chain BDD tens of
  thousands of levels deep builds and negates without blowing the
  interpreter stack.
* The ITE operation cache is **bounded** (``max_cache_size``): on
  overflow the oldest half is evicted, so a long sweep cannot grow the
  cache without limit.
* Dead nodes are reclaimed by mark-and-sweep
  (:meth:`BddManager.collect_garbage`): live roots are the still-alive
  :class:`~repro.bdd.function.Function` handles (tracked by weakref)
  plus every declared variable.  The node table is compacted in place,
  handles are re-pointed, and operation caches are flushed.  Pass
  ``gc_threshold`` to trigger collection automatically once the table
  grows by that many nodes.
* The manager charges an optional :class:`repro.errors.Budget` one unit
  per *created* node, so runaway analyses fail deterministically with
  :class:`repro.errors.ResourceBudgetExceeded` (the paper's "memory
  out") instead of thrashing the host.  Nodes recreated after a GC
  pass charge again: the budget meters allocation work, not the live
  set.

Performance counters (:class:`repro.bdd.stats.BddStats`) are always on
and exposed as :attr:`BddManager.stats`.
"""

from __future__ import annotations

import weakref
from collections.abc import Iterable, Iterator, Mapping

from repro.errors import BddError, Budget
from repro.bdd.function import Function
from repro.bdd.stats import BddStats

#: Sentinel level for the two terminal nodes; compares *greater* than any
#: variable level so terminals sort below all variables in the order.
TERMINAL_LEVEL = 1 << 60

FALSE = 0
TRUE = 1

#: Default for managers constructed with ``normalize_ite=None``.  The
#: benchmark harness flips this to measure the pre-normalization
#: baseline in the same process (see ``benchmarks/perf_baseline.py``).
_DEFAULT_NORMALIZE = True


def set_default_ite_normalization(enabled: bool) -> bool:
    """Set the default ITE-normalization mode for *new* managers.

    Returns the previous default so callers can restore it.  Existing
    managers are unaffected.  Normalization never changes results —
    only which operation-cache entries equivalent triples share — so
    this knob exists purely to benchmark the cache discipline itself.
    """
    global _DEFAULT_NORMALIZE
    previous = _DEFAULT_NORMALIZE
    _DEFAULT_NORMALIZE = bool(enabled)
    return previous


class BddManager:
    """Owns a shared node table and provides Boolean-function algebra.

    Parameters
    ----------
    budget:
        Optional node-creation budget.  When exhausted, operations raise
        :class:`~repro.errors.ResourceBudgetExceeded`.
    deadline:
        Optional cooperative :class:`repro.resilience.Deadline` polled
        on every node creation (the manager's hot loop), so a
        wall-clock limit interrupts even one giant ``ite`` instead of
        waiting for the caller's next coarse-grained check.
    normalize_ite:
        Apply standard ITE triple normalization before the operation
        cache (default: the module default, normally on).
    max_cache_size:
        Bound on the ITE operation cache; the oldest half is evicted on
        overflow.  ``None`` disables the bound.
    gc_threshold:
        Run :meth:`collect_garbage` automatically once the node table
        has grown by this many nodes since the last collection (checked
        at public-operation boundaries, never mid-traversal).  ``None``
        (the default) leaves collection fully manual.
    """

    def __init__(
        self,
        budget: Budget | None = None,
        deadline=None,
        *,
        normalize_ite: bool | None = None,
        max_cache_size: int | None = 1_000_000,
        gc_threshold: int | None = None,
    ):
        self._budget = budget
        self._deadline = deadline
        self._normalize = (
            _DEFAULT_NORMALIZE if normalize_ite is None else bool(normalize_ite)
        )
        if max_cache_size is not None and max_cache_size < 2:
            raise BddError("max_cache_size must be at least 2 or None")
        self._max_cache_size = max_cache_size
        if gc_threshold is not None and gc_threshold < 1:
            raise BddError("gc_threshold must be positive or None")
        self._gc_threshold = gc_threshold
        # Parallel node arrays; slots 0/1 are the terminals.
        self._level: list[int] = [TERMINAL_LEVEL, TERMINAL_LEVEL]
        self._low: list[int] = [FALSE, TRUE]
        self._high: list[int] = [FALSE, TRUE]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._not_cache: dict[int, int] = {}
        # Variable bookkeeping.
        self._var_level: dict[str, int] = {}
        self._level_var: list[str] = []
        self._var_node: dict[str, int] = {}
        # Live-handle registry (GC roots) and counters.
        self._handles: list[weakref.ref] = []
        self._handle_prune_at = 1024
        self._last_gc_size = 2
        self._stats = BddStats()

    # ------------------------------------------------------------------
    # Counters and handle registry
    # ------------------------------------------------------------------
    @property
    def stats(self) -> BddStats:
        """Live performance counters (peak refreshed on read)."""
        stats = self._stats
        if len(self._level) > stats.peak_nodes:
            stats.peak_nodes = len(self._level)
        return stats

    def _register(self, handle: Function) -> None:
        """Track a live handle as a GC root (called by ``Function``)."""
        handles = self._handles
        handles.append(weakref.ref(handle))
        if len(handles) > self._handle_prune_at:
            self._handles = [ref for ref in handles if ref() is not None]
            self._handle_prune_at = max(1024, 2 * len(self._handles))

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def var(self, name: str) -> Function:
        """Return the function of variable ``name``, creating it if new.

        Variables are ordered by creation time: earlier-created variables
        sit closer to the root of every BDD in this manager.
        """
        if name not in self._var_level:
            level = len(self._level_var)
            self._var_level[name] = level
            self._level_var.append(name)
            self._var_node[name] = self._mk(level, FALSE, TRUE)
        return Function(self, self._var_node[name])

    def add_vars(self, names: Iterable[str]) -> list[Function]:
        """Declare several variables in order; returns their functions."""
        return [self.var(name) for name in names]

    def has_var(self, name: str) -> bool:
        """True if ``name`` has already been declared in this manager."""
        return name in self._var_level

    def level_of(self, name: str) -> int:
        """The variable's position in the global order (0 = topmost)."""
        try:
            return self._var_level[name]
        except KeyError:
            raise BddError(f"unknown variable {name!r}") from None

    def var_at_level(self, level: int) -> str:
        """Inverse of :meth:`level_of`."""
        try:
            return self._level_var[level]
        except IndexError:
            raise BddError(f"no variable at level {level}") from None

    @property
    def var_names(self) -> list[str]:
        """All declared variables, in order."""
        return list(self._level_var)

    # ------------------------------------------------------------------
    # Constants and sizes
    # ------------------------------------------------------------------
    @property
    def false(self) -> Function:
        """The constant-0 function."""
        return Function(self, FALSE)

    @property
    def true(self) -> Function:
        """The constant-1 function."""
        return Function(self, TRUE)

    def constant(self, value: bool) -> Function:
        """The constant function for ``value``."""
        return self.true if value else self.false

    def __len__(self) -> int:
        """Current node-table size (terminals included).

        Grows with every created node and shrinks when
        :meth:`collect_garbage` compacts the table.
        """
        return len(self._level)

    # ------------------------------------------------------------------
    # Core node construction
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the canonical node ``(level, low, high)``."""
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            if self._budget is not None:
                self._budget.charge()
            if self._deadline is not None:
                self._deadline.check("bdd node creation")
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
            self._stats.nodes_created += 1
        return node

    def _check(self, f: Function) -> int:
        """Validate that ``f`` belongs to this manager; return its node."""
        if f.manager is not self:
            raise BddError("function belongs to a different BddManager")
        return f.node

    # ------------------------------------------------------------------
    # NOT / ITE — the core memoized operations (explicit stacks)
    # ------------------------------------------------------------------
    def _not(self, u: int) -> int:
        if u <= TRUE:
            return TRUE - u
        cache = self._not_cache
        cached = cache.get(u)
        if cached is not None:
            return cached
        low_arr, high_arr = self._low, self._high
        stack: list[tuple[int, bool]] = [(u, False)]
        while stack:
            node, ready = stack.pop()
            if node in cache:
                continue
            low, high = low_arr[node], high_arr[node]
            if not ready:
                stack.append((node, True))
                if low > TRUE and low not in cache:
                    stack.append((low, False))
                if high > TRUE and high not in cache:
                    stack.append((high, False))
                continue
            n_low = TRUE - low if low <= TRUE else cache[low]
            n_high = TRUE - high if high <= TRUE else cache[high]
            result = self._mk(self._level[node], n_low, n_high)
            cache[node] = result
            cache[result] = node
        return cache[u]

    def _normalize_triple(self, f: int, g: int, h: int) -> tuple[int, int, int]:
        """Canonicalize an ITE triple without changing its function.

        Standard rules, adapted to a manager without complement edges
        (complements are recognized opportunistically through the
        bidirectional NOT cache):

        * ``ite(f, f, h) → ite(f, 1, h)`` and ``ite(f, g, f) →
          ite(f, g, 0)`` (and the complemented twins);
        * ``ite(f, g, h) → ite(¬f, h, g)`` when ``¬f`` is a smaller
          node — complemented tests share one entry;
        * AND commutes: ``ite(f, g, 0) → ite(g, f, 0)`` with the
          smaller node as the test;
        * OR commutes: ``ite(f, 1, h) → ite(h, 1, f)`` likewise;
        * XNOR commutes: ``ite(f, g, ¬g) → ite(g, f, ¬f)`` when that
          lowers the test node.

        Every accepted rewrite strictly decreases the test node, so the
        loop terminates.  The caller re-runs the terminal shortcuts
        afterwards (a substitution can expose one).
        """
        not_cache = self._not_cache
        while True:
            if g == f:
                g = TRUE
            elif h == f:
                h = FALSE
            nf = not_cache.get(f)
            if nf is not None:
                if g == nf:
                    g = FALSE
                elif h == nf:
                    h = TRUE
                if nf < f:
                    f, g, h = nf, h, g
                    continue
            if h == FALSE:
                if TRUE < g < f:
                    f, g = g, f
                    continue
            elif g == TRUE:
                if TRUE < h < f:
                    f, h = h, f
                    continue
            elif (
                nf is not None
                and TRUE < g < f
                and not_cache.get(g) == h
            ):
                f, g, h = g, f, nf
                continue
            return f, g, h

    def _evict_ite_cache(self) -> None:
        """Drop the oldest half of the ITE cache (insertion order)."""
        cache = self._ite_cache
        drop = max(1, len(cache) // 2)
        for key in list(cache.keys())[:drop]:
            del cache[key]
        self._stats.cache_evictions += 1

    def _ite(self, f: int, g: int, h: int) -> int:
        """Memoized if-then-else on raw nodes, explicit-stack form.

        Frames are ``(False, f, g, h)`` — resolve a triple — or
        ``(True, key, level)`` — both cofactor results are on the value
        stack; build the node and fill the cache.  LIFO ordering means
        a subproblem's whole subtree completes before its sibling
        starts, so the cache behaves exactly like the recursive form.
        """
        cache = self._ite_cache
        stats = self._stats
        level_arr, low_arr, high_arr = self._level, self._low, self._high
        normalize = self._normalize
        max_cache = self._max_cache_size
        tasks: list[tuple] = [(False, f, g, h)]
        values: list[int] = []
        while tasks:
            frame = tasks.pop()
            if frame[0]:
                _, key, level = frame
                high = values.pop()
                low = values.pop()
                result = self._mk(level, low, high)
                if max_cache is not None and len(cache) >= max_cache:
                    self._evict_ite_cache()
                cache[key] = result
                values.append(result)
                continue
            _, f, g, h = frame
            stats.ite_calls += 1
            result = -1
            probed = False
            while True:
                # Terminal shortcuts.
                if f == TRUE:
                    result = g
                elif f == FALSE:
                    result = h
                elif g == h:
                    result = g
                elif g == TRUE and h == FALSE:
                    result = f
                elif g == FALSE and h == TRUE:
                    result = self._not(f)
                else:
                    # Non-terminal: this triple is one probe of the
                    # cache layer (counted once, even if normalization
                    # then rewrites it).
                    if not probed:
                        probed = True
                        stats.cache_lookups += 1
                    if normalize:
                        nf, ng, nh = self._normalize_triple(f, g, h)
                        if (nf, ng, nh) != (f, g, h):
                            f, g, h = nf, ng, nh
                            continue  # a rewrite can expose a terminal
                break
            if result >= 0:
                if probed:
                    # Answered by a normalization rewrite: no expansion,
                    # no recomputation — a hit of the cache layer.
                    stats.cache_hits += 1
                values.append(result)
                continue
            key = (f, g, h)
            cached = cache.get(key)
            if cached is not None:
                stats.cache_hits += 1
                values.append(cached)
                continue
            level = min(level_arr[f], level_arr[g], level_arr[h])
            if level_arr[f] == level:
                f0, f1 = low_arr[f], high_arr[f]
            else:
                f0 = f1 = f
            if level_arr[g] == level:
                g0, g1 = low_arr[g], high_arr[g]
            else:
                g0 = g1 = g
            if level_arr[h] == level:
                h0, h1 = low_arr[h], high_arr[h]
            else:
                h0 = h1 = h
            tasks.append((True, key, level))
            tasks.append((False, f1, g1, h1))
            tasks.append((False, f0, g0, h0))
        return values[-1]

    def _cofactors(self, u: int, level: int) -> tuple[int, int]:
        """(low, high) cofactors of ``u`` with respect to ``level``."""
        if self._level[u] == level:
            return self._low[u], self._high[u]
        return u, u

    # ------------------------------------------------------------------
    # Generic memoized postorder (the iterative-recursion workhorse)
    # ------------------------------------------------------------------
    def _run_postorder(self, root, children, combine, cache) -> int:
        """Evaluate a memoized structural recursion without recursing.

        ``children(key)`` lists the sub-keys a key depends on;
        ``combine(key, values)`` computes its result once every child's
        value is in ``cache``.  Keys may be nodes or tuples of nodes.
        LIFO scheduling gives the exact evaluation order (and therefore
        the exact cache behaviour) of the recursive original.
        """
        hit = cache.get(root)
        if hit is not None:
            return hit
        stack: list[tuple] = [(root, None)]
        while stack:
            key, kids = stack.pop()
            if key in cache:
                continue
            if kids is None:
                kids = children(key)
                stack.append((key, kids))
                for kid in kids:
                    if kid not in cache:
                        stack.append((kid, None))
                continue
            cache[key] = combine(key, [cache[kid] for kid in kids])
        return cache[root]

    # ------------------------------------------------------------------
    # Public Boolean algebra (used by Function operators)
    # ------------------------------------------------------------------
    def ite(self, f: Function, g: Function, h: Function) -> Function:
        """If-then-else: ``f & g | ~f & h``."""
        self._maybe_gc()
        return Function(self, self._ite(self._check(f), self._check(g), self._check(h)))

    def apply_not(self, f: Function) -> Function:
        """Complement of ``f``."""
        self._maybe_gc()
        return Function(self, self._not(self._check(f)))

    def apply_and(self, f: Function, g: Function) -> Function:
        """Conjunction of ``f`` and ``g``."""
        self._maybe_gc()
        return Function(self, self._ite(self._check(f), self._check(g), FALSE))

    def apply_or(self, f: Function, g: Function) -> Function:
        """Disjunction of ``f`` and ``g``."""
        self._maybe_gc()
        return Function(self, self._ite(self._check(f), TRUE, self._check(g)))

    def apply_xor(self, f: Function, g: Function) -> Function:
        """Exclusive-or of ``f`` and ``g``."""
        self._maybe_gc()
        gn = self._check(g)
        return Function(self, self._ite(self._check(f), self._not(gn), gn))

    def apply_xnor(self, f: Function, g: Function) -> Function:
        """Equivalence (complement of xor)."""
        self._maybe_gc()
        gn = self._check(g)
        return Function(self, self._ite(self._check(f), gn, self._not(gn)))

    def apply_implies(self, f: Function, g: Function) -> Function:
        """Implication ``f -> g``."""
        self._maybe_gc()
        return Function(self, self._ite(self._check(f), self._check(g), TRUE))

    def conjoin(self, functions: Iterable[Function]) -> Function:
        """AND of an iterable of functions (TRUE for empty input)."""
        self._maybe_gc()
        acc = TRUE
        for f in functions:
            acc = self._ite(self._check(f), acc, FALSE)
            if acc == FALSE:
                break
        return Function(self, acc)

    def disjoin(self, functions: Iterable[Function]) -> Function:
        """OR of an iterable of functions (FALSE for empty input)."""
        self._maybe_gc()
        acc = FALSE
        for f in functions:
            acc = self._ite(self._check(f), TRUE, acc)
            if acc == TRUE:
                break
        return Function(self, acc)

    # ------------------------------------------------------------------
    # Restriction, composition, quantification
    # ------------------------------------------------------------------
    def restrict(self, f: Function, assignment: Mapping[str, bool]) -> Function:
        """Cofactor ``f`` by fixing the variables in ``assignment``."""
        self._maybe_gc()
        by_level = {self.level_of(name): bool(val) for name, val in assignment.items()}
        cache: dict[int, int] = {FALSE: FALSE, TRUE: TRUE}

        def children(u: int) -> tuple:
            if self._level[u] in by_level:
                return (self._high[u] if by_level[self._level[u]] else self._low[u],)
            return (self._low[u], self._high[u])

        def combine(u: int, values: list[int]) -> int:
            level = self._level[u]
            if level in by_level:
                return values[0]
            return self._mk(level, values[0], values[1])

        return Function(
            self, self._run_postorder(self._check(f), children, combine, cache)
        )

    def compose(self, f: Function, name: str, g: Function) -> Function:
        """Substitute function ``g`` for variable ``name`` in ``f``."""
        return self.vector_compose(f, {name: g})

    def vector_compose(self, f: Function, substitution: Mapping[str, Function]) -> Function:
        """Simultaneously substitute functions for variables in ``f``.

        The substitution is simultaneous: substituted results are not
        re-substituted, so ``{x: y, y: x}`` swaps the two variables.
        """
        self._maybe_gc()
        subs_by_level = {
            self.level_of(name): self._check(g) for name, g in substitution.items()
        }
        if not subs_by_level:
            return f
        cache: dict[int, int] = {FALSE: FALSE, TRUE: TRUE}

        def children(u: int) -> tuple:
            return (self._low[u], self._high[u])

        def combine(u: int, values: list[int]) -> int:
            level = self._level[u]
            branch = subs_by_level.get(level)
            if branch is None:
                branch = self._var_node[self._level_var[level]]
            return self._ite(branch, values[1], values[0])

        return Function(
            self, self._run_postorder(self._check(f), children, combine, cache)
        )

    def rename(self, f: Function, mapping: Mapping[str, str]) -> Function:
        """Rename variables (a special case of vector composition)."""
        return self.vector_compose(f, {old: self.var(new) for old, new in mapping.items()})

    def exists(self, names: Iterable[str], f: Function) -> Function:
        """Existential quantification over ``names``."""
        self._maybe_gc()
        return self._quantify(f, names, conj=False)

    def forall(self, names: Iterable[str], f: Function) -> Function:
        """Universal quantification over ``names``."""
        self._maybe_gc()
        return self._quantify(f, names, conj=True)

    def _quantify(self, f: Function, names: Iterable[str], conj: bool) -> Function:
        # No _maybe_gc here: and_exists calls this mid-traversal with raw
        # node indices live on its stack — a remap would corrupt them.
        levels = frozenset(self.level_of(name) for name in names)
        if not levels:
            return f
        cache: dict[int, int] = {FALSE: FALSE, TRUE: TRUE}

        def children(u: int) -> tuple:
            return (self._low[u], self._high[u])

        def combine(u: int, values: list[int]) -> int:
            low, high = values
            level = self._level[u]
            if level in levels:
                if conj:
                    return self._ite(low, high, FALSE)
                return self._ite(low, TRUE, high)
            return self._mk(level, low, high)

        return Function(
            self, self._run_postorder(self._check(f), children, combine, cache)
        )

    def and_exists(self, names: Iterable[str], f: Function, g: Function) -> Function:
        """Relational product ``exists names . f & g`` in one traversal.

        The workhorse of BDD reachability (image computation): fusing the
        conjunction with the quantification avoids building the full
        conjunct, which is often the peak-memory step.
        """
        self._maybe_gc()
        names = [str(name) for name in names]
        levels = frozenset(self.level_of(name) for name in names)
        cache: dict[tuple[int, int], int] = {}

        def key_of(u: int, v: int) -> tuple[int, int]:
            return (u, v) if u <= v else (v, u)

        def children(key: tuple[int, int]) -> tuple:
            u, v = key
            if u <= TRUE or v <= TRUE:
                return ()
            level = min(self._level[u], self._level[v])
            u0, u1 = self._cofactors(u, level)
            v0, v1 = self._cofactors(v, level)
            return (key_of(u0, v0), key_of(u1, v1))

        def combine(key: tuple[int, int], values: list[int]) -> int:
            u, v = key
            if u == FALSE or v == FALSE:
                return FALSE
            if u == TRUE and v == TRUE:
                return TRUE
            if u == TRUE or v == TRUE:
                # Reduce to single-operand quantification.
                w = v if u == TRUE else u
                return self._check(
                    self._quantify(Function(self, w), names, conj=False)
                )
            level = min(self._level[u], self._level[v])
            low, high = values
            if level in levels:
                return self._ite(low, TRUE, high)
            return self._mk(level, low, high)

        return Function(
            self,
            self._run_postorder(
                key_of(self._check(f), self._check(g)), children, combine, cache
            ),
        )

    def constrain(self, f: Function, c: Function) -> Function:
        """Coudert–Madre generalized cofactor ``f ↓ c``.

        Agrees with ``f`` everywhere ``c`` holds; off ``c`` it takes
        whatever values shrink the BDD (the image-restrictor used in
        reachability optimizations).  ``c`` must be satisfiable.
        """
        self._maybe_gc()
        fn, cn = self._check(f), self._check(c)
        if cn == FALSE:
            raise BddError("constrain by the empty care set")
        cache: dict[tuple[int, int], int] = {}

        def children(key: tuple[int, int]) -> tuple:
            u, k = key
            if k == TRUE or u <= TRUE or u == k:
                return ()
            level = min(self._level[u], self._level[k])
            k0, k1 = self._cofactors(k, level)
            u0, u1 = self._cofactors(u, level)
            if k0 == FALSE:
                return ((u1, k1),)
            if k1 == FALSE:
                return ((u0, k0),)
            return ((u0, k0), (u1, k1))

        def combine(key: tuple[int, int], values: list[int]) -> int:
            u, k = key
            if k == TRUE or u <= TRUE:
                return u
            if u == k:
                return TRUE
            if len(values) == 1:
                return values[0]
            level = min(self._level[u], self._level[k])
            return self._mk(level, values[0], values[1])

        return Function(self, self._run_postorder((fn, cn), children, combine, cache))

    def restrict_care(self, f: Function, c: Function) -> Function:
        """The "restrict" heuristic: like :meth:`constrain` but a care
        variable absent from ``f``'s support never enters the result
        (restrict quantifies it out of the care set instead)."""
        self._maybe_gc()
        fn, cn = self._check(f), self._check(c)
        if cn == FALSE:
            raise BddError("restrict by the empty care set")
        cache: dict[tuple[int, int], int] = {}

        def children(key: tuple[int, int]) -> tuple:
            u, k = key
            if k == TRUE or u <= TRUE:
                return ()
            u_level, k_level = self._level[u], self._level[k]
            if k_level < u_level:
                # Care splits on a variable f ignores: drop it.
                return ((u, self._ite(self._low[k], TRUE, self._high[k])),)
            k0, k1 = self._cofactors(k, u_level)
            if k0 == FALSE:
                return ((self._high[u], k1),)
            if k1 == FALSE:
                return ((self._low[u], k0),)
            return ((self._low[u], k0), (self._high[u], k1))

        def combine(key: tuple[int, int], values: list[int]) -> int:
            u, k = key
            if k == TRUE or u <= TRUE:
                return u
            if len(values) == 1:
                return values[0]
            return self._mk(self._level[u], values[0], values[1])

        return Function(self, self._run_postorder((fn, cn), children, combine, cache))

    # ------------------------------------------------------------------
    # Inspection: support, evaluation, satisfiability, counting
    # ------------------------------------------------------------------
    def support(self, f: Function) -> set[str]:
        """The set of variables ``f`` actually depends on."""
        seen: set[int] = set()
        levels: set[int] = set()
        stack = [self._check(f)]
        while stack:
            u = stack.pop()
            if u <= TRUE or u in seen:
                continue
            seen.add(u)
            levels.add(self._level[u])
            stack.append(self._low[u])
            stack.append(self._high[u])
        return {self._level_var[level] for level in levels}

    def evaluate(self, f: Function, assignment: Mapping[str, bool]) -> bool:
        """Evaluate ``f`` under a (complete-on-support) assignment."""
        u = self._check(f)
        while u > TRUE:
            name = self._level_var[self._level[u]]
            try:
                branch = assignment[name]
            except KeyError:
                raise BddError(f"assignment missing variable {name!r}") from None
            u = self._high[u] if branch else self._low[u]
        return u == TRUE

    def pick_one(self, f: Function) -> dict[str, bool] | None:
        """One satisfying assignment over ``f``'s support, or ``None``."""
        u = self._check(f)
        if u == FALSE:
            return None
        result: dict[str, bool] = {}
        while u > TRUE:
            name = self._level_var[self._level[u]]
            if self._low[u] != FALSE:
                result[name] = False
                u = self._low[u]
            else:
                result[name] = True
                u = self._high[u]
        return result

    def sat_iter(self, f: Function, care_vars: Iterable[str] | None = None) -> Iterator[dict[str, bool]]:
        """Iterate all satisfying assignments over ``care_vars``.

        ``care_vars`` defaults to the support of ``f``; variables in
        ``care_vars`` that ``f`` does not depend on are enumerated both
        ways, so the iteration is exhaustive over the named cube space.
        """
        names = sorted(
            self.support(f) if care_vars is None else set(care_vars),
            key=self.level_of,
        )
        order = {name: i for i, name in enumerate(names)}
        node = self._check(f)

        def walk(u: int, idx: int) -> Iterator[dict[str, bool]]:
            if u == FALSE:
                return
            if idx == len(names):
                if u == TRUE:
                    yield {}
                return
            name = names[idx]
            level = self._var_level[name]
            if u > TRUE and self._level[u] == level:
                low, high = self._low[u], self._high[u]
            elif u > TRUE and self._level[u] < level:
                # f depends on a variable outside care_vars: refuse.
                raise BddError(
                    f"function depends on {self._level_var[self._level[u]]!r}, "
                    "which is not in care_vars"
                )
            else:
                low = high = u
            for value, child in ((False, low), (True, high)):
                for tail in walk(child, idx + 1):
                    tail[name] = value
                    yield tail

        # Guard: support must be within care_vars.
        extra = self.support(f) - set(names)
        if extra:
            raise BddError(f"function depends on {sorted(extra)} outside care_vars")
        for assignment in walk(node, 0):
            yield dict(sorted(assignment.items(), key=lambda kv: order[kv[0]]))

    def sat_count(self, f: Function, nvars: int | None = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables.

        ``nvars`` defaults to the size of ``f``'s support.
        """
        u = self._check(f)
        support_levels = sorted(
            self._var_level[name] for name in self.support(Function(self, u))
        )
        if nvars is None:
            nvars = len(support_levels)
        if nvars < len(support_levels):
            raise BddError("nvars smaller than the function's support")
        if u <= TRUE:
            return u << nvars
        # Count over the support only, then scale by free variables.
        index_of = {level: i for i, level in enumerate(support_levels)}
        total = len(support_levels)
        cache: dict[int, int] = {}

        def count_child(child: int, position: int) -> int:
            """Assignments of support vars strictly below ``position``."""
            if child == FALSE:
                return 0
            if child == TRUE:
                return 1 << (total - position - 1)
            return cache[child] << (index_of[self._level[child]] - position - 1)

        def children(node: int) -> tuple:
            return tuple(
                child
                for child in (self._low[node], self._high[node])
                if child > TRUE
            )

        def combine(node: int, _values: list[int]) -> int:
            position = index_of[self._level[node]]
            return count_child(self._low[node], position) + count_child(
                self._high[node], position
            )

        self._run_postorder(u, children, combine, cache)
        root_count = cache[u] << index_of[self._level[u]]
        return root_count << (nvars - total)

    def node_count(self, f: Function) -> int:
        """Number of nodes in ``f``'s DAG (terminals included)."""
        seen: set[int] = set()
        stack = [self._check(f)]
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            if u > TRUE:
                stack.append(self._low[u])
                stack.append(self._high[u])
        return len(seen)

    # ------------------------------------------------------------------
    # Maintenance: cache hygiene and garbage collection
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop operation caches (keeps the node table and variables)."""
        self._ite_cache.clear()
        self._not_cache.clear()

    def _maybe_gc(self) -> None:
        """Collect if the table grew past the threshold.

        Called only at public-operation boundaries: mid-traversal state
        (raw node indices on explicit stacks) must never see a remap.
        """
        if (
            self._gc_threshold is not None
            and len(self._level) - self._last_gc_size >= self._gc_threshold
        ):
            self.collect_garbage()

    def collect_garbage(self) -> int:
        """Mark-and-sweep dead nodes; returns how many were reclaimed.

        Roots are every live :class:`Function` handle plus every
        declared variable.  Surviving nodes are compacted to the front
        of the table (children always precede parents, so a single
        ascending pass remaps consistently), live handles are
        re-pointed at their new indices, and both operation caches are
        flushed (their keys name old indices).  Reclaimed nodes that a
        later operation needs again are simply recreated — and charged
        to the budget again, since the budget meters allocation work.
        """
        stats = self.stats  # property access refreshes peak_nodes
        size = len(self._level)
        marks = bytearray(size)
        marks[FALSE] = marks[TRUE] = 1
        live_handles: list[Function] = []
        roots: list[int] = list(self._var_node.values())
        for ref in self._handles:
            handle = ref()
            if handle is not None:
                live_handles.append(handle)
                roots.append(handle.node)
        stack = roots
        while stack:
            u = stack.pop()
            if marks[u]:
                continue
            marks[u] = 1
            stack.append(self._low[u])
            stack.append(self._high[u])
        # Compact: children have smaller indices than their parents, so
        # remap entries are always ready when a survivor needs them.
        remap = [0] * size
        new_level: list[int] = []
        new_low: list[int] = []
        new_high: list[int] = []
        for old in range(size):
            if not marks[old]:
                continue
            remap[old] = len(new_level)
            new_level.append(self._level[old])
            new_low.append(remap[self._low[old]])
            new_high.append(remap[self._high[old]])
        reclaimed = size - len(new_level)
        self._level, self._low, self._high = new_level, new_low, new_high
        self._unique = {
            (new_level[n], new_low[n], new_high[n]): n
            for n in range(2, len(new_level))
        }
        self._ite_cache.clear()
        self._not_cache.clear()
        self._var_node = {
            name: remap[node] for name, node in self._var_node.items()
        }
        for handle in live_handles:
            handle.node = remap[handle.node]
        self._handles = [weakref.ref(handle) for handle in live_handles]
        self._handle_prune_at = max(1024, 2 * len(self._handles))
        self._last_gc_size = len(new_level)
        stats.gc_runs += 1
        stats.nodes_reclaimed += reclaimed
        return reclaimed

    def to_dot(self, f: Function, name: str = "bdd") -> str:
        """Graphviz dot text for ``f`` (debugging / documentation aid)."""
        lines = [f"digraph {name} {{", '  node [shape=circle];']
        lines.append('  n0 [shape=box, label="0"];')
        lines.append('  n1 [shape=box, label="1"];')
        seen: set[int] = set()
        stack = [self._check(f)]
        while stack:
            u = stack.pop()
            if u <= TRUE or u in seen:
                continue
            seen.add(u)
            label = self._level_var[self._level[u]]
            lines.append(f'  n{u} [label="{label}"];')
            lines.append(f"  n{u} -> n{self._low[u]} [style=dashed];")
            lines.append(f"  n{u} -> n{self._high[u]};")
            stack.append(self._low[u])
            stack.append(self._high[u])
        lines.append("}")
        return "\n".join(lines)
