"""Moving functions between BDD managers.

Analyses keep their own managers (reachability runs over plain state
variables, the decision procedure over age-indexed variables); this
module rebuilds a function node-by-node in a target manager, optionally
renaming variables on the way.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.bdd.function import Function
from repro.bdd.manager import BddManager


def transfer(
    f: Function,
    target: BddManager,
    rename: Mapping[str, str] | None = None,
) -> Function:
    """Rebuild ``f`` inside ``target``, renaming variables via ``rename``.

    Unmapped variables keep their names.  Works iteratively, so deeply
    structured BDDs do not hit the recursion limit.  Note that the
    *order* of variables in ``target`` may differ from the source
    manager; the rebuild goes through ``ite`` and stays canonical.
    """
    source = f.manager
    rename = dict(rename or {})
    cache: dict[int, Function] = {
        0: target.false,
        1: target.true,
    }
    stack: list[tuple[int, bool]] = [(f.node, False)]
    while stack:
        node, ready = stack.pop()
        if node in cache:
            continue
        low = source._low[node]
        high = source._high[node]
        if not ready:
            stack.append((node, True))
            if low not in cache:
                stack.append((low, False))
            if high not in cache:
                stack.append((high, False))
            continue
        name = source.var_at_level(source._level[node])
        var = target.var(rename.get(name, name))
        cache[node] = var.ite(cache[high], cache[low])
    return cache[f.node]
