"""Moving functions between BDD managers.

Analyses keep their own managers (reachability runs over plain state
variables, the decision procedure over age-indexed variables); this
module rebuilds a function node-by-node in a target manager, optionally
renaming variables on the way.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.bdd.function import Function
from repro.bdd.manager import BddManager


def transfer(
    f: Function,
    target: BddManager,
    rename: Mapping[str, str] | None = None,
) -> Function:
    """Rebuild ``f`` inside ``target``, renaming variables via ``rename``.

    Unmapped variables keep their names.  Works iteratively, so deeply
    structured BDDs do not hit the recursion limit.  Note that the
    *order* of variables in ``target`` may differ from the source
    manager; the rebuild goes through ``ite`` and stays canonical.
    Source and target may use different kernels — the walk reads
    semantic cofactors, so it is also the array/object bridge.
    """
    source = f.manager
    rename = dict(rename or {})
    # Keys are source *references*: under a complement-edge kernel a
    # node's two phases are distinct functions and memoize separately.
    cache: dict[int, Function] = {
        source._false_ref: target.false,
        source._true_ref: target.true,
    }
    stack: list[tuple[int, bool]] = [(f.node, False)]
    while stack:
        node, ready = stack.pop()
        if node in cache:
            continue
        level = source._ref_level(node)
        low, high = source._ref_cofactors(node, level)
        if not ready:
            stack.append((node, True))
            if low not in cache:
                stack.append((low, False))
            if high not in cache:
                stack.append((high, False))
            continue
        name = source.var_at_level(level)
        var = target.var(rename.get(name, name))
        cache[node] = var.ite(cache[high], cache[low])
    return cache[f.node]
