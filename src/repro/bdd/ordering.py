"""Static variable-ordering heuristics.

BDD sizes are exquisitely order-sensitive.  The analyses choose a good
*static* order before declaring variables, using the classic
depth-first fanin traversal heuristic: variables that interact in the
circuit end up close together in the order.  (Dynamic reordering lives
elsewhere: :meth:`repro.bdd.manager.BddManager.sift_now` re-sifts a
live manager mid-sweep, and :mod:`repro.bdd.reorder` searches orders by
rebuild.)
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable, Sequence


def dfs_variable_order(
    roots: Sequence[Hashable],
    fanins: Callable[[Hashable], Sequence[Hashable]],
    is_leaf: Callable[[Hashable], bool],
) -> list[Hashable]:
    """Leaf order from a depth-first traversal of a DAG.

    Parameters
    ----------
    roots:
        Output nodes to traverse from, in priority order.
    fanins:
        Maps a node to its fanin nodes (ordered).
    is_leaf:
        Predicate marking the nodes that become BDD variables.

    Returns
    -------
    list
        Leaves in first-visit order.  This is the textbook netlist
        ordering heuristic: a depth-first walk places topologically
        related inputs adjacently.

    The walk keeps its own stack of fanin iterators — no Python
    recursion — so a chain netlist tens of thousands of gates deep
    orders fine (the recursive form died with ``RecursionError`` at
    the interpreter's limit, ~1000 levels).
    """
    order: list[Hashable] = []
    seen: set[Hashable] = set()

    def enter(node: Hashable):
        """Mark a first visit; return the fanin iterator to descend."""
        seen.add(node)
        if is_leaf(node):
            order.append(node)
            return None
        return iter(fanins(node))

    for root in roots:
        if root in seen:
            continue
        stack = []
        frame = enter(root)
        if frame is not None:
            stack.append(frame)
        while stack:
            try:
                node = next(stack[-1])
            except StopIteration:
                stack.pop()
                continue
            if node in seen:
                continue
            frame = enter(node)
            if frame is not None:
                stack.append(frame)
    return order


def interleave_orders(*orders: Iterable[Hashable]) -> list[Hashable]:
    """Round-robin interleave several variable orders, deduplicating.

    Used to order current-state and next-state copies of the state
    variables adjacently (``x0, x0', x1, x1', ...``), the standard
    layout for transition relations and image computation.
    """
    iterators = [iter(order) for order in orders]
    result: list[Hashable] = []
    seen: set[Hashable] = set()
    active = list(iterators)
    while active:
        still_active = []
        for iterator in active:
            try:
                item = next(iterator)
            except StopIteration:
                continue
            still_active.append(iterator)
            if item not in seen:
                seen.add(item)
                result.append(item)
        active = still_active
    return result
