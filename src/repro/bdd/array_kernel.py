"""Flat-array node store with complement edges (the default kernel).

Representation
--------------
* The node table is three flat 64-bit integer columns
  (``array('q')``): ``_var_col`` (variable level), ``_lo_col`` and
  ``_hi_col`` (child *references*).  Index ``0`` is the single
  terminal, the constant ONE.
* A function is a **tagged reference** ``ref = (index << 1) | phase``:
  the low bit says "complement this node's function".  The constants
  are ``TRUE = 0`` (terminal, plain) and ``FALSE = 1`` (terminal,
  complemented) — the same ``ref <= 1`` convention the object kernel's
  two terminals happen to satisfy, which is what lets the shared base
  class treat constants uniformly.
* Canonical form is **high-edge-regular**: a stored node's high child
  never carries the complement bit.  ``_mk_sem`` enforces this by
  flipping both cofactors and complementing the returned reference, so
  every Boolean function has exactly one representation and ``f == g``
  is still integer equality on refs.
* NOT is one XOR (``ref ^ 1``): no NOT cache, no DAG copy, and a
  function shares every node with its complement — the store holds
  roughly half the nodes of the two-terminal representation on
  negation-heavy workloads (the MCT window decisions are exactly that:
  mismatch BDDs are built from XOR/XNOR/NOT traffic).
* The unique table and the ITE operation cache are keyed by **packed
  integers** (shift-or of level/refs) instead of tuples: one dict probe
  costs no tuple allocation and hashes a single int.  The cache is
  bounded (``max_cache_size``) with recency-aware eviction, identical
  to the object kernel's discipline.
* Standard complement-edge ITE canonicalization (Brace–Rudell–Bryant):
  terminal rules first, then — when normalization is enabled —
  operand substitution, commutation to the lowest-index test, a
  regular (uncomplemented) test, and a regular THEN operand, with the
  output complement carried in a flip bit.  Equivalent and
  complemented forms of one subproblem share a single cache entry.

Everything above the primitive surface — restriction, composition,
quantification, SAT queries, sizes, dynamic sifting — lives in the
shared base class :class:`repro.bdd.manager.BddManager`.
"""

from __future__ import annotations

import weakref
from array import array

from repro.bdd.function import Function
from repro.bdd.manager import TERMINAL_LEVEL, BddManager

#: Constant references: the terminal node (index 0) in both phases.
ONE = 0
ZERO = 1

#: Field width for packed unique-table / op-cache keys.  References and
#: levels are far below 2**43 for any table this process could hold, so
#: packed keys are collision-free (Python ints are arbitrary precision;
#: a triple key is ~129 bits).
_SHIFT = 43


class ArrayKernelManager(BddManager):
    """BDD manager over flat integer columns with complement edges."""

    kernel_name = "array"
    _true_ref = ONE
    _false_ref = ZERO

    # ------------------------------------------------------------------
    # Store
    # ------------------------------------------------------------------
    def _init_store(self) -> None:
        # Column 0 is the terminal ONE; its children are self-loops that
        # keep GC/compaction free of terminal special cases.
        self._var_col = array("q", [TERMINAL_LEVEL])
        self._lo_col = array("q", [ONE])
        self._hi_col = array("q", [ONE])
        self._unique: dict[int, int] = {}
        self._ite_cache: dict[int, int] = {}

    def __len__(self) -> int:
        """Current node-table size (the single terminal included)."""
        return len(self._var_col)

    def _mk_raw(self, level: int, lo: int, hi: int) -> int:
        """Find-or-create node ``(level, lo, hi)``; ``hi`` must be regular."""
        key = ((level << _SHIFT) | lo) << _SHIFT | hi
        idx = self._unique.get(key)
        if idx is None:
            if self._budget is not None:
                self._budget.charge()
            if self._deadline is not None:
                self._deadline.check("bdd node creation")
            idx = len(self._var_col)
            self._var_col.append(level)
            self._lo_col.append(lo)
            self._hi_col.append(hi)
            self._unique[key] = idx
            self._stats.nodes_created += 1
        return idx << 1

    def _mk_sem(self, level: int, lo: int, hi: int) -> int:
        """Canonical reference for semantic cofactors ``lo``/``hi``."""
        if lo == hi:
            return lo
        if hi & 1:
            # High-edge-regular form: store the complemented node and
            # return its complement — same function, one representation.
            return self._mk_raw(level, lo ^ 1, hi ^ 1) | 1
        return self._mk_raw(level, lo, hi)

    def _mk_var(self, level: int) -> int:
        return self._mk_sem(level, ZERO, ONE)

    # ------------------------------------------------------------------
    # Kernel primitive surface
    # ------------------------------------------------------------------
    def _not(self, u: int) -> int:
        return u ^ 1

    def _ref_level(self, u: int) -> int:
        return self._var_col[u >> 1]

    def _ref_cofactors(self, u: int, level: int) -> tuple[int, int]:
        """Semantic (low, high) cofactors of ``u`` w.r.t. ``level``.

        The node's complement phase is pushed into the children, so
        callers never see a tagged node — only tagged edges.
        """
        idx = u >> 1
        if self._var_col[idx] == level:
            phase = u & 1
            return self._lo_col[idx] ^ phase, self._hi_col[idx] ^ phase
        return u, u

    def _ref_index(self, u: int) -> int:
        return u >> 1

    # ------------------------------------------------------------------
    # ITE — the core memoized operation (explicit stack)
    # ------------------------------------------------------------------
    def _ite(self, f: int, g: int, h: int) -> int:
        """Memoized if-then-else on tagged refs, explicit-stack form.

        Frames are ``(False, f, g, h)`` — resolve a triple — or
        ``(True, key, level, flip)`` — both cofactor results are on the
        value stack; build the node, fill the cache with the canonical
        result, and push it re-complemented by ``flip``.  LIFO ordering
        means a subproblem's whole subtree completes before its sibling
        starts, so the cache behaves exactly like the recursive form.
        """
        cache = self._ite_cache
        stats = self._stats
        var_col, lo_col, hi_col = self._var_col, self._lo_col, self._hi_col
        normalize = self._normalize
        max_cache = self._max_cache_size
        tasks: list[tuple] = [(False, f, g, h)]
        values: list[int] = []
        while tasks:
            frame = tasks.pop()
            if frame[0]:
                _, key, level, flip = frame
                high = values.pop()
                low = values.pop()
                result = self._mk_sem(level, low, high)
                if max_cache is not None and len(cache) >= max_cache:
                    self._evict_ite_cache()
                cache[key] = result
                values.append(result ^ flip)
                continue
            _, f, g, h = frame
            stats.ite_calls += 1
            result = -1
            probed = False
            flip = 0
            while True:
                # Terminal shortcuts (always valid, never rewrites).
                if f == ONE:
                    result = g
                elif f == ZERO:
                    result = h
                elif g == h:
                    result = g
                elif g == ONE and h == ZERO:
                    result = f
                elif g == ZERO and h == ONE:
                    result = f ^ 1
                else:
                    # Non-terminal: this triple is one probe of the
                    # cache layer (counted once, even if normalization
                    # then rewrites it).
                    if not probed:
                        probed = True
                        stats.cache_lookups += 1
                    if normalize:
                        # Operand substitution: a test shared with an
                        # operand fixes that operand to a constant.
                        changed = False
                        if g == f:
                            g = ONE
                            changed = True
                        elif g == f ^ 1:
                            g = ZERO
                            changed = True
                        if h == f:
                            h = ZERO
                            changed = True
                        elif h == f ^ 1:
                            h = ONE
                            changed = True
                        if not changed:
                            # Commute to the lowest-index test.  Each
                            # accepted swap strictly decreases the test
                            # index, so the loop terminates.
                            fi = f >> 1
                            if g == ONE and h > 1 and (h >> 1) < fi:
                                f, h = h, f  # OR commutes
                                changed = True
                            elif h == ZERO and g > 1 and (g >> 1) < fi:
                                f, g = g, f  # AND commutes
                                changed = True
                            elif h == ONE and g > 1 and (g >> 1) < fi:
                                f, g = g ^ 1, f ^ 1  # implication flips
                                changed = True
                            elif g == ZERO and h > 1 and (h >> 1) < fi:
                                f, h = h ^ 1, f ^ 1  # nor-style flip
                                changed = True
                            elif h == g ^ 1 and g > 1 and (g >> 1) < fi:
                                f, g, h = g, f, f ^ 1  # XNOR commutes
                                changed = True
                        if not changed:
                            # Phase canonicalization: regular test, then
                            # regular THEN operand (complement carried
                            # out through the flip bit).
                            if f & 1:
                                f, g, h = f ^ 1, h, g
                                changed = True
                            elif g & 1:
                                g, h, flip = g ^ 1, h ^ 1, flip ^ 1
                                changed = True
                        if changed:
                            continue  # a rewrite can expose a terminal
                break
            if result >= 0:
                if probed:
                    # Answered by a normalization rewrite: no expansion,
                    # no recomputation — a hit of the cache layer.
                    stats.cache_hits += 1
                values.append(result ^ flip)
                continue
            key = ((f << _SHIFT) | g) << _SHIFT | h
            cached = cache.get(key)
            if cached is not None:
                stats.cache_hits += 1
                # Move-to-end: a hit makes the entry young again, so
                # bounded-cache eviction drops cold triples first.
                del cache[key]
                cache[key] = cached
                values.append(cached ^ flip)
                continue
            fi, gi, hi = f >> 1, g >> 1, h >> 1
            level = var_col[fi]
            if var_col[gi] < level:
                level = var_col[gi]
            if var_col[hi] < level:
                level = var_col[hi]
            if var_col[fi] == level:
                c = f & 1
                f0, f1 = lo_col[fi] ^ c, hi_col[fi] ^ c
            else:
                f0 = f1 = f
            if var_col[gi] == level:
                c = g & 1
                g0, g1 = lo_col[gi] ^ c, hi_col[gi] ^ c
            else:
                g0 = g1 = g
            if var_col[hi] == level:
                c = h & 1
                h0, h1 = lo_col[hi] ^ c, hi_col[hi] ^ c
            else:
                h0 = h1 = h
            tasks.append((True, key, level, flip))
            tasks.append((False, f1, g1, h1))
            tasks.append((False, f0, g0, h0))
        return values[-1]

    # ------------------------------------------------------------------
    # Maintenance: cache hygiene and garbage collection
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop the operation cache (keeps the node table and variables)."""
        self._ite_cache.clear()

    def collect_garbage(self) -> int:
        """Mark-and-sweep dead nodes; returns how many were reclaimed.

        Marking works on structural *indices* (a node is live if either
        phase of it is reachable).  Survivors are compacted to the front
        of the columns — children always precede parents, so a single
        ascending pass remaps consistently — live handles and variable
        refs are re-tagged onto their new indices, and the operation
        cache is flushed (its packed keys name old indices).
        """
        stats = self.stats  # property access refreshes peak_nodes
        var_col, lo_col, hi_col = self._var_col, self._lo_col, self._hi_col
        size = len(var_col)
        marks = bytearray(size)
        marks[0] = 1
        live_handles: list[Function] = []
        roots: list[int] = [node >> 1 for node in self._var_node.values()]
        for ref in self._handles:
            handle = ref()
            if handle is not None:
                live_handles.append(handle)
                roots.append(handle.node >> 1)
        stack = roots
        while stack:
            idx = stack.pop()
            if marks[idx]:
                continue
            marks[idx] = 1
            stack.append(lo_col[idx] >> 1)
            stack.append(hi_col[idx] >> 1)
        remap = [0] * size
        new_var = array("q")
        new_lo = array("q")
        new_hi = array("q")
        for old in range(size):
            if not marks[old]:
                continue
            remap[old] = len(new_var)
            new_var.append(var_col[old])
            lo, hi = lo_col[old], hi_col[old]
            new_lo.append((remap[lo >> 1] << 1) | (lo & 1))
            new_hi.append((remap[hi >> 1] << 1) | (hi & 1))
        reclaimed = size - len(new_var)
        self._var_col, self._lo_col, self._hi_col = new_var, new_lo, new_hi
        self._unique = {
            ((new_var[n] << _SHIFT) | new_lo[n]) << _SHIFT | new_hi[n]: n
            for n in range(1, len(new_var))
        }
        self._ite_cache.clear()
        self._var_node = {
            name: (remap[node >> 1] << 1) | (node & 1)
            for name, node in self._var_node.items()
        }
        for handle in live_handles:
            handle.node = (remap[handle.node >> 1] << 1) | (handle.node & 1)
        self._handles = [weakref.ref(handle) for handle in live_handles]
        self._handle_prune_at = max(1024, 2 * len(self._handles))
        self._last_gc_size = len(new_var)
        stats.gc_runs += 1
        stats.nodes_reclaimed += reclaimed
        return reclaimed

    def _adopt_store(self, other: BddManager) -> None:
        self._var_col = other._var_col
        self._lo_col = other._lo_col
        self._hi_col = other._hi_col
        self._unique = other._unique
        self._ite_cache.clear()
