"""The historical two-terminal node store, kept as a cross-check oracle.

Implementation notes
--------------------
* Nodes are integers indexing parallel lists (``_level``, ``_low``,
  ``_high``).  Node ``0`` is the constant FALSE, node ``1`` the constant
  TRUE; both live at a sentinel level below every variable.
* No complement edges: simpler invariants.  NOT is a memoized DAG copy
  through a *bidirectional* NOT cache, which the triple normalization
  also consults to recognize complemented operands opportunistically.
  The cache is bounded under ``max_cache_size`` (it used to grow
  without limit between GCs); evictions are counted in
  :attr:`BddStats.not_cache_evictions` and happen only at ``_not``
  entry — never mid-traversal, where the copy loop still needs its
  children's fresh entries.
* All Boolean operations are routed through a memoized Shannon-style
  ``ite`` (if-then-else) with standard triple normalization (see
  :meth:`ObjectKernelManager._normalize_triple`): commuted and
  complemented forms of the same subproblem share one operation-cache
  entry.  Cache hits move their entry to the young end, so the bounded
  cache evicts by recency, not insertion age.

Everything above the primitive surface — restriction, composition,
quantification, SAT queries, sizes, dynamic sifting — lives in the
shared base class :class:`repro.bdd.manager.BddManager`.
"""

from __future__ import annotations

import weakref

from repro.bdd.function import Function
from repro.bdd.manager import FALSE, TRUE, TERMINAL_LEVEL, BddManager


class ObjectKernelManager(BddManager):
    """BDD manager over the two-terminal list store (no complement edges)."""

    kernel_name = "object"
    _false_ref = FALSE
    _true_ref = TRUE

    # ------------------------------------------------------------------
    # Store
    # ------------------------------------------------------------------
    def _init_store(self) -> None:
        # Parallel node arrays; slots 0/1 are the terminals.
        self._level: list[int] = [TERMINAL_LEVEL, TERMINAL_LEVEL]
        self._low: list[int] = [FALSE, TRUE]
        self._high: list[int] = [FALSE, TRUE]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._not_cache: dict[int, int] = {}

    def __len__(self) -> int:
        """Current node-table size (terminals included).

        Grows with every created node and shrinks when
        :meth:`collect_garbage` compacts the table.
        """
        return len(self._level)

    def _mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the canonical node ``(level, low, high)``."""
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            if self._budget is not None:
                self._budget.charge()
            if self._deadline is not None:
                self._deadline.check("bdd node creation")
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
            self._stats.nodes_created += 1
        return node

    # Without complement edges the stored cofactors *are* the semantic
    # cofactors, so the canonical constructor is ``_mk`` itself.
    _mk_sem = _mk

    def _mk_var(self, level: int) -> int:
        return self._mk(level, FALSE, TRUE)

    # ------------------------------------------------------------------
    # Kernel primitive surface
    # ------------------------------------------------------------------
    def _ref_level(self, u: int) -> int:
        return self._level[u]

    def _ref_cofactors(self, u: int, level: int) -> tuple[int, int]:
        """(low, high) cofactors of ``u`` with respect to ``level``."""
        if self._level[u] == level:
            return self._low[u], self._high[u]
        return u, u

    def _ref_index(self, u: int) -> int:
        return u

    # Kept under its historical name for the in-package callers.
    _cofactors = _ref_cofactors

    # ------------------------------------------------------------------
    # NOT / ITE — the core memoized operations (explicit stacks)
    # ------------------------------------------------------------------
    def _evict_not_cache(self) -> None:
        """Drop the oldest half of the NOT cache.

        Only ever called at ``_not`` entry: the traversal loop reads
        just-computed children out of the cache, so shrinking it
        mid-copy would corrupt the walk.  The cache is bidirectional;
        halves of a pair may part ways under eviction, which costs a
        recomputation later but never an incorrect answer.
        """
        cache = self._not_cache
        drop = max(1, len(cache) // 2)
        for key in list(cache.keys())[:drop]:
            del cache[key]
        self._stats.not_cache_evictions += 1

    def _not(self, u: int) -> int:
        if u <= TRUE:
            return TRUE - u
        cache = self._not_cache
        cached = cache.get(u)
        if cached is not None:
            # Refresh recency so the bounded cache keeps hot entries.
            del cache[u]
            cache[u] = cached
            return cached
        max_cache = self._max_cache_size
        if max_cache is not None and len(cache) >= max_cache:
            self._evict_not_cache()
        low_arr, high_arr = self._low, self._high
        stack: list[tuple[int, bool]] = [(u, False)]
        while stack:
            node, ready = stack.pop()
            if node in cache:
                continue
            low, high = low_arr[node], high_arr[node]
            if not ready:
                stack.append((node, True))
                if low > TRUE and low not in cache:
                    stack.append((low, False))
                if high > TRUE and high not in cache:
                    stack.append((high, False))
                continue
            n_low = TRUE - low if low <= TRUE else cache[low]
            n_high = TRUE - high if high <= TRUE else cache[high]
            result = self._mk(self._level[node], n_low, n_high)
            cache[node] = result
            cache[result] = node
        return cache[u]

    def _normalize_triple(self, f: int, g: int, h: int) -> tuple[int, int, int]:
        """Canonicalize an ITE triple without changing its function.

        Standard rules, adapted to a manager without complement edges
        (complements are recognized opportunistically through the
        bidirectional NOT cache):

        * ``ite(f, f, h) → ite(f, 1, h)`` and ``ite(f, g, f) →
          ite(f, g, 0)`` (and the complemented twins);
        * ``ite(f, g, h) → ite(¬f, h, g)`` when ``¬f`` is a smaller
          node — complemented tests share one entry;
        * AND commutes: ``ite(f, g, 0) → ite(g, f, 0)`` with the
          smaller node as the test;
        * OR commutes: ``ite(f, 1, h) → ite(h, 1, f)`` likewise;
        * XNOR commutes: ``ite(f, g, ¬g) → ite(g, f, ¬f)`` when that
          lowers the test node.

        Every accepted rewrite strictly decreases the test node, so the
        loop terminates.  The caller re-runs the terminal shortcuts
        afterwards (a substitution can expose one).
        """
        not_cache = self._not_cache
        while True:
            if g == f:
                g = TRUE
            elif h == f:
                h = FALSE
            nf = not_cache.get(f)
            if nf is not None:
                if g == nf:
                    g = FALSE
                elif h == nf:
                    h = TRUE
                if nf < f:
                    f, g, h = nf, h, g
                    continue
            if h == FALSE:
                if TRUE < g < f:
                    f, g = g, f
                    continue
            elif g == TRUE:
                if TRUE < h < f:
                    f, h = h, f
                    continue
            elif (
                nf is not None
                and TRUE < g < f
                and not_cache.get(g) == h
            ):
                f, g, h = g, f, nf
                continue
            return f, g, h

    def _ite(self, f: int, g: int, h: int) -> int:
        """Memoized if-then-else on raw nodes, explicit-stack form.

        Frames are ``(False, f, g, h)`` — resolve a triple — or
        ``(True, key, level)`` — both cofactor results are on the value
        stack; build the node and fill the cache.  LIFO ordering means
        a subproblem's whole subtree completes before its sibling
        starts, so the cache behaves exactly like the recursive form.
        """
        cache = self._ite_cache
        stats = self._stats
        level_arr, low_arr, high_arr = self._level, self._low, self._high
        normalize = self._normalize
        max_cache = self._max_cache_size
        tasks: list[tuple] = [(False, f, g, h)]
        values: list[int] = []
        while tasks:
            frame = tasks.pop()
            if frame[0]:
                _, key, level = frame
                high = values.pop()
                low = values.pop()
                result = self._mk(level, low, high)
                if max_cache is not None and len(cache) >= max_cache:
                    self._evict_ite_cache()
                cache[key] = result
                values.append(result)
                continue
            _, f, g, h = frame
            stats.ite_calls += 1
            result = -1
            probed = False
            while True:
                # Terminal shortcuts.
                if f == TRUE:
                    result = g
                elif f == FALSE:
                    result = h
                elif g == h:
                    result = g
                elif g == TRUE and h == FALSE:
                    result = f
                elif g == FALSE and h == TRUE:
                    result = self._not(f)
                else:
                    # Non-terminal: this triple is one probe of the
                    # cache layer (counted once, even if normalization
                    # then rewrites it).
                    if not probed:
                        probed = True
                        stats.cache_lookups += 1
                    if normalize:
                        nf, ng, nh = self._normalize_triple(f, g, h)
                        if (nf, ng, nh) != (f, g, h):
                            f, g, h = nf, ng, nh
                            continue  # a rewrite can expose a terminal
                break
            if result >= 0:
                if probed:
                    # Answered by a normalization rewrite: no expansion,
                    # no recomputation — a hit of the cache layer.
                    stats.cache_hits += 1
                values.append(result)
                continue
            key = (f, g, h)
            cached = cache.get(key)
            if cached is not None:
                stats.cache_hits += 1
                # Move-to-end: a hit makes the entry young again, so
                # bounded-cache eviction drops cold triples first.
                del cache[key]
                cache[key] = cached
                values.append(cached)
                continue
            level = min(level_arr[f], level_arr[g], level_arr[h])
            if level_arr[f] == level:
                f0, f1 = low_arr[f], high_arr[f]
            else:
                f0 = f1 = f
            if level_arr[g] == level:
                g0, g1 = low_arr[g], high_arr[g]
            else:
                g0 = g1 = g
            if level_arr[h] == level:
                h0, h1 = low_arr[h], high_arr[h]
            else:
                h0 = h1 = h
            tasks.append((True, key, level))
            tasks.append((False, f1, g1, h1))
            tasks.append((False, f0, g0, h0))
        return values[-1]

    # ------------------------------------------------------------------
    # Maintenance: cache hygiene and garbage collection
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop operation caches (keeps the node table and variables)."""
        self._ite_cache.clear()
        self._not_cache.clear()

    def collect_garbage(self) -> int:
        """Mark-and-sweep dead nodes; returns how many were reclaimed.

        Roots are every live :class:`Function` handle plus every
        declared variable.  Surviving nodes are compacted to the front
        of the table (children always precede parents, so a single
        ascending pass remaps consistently), live handles are
        re-pointed at their new indices, and both operation caches are
        flushed (their keys name old indices).  Reclaimed nodes that a
        later operation needs again are simply recreated — and charged
        to the budget again, since the budget meters allocation work.
        """
        stats = self.stats  # property access refreshes peak_nodes
        size = len(self._level)
        marks = bytearray(size)
        marks[FALSE] = marks[TRUE] = 1
        live_handles: list[Function] = []
        roots: list[int] = list(self._var_node.values())
        for ref in self._handles:
            handle = ref()
            if handle is not None:
                live_handles.append(handle)
                roots.append(handle.node)
        stack = roots
        while stack:
            u = stack.pop()
            if marks[u]:
                continue
            marks[u] = 1
            stack.append(self._low[u])
            stack.append(self._high[u])
        # Compact: children have smaller indices than their parents, so
        # remap entries are always ready when a survivor needs them.
        remap = [0] * size
        new_level: list[int] = []
        new_low: list[int] = []
        new_high: list[int] = []
        for old in range(size):
            if not marks[old]:
                continue
            remap[old] = len(new_level)
            new_level.append(self._level[old])
            new_low.append(remap[self._low[old]])
            new_high.append(remap[self._high[old]])
        reclaimed = size - len(new_level)
        self._level, self._low, self._high = new_level, new_low, new_high
        self._unique = {
            (new_level[n], new_low[n], new_high[n]): n
            for n in range(2, len(new_level))
        }
        self._ite_cache.clear()
        self._not_cache.clear()
        self._var_node = {
            name: remap[node] for name, node in self._var_node.items()
        }
        for handle in live_handles:
            handle.node = remap[handle.node]
        self._handles = [weakref.ref(handle) for handle in live_handles]
        self._handle_prune_at = max(1024, 2 * len(self._handles))
        self._last_gc_size = len(new_level)
        stats.gc_runs += 1
        stats.nodes_reclaimed += reclaimed
        return reclaimed

    def _adopt_store(self, other: BddManager) -> None:
        self._level = other._level
        self._low = other._low
        self._high = other._high
        self._unique = other._unique
        self._ite_cache.clear()
        self._not_cache.clear()
