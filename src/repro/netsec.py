"""Shared security layer for both network stacks (cluster + daemon).

PRs 6 and 9 put the sweep on the network — ``repro-mct worker`` fleets
over TCP and ``repro-mct serve`` over HTTP — and both listeners
originally accepted anyone who could reach the port.  This module is
the one place both stacks get their trust primitives from, so the two
surfaces cannot drift apart:

* **secret material** never rides on argv (visible in ``ps``): it is
  loaded from a file (``--secret-file``/``--auth-token-file``) or an
  environment variable (:data:`SECRET_ENV`/:data:`TOKEN_ENV`), with
  whitespace stripped so a trailing newline from ``echo`` cannot make
  two ends disagree;
* **comparison is constant-time** (:func:`constant_time_eq`, backed by
  :func:`hmac.compare_digest`) on both the HTTP bearer token and the
  cluster HMAC proofs, so a byte-at-a-time timing probe learns nothing;
* **the cluster handshake is mutual** challenge–response
  (:func:`hmac_proof`): each side proves possession of the shared
  secret over the *other* side's fresh nonce, domain-separated by
  protocol string and role so a recorded proof can never be reflected
  back — and the secret itself never crosses the wire;
* **TLS contexts** are built here (:func:`build_server_context` /
  :func:`build_client_context`) with one policy: a server presents
  ``--tls-cert``/``--tls-key``; a client trusts exactly the
  ``--tls-ca`` bundle it was given (fleets dial addresses, frequently
  raw IPs, so trust is pinned to the CA rather than to hostnames); a
  server given ``--tls-ca`` additionally *requires and verifies*
  client certificates (mTLS).

What auth does and does not protect is documented in
docs/ROBUSTNESS.md ("Security model"); the short version is that the
cluster wire carries pickles, so HMAC auth is what makes the
"trusted cluster" stance enforceable instead of aspirational, and TLS
is what keeps the secret-derived proofs and the netlists confidential
on a shared network.

Every knob here is execution/deployment configuration: none of it
enters :func:`~repro.mct.options_fingerprint`, so checkpoints and
cached results move freely between plaintext and TLS deployments —
the byte-identical contract the CI jobs assert.
"""

from __future__ import annotations

import hmac
import os
import ssl

from repro.errors import OptionsError

#: Environment fallback for the cluster shared secret (``--secret-file``
#: wins when both are set).
SECRET_ENV = "REPRO_MCT_SECRET"
#: Environment fallback for the daemon's HTTP bearer token.
TOKEN_ENV = "REPRO_MCT_TOKEN"


class ProtocolError(ConnectionError):
    """A malformed, oversized, or truncated wire frame.

    Subclasses :class:`ConnectionError` so every existing reader loop
    (worker connection threads, the coordinator's receive loop, the
    connect handshake) already handles it as "this peer is broken" —
    a hostile or buggy peer can terminate its own connection, never
    crash a thread or allocate unbounded memory.
    """


class AuthenticationError(ConnectionError):
    """The peer's credentials are wrong (or missing, or unexpected).

    Distinct from liveness loss on purpose: a worker that fails the
    handshake is *permanently* unusable for this session — retrying or
    backing off cannot fix a wrong secret — so the supervision ladder
    records it under ``auth_failures`` and never dispatches to it.
    """


def load_secret(
    path: str | os.PathLike | None,
    env_var: str | None = None,
    *,
    what: str = "secret",
) -> bytes | None:
    """Resolve a shared secret: file first, then environment, else None.

    File contents and environment values are stripped of surrounding
    whitespace (a trailing newline is an artifact of how the secret was
    written, not part of it).  An unreadable or empty source is an
    :class:`~repro.errors.OptionsError` — a configured-but-broken
    secret must never silently degrade to "no auth".
    """
    if path is not None:
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            raise OptionsError(f"cannot read {what} file {path}: {exc}") from exc
        secret = data.strip()
        if not secret:
            raise OptionsError(f"{what} file {path} is empty")
        return secret
    if env_var:
        value = os.environ.get(env_var)
        if value is not None:
            secret = value.strip().encode("utf-8")
            if not secret:
                raise OptionsError(f"environment {env_var} is set but empty")
            return secret
    return None


def new_nonce() -> str:
    """A fresh 128-bit hex nonce for one handshake challenge."""
    return os.urandom(16).hex()


def hmac_proof(secret: bytes, protocol: str, role: str, nonce: str) -> str:
    """HMAC-SHA256 proof of ``secret`` over one challenge nonce.

    Domain separation: the protocol string keys the proof to this wire
    format, and ``role`` ("client"/"server") makes the two directions
    of the mutual handshake distinct, so a proof recorded in one
    direction can never be replayed in the other.
    """
    message = f"{protocol}|{role}|{nonce}".encode("utf-8")
    return hmac.new(secret, message, "sha256").hexdigest()


def constant_time_eq(a: str | bytes, b: str | bytes) -> bool:
    """Timing-safe equality of two tokens/digests (either may be junk)."""
    if isinstance(a, str):
        a = a.encode("utf-8")
    if isinstance(b, str):
        b = b.encode("utf-8")
    return hmac.compare_digest(a, b)


def check_bearer(header_value: str | None, token: bytes) -> bool:
    """Validate one ``Authorization`` header against the bearer token."""
    if not header_value:
        return False
    scheme, _, credential = header_value.strip().partition(" ")
    if scheme.lower() != "bearer":
        return False
    return constant_time_eq(credential.strip(), token)


def build_server_context(
    certfile: str,
    keyfile: str,
    cafile: str | None = None,
) -> ssl.SSLContext:
    """A server-side TLS context for a listener (worker or daemon).

    With ``cafile`` the server also *requires* a client certificate
    signed by that CA (mTLS); without it any client may connect (and
    the HMAC/bearer layer still authenticates them).
    """
    try:
        context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
        context.load_cert_chain(certfile=certfile, keyfile=keyfile)
        if cafile is not None:
            context.load_verify_locations(cafile=cafile)
            context.verify_mode = ssl.CERT_REQUIRED
    except (OSError, ssl.SSLError) as exc:
        raise OptionsError(f"cannot build server TLS context: {exc}") from exc
    return context


def build_client_context(
    cafile: str,
    certfile: str | None = None,
    keyfile: str | None = None,
) -> ssl.SSLContext:
    """A client-side TLS context trusting exactly one CA bundle.

    Hostname checking is off by design: fleets are addressed by
    ``host:port`` pairs that are usually raw IPs, and the trust root is
    the operator-provided CA (typically the self-signed fleet cert
    itself), not a public PKI name.  The server certificate is still
    fully chain-verified against that CA.  ``certfile``/``keyfile``
    attach a client certificate for servers that demand mTLS.
    """
    try:
        context = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
        context.load_verify_locations(cafile=cafile)
        context.check_hostname = False
        context.verify_mode = ssl.CERT_REQUIRED
        if certfile is not None:
            context.load_cert_chain(certfile=certfile, keyfile=keyfile)
    except (OSError, ssl.SSLError) as exc:
        raise OptionsError(f"cannot build client TLS context: {exc}") from exc
    return context
