"""Concrete divergence witnesses for failing clock periods.

A failing decision says the discretized machine differs from the steady
machine *symbolically*.  For debugging (and for honest reporting —
``C_x`` is only sufficient, so a symbolic failure need not be
realizable) it helps to hold an actual run in hand: an initial state, a
stimulus, a clock period, and the cycle where the sampled state departs
from the ideal machine.  This module searches for one with the event
simulator, seeding the search with assignments picked from the decision
procedure's base-step mismatch when available.

For Fig. 2 at τ = 2 the witness is found immediately (initial state 1,
divergence at cycle 3); for conservative failures the search can come
back empty, which is itself informative.
"""

from __future__ import annotations

import dataclasses
import itertools
import random
from fractions import Fraction

from repro.errors import AnalysisError
from repro.logic.delays import DelayMap
from repro.logic.netlist import Circuit
from repro.mct.engine import MctResult
from repro.sim.event_sim import ClockedSimulator, sample_delay_map


@dataclasses.dataclass(frozen=True)
class Witness:
    """A simulator-validated divergence."""

    tau: Fraction
    initial_state: dict[str, bool]
    stimulus: tuple[dict[str, bool], ...]
    #: first cycle (1-based) where the sampled state differs
    diverged_at: int
    #: the sampled and ideal states at that cycle
    sampled: dict[str, bool]
    ideal: dict[str, bool]


def _first_divergence(sim, tau, init, stimulus):
    trace = sim.run(tau, init, stimulus)
    ideal, _ = sim.circuit.simulate(init, stimulus)
    for n, (got, want) in enumerate(zip(trace.sampled_states, ideal), start=1):
        if got != want:
            return n, got, want
    return None


def find_witness(
    circuit: Circuit,
    delays: DelayMap,
    result: MctResult,
    max_cycles: int = 24,
    tries: int = 64,
    realizations: int = 4,
    seed: int = 0,
) -> Witness | None:
    """Search for a run demonstrating the failing window of ``result``.

    Tries every initial state for small machines (else random ones),
    random stimuli, and — for interval delay maps — several sampled
    delay realizations.  Returns ``None`` when no divergence is found
    within the budget; a symbolic C_x failure does not guarantee a
    behavioural one.
    """
    if not result.failure_found or result.failing_window is None:
        raise AnalysisError("result has no failing window to witness")
    low, high = result.failing_window
    tau = (low + high) / 2
    rng = random.Random(seed)
    n_state = len(circuit.latches)
    if n_state <= 6:
        initials = [
            dict(zip(circuit.state_nets, bits))
            for bits in itertools.product([False, True], repeat=n_state)
        ]
    else:
        initials = [
            {q: rng.random() < 0.5 for q in circuit.state_nets}
            for _ in range(16)
        ]
    delay_samples = (
        [delays]
        if delays.is_fixed
        else [sample_delay_map(delays, rng) for _ in range(realizations)]
    )
    attempts = 0
    for realization in delay_samples:
        sim = ClockedSimulator(circuit, realization)
        for init in initials:
            for _ in range(max(1, tries // max(1, len(initials)))):
                attempts += 1
                stimulus = tuple(
                    {u: rng.random() < 0.5 for u in circuit.inputs}
                    for _ in range(max_cycles)
                )
                hit = _first_divergence(sim, tau, init, stimulus)
                if hit is not None:
                    n, got, want = hit
                    return Witness(
                        tau=tau,
                        initial_state=dict(init),
                        stimulus=stimulus,
                        diverged_at=n,
                        sampled=got,
                        ideal=want,
                    )
    return None
