"""The paper's gate-coupled linear programs (Sec. 7, exact form).

The relaxed model of :mod:`repro.mct.feasibility` treats each flattened
path delay as an independent interval.  The paper's LP is finer: a path
delay is the *sum of the delays of the gates on the path*, and paths
that share gates share variables, so some relaxed-feasible failing
combinations are actually unrealizable.  This module builds and solves
that program:

    τ(σ) = max τ
           τ(a_p - 1) + ε ≤ Σ_{pin ∈ p} d_pin (+ d_ff + τ_s) ≤ τ·a_p
           d_min ≤ d_pin ≤ d_max            for every pin variable

with one constraint pair per *concrete path* ``p`` (a timed leaf may
cover several paths; σ assigns them all the same age, exactly as the
flattened TBF does).  Solved with scipy's HiGHS; exponential path
enumeration is budget-capped, so this is an opt-in refinement for
small circuits (``MctOptions(exact_feasibility=True)``).
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
from scipy.optimize import linprog

from repro.errors import AnalysisError
from repro.logic.delays import Interval
from repro.mct.discretize import DiscretizedMachine, TimedLeaf
from repro.mct.feasibility import TauRange
from repro.timed.paths import TimedPath, enumerate_paths

#: Strictness slack for the τ(a-1) < k constraints.  Must sit above the
#: LP solver's feasibility tolerance (HiGHS defaults to 1e-7) or strict
#: inequalities silently degrade to non-strict ones.
EPSILON = 1e-6


class ExactFeasibility:
    """Path-coupled feasibility/τ(σ) oracle for one discretized machine.

    Enumerate the machine's paths once; then answer per-σ queries.
    """

    def __init__(
        self,
        machine: DiscretizedMachine,
        max_paths: int = 10_000,
    ):
        self.machine = machine
        circuit = machine.circuit
        delays = machine.delays
        if delays.has_phases:
            raise AnalysisError(
                "the gate-coupled LP does not model clock phases yet; "
                "use the relaxed feasibility model"
            )
        setup = Interval.point(machine.setup)
        all_paths: list[tuple[TimedLeaf, TimedPath]] = []
        for latch in circuit.latches.values():
            for path in enumerate_paths(
                circuit, delays, latch.data, extra=setup, max_paths=max_paths
            ):
                all_paths.append((self._fold(path), path))
        for po in circuit.outputs:
            for path in enumerate_paths(
                circuit, delays, po, max_paths=max_paths
            ):
                all_paths.append((self._fold(path), path))
        self._paths = all_paths
        # Variable index assignment: pin variables + latch variables.
        self._var_index: dict[tuple, int] = {}
        self._bounds: list[tuple[float, float]] = []
        for _, path in all_paths:
            for edge in path.edges:
                self._pin_var(edge)
            if path.leaf in circuit.latches:
                self._latch_var(path.leaf)

    def _fold(self, path: TimedPath) -> TimedLeaf:
        total = path.total
        if path.leaf in self.machine.circuit.latches:
            total = total + self.machine.delays.latch(path.leaf)
        return TimedLeaf(path.leaf, total)

    def _pin_var(self, edge: tuple) -> int:
        key = ("pin", edge)
        if key not in self._var_index:
            net, pin, kind = edge
            timing = self.machine.delays.pin(net, pin)
            interval = {
                "s": timing.rise,
                "r": timing.rise,
                "f": timing.fall,
            }[kind]
            self._var_index[key] = len(self._bounds)
            self._bounds.append((float(interval.lo), float(interval.hi)))
        return self._var_index[key]

    def _latch_var(self, q: str) -> int:
        key = ("latch", q)
        if key not in self._var_index:
            interval = self.machine.delays.latch(q)
            self._var_index[key] = len(self._bounds)
            self._bounds.append((float(interval.lo), float(interval.hi)))
        return self._var_index[key]

    # ------------------------------------------------------------------
    def sup_tau(
        self,
        sigma: dict[TimedLeaf, int],
        window: TauRange | None = None,
    ) -> Fraction | None:
        """The paper's ``τ(σ) = max τ`` LP; ``None`` when infeasible.

        ``sigma`` must assign a single age per timed leaf.  The result
        is a float-precision supremum converted back to Fraction; it is
        always ≤ the relaxed bound, never more optimistic than exact.
        """
        n_delay_vars = len(self._bounds)
        tau_index = n_delay_vars
        rows: list[list[float]] = []
        rhs: list[float] = []

        def add_constraint(coeffs: dict[int, float], upper: float) -> None:
            row = [0.0] * (n_delay_vars + 1)
            for idx, value in coeffs.items():
                row[idx] = value
            rows.append(row)
            rhs.append(upper)

        matched_any = False
        for tl, path in self._paths:
            age = sigma.get(tl)
            if age is None:
                raise AnalysisError(f"σ misses timed leaf {tl}")
            matched_any = True
            var_ids = [self._pin_var(e) for e in path.edges]
            if path.leaf in self.machine.circuit.latches:
                var_ids.append(self._latch_var(path.leaf))
            if age == 0:
                # Only a genuinely zero path can have age 0; its sum is
                # identically 0 within bounds, nothing to constrain.
                continue
            # Σ d - a·τ ≤ 0
            coeffs = {tau_index: -float(age)}
            for vid in var_ids:
                coeffs[vid] = coeffs.get(vid, 0.0) + 1.0
            add_constraint(dict(coeffs), 0.0)
            # (a-1)·τ - Σ d ≤ -ε
            coeffs = {tau_index: float(age - 1)}
            for vid in var_ids:
                coeffs[vid] = coeffs.get(vid, 0.0) - 1.0
            add_constraint(dict(coeffs), -EPSILON if age > 1 else 0.0)
        if not matched_any:
            return None
        bounds = [b for b in self._bounds]
        tau_lo = 0.0
        tau_hi = None
        if window is not None:
            tau_lo = float(window[0])
            tau_hi = float(window[1]) if window[1] is not None else None
        bounds.append((tau_lo, tau_hi))
        cost = np.zeros(n_delay_vars + 1)
        cost[tau_index] = -1.0  # maximize τ
        result = linprog(
            cost,
            A_ub=np.array(rows) if rows else None,
            b_ub=np.array(rhs) if rhs else None,
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            return None
        return Fraction(result.x[tau_index]).limit_denominator(10**9)

    def feasible(
        self,
        sigma: dict[TimedLeaf, int],
        window: TauRange | None = None,
    ) -> bool:
        """Path-coupled feasibility of a full combination σ."""
        return self.sup_tau(sigma, window) is not None

    def sup_tau_options(
        self,
        options: dict[TimedLeaf, tuple[int, ...]],
        window: TauRange | None = None,
        max_combinations: int = 256,
        deadline=None,
    ) -> Fraction | None:
        """Max τ(σ) over the cartesian product of age options.

        The decision procedure reports *option sets* (a partial choice
        assignment); the exact bound is the max over the full σ's they
        cover.  Returns ``None`` for "all infeasible"; raises
        :class:`AnalysisError` when the product exceeds the cap (the
        caller should fall back to the relaxed bound).  A cooperative
        ``deadline`` is polled before each LP solve, so a wall-clock
        limit cuts the combination loop off mid-product.
        """
        leaves = list(options)
        total = 1
        for tl in leaves:
            total *= len(options[tl])
            if total > max_combinations:
                raise AnalysisError(
                    f"{total} combinations exceed the exact-LP cap"
                )
        best: Fraction | None = None
        import itertools

        for combo in itertools.product(*(options[tl] for tl in leaves)):
            if deadline is not None:
                deadline.check("exact LP")
            sigma = dict(zip(leaves, combo))
            value = self.sup_tau(sigma, window)
            if value is not None and (best is None or value > best):
                best = value
        return best
