"""The paper's gate-coupled linear programs (Sec. 7, exact form).

The relaxed model of :mod:`repro.mct.feasibility` treats each flattened
path delay as an independent interval.  The paper's LP is finer: a path
delay is the *sum of the delays of the gates on the path*, and paths
that share gates share variables, so some relaxed-feasible failing
combinations are actually unrealizable.  This module builds and solves
that program:

    τ(σ) = max τ
           τ(a_p - 1) + ε ≤ Σ_{pin ∈ p} d_pin (+ d_ff + τ_s) ≤ τ·a_p
           d_min ≤ d_pin ≤ d_max            for every pin variable

with one constraint pair per *concrete path* ``p`` (a timed leaf may
cover several paths; σ assigns them all the same age, exactly as the
flattened TBF does).  Solved with scipy's HiGHS; exponential path
enumeration is budget-capped, so this is an opt-in refinement for
small circuits (``MctOptions(exact_feasibility=True)``).

``sup_tau_options`` — the max over a cartesian product of age options —
is a branch-and-bound search rather than a blind loop:

* **interval prescreen**: each σ is first checked against the relaxed
  per-leaf model.  A relaxed-infeasible σ cannot be LP-feasible (the
  LP's variable bounds confine every path total to its leaf interval),
  so its LP is skipped outright.
* **bound pruning**: surviving σ's are visited in descending order of
  their relaxed supremum.  Because the exact τ(σ) never exceeds the
  relaxed one, the first time the next σ's relaxed supremum cannot beat
  the best exact value already found, *no* remaining σ can, and the
  rest of the list is discarded in one step.  Pruning never changes
  the returned maximum — only how much work finds it.
* **sharded solving**: an optional ``shard_dispatch`` callback hands
  the ordered survivor list to :mod:`repro.parallel` in deterministic
  shards with a max-merge (see
  :class:`repro.parallel.windows.LpShardRunner`).

Work accounting lives in :class:`repro.mct.lp_stats.LpStats`; every
``sup_tau_options`` call preserves the identity ``solves +
prescreen_skips + bound_prunes == enumerated combinations``.  A
"solve" is one σ's LP — its ε-strict feasibility phase plus the ε = 0
supremum phase count as a single unit of charged work.
"""

from __future__ import annotations

import itertools
import time
from fractions import Fraction

import numpy as np
from scipy.optimize import linprog

from repro.errors import AnalysisError
from repro.logic.delays import Interval
from repro.mct.discretize import DiscretizedMachine, TimedLeaf
from repro.mct.feasibility import TauRange, point_sigma_sup_tau
from repro.mct.lp_stats import LpStats
from repro.timed.paths import TimedPath, enumerate_paths

#: Strictness slack for the τ(a-1) < k constraints.  Must sit above the
#: LP solver's feasibility tolerance (HiGHS defaults to 1e-7) or strict
#: inequalities silently degrade to non-strict ones.
EPSILON = 1e-6

#: Below this many surviving combinations a shard dispatch costs more
#: than it saves; the branch-and-bound loop then solves serially even
#: when a dispatcher is offered.
SHARD_MIN_SURVIVORS = 8

#: Sentinel: the caller did not precompute the relaxed supremum.
_UNSET = object()


def _survivor_order(entry):
    """Sort key: descending relaxed supremum, then the combo tuple.

    An unbounded relaxed supremum (``None``) sorts first — nothing can
    dominate it — and the age tuple breaks ties so the visiting order
    is a pure function of the survivor set.
    """
    relaxed, combo = entry
    if relaxed is None:
        return (0, 0, combo)
    return (1, -relaxed, combo)


class ExactFeasibility:
    """Path-coupled feasibility/τ(σ) oracle for one discretized machine.

    Enumerate the machine's paths once; then answer per-σ queries.  The
    constraint *skeleton* — one coefficient row per (path, age) pair —
    is built once and cached, so each σ's program is assembled by row
    selection instead of re-walking the paths.
    """

    def __init__(
        self,
        machine: DiscretizedMachine,
        max_paths: int = 10_000,
        stats: LpStats | None = None,
    ):
        self.machine = machine
        self.max_paths = max_paths
        self.stats = stats if stats is not None else LpStats()
        circuit = machine.circuit
        delays = machine.delays
        if delays.has_phases:
            raise AnalysisError(
                "the gate-coupled LP does not model clock phases yet; "
                "use the relaxed feasibility model"
            )
        setup = Interval.point(machine.setup)
        all_paths: list[tuple[TimedLeaf, TimedPath]] = []
        for latch in circuit.latches.values():
            for path in enumerate_paths(
                circuit, delays, latch.data, extra=setup, max_paths=max_paths
            ):
                all_paths.append((self._fold(path), path))
        for po in circuit.outputs:
            for path in enumerate_paths(
                circuit, delays, po, max_paths=max_paths
            ):
                all_paths.append((self._fold(path), path))
        self._paths = all_paths
        # Variable index assignment: pin variables + latch variables.
        self._var_index: dict[tuple, int] = {}
        self._bounds: list[tuple[float, float]] = []
        for _, path in all_paths:
            for edge in path.edges:
                self._pin_var(edge)
            if path.leaf in circuit.latches:
                self._latch_var(path.leaf)
        # Constraint skeleton: each path's variable-occurrence vector
        # (over delay vars + the τ column), fixed for the oracle's
        # lifetime.  Per-(path, age) rows derive from it on demand and
        # are memoized in ``_row_cache``.
        n_vars = len(self._bounds)
        self._tau_index = n_vars
        self._path_base: list[np.ndarray] = []
        for _, path in all_paths:
            base = np.zeros(n_vars + 1)
            for edge in path.edges:
                base[self._pin_var(edge)] += 1.0
            if path.leaf in circuit.latches:
                base[self._latch_var(path.leaf)] += 1.0
            self._path_base.append(base)
        self._row_cache: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}

    def _fold(self, path: TimedPath) -> TimedLeaf:
        total = path.total
        if path.leaf in self.machine.circuit.latches:
            total = total + self.machine.delays.latch(path.leaf)
        return TimedLeaf(path.leaf, total)

    def _pin_var(self, edge: tuple) -> int:
        key = ("pin", edge)
        if key not in self._var_index:
            net, pin, kind = edge
            timing = self.machine.delays.pin(net, pin)
            interval = {
                "s": timing.rise,
                "r": timing.rise,
                "f": timing.fall,
            }[kind]
            self._var_index[key] = len(self._bounds)
            self._bounds.append((float(interval.lo), float(interval.hi)))
        return self._var_index[key]

    def _latch_var(self, q: str) -> int:
        key = ("latch", q)
        if key not in self._var_index:
            interval = self.machine.delays.latch(q)
            self._var_index[key] = len(self._bounds)
            self._bounds.append((float(interval.lo), float(interval.hi)))
        return self._var_index[key]

    def _rows_for(self, path_idx: int, age: int) -> tuple[np.ndarray, np.ndarray]:
        """The (2, n_vars+1) constraint block of one (path, age) pair.

        ``Σ d - a·τ ≤ 0`` and ``(a-1)·τ - Σ d ≤ -ε`` (0 for age 1),
        cached across σ's: the same pair recurs in every combination
        that assigns this path's leaf the same age.
        """
        key = (path_idx, age)
        cached = self._row_cache.get(key)
        if cached is not None:
            self.stats.skeleton_hits += 1
            return cached
        base = self._path_base[path_idx]
        rows = np.empty((2, base.shape[0]))
        rows[0] = base
        rows[0, self._tau_index] = -float(age)
        rows[1] = -base
        rows[1, self._tau_index] = float(age - 1)
        rhs = np.array([0.0, -EPSILON if age > 1 else 0.0])
        entry = (rows, rhs)
        self._row_cache[key] = entry
        return entry

    # ------------------------------------------------------------------
    def sup_tau(
        self,
        sigma: dict[TimedLeaf, int],
        window: TauRange | None = None,
        relaxed=_UNSET,
    ) -> Fraction | None:
        """The paper's ``τ(σ) = max τ`` LP; ``None`` when infeasible.

        ``sigma`` must assign a single age per timed leaf.  Solved in
        two phases: the ε-strict program decides *feasibility* (the
        paper's inequalities are strict; a σ realizable only on the
        boundary is unrealizable), then the program is re-solved with
        ε = 0 — when the strict system is feasible its supremum equals
        the maximum of its closure, so the second optimum is the true
        τ(σ) rather than an ε-short stand-in.  The float optimum is
        converted back to Fraction and clamped to the *relaxed* per-σ
        supremum: exact is never more optimistic than relaxed, but
        ``limit_denominator`` rounding of the solver's float could
        otherwise drift above it.  ``relaxed`` lets the
        branch-and-bound loop pass the value it already computed
        (``None`` = unbounded above); when absent it is derived here,
        and a relaxed-infeasible σ skips the LP outright.
        """
        if relaxed is _UNSET:
            feasible, relaxed = point_sigma_sup_tau(sigma, window)
            if not feasible:
                self.stats.prescreen_skips += 1
                return None
        n_delay_vars = len(self._bounds)
        tau_index = self._tau_index
        blocks: list[np.ndarray] = []
        rhs_blocks: list[np.ndarray] = []
        matched_any = False
        for path_idx, (tl, path) in enumerate(self._paths):
            age = sigma.get(tl)
            if age is None:
                raise AnalysisError(f"σ misses timed leaf {tl}")
            matched_any = True
            if age == 0:
                # Only a genuinely zero path can have age 0; its sum is
                # identically 0 within bounds, nothing to constrain.
                continue
            rows, rhs = self._rows_for(path_idx, age)
            blocks.append(rows)
            rhs_blocks.append(rhs)
        if not matched_any:
            return None
        bounds = [b for b in self._bounds]
        tau_lo = 0.0
        tau_hi = None
        if window is not None:
            tau_lo = float(window[0])
            tau_hi = float(window[1]) if window[1] is not None else None
        bounds.append((tau_lo, tau_hi))
        cost = np.zeros(n_delay_vars + 1)
        cost[tau_index] = -1.0  # maximize τ
        a_ub = np.vstack(blocks) if blocks else None
        b_ub = np.concatenate(rhs_blocks) if rhs_blocks else None
        self.stats.solves += 1
        started = time.perf_counter()
        result = linprog(cost, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
        if result.success and b_ub is not None and b_ub.any():
            # Phase 2: re-maximize over the closure (ε = 0).  The strict
            # system is feasible, so its supremum equals this maximum;
            # keeping ε in the objective phase would understate every
            # age ≥ 2 σ by an ε-artifact and defeat the bound prune.
            closed = linprog(
                cost,
                A_ub=a_ub,
                b_ub=np.zeros_like(b_ub),
                bounds=bounds,
                method="highs",
            )
            if closed.success:
                result = closed
        self.stats.wall_seconds += time.perf_counter() - started
        if not result.success:
            return None
        value = Fraction(result.x[tau_index]).limit_denominator(10**9)
        if relaxed is not None and value > relaxed:
            value = relaxed
        return value

    def feasible(
        self,
        sigma: dict[TimedLeaf, int],
        window: TauRange | None = None,
    ) -> bool:
        """Path-coupled feasibility of a full combination σ."""
        return self.sup_tau(sigma, window) is not None

    def sup_tau_options(
        self,
        options: dict[TimedLeaf, tuple[int, ...]],
        window: TauRange | None = None,
        max_combinations: int = 256,
        deadline=None,
        shard_dispatch=None,
    ) -> Fraction | None:
        """Max τ(σ) over the cartesian product of age options.

        The decision procedure reports *option sets* (a partial choice
        assignment); the exact bound is the max over the full σ's they
        cover, found by branch and bound (see the module docstring).
        Returns ``None`` for "all infeasible"; raises
        :class:`AnalysisError` when the product exceeds the cap (the
        caller should fall back to the relaxed bound).  A cooperative
        ``deadline`` is polled throughout — once per prescreened σ as
        well as before each LP solve — so a wall-clock limit holds even
        when thousands of σ's are skipped without solving.

        ``shard_dispatch(leaves, survivors, window)`` optionally solves
        a large survivor list in parallel shards; it must return one
        ``(best, stats_dict_or_None)`` pair per shard (the max-merge
        here is order-independent, so sharding cannot change the
        result).
        """
        leaves = list(options)
        total = 1
        for tl in leaves:
            total *= len(options[tl])
            if total > max_combinations:
                raise AnalysisError(
                    f"{total} combinations exceed the exact-LP cap"
                )
        # Interval prescreen: drop relaxed-infeasible σ's without an LP
        # and record each survivor's relaxed supremum for the ordering.
        survivors: list[tuple[Fraction | None, tuple[int, ...]]] = []
        for combo in itertools.product(*(options[tl] for tl in leaves)):
            if deadline is not None:
                deadline.check("exact LP prescreen")
            feasible, relaxed = point_sigma_sup_tau(
                dict(zip(leaves, combo)), window
            )
            if not feasible:
                self.stats.prescreen_skips += 1
                continue
            survivors.append((relaxed, combo))
        survivors.sort(key=_survivor_order)
        if (
            shard_dispatch is not None
            and len(survivors) >= SHARD_MIN_SURVIVORS
        ):
            results = shard_dispatch(leaves, survivors, window)
            self.stats.shard_dispatches += len(results)
            best: Fraction | None = None
            for shard_best, stats_dict in results:
                if stats_dict is not None:
                    self.stats.merge(LpStats.from_dict(stats_dict))
                if shard_best is not None and (
                    best is None or shard_best > best
                ):
                    best = shard_best
            return best
        return self.solve_batch(leaves, survivors, window, deadline)

    def solve_batch(
        self,
        leaves: list[TimedLeaf],
        survivors: list[tuple[Fraction | None, tuple[int, ...]]],
        window: TauRange | None = None,
        deadline=None,
        best: Fraction | None = None,
    ) -> Fraction | None:
        """Solve one prescreened, descending-ordered survivor list.

        The serial core of the branch-and-bound loop and the unit of
        work a parallel shard executes.  ``survivors`` must be sorted
        by :func:`_survivor_order` (each shard of an interleaved split
        preserves that order); the bound prune then discards the whole
        tail at the first σ whose relaxed supremum cannot beat ``best``.
        """
        for idx, (relaxed, combo) in enumerate(survivors):
            if best is not None and relaxed is not None and relaxed <= best:
                # exact ≤ relaxed and the list is descending: nothing
                # past this point can improve the maximum.
                self.stats.bound_prunes += len(survivors) - idx
                break
            if deadline is not None:
                deadline.check("exact LP")
            value = self.sup_tau(dict(zip(leaves, combo)), window, relaxed)
            if value is not None and (best is None or value > best):
                best = value
        return best
