"""Useful-skew optimization: the paper's "synthesis" direction.

The closing section points the exact TBF formulation at "the synthesis
of high speed sequential circuits".  This module provides the smallest
such synthesis step built directly on the analysis engine: search
per-latch clock phases that minimize the certified minimum-cycle-time
bound.

The search is coordinate descent over a finite candidate set derived
from the machine's own path delays (phase changes only matter when they
move some effective delay across a breakpoint, so path-delay
differences are the natural grid).  Each candidate assignment is scored
by running the full analysis — expensive but exact, and adequate for
the latch counts where hand skewing is plausible.
"""

from __future__ import annotations

import dataclasses
import itertools
from fractions import Fraction

from repro.errors import AnalysisError
from repro.logic.delays import DelayMap
from repro.logic.netlist import Circuit
from repro.mct.discretize import build_discretized_machine
from repro.mct.engine import MctOptions, minimum_cycle_time


@dataclasses.dataclass(frozen=True)
class SkewResult:
    """Outcome of a skew search."""

    #: Phase per latch (latches omitted keep phase 0).
    phases: dict[str, Fraction]
    #: The certified bound at those phases.
    bound: Fraction
    #: The bound at all-zero phases, for comparison.
    baseline: Fraction
    evaluations: int

    @property
    def improvement(self) -> Fraction:
        """Relative reduction of the cycle-time bound."""
        if self.baseline == 0:
            return Fraction(0)
        return 1 - self.bound / self.baseline


def _phase_candidates(
    circuit: Circuit, delays: DelayMap, granularity: int
) -> list[Fraction]:
    """Candidate phase values.

    A phase only helps by re-balancing two paths, so the useful values
    are path-delay differences and their midpoints (``(k_a - k_b)/2``
    equalizes an incoming/outgoing pair).  A coarse grid over the delay
    span is added as a safety net; the set is capped at a size the
    coordinate descent can afford.
    """
    machine = build_discretized_machine(circuit, delays)
    endpoints = sorted({tl.total.hi for tl in machine.timed_leaves}
                       | {tl.total.lo for tl in machine.timed_leaves})
    top = endpoints[-1]
    values: set[Fraction] = {Fraction(0)}
    for a, b in itertools.combinations(endpoints, 2):
        diff = abs(a - b)
        if diff > 0:
            values.add(diff)
            values.add(diff / 2)
    values |= {top * Fraction(i, 2 * granularity) for i in range(granularity + 1)}
    candidates = sorted(v for v in values if 0 <= v <= top)
    if len(candidates) > 64:
        step = len(candidates) / 64
        candidates = [candidates[int(i * step)] for i in range(64)]
        if Fraction(0) not in candidates:
            candidates.insert(0, Fraction(0))
    return candidates


def optimize_skew(
    circuit: Circuit,
    delays: DelayMap,
    options: MctOptions | None = None,
    granularity: int = 8,
    max_rounds: int = 3,
) -> SkewResult:
    """Coordinate-descent search for cycle-time-minimizing phases.

    Latches are visited round-robin; each takes the best value from the
    candidate grid while the others stay fixed.  Candidate assignments
    that create races (non-positive effective path delays) are skipped.
    """
    if delays.has_phases:
        raise AnalysisError("start the search from a zero-phase delay map")
    if not circuit.latches:
        raise AnalysisError("no latches to skew")
    evaluations = 0

    def bound_for(phases: dict[str, Fraction]) -> Fraction | None:
        nonlocal evaluations
        try:
            annotated = delays.with_phases(phases) if any(phases.values()) else delays
            result = minimum_cycle_time(circuit, annotated, options)
        except AnalysisError:
            return None  # race: infeasible phase assignment
        evaluations += 1
        return result.mct_upper_bound

    phases: dict[str, Fraction] = {q: Fraction(0) for q in circuit.latches}
    baseline = bound_for(phases)
    if baseline is None:  # pragma: no cover - zero phases always legal
        raise AnalysisError("baseline analysis failed")
    best = baseline
    candidates = _phase_candidates(circuit, delays, granularity)
    for _ in range(max_rounds):
        improved = False
        for q in circuit.latches:
            current = phases[q]
            for value in candidates:
                if value == current:
                    continue
                trial = dict(phases)
                trial[q] = value
                bound = bound_for(trial)
                if bound is not None and bound < best:
                    phases = trial
                    best = bound
                    improved = True
        if not improved:
            break
    return SkewResult(
        phases={q: v for q, v in phases.items() if v},
        bound=best,
        baseline=baseline,
        evaluations=evaluations,
    )
