"""The τ-sweep: minimum-cycle-time upper bounds (Secs. 6–7).

Starting from the steady-state constant ``L`` (where the machine is
trivially equivalent to itself), τ is decreased through the critical
breakpoints.  Each breakpoint is the left endpoint of a half-open
window on which the discretized machine is constant; the decision
algorithm is run once per window (memoized by age regime).  The sweep
stops at the first window containing a *feasible* failing combination:

* fixed delays — the bound is the previous (passing) breakpoint;
* interval delays — the bound is ``D̄_s = max_{σ∈Ω} τ(σ)``, the
  supremum over the feasible failing combinations (the paper's linear
  program in its ε→0 limit).

Resilience (see :mod:`repro.resilience` and docs/ROBUSTNESS.md) turns
the paper's "memory out" rows into resumable, explainable partial
results:

* a :class:`~repro.resilience.Deadline` travels with the work
  :class:`~repro.errors.Budget` into every hot inner loop, so
  ``MctOptions.time_limit`` holds *inside* a decision window, not just
  between breakpoints;
* an interrupted sweep snapshots its progress into a
  :class:`~repro.resilience.SweepCheckpoint` attached to the result;
  ``minimum_cycle_time(..., resume_from=ckpt)`` replays the recorded
  candidates and continues from the first unexamined breakpoint;
* an optional graceful-degradation ladder
  (``MctOptions.degradation_ladder``) retries an exhausted window with
  progressively cheaper settings — a fresh budget with the relaxed
  per-path feasibility model, then without reachability don't cares,
  then with a reduced age cap — before giving up; every record and the
  final result carry the rung that produced them.
"""

from __future__ import annotations

import dataclasses
import time
from fractions import Fraction

from repro.bdd import BddStats, Function
from repro.errors import (
    AnalysisError,
    Budget,
    DeadlineExceeded,
    OptionsError,
    ResourceBudgetExceeded,
)
from repro.logic.delays import DelayMap
from repro.logic.netlist import Circuit
from repro.mct.breakpoints import tau_breakpoints
from repro.mct.decision import DecisionContext
from repro.mct.discretize import DiscretizedMachine, build_discretized_machine
from repro.mct.feasibility import sigma_sup_tau
from repro.mct.lp_stats import LpStats
from repro.parallel.supervise import Quarantined, RetryPolicy, SupervisionStats
from repro.resilience.checkpoint import SweepCheckpoint
from repro.resilience.deadline import Deadline

#: The rungs tried, in order, by ``MctOptions(degradation_ladder=...)``
#: when a window exhausts its budget or deadline.  Each rung rebuilds
#: the decision context with a *fresh* budget of the same size — which
#: alone can rescue a window whose shared budget was mostly consumed by
#: earlier windows — and progressively cheaper settings.
DEFAULT_LADDER = ("relaxed", "no-reachability", "reduced-age")


@dataclasses.dataclass(frozen=True)
class MctOptions:
    """Tuning knobs of the sweep (all optional)."""

    #: Initial state (default all-False); Sec. 3 lists initial states
    #: among the sequential properties combinational delays ignore.
    initial_state: dict[str, bool] | None = None
    #: Include primary-output equality (condition C_x part 2).
    check_outputs: bool = True
    #: Restrict the inductive comparison to reachable states
    #: (sequential don't cares).
    use_reachability: bool = False
    #: Stop sweeping below this τ; default L / max_age.
    tau_floor: Fraction | None = None
    #: Cap on any leaf's age (how many cycles a wave may stay in
    #: flight); bounds the unrolling depth m.
    max_age: int = 16
    #: Cap on examined breakpoints.
    max_candidates: int = 2000
    #: BDD-node / expansion-work budget (None = unlimited).
    work_budget: int | None = None
    #: Cap on decoded failing combinations per decision.
    max_failing_options: int = 256
    #: Soft wall-clock limit in seconds (None = unlimited).  Enforced
    #: cooperatively *inside* the hot loops via a
    #: :class:`~repro.resilience.Deadline`, not just between
    #: breakpoints.
    time_limit: float | None = None
    #: Use the paper's gate-coupled LP (Sec. 7) instead of the relaxed
    #: per-path-independent interval model when filtering failing
    #: combinations.  Requires explicit path enumeration: small
    #: circuits only.  Falls back to the relaxed model per-σ when the
    #: combination product exceeds ``max_exact_combinations``.
    exact_feasibility: bool = False
    max_exact_paths: int = 10_000
    max_exact_combinations: int = 256
    #: Shard a large exact-LP survivor set across this many supervised
    #: worker processes (1 = solve in-process).  A pure execution knob
    #: like ``jobs``: the branch-and-bound max-merge is deterministic,
    #: so the bound and candidates are identical at any shard count,
    #: and the knob is not part of the checkpoint fingerprint.  Pool
    #: and cluster workers clamp it to 1 — their LP work is already
    #: distributed at window granularity.
    lp_shards: int = 1
    #: Graceful-degradation rungs tried (in order) when a window
    #: exhausts its budget/deadline; a subset of :data:`DEFAULT_LADDER`.
    #: Empty (the default) fails fast exactly like the seed behaviour.
    degradation_ladder: tuple[str, ...] = ()
    #: The age cap applied by the "reduced-age" rung.
    degraded_max_age: int = 4
    #: Supervision policy of the parallel pools (``jobs > 1``): per-task
    #: attempt budget, wall timeout, and backoff schedule.  A resource
    #: knob like ``work_budget``: not part of the checkpoint fingerprint.
    retry_policy: RetryPolicy = RetryPolicy()
    #: Cluster liveness cadence (socket transports only): the
    #: coordinator pings every worker each ``heartbeat_interval``
    #: seconds and declares one dead after ``heartbeat_timeout``
    #: seconds of silence.  Execution knobs like ``retry_policy``: not
    #: part of the checkpoint fingerprint.
    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 2.5
    #: BDD node-store kernel used by every decision context: ``"array"``
    #: (flat columns + complement edges, the default) or ``"object"``
    #: (the historical store, kept as a cross-check oracle).  Both
    #: kernels are exact and produce identical sweeps, so this is a
    #: representation knob like ``jobs``: not part of the checkpoint
    #: fingerprint.
    bdd_kernel: str = "array"
    #: Arm the BDD manager's dynamic sifting: re-sift the live functions
    #: once the node table grows by this many nodes (None = off, the
    #: default — sifting changes variable levels mid-sweep, which is
    #: safe but makes node counts run-dependent).
    bdd_sift_threshold: int | None = None

    def __post_init__(self):
        # Validate execution knobs at construction time so a bad value
        # fails with a clean OptionsError (CLI exit 1) here, not as a
        # traceback from deep inside a pool or a cluster session.
        if self.heartbeat_interval <= 0:
            raise OptionsError("heartbeat_interval must be positive")
        if self.heartbeat_timeout < self.heartbeat_interval:
            raise OptionsError(
                "heartbeat_timeout must be at least the heartbeat interval"
            )
        if self.bdd_kernel not in ("array", "object"):
            raise OptionsError(
                f"unknown bdd_kernel {self.bdd_kernel!r}; "
                "choose 'array' or 'object'"
            )
        if self.bdd_sift_threshold is not None and self.bdd_sift_threshold < 1:
            raise OptionsError("bdd_sift_threshold must be positive or None")
        if self.max_exact_paths < 1:
            raise OptionsError("max_exact_paths must be positive")
        if self.max_exact_combinations < 1:
            raise OptionsError("max_exact_combinations must be positive")
        if self.lp_shards < 1:
            raise OptionsError("lp_shards must be positive")


@dataclasses.dataclass(frozen=True)
class CandidateRecord:
    """One examined breakpoint and what happened there."""

    tau: Fraction
    #: "steady" | "pass" | "pass-infeasible" | "fail"
    status: str
    m: int = 1
    #: Wall-clock seconds spent deciding this window (0 for steady
    #: windows and records replayed from a checkpoint keep their
    #: original timing).
    elapsed_seconds: float = 0.0
    #: Degradation-ladder rung that produced this verdict.
    rung: str = "exact"
    #: ITE subproblems the BDD engine examined while deciding this
    #: window (0 for steady windows; replayed checkpoint records keep
    #: the count measured when the window was originally decided).
    ite_calls: int = 0
    #: Worker attempts this window consumed under supervision (1 on the
    #: serial path and for undisturbed parallel windows).  A
    #: measurement, like ``elapsed_seconds`` — not part of the verdict.
    attempts: int = 1
    #: True when the supervisor gave up on the pool for this window and
    #: it was decided serially in-process (the verdict is identical
    #: either way; this records *how* it was obtained).
    quarantined: bool = False
    #: Exact-LP programs solved while deciding this window (0 unless
    #: ``exact_feasibility`` filtered failing combinations here).  A
    #: work measurement like ``ite_calls`` — not part of the verdict.
    lp_solves: int = 0


@dataclasses.dataclass(frozen=True)
class DegradationStep:
    """One rung escalation of the graceful-degradation ladder."""

    #: Breakpoint whose window triggered the escalation.
    tau: Fraction
    from_rung: str
    to_rung: str
    #: The exhaustion that forced the step (stringified exception).
    reason: str


@dataclasses.dataclass(frozen=True)
class MctResult:
    """Outcome of a minimum-cycle-time analysis."""

    circuit_name: str
    #: The steady-state constant L (max total loop delay).
    L: Fraction
    #: The computed upper bound on the minimum cycle time, or None if
    #: the analysis could not establish one (budget blown immediately).
    mct_upper_bound: Fraction | None
    #: True when the sweep found an actual failing window (the bound is
    #: tight against C_x); False when the sweep ran out of candidates,
    #: age cap, time or budget while still passing.
    failure_found: bool
    #: The failing window [low, high) when failure_found.
    failing_window: tuple[Fraction, Fraction] | None
    #: Feasible failing combinations (σ age-options) with their τ sups.
    failing_sigmas: tuple = ()
    #: Cones (latch names / primary outputs) whose comparison failed in
    #: the failing window — the structures that pin the bound.
    failing_roots: tuple[str, ...] = ()
    candidates: tuple[CandidateRecord, ...] = ()
    decisions_run: int = 0
    elapsed_seconds: float = 0.0
    budget_exceeded: bool = False
    exhausted: bool = False
    notes: str = ""
    #: True when the cooperative deadline (``time_limit``) interrupted
    #: the analysis.
    deadline_exceeded: bool = False
    #: Degradation-ladder rung in force when the sweep ended.
    rung: str = "exact"
    #: Every rung escalation that happened, in order.
    degradations: tuple[DegradationStep, ...] = ()
    #: Resume token attached when the sweep was interrupted by resource
    #: pressure; pass to ``minimum_cycle_time(resume_from=...)`` or
    #: save to disk for ``repro-mct analyze --resume``.
    checkpoint: SweepCheckpoint | None = None
    #: Merged BDD-engine counters of every decision context the sweep
    #: used (``None`` when the sweep never built one — e.g. the budget
    #: blew during path collection).
    bdd_stats: BddStats | None = None
    #: Merged exact-LP branch-and-bound counters of every oracle the
    #: sweep used (``None`` when ``exact_feasibility`` was off or no
    #: decision context was ever built).
    lp_stats: LpStats | None = None
    #: What the parallel supervisor had to do (crashes survived,
    #: retries, quarantines); ``None`` on the serial path.
    supervision: SupervisionStats | None = None
    #: True when an operator interrupt (Ctrl-C / SIGTERM) stopped the
    #: sweep; the checkpoint is attached so ``--resume`` continues it.
    cancelled: bool = False

    @property
    def improves_on(self) -> Fraction | None:
        """Alias of the bound, for report code symmetry."""
        return self.mct_upper_bound

    @property
    def interrupted(self) -> bool:
        """True when the sweep was stopped early (resources or operator)."""
        return self.budget_exceeded or self.deadline_exceeded or self.cancelled


def minimum_cycle_time(
    circuit: Circuit,
    delays: DelayMap,
    options: MctOptions | None = None,
    resume_from: SweepCheckpoint | None = None,
    jobs: int = 1,
    transport=None,
    progress=None,
    cancel=None,
) -> MctResult:
    """Compute an upper bound on the machine's minimum cycle time.

    This is the paper's full algorithm: TBF discretization, steady
    state at τ = L, critical-τ sweep with Decision Algorithm 6.1 at
    every regime, interval algebra + feasibility for variable delays.

    ``resume_from`` continues an interrupted sweep from its
    :class:`~repro.resilience.SweepCheckpoint`: the recorded candidates
    are replayed verbatim and the sweep proceeds from the first
    unexamined breakpoint, so the final bound and candidate sequence
    match what an uninterrupted run would have produced.  The
    checkpoint must match the circuit and options
    (:class:`~repro.errors.CheckpointError` otherwise); the work budget
    and time limit are intentionally *not* part of that fingerprint —
    resuming with fresh resources is the point.

    ``jobs > 1`` decides the upcoming breakpoint windows speculatively
    on a pool of worker processes (see :mod:`repro.parallel`): verdicts
    are committed strictly in breakpoint order and speculative work
    past the first failing window is discarded, so the bound, candidate
    sequence, and any checkpoint match the serial sweep.  Like the
    budget and time limit, ``jobs`` is a resource knob and not part of
    the checkpoint fingerprint — serial and parallel checkpoints are
    interchangeable.  A configured ``degradation_ladder`` is stateful
    across windows and therefore always runs serially.

    ``transport`` swaps the execution substrate of the parallel sweep:
    a :class:`~repro.parallel.Transport` whose session decides the
    windows — the in-process pool of ``jobs=N``
    (:class:`~repro.parallel.LocalTransport`) or remote socket workers
    (:class:`~repro.parallel.SocketTransport`).  Transport identity is
    an execution detail like ``jobs``: excluded from the checkpoint
    fingerprint, so checkpoints move freely between serial, pooled,
    and clustered runs.

    ``progress`` is an optional callable invoked with each
    :class:`CandidateRecord` as it commits (serial or parallel; records
    replayed from a checkpoint are not re-announced).  ``cancel`` is an
    optional :class:`threading.Event`-like object polled between
    breakpoint windows; once set, the sweep stops exactly like an
    operator Ctrl-C — ``result.cancelled`` with a resume checkpoint
    attached.  Both are execution hooks (the MCT service daemon streams
    and cancels jobs through them) and, like ``jobs``, never enter the
    checkpoint fingerprint.
    """
    options = options or MctOptions()
    start = time.monotonic()
    deadline = Deadline.after(options.time_limit)
    budget = (
        Budget(limit=options.work_budget, resource="mct work")
        if options.work_budget
        else None
    )
    try:
        machine = build_discretized_machine(
            circuit, delays, budget=budget, deadline=deadline
        )
    except ResourceBudgetExceeded:
        return MctResult(
            circuit_name=circuit.name,
            L=Fraction(0),
            mct_upper_bound=None,
            failure_found=False,
            failing_window=None,
            budget_exceeded=True,
            elapsed_seconds=time.monotonic() - start,
            notes="budget exhausted during path collection",
        )
    except DeadlineExceeded:
        return MctResult(
            circuit_name=circuit.name,
            L=Fraction(0),
            mct_upper_bound=None,
            failure_found=False,
            failing_window=None,
            deadline_exceeded=True,
            exhausted=True,
            elapsed_seconds=time.monotonic() - start,
            notes="time limit reached during path collection",
        )
    sweep = _Sweep(
        circuit, machine, options, budget, deadline, start,
        jobs=jobs, transport=transport, progress=progress, cancel=cancel,
    )
    if resume_from is not None:
        sweep.restore(resume_from)
    return sweep.run()


def _fingerprint(options: MctOptions) -> dict:
    """The JSON-safe option subset a checkpoint must match on resume.

    ``work_budget`` and ``time_limit`` are deliberately absent: they
    describe *resources*, not the analysis, and resuming with more of
    either is the normal use.  Execution-side options are excluded for
    the same reason — ``retry_policy``, the heartbeat knobs, ``jobs``,
    ``lp_shards``, and the transport identity (local pool vs. socket
    cluster) never enter the fingerprint, so a checkpoint written by
    any execution configuration resumes under any other.  The exact-LP
    caps (``max_exact_paths`` / ``max_exact_combinations``) are also
    resource ceilings, not analysis choices, and stay out for the same
    reason the work budget does.
    """
    return {
        "check_outputs": bool(options.check_outputs),
        "use_reachability": bool(options.use_reachability),
        "max_age": int(options.max_age),
        "max_candidates": int(options.max_candidates),
        "max_failing_options": int(options.max_failing_options),
        "exact_feasibility": bool(options.exact_feasibility),
        "tau_floor": None if options.tau_floor is None else str(options.tau_floor),
        "initial_state": (
            None
            if options.initial_state is None
            else {str(k): bool(v) for k, v in sorted(options.initial_state.items())}
        ),
        "degradation_ladder": [str(name) for name in options.degradation_ladder],
        "degraded_max_age": int(options.degraded_max_age),
    }


def options_fingerprint(options: MctOptions) -> dict:
    """The analysis-option fingerprint, as a public content address.

    Exactly the dict a :class:`~repro.resilience.SweepCheckpoint`
    validates on resume (see :func:`_fingerprint`): the full set of
    options that *change the analysis*, with every resource and
    execution knob excluded.  Because the sweep is deterministic, this
    fingerprint plus a hash of the circuit and delays content-addresses
    the result — the MCT service daemon keys its result cache on it, so
    identical submissions cost one sweep.
    """
    return _fingerprint(options)


@dataclasses.dataclass(frozen=True)
class _RungConfig:
    """Effective settings of one degradation-ladder rung."""

    name: str
    use_reachability: bool
    exact_feasibility: bool
    max_age: int


def _ladder(options: MctOptions) -> tuple[_RungConfig, ...]:
    """Rung 0 (the configured analysis) plus the requested fallbacks."""
    rungs = [
        _RungConfig(
            "exact",
            options.use_reachability,
            options.exact_feasibility,
            options.max_age,
        )
    ]
    for name in options.degradation_ladder:
        if name == "relaxed":
            rungs.append(
                _RungConfig(name, options.use_reachability, False, options.max_age)
            )
        elif name == "no-reachability":
            rungs.append(_RungConfig(name, False, False, options.max_age))
        elif name == "reduced-age":
            rungs.append(
                _RungConfig(
                    name,
                    False,
                    False,
                    min(options.max_age, options.degraded_max_age),
                )
            )
        else:
            raise AnalysisError(f"unknown degradation rung {name!r}")
    return tuple(rungs)


@dataclasses.dataclass
class _Verdict:
    """What one fully-examined window concluded."""

    status: str  # "pass" | "pass-infeasible" | "fail"
    m: int
    bound: Fraction | None = None
    sigmas: tuple = ()
    roots: tuple[str, ...] = ()


class _SweepStop(Exception):
    """Internal: the sweep must stop and report a partial result."""

    def __init__(
        self,
        notes: str,
        budget: bool = False,
        deadline: bool = False,
        exhausted: bool = False,
    ):
        super().__init__(notes)
        self.notes = notes
        self.budget = budget
        self.deadline = deadline
        self.exhausted = exhausted


#: Sentinel distinguishing "not computed yet" from a computed ``None``.
_UNSET = object()


def decide_window(
    context,
    regime,
    window,
    options: MctOptions,
    oracle_factory=None,
    deadline=None,
) -> _Verdict:
    """Decision + feasibility pass for one breakpoint window.

    The rung-agnostic core of the sweep, shared by the serial ladder
    (:meth:`_Sweep._examine_at`) and the parallel window workers
    (:mod:`repro.parallel.windows`).  ``oracle_factory`` lazily builds
    the exact gate-coupled LP oracle; it is only invoked when failing
    combinations actually need filtering.  With ``options.lp_shards >
    1`` a supervised shard pool (built lazily, torn down before
    returning) solves large survivor sets in parallel — the verdict is
    identical, only the wall clock changes.
    """
    outcome = context.decide(regime)
    if outcome.passed_structurally:
        return _Verdict("pass", outcome.m)
    window_top = window[1]
    if not outcome.has_choices:
        return _Verdict(
            "fail",
            outcome.m,
            bound=window_top,
            sigmas=tuple(
                (sigma, window_top) for sigma in outcome.failing_options
            ),
            roots=outcome.failing_roots,
        )
    oracle = oracle_factory() if oracle_factory is not None else None
    shard_runner = None
    feasible = []
    try:
        for sigma in outcome.failing_options:
            sup = sigma_sup_tau(sigma, window, deadline=deadline)
            if sup is None:
                continue
            if oracle is not None:
                if shard_runner is None and options.lp_shards > 1:
                    from repro.parallel.windows import LpShardRunner

                    shard_runner = LpShardRunner(
                        oracle,
                        shards=options.lp_shards,
                        policy=options.retry_policy,
                        deadline=deadline,
                    )
                exact_sup = _exact_sup(
                    oracle,
                    sigma,
                    window,
                    options,
                    deadline,
                    shard_dispatch=(
                        shard_runner.dispatch if shard_runner else None
                    ),
                )
                if exact_sup is _RELAXED:
                    pass  # fell back: keep the relaxed sup
                elif exact_sup is None:
                    continue  # coupled LP proves σ unrealizable
                else:
                    sup = exact_sup
            feasible.append((sigma, sup))
    finally:
        if shard_runner is not None:
            shard_runner.shutdown()
    if not feasible:
        return _Verdict("pass-infeasible", outcome.m)
    return _Verdict(
        "fail",
        outcome.m,
        bound=max(sup for _, sup in feasible),
        sigmas=tuple(feasible),
        roots=outcome.failing_roots,
    )


class _Sweep:
    """One τ-sweep run: breakpoint loop, ladder, checkpointing."""

    def __init__(
        self,
        circuit: Circuit,
        machine: DiscretizedMachine,
        options: MctOptions,
        budget: Budget | None,
        deadline: Deadline | None,
        start: float,
        jobs: int = 1,
        transport=None,
        progress=None,
        cancel=None,
    ):
        self.circuit = circuit
        self.machine = machine
        self.options = options
        self.budget = budget
        self.deadline = deadline
        self.start = start
        self.jobs = max(1, int(jobs))
        self.transport = transport
        self.progress = progress
        self.cancel = cancel
        self.rungs = _ladder(options)
        self.rung_idx = 0
        self.contexts: dict[int, DecisionContext] = {}
        self.records: list[CandidateRecord] = []
        self.prev_tau: Fraction | None = None
        self.prev_regime = None
        self.resume_below: Fraction | None = None
        self.degradations: list[DegradationStep] = []
        self._degraded_by = "budget"
        self._reachable_fn = _UNSET
        self._oracle_cache = _UNSET

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def restore(self, checkpoint: SweepCheckpoint) -> None:
        """Replay an interrupted sweep's progress before running."""
        checkpoint.validate(
            self.circuit.name, self.machine.L, _fingerprint(self.options)
        )
        self.records = list(checkpoint.records)
        self.prev_tau = checkpoint.last_tau
        self.resume_below = checkpoint.last_tau
        if checkpoint.last_tau is not None:
            self.prev_regime = self.machine.regime(checkpoint.last_tau)
        for idx, rung in enumerate(self.rungs):
            if rung.name == checkpoint.rung:
                self.rung_idx = idx
                break

    def _commit(self, record: CandidateRecord) -> None:
        """Append one record and announce it to the progress hook.

        Every committed record flows through here (serial and parallel
        paths alike); checkpoint replay bypasses it by design, so a
        resumed sweep only announces windows it actually examined.
        """
        self.records.append(record)
        if self.progress is not None:
            self.progress(record)

    def _check_cancelled(self) -> None:
        """Honour an external cancel request between windows.

        Raising :class:`KeyboardInterrupt` reuses the operator-interrupt
        contract verbatim: the sweep keeps every committed record,
        attaches a resume checkpoint, and reports ``cancelled`` (the
        CLI's exit-3 partial-result shape).
        """
        if self.cancel is not None and self.cancel.is_set():
            raise KeyboardInterrupt

    def _checkpoint(
        self,
        reason: str,
        bdd_stats: BddStats | None = None,
        supervision: SupervisionStats | None = None,
        lp_stats: LpStats | None = None,
    ) -> SweepCheckpoint:
        return SweepCheckpoint(
            circuit_name=self.circuit.name,
            L=self.machine.L,
            last_tau=self.prev_tau,
            records=tuple(self.records),
            rung=self.rungs[self.rung_idx].name,
            reason=reason,
            fingerprint=_fingerprint(self.options),
            bdd_stats=None if bdd_stats is None else bdd_stats.as_dict(),
            supervision=(
                None if supervision is None else supervision.as_dict()
            ),
            lp_stats=None if lp_stats is None else lp_stats.as_dict(),
        )

    # ------------------------------------------------------------------
    # Lazy shared artifacts
    # ------------------------------------------------------------------
    def _reachable(self) -> Function:
        if self._reachable_fn is _UNSET:
            self._reachable_fn = _reachable_care(self.circuit, self.options)
        return self._reachable_fn

    def _oracle(self):
        if self._oracle_cache is _UNSET:
            # Charge the active rung's context so LP counters ride the
            # same per-context merge paths as the BDD counters (the
            # context exists by the time decide_window invokes us).
            self._oracle_cache = _exact_oracle(
                self.machine,
                self.options,
                stats=self._context(self.rung_idx).lp_stats,
            )
        return self._oracle_cache

    def _bdd_stats(self) -> BddStats | None:
        """Merged BDD counters across every context built so far."""
        if not self.contexts:
            return None
        merged = BddStats()
        for context in self.contexts.values():
            merged.merge(context.bdd_stats)
        return merged

    def _lp_stats(self) -> LpStats | None:
        """Merged exact-LP counters, or None when exact mode is off."""
        if not self.options.exact_feasibility or not self.contexts:
            return None
        merged = LpStats()
        for context in self.contexts.values():
            merged.merge(context.lp_stats)
        return merged

    def _ite_calls(self) -> int:
        """Total ITE calls across every context built so far."""
        return sum(
            context.bdd_stats.ite_calls for context in self.contexts.values()
        )

    def _lp_solves(self) -> int:
        """Total LP solves across every context built so far."""
        return sum(
            context.lp_stats.solves for context in self.contexts.values()
        )

    def _context(self, idx: int) -> DecisionContext:
        """The decision context of rung ``idx`` (created on demand).

        Rung 0 shares the sweep-wide budget; every later rung gets a
        fresh budget of the same size, so a degraded retry is not
        doomed by units consumed before the escalation.
        """
        context = self.contexts.get(idx)
        if context is None:
            rung = self.rungs[idx]
            if idx == 0:
                budget = self.budget
            elif self.options.work_budget:
                budget = Budget(
                    limit=self.options.work_budget,
                    resource=f"mct work[{rung.name}]",
                )
            else:
                budget = None
            context = DecisionContext(
                self.machine,
                initial_state=self.options.initial_state,
                check_outputs=self.options.check_outputs,
                reachable=self._reachable() if rung.use_reachability else None,
                budget=budget,
                max_failing_options=self.options.max_failing_options,
                deadline=self.deadline,
                kernel=self.options.bdd_kernel,
                sift_threshold=self.options.bdd_sift_threshold,
            )
            self.contexts[idx] = context
        return context

    # ------------------------------------------------------------------
    # The sweep
    # ------------------------------------------------------------------
    def run(self) -> MctResult:
        """Serial sweep, or the speculative parallel sweep for jobs > 1.

        The degradation ladder mutates rung state across windows, so a
        ladder-configured sweep always runs serially regardless of
        ``jobs`` or ``transport``.
        """
        parallel = self.transport is not None or self.jobs > 1
        if parallel and not self.options.degradation_ladder:
            return self._run_parallel()
        return self._run_serial()

    def _run_serial(self) -> MctResult:
        options = self.options
        machine = self.machine
        tau_floor = options.tau_floor
        if tau_floor is None:
            tau_floor = machine.L / options.max_age
        steady = machine.steady_regime()

        mct_ub: Fraction | None = None
        failure_found = False
        failing_window = None
        failing_sigmas: tuple = ()
        failing_roots: tuple[str, ...] = ()
        exhausted = False
        budget_exceeded = False
        deadline_exceeded = False
        notes = ""
        interrupted = False
        cancelled = False
        try:
            for tau in tau_breakpoints(machine.endpoint_values, tau_floor):
                if self.resume_below is not None and tau >= self.resume_below:
                    continue  # already examined before the checkpoint
                if len(self.records) >= options.max_candidates:
                    exhausted, notes = True, "candidate cap reached"
                    break
                self._check_cancelled()
                if self.deadline is not None and self.deadline.expired():
                    exhausted, deadline_exceeded = True, True
                    notes = "time limit reached"
                    interrupted = True
                    break
                regime = machine.regime(tau)
                m = max(max(ages) for ages in regime.values())
                rung = self.rungs[self.rung_idx]
                if m > rung.max_age:
                    exhausted = True
                    if self.rung_idx == 0:
                        notes = f"age cap {rung.max_age} reached"
                    else:
                        # Degraded capability ran out: partial result.
                        notes = (
                            f"age cap {rung.max_age} reached "
                            f"(degraded rung {rung.name})"
                        )
                        budget_exceeded = self._degraded_by == "budget"
                        deadline_exceeded = self._degraded_by == "deadline"
                        interrupted = True
                    break
                if regime == self.prev_regime:
                    self.prev_tau = tau
                    continue
                self.prev_regime = regime
                if regime == steady:
                    self._commit(
                        CandidateRecord(tau, "steady", m, 0.0, rung.name)
                    )
                    self.prev_tau = tau
                    continue
                window_top = (
                    self.prev_tau if self.prev_tau is not None else machine.L
                )
                window = (tau, window_top)
                verdict = self._decide_serial(regime, m, tau, window)
                if verdict.status != "fail":
                    self.prev_tau = tau
                    continue
                mct_ub = verdict.bound
                failure_found = True
                failing_window = window
                failing_sigmas = verdict.sigmas
                failing_roots = verdict.roots
                break
            else:
                # The stream only yields breakpoints strictly above the
                # floor; examine the floor itself so the exhausted-sweep
                # bound is the grid-independent τ floor rather than the
                # smallest breakpoint the delay values happened to put
                # on the grid (which is not monotone under widening —
                # hypothesis seed 2476).
                event = self._floor_event(
                    tau_floor,
                    self.prev_tau,
                    self.prev_regime,
                    len(self.records),
                )
                if event is not None and event[0] == "steady":
                    _, tau, m = event
                    self._commit(
                        CandidateRecord(
                            tau, "steady", m, 0.0,
                            self.rungs[self.rung_idx].name,
                        )
                    )
                    self.prev_tau = tau
                elif event is not None:
                    _, tau, window, regime, m = event
                    verdict = self._decide_serial(regime, m, tau, window)
                    if verdict.status == "fail":
                        mct_ub = verdict.bound
                        failure_found = True
                        failing_window = window
                        failing_sigmas = verdict.sigmas
                        failing_roots = verdict.roots
                    else:
                        self.prev_tau = tau
                if not failure_found:
                    exhausted = True
                    notes = "breakpoint stream exhausted (τ floor)"
        except _SweepStop as stop:
            budget_exceeded = budget_exceeded or stop.budget
            deadline_exceeded = deadline_exceeded or stop.deadline
            exhausted = exhausted or stop.exhausted
            notes = stop.notes
            interrupted = True
        except KeyboardInterrupt:
            # Operator Ctrl-C / SIGTERM: keep everything decided so far
            # and attach a checkpoint — the sweep is always resumable.
            cancelled = interrupted = True
            notes = "interrupted by operator; resume with the checkpoint"

        return self._finalize(
            mct_ub=mct_ub,
            failure_found=failure_found,
            failing_window=failing_window,
            failing_sigmas=failing_sigmas,
            failing_roots=failing_roots,
            budget_exceeded=budget_exceeded,
            deadline_exceeded=deadline_exceeded,
            exhausted=exhausted,
            notes=notes,
            interrupted=interrupted,
            cancelled=cancelled,
            decisions_run=sum(
                ctx.decisions_run for ctx in self.contexts.values()
            ),
            bdd_stats=self._bdd_stats(),
            lp_stats=self._lp_stats(),
        )

    def _decide_serial(self, regime, m: int, tau: Fraction, window) -> _Verdict:
        """Examine one window via the ladder and append its record."""
        window_start = time.monotonic()
        ite_before = self._ite_calls()
        lp_before = self._lp_solves()
        verdict = self._examine(regime, m, tau, window)
        self._commit(
            CandidateRecord(
                tau,
                verdict.status,
                verdict.m,
                time.monotonic() - window_start,
                self.rungs[self.rung_idx].name,
                self._ite_calls() - ite_before,
                lp_solves=self._lp_solves() - lp_before,
            )
        )
        return verdict

    def _finalize(
        self,
        *,
        mct_ub: Fraction | None,
        failure_found: bool,
        failing_window,
        failing_sigmas: tuple,
        failing_roots: tuple[str, ...],
        budget_exceeded: bool,
        deadline_exceeded: bool,
        exhausted: bool,
        notes: str,
        interrupted: bool,
        decisions_run: int,
        bdd_stats: BddStats | None,
        lp_stats: LpStats | None = None,
        supervision: SupervisionStats | None = None,
        cancelled: bool = False,
    ) -> MctResult:
        """Assemble the :class:`MctResult` (shared serial/parallel tail)."""
        machine = self.machine
        if mct_ub is None:
            # Never failed: report the last *examined* breakpoint — the
            # machine is proven equivalent for every τ ≥ that value.
            passing = [r.tau for r in self.records if r.status != "fail"]
            mct_ub = (
                min(passing)
                if passing
                else (machine.L if not budget_exceeded else None)
            )
            if mct_ub is not None and not notes:
                exhausted = True
                notes = "no failing window found down to the sweep floor"
        return MctResult(
            circuit_name=self.circuit.name,
            L=machine.L,
            mct_upper_bound=mct_ub,
            failure_found=failure_found,
            failing_window=failing_window,
            failing_sigmas=failing_sigmas,
            failing_roots=failing_roots,
            candidates=tuple(self.records),
            decisions_run=decisions_run,
            elapsed_seconds=time.monotonic() - self.start,
            budget_exceeded=budget_exceeded,
            deadline_exceeded=deadline_exceeded,
            exhausted=exhausted,
            notes=notes,
            rung=self.rungs[self.rung_idx].name,
            degradations=tuple(self.degradations),
            checkpoint=(
                self._checkpoint(notes, bdd_stats, supervision, lp_stats)
                if interrupted
                else None
            ),
            bdd_stats=bdd_stats,
            lp_stats=lp_stats,
            supervision=supervision,
            cancelled=cancelled,
        )

    # ------------------------------------------------------------------
    # The parallel sweep (speculative window decisions)
    # ------------------------------------------------------------------
    def _plan_events(self):
        """Planned sweep events, independent of window verdicts.

        Which windows need a decision — their regimes, unrolling depths
        and window tops — is a pure function of the breakpoint stream;
        a verdict only determines *whether the sweep continues*.  This
        generator replays the serial loop's bookkeeping (resume skips,
        candidate cap, age cap, same-regime skips, steady windows)
        without deciding anything, so the parallel sweep can submit
        decisions speculatively and still commit records in exactly the
        serial order.  Events::

            ("skip", tau)                     same regime: advance prev_tau
            ("steady", tau, m)                steady window: record, no decision
            ("decide", tau, window, regime, m) undecided window
            ("stop", notes)                   sweep exhausted (cap/floor)
        """
        options = self.options
        machine = self.machine
        tau_floor = options.tau_floor
        if tau_floor is None:
            tau_floor = machine.L / options.max_age
        steady = machine.steady_regime()
        rung = self.rungs[self.rung_idx]
        planned = len(self.records)
        prev_tau = self.prev_tau
        prev_regime = self.prev_regime
        for tau in tau_breakpoints(machine.endpoint_values, tau_floor):
            if self.resume_below is not None and tau >= self.resume_below:
                continue  # already examined before the checkpoint
            if planned >= options.max_candidates:
                yield ("stop", "candidate cap reached")
                return
            regime = machine.regime(tau)
            m = max(max(ages) for ages in regime.values())
            if m > rung.max_age:
                yield ("stop", f"age cap {rung.max_age} reached")
                return
            if regime == prev_regime:
                yield ("skip", tau)
                prev_tau = tau
                continue
            prev_regime = regime
            if regime == steady:
                yield ("steady", tau, m)
                prev_tau = tau
                planned += 1
                continue
            window_top = prev_tau if prev_tau is not None else machine.L
            yield ("decide", tau, (tau, window_top), regime, m)
            prev_tau = tau
            planned += 1
        event = self._floor_event(tau_floor, prev_tau, prev_regime, planned)
        if event is not None:
            yield event
        yield ("stop", "breakpoint stream exhausted (τ floor)")

    def _floor_event(self, tau_floor, prev_tau, prev_regime, planned):
        """The synthetic final window ``[τ floor, prev_tau)``, or None.

        :func:`~repro.mct.breakpoints.tau_breakpoints` yields only
        values strictly above the floor, so an exhausted sweep used to
        report the smallest *breakpoint* examined as its bound — a
        delay-grid artifact: adding grid points (e.g. a setup guard
        band) could shrink the reported bound of a strictly more
        pessimistic machine.  Examining the floor itself pins the
        exhausted-sweep bound to the grid-independent ``τ floor``.
        Shared by the serial for-else and the parallel planner so both
        paths stay event-for-event identical.
        """
        machine = self.machine
        if prev_tau is None or tau_floor <= 0 or tau_floor >= prev_tau:
            return None
        if self.resume_below is not None and tau_floor >= self.resume_below:
            return None
        if planned >= self.options.max_candidates:
            return None
        regime = machine.regime(tau_floor)
        m = max(max(ages) for ages in regime.values())
        if m > self.rungs[self.rung_idx].max_age:
            return None
        if regime == prev_regime:
            return None  # same machine as the last examined window
        if regime == machine.steady_regime():
            return ("steady", tau_floor, m)
        return ("decide", tau_floor, (tau_floor, prev_tau), regime, m)

    def _run_parallel(self) -> MctResult:
        """Decide upcoming windows speculatively, commit in order.

        Workers (pool processes or cluster hosts — whatever the
        :class:`~repro.parallel.Transport` session provides) each own a
        BDD manager and decide whole windows (decision + feasibility);
        the parent keeps up to ``session.capacity`` windows in flight,
        commits verdicts strictly in breakpoint order, and discards
        speculative results past the first failing window, so the
        bound, candidate sequence, and checkpoint match
        :meth:`_run_serial` exactly.  Per-record
        ``elapsed_seconds``/``ite_calls`` and the merged ``bdd_stats``
        are measurements of the parallel execution (each worker warms
        its own caches) and legitimately differ from a serial run's.
        """
        from collections import deque

        from repro.parallel.transport import LocalTransport

        mct_ub: Fraction | None = None
        failure_found = False
        failing_window = None
        failing_sigmas: tuple = ()
        failing_roots: tuple[str, ...] = ()
        exhausted = False
        budget_exceeded = False
        deadline_exceeded = False
        notes = ""
        interrupted = False
        cancelled = False
        rung_name = self.rungs[self.rung_idx].name
        #: pid -> (seq, BddStats dict, LpStats dict | None,
        #: decisions_run): latest cumulative snapshot each worker
        #: attached to a task result.
        snapshots: dict[int, tuple[int, dict, dict | None, int]] = {}

        def absorb(payload: dict) -> None:
            snap = payload.get("worker")
            if snap is None:
                return
            have = snapshots.get(snap["pid"])
            if have is None or have[0] < snap["seq"]:
                snapshots[snap["pid"]] = (
                    snap["seq"],
                    snap["stats"],
                    snap.get("lp"),
                    snap["decisions_run"],
                )

        transport = self.transport or LocalTransport(self.jobs)
        session = transport.open_windows(
            self.circuit,
            self.machine.delays,
            self.options,
            budget=self.budget,
            deadline=self.deadline,
        )
        plan = self._plan_events()
        pending: deque = deque()
        in_flight = 0
        plan_done = False
        try:
            while True:
                while not plan_done and in_flight < session.capacity:
                    try:
                        event = next(plan)
                    except StopIteration:
                        plan_done = True
                        break
                    if event[0] == "decide":
                        _, tau, window, regime, m = event
                        handle = session.submit(regime, window)
                        pending.append(
                            ("decide", tau, window, regime, m, handle)
                        )
                        in_flight += 1
                    else:
                        pending.append(event)
                        if event[0] == "stop":
                            plan_done = True
                if not pending:
                    break
                event = pending.popleft()
                kind = event[0]
                if kind == "stop":
                    exhausted, notes = True, event[1]
                    break
                self._check_cancelled()
                if self.deadline is not None and self.deadline.expired():
                    exhausted = deadline_exceeded = interrupted = True
                    notes = "time limit reached"
                    break
                if kind == "skip":
                    self.prev_tau = event[1]
                    continue
                if kind == "steady":
                    _, tau, m = event
                    self._commit(
                        CandidateRecord(tau, "steady", m, 0.0, rung_name)
                    )
                    self.prev_tau = tau
                    continue
                _, tau, window, regime, m, handle = event
                in_flight -= 1
                try:
                    outcome = session.result(handle)
                except DeadlineExceeded:
                    exhausted = deadline_exceeded = interrupted = True
                    notes = "time limit reached"
                    break
                if isinstance(outcome, Quarantined):
                    # The pool could not produce this window within the
                    # attempt budget: decide it serially in-process.
                    # Same decide_window core, parent-side context —
                    # degraded throughput, identical verdict.
                    window_start = time.monotonic()
                    ite_before = self._ite_calls()
                    lp_before = self._lp_solves()
                    try:
                        verdict = self._examine_at(
                            self.rungs[self.rung_idx], regime, window
                        )
                    except ResourceBudgetExceeded:
                        budget_exceeded = interrupted = True
                        notes = (
                            "work budget exhausted; "
                            "last passing bound reported"
                        )
                        break
                    except DeadlineExceeded:
                        deadline_exceeded = exhausted = interrupted = True
                        notes = (
                            "time limit exceeded mid-window; "
                            "last passing bound reported"
                        )
                        break
                    self._commit(
                        CandidateRecord(
                            tau,
                            verdict.status,
                            verdict.m,
                            time.monotonic() - window_start,
                            rung_name,
                            self._ite_calls() - ite_before,
                            attempts=outcome.attempts,
                            quarantined=True,
                            lp_solves=self._lp_solves() - lp_before,
                        )
                    )
                else:
                    payload = outcome
                    absorb(payload)
                    error = payload.get("error")
                    if error == "budget":
                        budget_exceeded = interrupted = True
                        notes = (
                            "work budget exhausted; "
                            "last passing bound reported"
                        )
                        break
                    if error == "deadline":
                        deadline_exceeded = exhausted = interrupted = True
                        notes = (
                            "time limit exceeded mid-window; "
                            "last passing bound reported"
                        )
                        break
                    if error is not None:
                        raise AnalysisError(
                            "parallel sweep worker failed: "
                            f"{payload.get('detail', error)}"
                        )
                    verdict = payload["verdict"]
                    self._commit(
                        CandidateRecord(
                            tau,
                            verdict.status,
                            verdict.m,
                            payload["elapsed"],
                            rung_name,
                            payload["ite_calls"],
                            attempts=handle.attempts,
                            lp_solves=payload.get("lp_solves", 0),
                        )
                    )
                if verdict.status != "fail":
                    self.prev_tau = tau
                    continue
                mct_ub = verdict.bound
                failure_found = True
                failing_window = window
                failing_sigmas = verdict.sigmas
                failing_roots = verdict.roots
                break
        except KeyboardInterrupt:
            # Operator Ctrl-C / SIGTERM: keep every committed record and
            # attach a checkpoint — the sweep is always resumable.
            cancelled = interrupted = True
            notes = "interrupted by operator; resume with the checkpoint"
        finally:
            # Drain telemetry from any completed speculative tasks, then
            # abandon the rest (their verdicts are intentionally unused).
            for event in pending:
                if event[0] != "decide":
                    continue
                payload = session.peek(event[5])
                if payload is not None:
                    absorb(payload)
            session.shutdown()
        # Parent-side contexts exist only for quarantined windows; merge
        # them with the workers' cumulative snapshots.
        merged = self._bdd_stats()
        merged_lp = self._lp_stats()
        decisions = sum(ctx.decisions_run for ctx in self.contexts.values())
        if snapshots:
            if merged is None:
                merged = BddStats()
            for _, stats_dict, lp_dict, decided in snapshots.values():
                merged.merge(BddStats.from_dict(stats_dict))
                decisions += decided
                if lp_dict is not None and self.options.exact_feasibility:
                    if merged_lp is None:
                        merged_lp = LpStats()
                    merged_lp.merge(LpStats.from_dict(lp_dict))
        return self._finalize(
            mct_ub=mct_ub,
            failure_found=failure_found,
            failing_window=failing_window,
            failing_sigmas=failing_sigmas,
            failing_roots=failing_roots,
            budget_exceeded=budget_exceeded,
            deadline_exceeded=deadline_exceeded,
            exhausted=exhausted,
            notes=notes,
            interrupted=interrupted,
            cancelled=cancelled,
            decisions_run=decisions,
            bdd_stats=merged,
            lp_stats=merged_lp,
            supervision=session.stats,
        )

    # ------------------------------------------------------------------
    # One window, with the degradation ladder
    # ------------------------------------------------------------------
    def _examine(self, regime, m: int, tau: Fraction, window) -> _Verdict:
        """Decide one window, climbing the ladder on exhaustion."""
        while True:
            rung = self.rungs[self.rung_idx]
            if m > rung.max_age:
                # Only reachable after an escalation to "reduced-age"
                # (the main loop vetted m against the cap on entry).
                raise _SweepStop(
                    f"age cap {rung.max_age} reached "
                    f"(degraded rung {rung.name})",
                    budget=self._degraded_by == "budget",
                    deadline=self._degraded_by == "deadline",
                    exhausted=True,
                )
            try:
                return self._examine_at(rung, regime, window)
            except (ResourceBudgetExceeded, DeadlineExceeded) as exc:
                if not self._escalate(exc, tau):
                    if isinstance(exc, DeadlineExceeded):
                        raise _SweepStop(
                            "time limit exceeded mid-window; "
                            "last passing bound reported",
                            deadline=True,
                            exhausted=True,
                        ) from exc
                    raise _SweepStop(
                        "work budget exhausted; last passing bound reported",
                        budget=True,
                    ) from exc

    def _escalate(self, exc: Exception, tau: Fraction) -> bool:
        """Move to the next rung; False when the ladder is spent."""
        if (
            isinstance(exc, DeadlineExceeded)
            and self.deadline is not None
            and self.deadline.expired()
        ):
            return False  # the wall clock is really gone: retries are futile
        if self.rung_idx + 1 >= len(self.rungs):
            return False
        old = self.rungs[self.rung_idx].name
        self.rung_idx += 1
        self._degraded_by = (
            "deadline" if isinstance(exc, DeadlineExceeded) else "budget"
        )
        self.degradations.append(
            DegradationStep(tau, old, self.rungs[self.rung_idx].name, str(exc))
        )
        return True

    def _examine_at(self, rung: _RungConfig, regime, window) -> _Verdict:
        """Run the decision + feasibility pass at one rung's settings."""
        return decide_window(
            self._context(self.rung_idx),
            regime,
            window,
            self.options,
            oracle_factory=self._oracle if rung.exact_feasibility else None,
            deadline=self.deadline,
        )


def _reachable_care(circuit: Circuit, options: MctOptions) -> Function:
    """Reachable-state BDD over plain state-variable names."""
    from repro.fsm.reachability import reachable_states

    return reachable_states(circuit, initial_state=options.initial_state)


#: Sentinel: the exact oracle punted and the relaxed bound applies.
_RELAXED = object()


def _exact_oracle(
    machine: DiscretizedMachine, options: MctOptions, stats: LpStats | None = None
):
    """Build the gate-coupled LP oracle, or None when enumeration
    blows the path cap (the relaxed model then stays in force).

    ``stats`` is the :class:`LpStats` the oracle should charge —
    normally the owning decision context's, so LP telemetry merges and
    snapshots exactly like the BDD counters.
    """
    from repro.mct.lp_exact import ExactFeasibility

    try:
        return ExactFeasibility(
            machine, max_paths=options.max_exact_paths, stats=stats
        )
    except AnalysisError:
        return None


def _exact_sup(
    oracle,
    sigma,
    window,
    options: MctOptions,
    deadline=None,
    shard_dispatch=None,
):
    """Exact τ(σ) over an age-option set; ``_RELAXED`` on fallback."""
    try:
        return oracle.sup_tau_options(
            sigma,
            window,
            max_combinations=options.max_exact_combinations,
            deadline=deadline,
            shard_dispatch=shard_dispatch,
        )
    except AnalysisError:
        return _RELAXED
