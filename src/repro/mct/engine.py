"""The τ-sweep: minimum-cycle-time upper bounds (Secs. 6–7).

Starting from the steady-state constant ``L`` (where the machine is
trivially equivalent to itself), τ is decreased through the critical
breakpoints.  Each breakpoint is the left endpoint of a half-open
window on which the discretized machine is constant; the decision
algorithm is run once per window (memoized by age regime).  The sweep
stops at the first window containing a *feasible* failing combination:

* fixed delays — the bound is the previous (passing) breakpoint;
* interval delays — the bound is ``D̄_s = max_{σ∈Ω} τ(σ)``, the
  supremum over the feasible failing combinations (the paper's linear
  program in its ε→0 limit).

Resource budgets turn the paper's "memory out" rows into clean partial
results.
"""

from __future__ import annotations

import dataclasses
import time
from fractions import Fraction

from repro.bdd import Function
from repro.errors import AnalysisError, Budget, ResourceBudgetExceeded
from repro.logic.delays import DelayMap
from repro.logic.netlist import Circuit
from repro.mct.breakpoints import tau_breakpoints
from repro.mct.decision import DecisionContext
from repro.mct.discretize import DiscretizedMachine, build_discretized_machine
from repro.mct.feasibility import sigma_sup_tau


@dataclasses.dataclass(frozen=True)
class MctOptions:
    """Tuning knobs of the sweep (all optional)."""

    #: Initial state (default all-False); Sec. 3 lists initial states
    #: among the sequential properties combinational delays ignore.
    initial_state: dict[str, bool] | None = None
    #: Include primary-output equality (condition C_x part 2).
    check_outputs: bool = True
    #: Restrict the inductive comparison to reachable states
    #: (sequential don't cares).
    use_reachability: bool = False
    #: Stop sweeping below this τ; default L / max_age.
    tau_floor: Fraction | None = None
    #: Cap on any leaf's age (how many cycles a wave may stay in
    #: flight); bounds the unrolling depth m.
    max_age: int = 16
    #: Cap on examined breakpoints.
    max_candidates: int = 2000
    #: BDD-node / expansion-work budget (None = unlimited).
    work_budget: int | None = None
    #: Cap on decoded failing combinations per decision.
    max_failing_options: int = 256
    #: Soft wall-clock limit in seconds (None = unlimited).
    time_limit: float | None = None
    #: Use the paper's gate-coupled LP (Sec. 7) instead of the relaxed
    #: per-path-independent interval model when filtering failing
    #: combinations.  Requires explicit path enumeration: small
    #: circuits only.  Falls back to the relaxed model per-σ when the
    #: combination product exceeds ``max_exact_combinations``.
    exact_feasibility: bool = False
    max_exact_paths: int = 10_000
    max_exact_combinations: int = 256


@dataclasses.dataclass(frozen=True)
class CandidateRecord:
    """One examined breakpoint and what happened there."""

    tau: Fraction
    #: "steady" | "pass" | "pass-infeasible" | "fail"
    status: str
    m: int = 1


@dataclasses.dataclass(frozen=True)
class MctResult:
    """Outcome of a minimum-cycle-time analysis."""

    circuit_name: str
    #: The steady-state constant L (max total loop delay).
    L: Fraction
    #: The computed upper bound on the minimum cycle time, or None if
    #: the analysis could not establish one (budget blown immediately).
    mct_upper_bound: Fraction | None
    #: True when the sweep found an actual failing window (the bound is
    #: tight against C_x); False when the sweep ran out of candidates,
    #: age cap, time or budget while still passing.
    failure_found: bool
    #: The failing window [low, high) when failure_found.
    failing_window: tuple[Fraction, Fraction] | None
    #: Feasible failing combinations (σ age-options) with their τ sups.
    failing_sigmas: tuple = ()
    #: Cones (latch names / primary outputs) whose comparison failed in
    #: the failing window — the structures that pin the bound.
    failing_roots: tuple[str, ...] = ()
    candidates: tuple[CandidateRecord, ...] = ()
    decisions_run: int = 0
    elapsed_seconds: float = 0.0
    budget_exceeded: bool = False
    exhausted: bool = False
    notes: str = ""

    @property
    def improves_on(self) -> Fraction | None:
        """Alias of the bound, for report code symmetry."""
        return self.mct_upper_bound


def minimum_cycle_time(
    circuit: Circuit,
    delays: DelayMap,
    options: MctOptions | None = None,
) -> MctResult:
    """Compute an upper bound on the machine's minimum cycle time.

    This is the paper's full algorithm: TBF discretization, steady
    state at τ = L, critical-τ sweep with Decision Algorithm 6.1 at
    every regime, interval algebra + feasibility for variable delays.
    """
    options = options or MctOptions()
    start = time.monotonic()
    budget = (
        Budget(limit=options.work_budget, resource="mct work")
        if options.work_budget
        else None
    )
    try:
        machine = build_discretized_machine(circuit, delays, budget=budget)
    except ResourceBudgetExceeded:
        return MctResult(
            circuit_name=circuit.name,
            L=Fraction(0),
            mct_upper_bound=None,
            failure_found=False,
            failing_window=None,
            budget_exceeded=True,
            elapsed_seconds=time.monotonic() - start,
            notes="budget exhausted during path collection",
        )
    reachable = _reachable_care(circuit, options) if options.use_reachability else None
    context = DecisionContext(
        machine,
        initial_state=options.initial_state,
        check_outputs=options.check_outputs,
        reachable=reachable,
        budget=budget,
        max_failing_options=options.max_failing_options,
    )
    tau_floor = options.tau_floor
    if tau_floor is None:
        tau_floor = machine.L / options.max_age
    steady = machine.steady_regime()

    records: list[CandidateRecord] = []
    prev_tau: Fraction | None = None
    prev_regime = None
    mct_ub: Fraction | None = None
    failure_found = False
    failing_window = None
    failing_sigmas: tuple = ()
    failing_roots: tuple[str, ...] = ()
    exhausted = False
    budget_exceeded = False
    notes = ""
    try:
        for tau in tau_breakpoints(machine.endpoint_values, tau_floor):
            if len(records) >= options.max_candidates:
                exhausted, notes = True, "candidate cap reached"
                break
            if (
                options.time_limit is not None
                and time.monotonic() - start > options.time_limit
            ):
                exhausted, notes = True, "time limit reached"
                break
            regime = machine.regime(tau)
            m = max(max(ages) for ages in regime.values())
            if m > options.max_age:
                exhausted, notes = True, f"age cap {options.max_age} reached"
                break
            if regime == prev_regime:
                prev_tau = tau
                continue
            prev_regime = regime
            if regime == steady:
                records.append(CandidateRecord(tau, "steady", m))
                prev_tau = tau
                continue
            outcome = context.decide(regime)
            if outcome.passed_structurally:
                records.append(CandidateRecord(tau, "pass", outcome.m))
                prev_tau = tau
                continue
            # Structural failure: the window is [tau, prev_tau).
            window_top = prev_tau if prev_tau is not None else machine.L
            window = (tau, window_top)
            if not outcome.has_choices:
                records.append(CandidateRecord(tau, "fail", outcome.m))
                mct_ub = window_top
                failure_found = True
                failing_window = window
                failing_sigmas = tuple(
                    (sigma, window_top) for sigma in outcome.failing_options
                )
                failing_roots = outcome.failing_roots
                break
            oracle = _exact_oracle(machine, options) if options.exact_feasibility else None
            feasible = []
            for sigma in outcome.failing_options:
                sup = sigma_sup_tau(sigma, window)
                if sup is None:
                    continue
                if oracle is not None:
                    exact_sup = _exact_sup(oracle, sigma, window, options)
                    if exact_sup is _RELAXED:
                        pass  # fell back: keep the relaxed sup
                    elif exact_sup is None:
                        continue  # coupled LP proves σ unrealizable
                    else:
                        sup = exact_sup
                feasible.append((sigma, sup))
            if not feasible:
                records.append(CandidateRecord(tau, "pass-infeasible", outcome.m))
                prev_tau = tau
                continue
            records.append(CandidateRecord(tau, "fail", outcome.m))
            mct_ub = max(sup for _, sup in feasible)
            failure_found = True
            failing_window = window
            failing_sigmas = tuple(feasible)
            failing_roots = outcome.failing_roots
            break
        else:
            exhausted, notes = True, "breakpoint stream exhausted (τ floor)"
    except ResourceBudgetExceeded:
        budget_exceeded = True
        notes = "work budget exhausted; last passing bound reported"

    if mct_ub is None:
        # Never failed: report the last *examined* breakpoint — the
        # machine is proven equivalent for every τ ≥ that value.
        passing = [r.tau for r in records if r.status != "fail"]
        mct_ub = min(passing) if passing else (machine.L if not budget_exceeded else None)
        if mct_ub is not None and not notes:
            exhausted = True
            notes = "no failing window found down to the sweep floor"
    return MctResult(
        circuit_name=circuit.name,
        L=machine.L,
        mct_upper_bound=mct_ub,
        failure_found=failure_found,
        failing_window=failing_window,
        failing_sigmas=failing_sigmas,
        failing_roots=failing_roots,
        candidates=tuple(records),
        decisions_run=context.decisions_run,
        elapsed_seconds=time.monotonic() - start,
        budget_exceeded=budget_exceeded,
        exhausted=exhausted,
        notes=notes,
    )


def _reachable_care(circuit: Circuit, options: MctOptions) -> Function:
    """Reachable-state BDD over plain state-variable names."""
    from repro.fsm.reachability import reachable_states

    return reachable_states(circuit, initial_state=options.initial_state)


#: Sentinel: the exact oracle punted and the relaxed bound applies.
_RELAXED = object()


def _exact_oracle(machine: DiscretizedMachine, options: MctOptions):
    """Build the gate-coupled LP oracle, or None when enumeration
    blows the path cap (the relaxed model then stays in force)."""
    from repro.mct.lp_exact import ExactFeasibility

    try:
        return ExactFeasibility(machine, max_paths=options.max_exact_paths)
    except AnalysisError:
        return None


def _exact_sup(oracle, sigma, window, options: MctOptions):
    """Exact τ(σ) over an age-option set; ``_RELAXED`` on fallback."""
    try:
        return oracle.sup_tau_options(
            sigma, window, max_combinations=options.max_exact_combinations
        )
    except AnalysisError:
        return _RELAXED
