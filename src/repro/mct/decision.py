"""Decision Algorithm 6.1 on the state sufficient condition C_x.

For a fixed age *regime* (the value of every floor term, i.e. a point
on the paper's Φ lattice), decide whether the discretized machine at
that regime is equivalent to the steady-state machine:

* **Base step** — compare ``x(n)`` with ``x̂(n)`` (and ``y`` with
  ``ŷ``) for ``1 ≤ n ≤ m`` as BDDs over the free input stream, with
  state references at times ``≤ 0`` taking the initial values.
* **Inductive step** — substitute steady values for state arguments
  (justified by the induction hypothesis) and unroll
  ``x̂(n) = g(x̂(n-1), u(n-1))`` until every argument sits at age ``m``;
  compare the resulting BDDs.

Interval delays are handled *symbolically*: a timed leaf whose age set
has several elements reads through a priority chain of fresh *choice
variables*.  A mismatch BDD that is satisfiable only under certain
choice assignments yields, after existentially quantifying everything
else, exactly the paper's set Ω of failing combinations — without
enumerating the Φ product up front.

An optional reachability care set implements the paper's sequential
don't cares: equivalence is only required on reachable states.
"""

from __future__ import annotations

import dataclasses

from repro.bdd import BddManager, Function
from repro.bdd.transfer import transfer
from repro.errors import AnalysisError, Budget
from repro.logic.delays import Interval
from repro.mct.discretize import DiscretizedMachine, TimedLeaf
from repro.mct.lp_stats import LpStats
from repro.timed.expansion import (
    LeafInstance,
    TimedExpander,
    combinational_bdd,
)

#: Age options a partial choice assignment leaves open for a timed leaf.
AgeOptions = dict[TimedLeaf, tuple[int, ...]]

_CHOICE_PREFIX = "ch|"


def _choice_name(tl: TimedLeaf, index: int) -> str:
    return f"{_CHOICE_PREFIX}{tl.leaf}|{tl.total.lo}|{tl.total.hi}|{index}"


@dataclasses.dataclass(frozen=True)
class DecisionOutcome:
    """Result of one run of the decision algorithm at a regime."""

    #: True when the mismatch BDD is unsatisfiable: the regime is
    #: equivalent to steady state for *every* choice of ages.
    passed_structurally: bool
    #: Maximum age m of the regime.
    m: int
    #: Whether the regime contained any multi-age (choice) leaves.
    has_choices: bool
    #: Decoded failing age options (empty when passed_structurally).
    #: Each entry maps every timed leaf to the ages compatible with one
    #: satisfying choice assignment of the mismatch BDD.
    failing_options: tuple[AgeOptions, ...] = ()
    #: Which phase detected the first mismatch ("base", "induction") —
    #: purely informational.
    mismatch_phase: str | None = None
    #: Roots (latch names / primary outputs) whose comparison failed —
    #: the cones responsible for the bound (debugging aid).
    failing_roots: tuple[str, ...] = ()


class DecisionContext:
    """Shared state for running the decision algorithm across a sweep.

    One context owns one BDD manager; steady-state unrollings and
    outcomes are memoized because they are τ-independent.
    """

    def __init__(
        self,
        machine: DiscretizedMachine,
        initial_state: dict[str, bool] | None = None,
        check_outputs: bool = True,
        reachable: Function | None = None,
        budget: Budget | None = None,
        max_failing_options: int = 256,
        deadline=None,
        kernel: str | None = None,
        sift_threshold: int | None = None,
    ):
        self.machine = machine
        circuit = machine.circuit
        self.deadline = deadline
        self.manager = BddManager(
            budget=budget,
            deadline=deadline,
            kernel=kernel,
            sift_threshold=sift_threshold,
        )
        self.expander = TimedExpander(
            circuit, machine.delays, self.manager, budget=budget,
            deadline=deadline,
        )
        if initial_state is None:
            initial_state = {q: False for q in circuit.latches}
        missing = set(circuit.latches) - set(initial_state)
        if missing:
            raise AnalysisError(f"initial state missing latches {sorted(missing)}")
        self.initial_state = {q: bool(initial_state[q]) for q in circuit.latches}
        self.check_outputs = check_outputs
        self._reachable_src = reachable
        self.max_failing_options = max_failing_options
        self._setup_extra = Interval.point(machine.setup)
        # Memoized steady-state artifacts.
        self._steady_regime = machine.steady_regime()
        self._unroll_cache: dict[int, list[dict[str, Function]]] = {}
        self._steady_history: list[dict[str, Function]] = []  # index = n
        self._care_cache: dict[int, Function] = {}
        self._outcomes: dict[frozenset, DecisionOutcome] = {}
        self.decisions_run = 0
        #: Exact-LP work counters.  The context does not solve LPs
        #: itself — the engine's lazily built
        #: :class:`~repro.mct.lp_exact.ExactFeasibility` oracle charges
        #: this object — but owning it here lets LP telemetry ride the
        #: exact same merge/snapshot paths as :attr:`bdd_stats`.
        self.lp_stats = LpStats()

    @property
    def bdd_stats(self):
        """Live counters of this context's BDD manager."""
        return self.manager.stats

    # ------------------------------------------------------------------
    # Variable helpers
    # ------------------------------------------------------------------
    def _abs_input(self, leaf: str, j: int) -> Function:
        """Input variable at absolute time j (base step)."""
        return self.manager.var(f"in|{leaf}|{j}")

    def _rel_input(self, leaf: str, age: int) -> Function:
        """Input variable at relative age a (inductive step)."""
        return self.manager.var(f"in@{leaf}@{age}")

    def _base_state_var(self, q: str, m: int) -> Function:
        """The symbolic x̂(n-m) variable of the inductive step."""
        return self.manager.var(f"st|{q}|{m}")

    # ------------------------------------------------------------------
    # Resolvers
    # ------------------------------------------------------------------
    def _resolve(
        self, regime, instance: LeafInstance, value_at_age, dest_phase=None
    ) -> Function:
        """Leaf value under a regime, with choice chains for age sets."""
        if dest_phase:
            tl = self.machine.fold(instance, dest_phase=dest_phase)
        else:
            tl = self.machine.fold(instance)
        ages = regime[tl]
        result = value_at_age(tl.leaf, ages[-1])
        for idx in range(len(ages) - 2, -1, -1):
            choice = self.manager.var(_choice_name(tl, idx))
            result = choice.ite(value_at_age(tl.leaf, ages[idx]), result)
        return result

    # ------------------------------------------------------------------
    # Steady-state machinery (memoized)
    # ------------------------------------------------------------------
    def _steady_history_upto(self, n: int) -> list[dict[str, Function]]:
        """x̂(0..n) as BDDs over absolute input variables."""
        circuit = self.machine.circuit
        hist = self._steady_history
        if not hist:
            hist.append(
                {q: self.manager.constant(v) for q, v in self.initial_state.items()}
            )
        while len(hist) <= n:
            t = len(hist)
            leaf_map = dict(hist[t - 1])
            for u in circuit.inputs:
                leaf_map[u] = self._abs_input(u, t - 1)
            hist.append(
                {
                    q: combinational_bdd(circuit, latch.data, leaf_map, self.manager)
                    for q, latch in circuit.latches.items()
                }
            )
        return hist

    def _unrolled(self, m: int) -> list[dict[str, Function]]:
        """x̂ at relative ages 0..m over base vars st|q|m (memoized).

        ``result[a]`` is x̂(n-a); ``result[m]`` are the fresh symbolic
        base variables, and each step applies
        ``x̂(n-a) = g(x̂(n-a-1), u(n-a-1))``.
        """
        cached = self._unroll_cache.get(m)
        if cached is not None:
            return cached
        circuit = self.machine.circuit
        rel: list[dict[str, Function] | None] = [None] * (m + 1)
        rel[m] = {q: self._base_state_var(q, m) for q in circuit.latches}
        for a in range(m - 1, -1, -1):
            leaf_map = dict(rel[a + 1])
            for u in circuit.inputs:
                leaf_map[u] = self._rel_input(u, a + 1)
            rel[a] = {
                q: combinational_bdd(circuit, latch.data, leaf_map, self.manager)
                for q, latch in circuit.latches.items()
            }
        self._unroll_cache[m] = rel  # type: ignore[assignment]
        return rel  # type: ignore[return-value]

    def _care_set(self, m: int) -> Function | None:
        """Reachability care set over the base variables st|q|m."""
        if self._reachable_src is None:
            return None
        cached = self._care_cache.get(m)
        if cached is None:
            rename = {q: f"st|{q}|{m}" for q in self.machine.circuit.latches}
            cached = transfer(self._reachable_src, self.manager, rename)
            self._care_cache[m] = cached
        return cached

    # ------------------------------------------------------------------
    # The decision algorithm
    # ------------------------------------------------------------------
    def decide(self, regime: dict[TimedLeaf, tuple[int, ...]]) -> DecisionOutcome:
        """Run Decision Algorithm 6.1 for one age regime (memoized)."""
        key = frozenset(regime.items())
        cached = self._outcomes.get(key)
        if cached is not None:
            return cached
        self.decisions_run += 1
        m = max(max(ages) for ages in regime.values())
        m = max(m, 1)
        has_choices = any(len(ages) > 1 for ages in regime.values())
        base_mism, base_roots = self._base_mismatch(regime, m)
        ind_mism, ind_roots = self._induction_mismatch(regime, m)
        mismatch = base_mism | ind_mism
        if mismatch.is_zero():
            outcome = DecisionOutcome(
                passed_structurally=True, m=m, has_choices=has_choices
            )
        else:
            phase = "base" if base_roots else ("induction" if ind_roots else None)
            failing = self._decode_failures(mismatch, regime)
            outcome = DecisionOutcome(
                passed_structurally=False,
                m=m,
                has_choices=has_choices,
                failing_options=failing,
                mismatch_phase=phase,
                failing_roots=tuple(sorted(base_roots | ind_roots)),
            )
        self._outcomes[key] = outcome
        return outcome

    def _base_mismatch(self, regime, m: int) -> tuple[Function, set[str]]:
        """Mismatch BDD of the base step (1 ≤ n ≤ m) + failing roots."""
        circuit = self.machine.circuit
        steady_hist = self._steady_history_upto(m)
        # τ-side state history, computed forward from the initial state.
        tau_hist: list[dict[str, Function]] = [
            {q: self.manager.constant(v) for q, v in self.initial_state.items()}
        ]
        mismatch = self.manager.false
        failing: set[str] = set()
        for n in range(1, m + 1):
            if self.deadline is not None:
                self.deadline.check("decision base step")

            def tau_value(leaf: str, age: int, n=n) -> Function:
                j = n - age
                if leaf in circuit.latches:
                    if j <= 0:
                        return self.manager.constant(self.initial_state[leaf])
                    return tau_hist[j][leaf]
                return self._abs_input(leaf, j)

            def steady_value(leaf: str, age: int, n=n) -> Function:
                j = n - age
                if leaf in circuit.latches:
                    if j <= 0:
                        return self.manager.constant(self.initial_state[leaf])
                    return steady_hist[j][leaf]
                return self._abs_input(leaf, j)

            x_n: dict[str, Function] = {}
            for q, latch in circuit.latches.items():
                phi = self.machine.delays.phase(q)
                x_n[q] = self.expander.expand(
                    latch.data,
                    lambda inst, phi=phi: self._resolve(
                        regime, inst, tau_value, dest_phase=phi
                    ),
                    extra=self._setup_extra,
                )
                diff = x_n[q] ^ steady_hist[n][q]
                if not diff.is_zero():
                    failing.add(q)
                mismatch = mismatch | diff
            tau_hist.append(x_n)
            if self.check_outputs:
                for po in circuit.outputs:
                    y_tau = self.expander.expand(
                        po, lambda inst: self._resolve(regime, inst, tau_value)
                    )
                    y_steady = self.expander.expand(
                        po,
                        lambda inst: self._resolve(
                            self._steady_regime, inst, steady_value
                        ),
                    )
                    diff = y_tau ^ y_steady
                    if not diff.is_zero():
                        failing.add(po)
                    mismatch = mismatch | diff
        return mismatch, failing

    def _induction_mismatch(self, regime, m: int) -> tuple[Function, set[str]]:
        """Mismatch BDD of the inductive step + failing roots."""
        circuit = self.machine.circuit
        rel = self._unrolled(m)
        care = self._care_set(m)

        def rel_value(leaf: str, age: int) -> Function:
            if leaf in circuit.latches:
                return rel[age][leaf]
            return self._rel_input(leaf, age)

        mismatch = self.manager.false
        failing: set[str] = set()
        for q, latch in circuit.latches.items():
            if self.deadline is not None:
                self.deadline.check("decision inductive step")
            phi = self.machine.delays.phase(q)
            x_tau = self.expander.expand(
                latch.data,
                lambda inst, phi=phi: self._resolve(
                    regime, inst, rel_value, dest_phase=phi
                ),
                extra=self._setup_extra,
            )
            diff = x_tau ^ rel[0][q]
            if care is not None:
                diff = diff & care
            if not diff.is_zero():
                failing.add(q)
            mismatch = mismatch | diff
        if self.check_outputs:
            for po in circuit.outputs:
                y_tau = self.expander.expand(
                    po, lambda inst: self._resolve(regime, inst, rel_value)
                )
                y_steady = self.expander.expand(
                    po,
                    lambda inst: self._resolve(self._steady_regime, inst, rel_value),
                )
                diff = y_tau ^ y_steady
                if care is not None:
                    diff = diff & care
                if not diff.is_zero():
                    failing.add(po)
                mismatch = mismatch | diff
        return mismatch, failing

    # ------------------------------------------------------------------
    # Failing-combination extraction (Ω of Sec. 7)
    # ------------------------------------------------------------------
    def _decode_failures(
        self, mismatch: Function, regime
    ) -> tuple[AgeOptions, ...]:
        """Project the mismatch onto choice variables and decode σ's."""
        support = mismatch.support()
        non_choice = [v for v in support if not v.startswith(_CHOICE_PREFIX)]
        omega = mismatch.exists(non_choice)
        if omega.is_one():
            # Fails for every choice: a single option set with all ages.
            return (dict(regime),)
        options: list[AgeOptions] = []
        choice_vars = sorted(v for v in omega.support())
        for assignment in omega.sat_iter(choice_vars):
            options.append(self._decode_one(assignment, regime))
            if len(options) >= self.max_failing_options:
                break
        return tuple(options)

    def _decode_one(self, assignment: dict[str, bool], regime) -> AgeOptions:
        """Age options compatible with one (partial) choice assignment."""
        decoded: AgeOptions = {}
        for tl, ages in regime.items():
            if len(ages) == 1:
                decoded[tl] = ages
                continue
            allowed: list[int] = []
            stopped = False
            for idx in range(len(ages) - 1):
                value = assignment.get(_choice_name(tl, idx))
                if value is True:
                    allowed.append(ages[idx])
                    stopped = True
                    break
                if value is None:
                    allowed.append(ages[idx])
                # value is False: skip this age, keep walking.
            if not stopped:
                allowed.append(ages[-1])
            decoded[tl] = tuple(allowed)
        return decoded
