"""Minimum cycle time of finite state machines (the paper's core).

The pipeline (Secs. 4–7):

1. :mod:`~repro.mct.discretize` — fold flip-flop and setup delays into
   every timed leaf instance, discretize at sample times ``t = nτ``
   (each instance becomes a state/input variable at a relative *age*
   ``⌈k/τ⌉``), and compute age *sets* for interval delays (Def. 4).
2. :mod:`~repro.mct.breakpoints` — enumerate the critical values of τ
   (the points ``k/m`` where some floor term changes) in descending
   order; between consecutive breakpoints the discretized machine is
   constant.
3. :mod:`~repro.mct.decision` — Decision Algorithm 6.1 on the state
   sufficient condition ``C_x``: base comparison on initial values for
   ``1 ≤ n ≤ m`` plus the inductive substitution of steady-state
   unrollings, all as BDD equalities.  Supports reachability don't
   cares and, for interval delays, symbolic *choice variables* whose
   failing assignments are exactly the paper's failing combinations Ω.
4. :mod:`~repro.mct.feasibility` — the interval algebra / linear
   programs of Sec. 7: which failing combinations σ are realizable, and
   the bound ``D̄_s = max_{σ∈Ω} τ(σ)``.
5. :mod:`~repro.mct.engine` — the τ-sweep tying it all together.
"""

from repro.mct.discretize import (
    DiscretizedMachine,
    TimedLeaf,
    age_of,
    age_set,
    build_discretized_machine,
)
from repro.mct.breakpoints import tau_breakpoints
from repro.mct.decision import DecisionContext, DecisionOutcome
from repro.mct.feasibility import (
    feasible_tau_range,
    sigma_is_feasible,
    sigma_sup_tau,
)
from repro.mct.engine import (
    DEFAULT_LADDER,
    CandidateRecord,
    DegradationStep,
    MctOptions,
    MctResult,
    RetryPolicy,
    minimum_cycle_time,
    options_fingerprint,
)
from repro.mct.level_sensitive import LevelSensitiveResult, level_sensitive_mct
from repro.mct.skew import SkewResult, optimize_skew
from repro.mct.witness import Witness, find_witness

__all__ = [
    "TimedLeaf",
    "DiscretizedMachine",
    "age_of",
    "age_set",
    "build_discretized_machine",
    "tau_breakpoints",
    "DecisionContext",
    "DecisionOutcome",
    "feasible_tau_range",
    "sigma_is_feasible",
    "sigma_sup_tau",
    "CandidateRecord",
    "DEFAULT_LADDER",
    "DegradationStep",
    "MctOptions",
    "MctResult",
    "RetryPolicy",
    "minimum_cycle_time",
    "options_fingerprint",
    "SkewResult",
    "optimize_skew",
    "LevelSensitiveResult",
    "level_sensitive_mct",
    "Witness",
    "find_witness",
]
