"""Level-sensitive (transparent) latches — the paper's future work.

The paper closes with: "Extensions to circuits with level-sensitive
latches are another direction for the future."  This module implements
the *conservative, borrow-free* version of that extension and states
its assumptions precisely:

Model
-----
Every storage element is a transparent latch on one single-phase clock
of period τ with duty cycle ``D`` (default 1/2): transparent during
``[nτ, nτ + Dτ)``, opaque otherwise, output holding the data value
captured at the closing edge ``nτ + Dτ``.

Reduction
---------
If **no time borrowing** occurs — every latch's data input settles
before its own closing edge — the machine sampled at the closing edges
is exactly the edge-triggered machine of the main analysis, so the
sequential minimum-cycle-time bound applies verbatim.  Transparency
then adds only a *race* hazard: a value launched when a latch opens
must not flush through the *next* latch while it is still transparent,
which requires the shortest register-to-register path to exceed the
transparency window:

    k_min  ≥  D·τ        ⇔        τ  ≤  k_min / D.

The analysis therefore returns a *range* of certified periods
``[mct_bound, k_min/D]`` instead of a single lower bound; an empty
range means the circuit needs min-delay padding before level-sensitive
clocking is safe at any speed.  (Borrowing-aware analysis — where slow
paths may steal from the next phase — would tighten the lower end; it
remains future work here exactly as it did in 1994.)
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction

from repro.delay.validity import min_register_path
from repro.errors import AnalysisError
from repro.logic.delays import DelayMap, as_fraction
from repro.logic.netlist import Circuit
from repro.mct.engine import MctOptions, MctResult, minimum_cycle_time


@dataclasses.dataclass(frozen=True)
class LevelSensitiveResult:
    """Certified clock-period range for a transparent-latch machine."""

    #: Lower end: the edge-equivalent sequential bound (inclusive).
    min_period: Fraction | None
    #: Upper end: the flush-through race limit ``k_min / duty``
    #: (inclusive); None when there is no finite limit (no latches).
    max_period: Fraction | None
    duty: Fraction
    #: Shortest register-to-register path (drives the race limit).
    shortest_path: Fraction
    #: The underlying edge-triggered analysis.
    edge_result: MctResult

    @property
    def feasible(self) -> bool:
        """True when some period satisfies both constraints."""
        if self.min_period is None:
            return False
        if self.max_period is None:
            return True
        return self.min_period <= self.max_period

    def valid_at(self, tau: Fraction | int | str) -> bool:
        """Is period ``tau`` inside the certified range?"""
        t = as_fraction(tau)
        if self.min_period is None or t < self.min_period:
            return False
        return self.max_period is None or t <= self.max_period


def level_sensitive_mct(
    circuit: Circuit,
    delays: DelayMap,
    duty: Fraction | int | str = Fraction(1, 2),
    options: MctOptions | None = None,
) -> LevelSensitiveResult:
    """Borrow-free certified period range for transparent latches.

    ``duty`` is the fraction of the period the latches are transparent
    (0 < duty < 1).  Clock phases (useful skew) are not supported in
    the level-sensitive model.
    """
    duty_f = as_fraction(duty)
    if not 0 < duty_f < 1:
        raise AnalysisError("duty cycle must lie strictly between 0 and 1")
    if delays.has_phases:
        raise AnalysisError(
            "level-sensitive analysis models a single un-skewed phase"
        )
    if not circuit.latches:
        raise AnalysisError("no latches: level-sensitive timing is vacuous")
    edge = minimum_cycle_time(circuit, delays, options)
    shortest = min_register_path(circuit, delays)
    max_period = shortest / duty_f if shortest > 0 else Fraction(0)
    return LevelSensitiveResult(
        min_period=edge.mct_upper_bound,
        max_period=max_period,
        duty=duty_f,
        shortest_path=shortest,
        edge_result=edge,
    )
