"""Critical values of the clock period τ (Secs. 6 and 7).

Between two consecutive values of the form ``k/m`` (``k`` an interval
endpoint of some total path delay, ``m`` a positive integer) every
floor term ``⌊-k/τ⌋`` — and hence the whole discretized machine — is
constant.  The sweep therefore only needs to examine the *left
endpoint* of each such interval, in descending order.

The stream is generated lazily with a heap so that the sweep can stop
at the first failing breakpoint without materializing the (infinite)
candidate set.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Iterator
from fractions import Fraction


def tau_breakpoints(
    endpoint_values: Iterable[Fraction],
    tau_floor: Fraction | None = None,
) -> Iterator[Fraction]:
    """Yield the distinct breakpoints ``k/m`` in strictly descending
    order, starting from the largest (``L = max k``).

    Parameters
    ----------
    endpoint_values:
        The positive interval endpoints of all total path delays.
    tau_floor:
        Stop once the next breakpoint would be ≤ this value; ``None``
        streams forever (callers bound the sweep themselves).
    """
    endpoints = sorted({Fraction(v) for v in endpoint_values if v > 0})
    if not endpoints:
        return
    # Max-heap of (-value, k, m).
    heap: list[tuple[Fraction, Fraction, int]] = [(-k, k, 1) for k in endpoints]
    heapq.heapify(heap)
    previous: Fraction | None = None
    while heap:
        neg, k, m = heapq.heappop(heap)
        value = -neg
        if tau_floor is not None and value <= tau_floor:
            # Every remaining entry from this k is even smaller, and the
            # heap's top is the global max, so the whole stream is done.
            return
        heapq.heappush(heap, (-(k / (m + 1)), k, m + 1))
        if previous is not None and value == previous:
            continue  # deduplicate equal ratios from different k's
        previous = value
        yield value
