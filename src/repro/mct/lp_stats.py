"""Work counters for the exact-LP branch-and-bound fast path.

Every :class:`~repro.mct.lp_exact.ExactFeasibility` oracle owns one
mutable :class:`LpStats` and updates it from the σ-enumeration hot
path.  The counters are cheap increments, always on, and surfaced the
same three ways as :class:`repro.bdd.BddStats`:

* ``oracle.stats`` — live counters of one oracle;
* :attr:`repro.mct.engine.MctResult.lp_stats` — the merged counters of
  every decision context a τ-sweep used;
* ``repro-mct analyze --stats`` / ``BENCH_mct.json`` — the operator
  and benchmark views.

The accounting identity enforced by the branch-and-bound loop is

    ``solves + prescreen_skips + bound_prunes == combinations``

for every ``sup_tau_options`` call: each enumerated σ is solved,
skipped by the interval prescreen, or pruned by the descending-order
bound — never double-counted, never dropped.  The bench gate in
``benchmarks/test_perf_baseline.py`` leans on exactly this.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class LpStats:
    """Counters of one exact-LP oracle (or a merged set of oracles)."""

    #: Linear programs actually handed to the solver.
    solves: int = 0
    #: σ's skipped because the relaxed per-leaf τ-set was empty or its
    #: supremum could not beat the best exact τ already found.
    prescreen_skips: int = 0
    #: σ's discarded wholesale once the descending relaxed-sup order
    #: guaranteed no remaining combination can improve the maximum.
    bound_prunes: int = 0
    #: Per-(path, age) constraint row pairs served from the skeleton
    #: cache instead of being rebuilt.
    skeleton_hits: int = 0
    #: σ batches dispatched to parallel shard workers (0 on serial).
    shard_dispatches: int = 0
    #: Wall-clock seconds spent inside LP solves.
    wall_seconds: float = 0.0

    def merge(self, other: "LpStats") -> "LpStats":
        """Add ``other``'s counters into ``self`` (returns ``self``)."""
        self.solves += other.solves
        self.prescreen_skips += other.prescreen_skips
        self.bound_prunes += other.bound_prunes
        self.skeleton_hits += other.skeleton_hits
        self.shard_dispatches += other.shard_dispatches
        self.wall_seconds += other.wall_seconds
        return self

    @classmethod
    def from_dict(cls, data: dict) -> "LpStats":
        """Rebuild counters from an :meth:`as_dict` payload.

        The inverse used when counters cross a process boundary (the
        parallel sweep ships worker stats as plain dicts).  Unknown
        keys are ignored so older payloads stay readable.
        """
        fields = {f.name for f in dataclasses.fields(cls)}
        kwargs = {}
        for key, value in data.items():
            if key not in fields:
                continue
            kwargs[key] = float(value) if key == "wall_seconds" else int(value)
        return cls(**kwargs)

    def as_dict(self) -> dict:
        """JSON-ready view (the ``BENCH_mct.json`` ``lp`` object)."""
        return {
            "solves": self.solves,
            "prescreen_skips": self.prescreen_skips,
            "bound_prunes": self.bound_prunes,
            "skeleton_hits": self.skeleton_hits,
            "shard_dispatches": self.shard_dispatches,
            "wall_seconds": round(self.wall_seconds, 6),
        }

    def summary(self) -> str:
        """One-line human rendering (the CLI ``--stats`` row)."""
        avoided = self.prescreen_skips + self.bound_prunes
        return (
            f"{self.solves} LP solves, {avoided} avoided "
            f"({self.prescreen_skips} prescreened, "
            f"{self.bound_prunes} bound-pruned), "
            f"{self.skeleton_hits} skeleton hits, "
            f"{self.wall_seconds:.3f}s solving"
        )
