"""Discretization of a synchronous circuit's TBF at sample times nτ.

Eq. 3 of the paper: after composing the combinational TBFs with the
flip-flop TBFs, every leaf appearance ``x_j(t - k)`` sampled at
``t = nτ`` becomes the discrete variable ``x_j(n + ⌊-k/τ⌋)``.  We write
the *age* ``a = -⌊-k/τ⌋ = ⌈k/τ⌉``, so the leaf reads the state/input
value from ``a`` cycles ago.  The total loop delay ``k`` folds in:

* the combinational path delay (from the timed expansion),
* the source flip-flop's clock-to-output delay ``d_f``
  (``k_ij = h_ij + d_fj``),
* optionally the destination flip-flop's setup time (a guard band
  added to every path into a register, Theorem 1's ``+ τ_s``).

With interval delays, ``⌈k/τ⌉`` ranges over a contiguous *age set*
(Def. 4's ``⌊-I_k/τ⌋``).
"""

from __future__ import annotations

import dataclasses
import math
from fractions import Fraction

from repro.errors import AnalysisError, Budget
from repro.logic.delays import DelayMap, Interval
from repro.logic.netlist import Circuit
from repro.timed.expansion import LeafInstance, collect_leaf_instances


def age_of(k: Fraction, tau: Fraction) -> int:
    """The age ``⌈k/τ⌉ = -⌊-k/τ⌋`` of a path delay ``k`` at period τ.

    ``k = τ`` gives age 1: a signal arriving exactly at the edge is
    latched by it (the closed floor convention of the paper's Fig. 1
    flip-flop model).
    """
    if tau <= 0:
        raise AnalysisError("clock period must be positive")
    return -math.floor(-k / tau)


def age_set(k: Interval, tau: Fraction) -> tuple[int, ...]:
    """All ages an interval path delay can realize at period τ (Def. 4).

    The set is the contiguous range ``⌈k_min/τ⌉ .. ⌈k_max/τ⌉``.
    """
    lo, hi = age_of(k.lo, tau), age_of(k.hi, tau)
    return tuple(range(lo, hi + 1))


@dataclasses.dataclass(frozen=True, order=True)
class TimedLeaf:
    """A leaf with its *total* loop delay interval (the paper's ``k_i``).

    Identity matters: each distinct ``(leaf, k-interval)`` is one floor
    term of the flattened TBF and receives its own age (and, in
    interval mode, its own choice of age within the age set).
    """

    leaf: str
    total: Interval


@dataclasses.dataclass(frozen=True)
class DiscretizedMachine:
    """Everything the τ-sweep needs about a circuit's timed structure.

    ``state_instances`` / ``output_instances`` map each root to the set
    of (raw combinational) leaf instances of its cone; ``fold`` converts
    a raw instance into the :class:`TimedLeaf` with total delay.
    """

    circuit: Circuit
    delays: DelayMap
    setup: Fraction
    state_instances: dict[str, set[LeafInstance]]
    output_instances: dict[str, set[LeafInstance]]
    timed_leaves: frozenset[TimedLeaf]
    #: the steady-state constant L of Definition 2 (max total delay)
    L: Fraction

    def fold(self, instance: LeafInstance, dest_phase: Fraction = Fraction(0)) -> TimedLeaf:
        """Total *effective* loop delay of a raw instance.

        Setup time is already inside the *offset* of state-root
        instances (the expansion was run with ``extra = setup``).  This
        adds the source flip-flop's clock-to-output delay and applies
        the clock-phase correction: a value launched at the source's
        edge ``nτ + φ_src`` and consumed at the destination's edge
        ``mτ + φ_dst`` behaves like a common-clock path of length
        ``k + φ_src - φ_dst`` (useful skew).  Primary inputs switch at
        phase 0.
        """
        total = instance.offset
        if instance.leaf in self.circuit.latches:
            total = total + self.delays.latch(instance.leaf)
            total = total.shifted(self.delays.phase(instance.leaf))
        if dest_phase:
            total = total.shifted(-dest_phase)
        return TimedLeaf(instance.leaf, total)


    def regime(self, tau: Fraction) -> dict[TimedLeaf, tuple[int, ...]]:
        """The age set of every timed leaf at period τ."""
        return {tl: age_set(tl.total, tau) for tl in self.timed_leaves}

    def steady_regime(self) -> dict[TimedLeaf, tuple[int, ...]]:
        """Ages at τ = L (Definition 2's steady-state TBF).

        Every positive point delay sits at age 1; a zero-delay
        feedthrough of a primary output sits at age 0; an interval
        straddling 0 keeps its two-element age set even at L.
        """
        return self.regime(self.L)

    @property
    def endpoint_values(self) -> frozenset[Fraction]:
        """All interval endpoints; breakpoints are these divided by
        positive integers."""
        values: set[Fraction] = set()
        for tl in self.timed_leaves:
            values.add(tl.total.lo)
            values.add(tl.total.hi)
        return frozenset(v for v in values if v > 0)


def build_discretized_machine(
    circuit: Circuit,
    delays: DelayMap,
    budget: Budget | None = None,
    deadline=None,
) -> DiscretizedMachine:
    """Collect every root cone's timed leaves and fold total delays.

    Raises :class:`AnalysisError` when a register-to-register path has
    total delay 0 (a zero-delay feedback loop has no well-defined
    sampling semantics; the paper assumes positive loop delays).
    """
    setup = delays.setup
    state_roots = [latch.data for latch in circuit.latches.values()]
    output_roots = list(circuit.outputs)
    state_instances = (
        collect_leaf_instances(
            circuit,
            delays,
            state_roots,
            extra=Interval.point(setup),
            budget=budget,
            deadline=deadline,
        )
        if state_roots
        else {}
    )
    output_instances = (
        collect_leaf_instances(
            circuit, delays, output_roots, budget=budget, deadline=deadline
        )
        if output_roots
        else {}
    )
    timed: set[TimedLeaf] = set()
    machine = DiscretizedMachine(
        circuit=circuit,
        delays=delays,
        setup=setup,
        state_instances=state_instances,
        output_instances=output_instances,
        timed_leaves=frozenset(),  # placeholder, replaced below
        L=Fraction(0),
    )
    for q, latch in circuit.latches.items():
        dest = delays.phase(q)
        for inst in state_instances[latch.data]:
            tl = machine.fold(inst, dest_phase=dest)
            if tl.total.lo <= 0:
                raise AnalysisError(
                    f"register path {inst.leaf!r} -> {latch.data!r} "
                    f"(latch {q!r}) has non-positive effective delay; "
                    "add gate/latch delay or reduce the phase skew"
                )
            timed.add(tl)
    for instances in output_instances.values():
        for inst in instances:
            timed.add(machine.fold(inst))
    if not timed:
        raise AnalysisError("circuit has no timed paths to analyze")
    L = max(tl.total.hi for tl in timed)
    if L <= 0:
        raise AnalysisError("all paths have zero delay; nothing to analyze")
    return dataclasses.replace(machine, timed_leaves=frozenset(timed), L=L)
