"""Interval algebra and feasibility of failing combinations (Sec. 7).

A combination σ assigns an age to every timed leaf.  σ is *feasible* at
a clock period τ when every leaf's delay interval ``[k_lo, k_hi]``
contains a value ``k`` with ``τ(a-1) < k ≤ τa``; equivalently

    τ ≥ k_lo / a           and, for a ≥ 2,    τ < k_hi / (a - 1).

Because the decision procedure treats leaf delays as independent
interval variables (the *relaxed* model — see DESIGN.md; the exact
gate-coupled linear program of the paper lives in
:mod:`repro.mct.lp_exact`), feasibility reduces to intersecting
half-open rational τ-ranges, and the paper's bound

    D̄_s = max_{σ ∈ Ω} τ(σ)

is the supremum of the intersection — the ε-limit of the paper's LP.

All arithmetic is exact (:class:`fractions.Fraction`).
"""

from __future__ import annotations

from fractions import Fraction

from repro.logic.delays import Interval
from repro.mct.discretize import TimedLeaf

#: Half-open τ-range [lo, hi); ``hi = None`` means unbounded above.
#: τ-sets live in the *positive* rationals — a clock period of 0 is
#: never valid — so a ``lo`` of 0 denotes an open bottom: the range is
#: (0, hi), not [0, hi).  :func:`tau_set_contains` enforces this.
TauRange = tuple[Fraction, Fraction | None]
#: A union of disjoint, sorted half-open ranges.
TauSet = list[TauRange]


def age_tau_range(k: Interval, age: int) -> TauRange | None:
    """The τ-range over which delay interval ``k`` can realize ``age``.

    Returns ``None`` when no τ > 0 works (e.g. age 0 for a strictly
    positive delay).
    """
    if age < 0:
        return None
    if age == 0:
        # ⌈k/τ⌉ = 0 only for k = 0, at every *positive* τ.  τ = 0 is
        # not a clock period, so the range is strictly positive at the
        # bottom: (0, ∞), encoded with the module convention that a
        # ``lo`` of 0 is exclusive.
        return (Fraction(0), None) if k.lo == 0 else None
    lo = k.lo / age
    hi = k.hi / (age - 1) if age >= 2 else None
    if hi is not None and lo >= hi:
        return None
    return (lo, hi)


def tau_set_contains(tau_set: TauSet, tau: Fraction) -> bool:
    """Membership of a clock period in a τ-set.

    Only positive periods are ever members: a ``lo`` of 0 marks an
    open bottom (the set is (0, hi)), so a zero-delay leaf at age 0
    cannot admit a zero period.
    """
    if tau <= 0:
        return False
    return any(
        lo <= tau and (hi is None or tau < hi) for lo, hi in tau_set
    )


def options_tau_set(k: Interval, ages: tuple[int, ...]) -> TauSet:
    """Union of the τ-ranges of several allowed ages, merged."""
    ranges = [r for r in (age_tau_range(k, a) for a in ages) if r is not None]
    return merge_ranges(ranges)


def merge_ranges(ranges: list[TauRange]) -> TauSet:
    """Normalize a list of half-open ranges to sorted disjoint form."""
    if not ranges:
        return []
    ranges = sorted(ranges, key=lambda r: (r[0], r[1] is None, r[1] or 0))
    merged: TauSet = [ranges[0]]
    for lo, hi in ranges[1:]:
        last_lo, last_hi = merged[-1]
        if last_hi is None or lo <= last_hi:
            if last_hi is not None and (hi is None or hi > last_hi):
                merged[-1] = (last_lo, hi)
        else:
            merged.append((lo, hi))
    return merged


def intersect_sets(a: TauSet, b: TauSet) -> TauSet:
    """Intersection of two normalized τ-sets."""
    out: TauSet = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        his = [h for h in (a[i][1], b[j][1]) if h is not None]
        hi = min(his) if len(his) == 2 else (his[0] if his else None)
        if hi is None or lo < hi:
            out.append((lo, hi))
        # Advance whichever range ends first.
        a_hi, b_hi = a[i][1], b[j][1]
        if a_hi is None:
            j += 1
        elif b_hi is None:
            i += 1
        elif a_hi <= b_hi:
            i += 1
        else:
            j += 1
    return out


def feasible_tau_range(
    sigma: dict[TimedLeaf, tuple[int, ...]],
    window: TauRange | None = None,
    deadline=None,
) -> TauSet:
    """τ-set on which *some* σ consistent with the age options is
    realizable (relaxed, per-leaf-independent model).

    ``window`` optionally intersects with the sweep's current
    breakpoint interval ``[b_low, b_high)``.  A cooperative ``deadline``
    is polled once per leaf so ``MctOptions.time_limit`` holds even
    inside a large feasibility pass.

    Without a window the universe is every *positive* τ — the returned
    set's bottom at 0 is open (see :func:`tau_set_contains`).
    """
    current: TauSet = [window] if window is not None else [(Fraction(0), None)]
    for tl, ages in sigma.items():
        if deadline is not None:
            deadline.check("feasibility")
        current = intersect_sets(current, options_tau_set(tl.total, ages))
        if not current:
            return []
    return current


def sigma_is_feasible(
    sigma: dict[TimedLeaf, tuple[int, ...]],
    window: TauRange | None = None,
    deadline=None,
) -> bool:
    """True when the combination is realizable at some τ in ``window``."""
    return bool(feasible_tau_range(sigma, window, deadline=deadline))


def point_sigma_sup_tau(
    sigma: dict[TimedLeaf, int],
    window: TauRange | None = None,
    deadline=None,
) -> tuple[bool, Fraction | None]:
    """Relaxed feasibility and supremum of one fully specified σ.

    The prescreen primitive of the exact-LP branch and bound
    (:mod:`repro.mct.lp_exact`): ``sigma`` assigns a *single* age per
    leaf, and the return value distinguishes "infeasible" from
    "unbounded above" — ``(False, None)`` when no τ works,
    ``(True, sup)`` otherwise with ``sup=None`` meaning the feasible
    set has no finite top (only possible without a window cap).
    """
    tau_set = feasible_tau_range(
        {tl: (age,) for tl, age in sigma.items()}, window, deadline=deadline
    )
    if not tau_set:
        return (False, None)
    return (True, tau_set[-1][1])


def sigma_sup_tau(
    sigma: dict[TimedLeaf, tuple[int, ...]],
    window: TauRange | None = None,
    deadline=None,
) -> Fraction | None:
    """Supremum of the feasible τ-set: the paper's ``τ(σ)`` (ε-limit).

    Returns ``None`` when infeasible.  An unbounded set cannot occur
    for failing combinations (some leaf has age ≥ 2, which caps τ), but
    the function degrades gracefully by returning the window's top.
    """
    tau_set = feasible_tau_range(sigma, window, deadline=deadline)
    if not tau_set:
        return None
    top = tau_set[-1][1]
    if top is None:
        # Unbounded: only the window can cap it.
        return window[1] if window is not None else None
    return top
