"""BLIF (Berkeley Logic Interchange Format) reader and writer.

The paper's tool chain (SIS-era Berkeley CAD) spoke BLIF; this module
lets the library consume those netlists.  Supported constructs:

* ``.model`` / ``.inputs`` / ``.outputs`` / ``.end`` (continuation
  lines with ``\\`` are handled);
* ``.names`` single-output covers — each cover is synthesized into a
  tree of AND/OR/NOT primitives (one AND per cube, an OR over cubes),
  since the netlist layer deliberately models primitive gates only;
* ``.latch`` with optional type/control/initial-value fields; only
  edge-triggered semantics on the single global clock are modeled,
  matching the paper's machine model.

The writer emits one ``.names`` per primitive gate; reader(writer(c))
is functionally equivalent to ``c`` (tested by simulation).
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import BenchParseError
from repro.logic.gate import GateType
from repro.logic.netlist import Circuit, Gate, Latch


def _logical_lines(text: str):
    """Yield (line_no, line) with comments stripped and continuations
    joined (BLIF uses a trailing backslash)."""
    pending = ""
    pending_no = 0
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not pending:
            pending_no = line_no
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        pending += line
        if pending.strip():
            yield pending_no, pending.strip()
        pending = ""
    if pending.strip():
        yield pending_no, pending.strip()


class _CoverSynthesizer:
    """Turns a .names cover into primitive gates."""

    def __init__(self, output: str):
        self.output = output
        self._counter = 0

    def fresh(self) -> str:
        self._counter += 1
        return f"{self.output}$blif{self._counter}"

    def synthesize(
        self, inputs: list[str], cubes: list[tuple[str, str]], line_no: int
    ) -> list[Gate]:
        """Gates computing the cover; the last gate drives ``output``."""
        if not cubes:
            # Empty cover = constant 0 (SIS convention).
            return [Gate(self.output, GateType.CONST0, ())]
        polarities = {value for _, value in cubes}
        if len(polarities) != 1:
            raise BenchParseError(
                "mixed on/off-set cubes in one cover", line_no
            )
        polarity = polarities.pop()
        if polarity not in ("0", "1"):
            raise BenchParseError(f"bad cover output {polarity!r}", line_no)
        gates: list[Gate] = []
        if not inputs:
            # Constant cover: a single cube row like "1".
            gtype = GateType.CONST1 if polarity == "1" else GateType.CONST0
            return [Gate(self.output, gtype, ())]
        term_nets: list[str] = []
        for mask, _ in cubes:
            if len(mask) != len(inputs):
                raise BenchParseError(
                    f"cube width {len(mask)} != {len(inputs)} inputs", line_no
                )
            literal_nets: list[str] = []
            for bit, net in zip(mask, inputs):
                if bit == "1":
                    literal_nets.append(net)
                elif bit == "0":
                    inv = self.fresh()
                    gates.append(Gate(inv, GateType.NOT, (net,)))
                    literal_nets.append(inv)
                elif bit == "-":
                    continue
                else:
                    raise BenchParseError(f"bad cube character {bit!r}", line_no)
            if not literal_nets:
                # All-don't-care cube: the cover is a constant.
                term = self.fresh()
                gates.append(Gate(term, GateType.CONST1, ()))
                literal_nets = [term]
            if len(literal_nets) == 1:
                term_nets.append(literal_nets[0])
            else:
                term = self.fresh()
                gates.append(Gate(term, GateType.AND, tuple(literal_nets)))
                term_nets.append(term)
        # OR of terms, then polarity.
        if polarity == "1":
            if len(term_nets) == 1:
                gates.append(Gate(self.output, GateType.BUF, (term_nets[0],)))
            else:
                gates.append(Gate(self.output, GateType.OR, tuple(term_nets)))
        else:
            if len(term_nets) == 1:
                gates.append(Gate(self.output, GateType.NOT, (term_nets[0],)))
            else:
                gates.append(Gate(self.output, GateType.NOR, tuple(term_nets)))
        return gates


def parse_blif(text: str, name: str | None = None) -> Circuit:
    """Parse BLIF source into a :class:`Circuit`.

    Latch initial values are recorded in ``circuit.blif_initial_state``
    (``None`` for the BLIF "don't know" values 2/3).
    """
    model_name = name or "blif"
    inputs: list[str] = []
    outputs: list[str] = []
    gates: list[Gate] = []
    latches: list[Latch] = []
    initial: dict[str, bool | None] = {}
    current_cover: tuple[int, list[str]] | None = None  # (line, io list)
    cubes: list[tuple[str, str]] = []

    def flush_cover() -> None:
        nonlocal current_cover, cubes
        if current_cover is None:
            return
        line_no, io = current_cover
        output = io[-1]
        cover_inputs = io[:-1]
        synth = _CoverSynthesizer(output)
        gates.extend(synth.synthesize(cover_inputs, cubes, line_no))
        current_cover = None
        cubes = []

    for line_no, line in _logical_lines(text):
        if line.startswith("."):
            parts = line.split()
            keyword = parts[0]
            if keyword != ".names":
                flush_cover()
            if keyword == ".model":
                if len(parts) > 1 and name is None:
                    model_name = parts[1]
            elif keyword == ".inputs":
                inputs.extend(parts[1:])
            elif keyword == ".outputs":
                outputs.extend(parts[1:])
            elif keyword == ".names":
                flush_cover()
                if len(parts) < 2:
                    raise BenchParseError(".names needs at least an output", line_no)
                current_cover = (line_no, parts[1:])
            elif keyword == ".latch":
                if len(parts) < 3:
                    raise BenchParseError(".latch needs input and output", line_no)
                data, out = parts[1], parts[2]
                latches.append(Latch(output=out, data=data))
                init_field = parts[-1] if len(parts) >= 4 else "3"
                initial[out] = {"0": False, "1": True}.get(init_field)
            elif keyword == ".end":
                break
            elif keyword in (".exdc", ".subckt", ".search", ".clock"):
                raise BenchParseError(f"unsupported construct {keyword}", line_no)
            else:
                # Unknown dot-directives are skipped (SIS emits many).
                continue
        else:
            if current_cover is None:
                raise BenchParseError(f"cube outside .names: {line!r}", line_no)
            fields = line.split()
            if len(fields) == 1:
                # Constant cover for a zero-input .names.
                cubes.append(("", fields[0]))
            elif len(fields) == 2:
                cubes.append((fields[0], fields[1]))
            else:
                raise BenchParseError(f"bad cube line {line!r}", line_no)
    flush_cover()
    circuit = Circuit(model_name, inputs, outputs, gates, latches)
    circuit.blif_initial_state = initial  # type: ignore[attr-defined]
    return circuit


def parse_blif_file(path: str | Path) -> Circuit:
    """Parse a ``.blif`` file; falls back to the filename as model name."""
    path = Path(path)
    return parse_blif(path.read_text(), name=None) if _has_model(path) else parse_blif(
        path.read_text(), name=path.stem
    )


def _has_model(path: Path) -> bool:
    for _, line in _logical_lines(path.read_text()):
        if line.startswith(".model"):
            return True
    return False


_COVERS: dict[GateType, str] = {}


def _gate_cover(gate: Gate) -> str:
    """The .names body for one primitive gate."""
    n = len(gate.inputs)
    if gate.gtype is GateType.AND:
        return "1" * n + " 1"
    if gate.gtype is GateType.NAND:
        return "1" * n + " 0"
    if gate.gtype is GateType.OR:
        return "\n".join(
            "-" * i + "1" + "-" * (n - i - 1) + " 1" for i in range(n)
        )
    if gate.gtype is GateType.NOR:
        return "0" * n + " 1"
    if gate.gtype is GateType.NOT:
        return "0 1"
    if gate.gtype is GateType.BUF:
        return "1 1"
    if gate.gtype is GateType.CONST1:
        return "1"
    if gate.gtype is GateType.CONST0:
        return ""  # empty cover = constant 0
    if gate.gtype in (GateType.XOR, GateType.XNOR):
        want = 1 if gate.gtype is GateType.XOR else 0
        rows = []
        for bits in range(1 << n):
            ones = bin(bits).count("1")
            if ones % 2 == want:
                mask = "".join(
                    "1" if bits & (1 << i) else "0" for i in range(n)
                )
                rows.append(f"{mask} 1")
        return "\n".join(rows)
    raise BenchParseError(f"cannot export gate type {gate.gtype}")


def write_blif(circuit: Circuit, initial_state: dict[str, bool] | None = None) -> str:
    """Serialize a circuit to BLIF text."""
    lines = [f".model {circuit.name}"]
    if circuit.inputs:
        lines.append(".inputs " + " ".join(circuit.inputs))
    if circuit.outputs:
        lines.append(".outputs " + " ".join(circuit.outputs))
    for latch in circuit.latches.values():
        init = "3"
        if initial_state is not None and latch.output in initial_state:
            init = "1" if initial_state[latch.output] else "0"
        lines.append(f".latch {latch.data} {latch.output} re clk {init}")
    for net in circuit.topological_order():
        gate = circuit.gates[net]
        header = ".names " + " ".join(gate.inputs + (net,)) if gate.inputs else f".names {net}"
        lines.append(header)
        body = _gate_cover(gate)
        if body:
            lines.append(body)
    lines.append(".end")
    return "\n".join(lines) + "\n"
