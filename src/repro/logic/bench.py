"""ISCAS'89 ``.bench`` netlist reader and writer.

Format summary (as used by the ISCAS'89 sequential benchmark suite the
paper evaluates on)::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G5 = DFF(G10)
    G8 = AND(G14, G6)
    G14 = NOT(G0)

Gate names are case-insensitive; ``BUFF`` is accepted for ``BUF``.
``DFF`` entries become :class:`~repro.logic.netlist.Latch` elements on
the implicit common clock.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.errors import BenchParseError
from repro.logic.gate import gate_type_from_name
from repro.logic.netlist import Circuit, Gate, Latch

_DECL_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^\s()]+)\s*\)$", re.IGNORECASE)
_ASSIGN_RE = re.compile(r"^([^\s=()]+)\s*=\s*([A-Za-z0-9_]+)\s*\(\s*(.*?)\s*\)$")


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` source text into a :class:`Circuit`."""
    inputs: list[str] = []
    outputs: list[str] = []
    gates: list[Gate] = []
    latches: list[Latch] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        decl = _DECL_RE.match(line)
        if decl:
            kind, net = decl.group(1).upper(), decl.group(2)
            (inputs if kind == "INPUT" else outputs).append(net)
            continue
        assign = _ASSIGN_RE.match(line)
        if not assign:
            raise BenchParseError(f"unrecognized line: {raw.strip()!r}", line_no)
        out, type_name, args_text = assign.groups()
        args = [a.strip() for a in args_text.split(",")] if args_text.strip() else []
        if any(not a for a in args):
            raise BenchParseError(f"empty operand in {raw.strip()!r}", line_no)
        if type_name.upper() == "DFF":
            if len(args) != 1:
                raise BenchParseError(
                    f"DFF takes exactly one input, got {len(args)}", line_no
                )
            latches.append(Latch(output=out, data=args[0]))
        else:
            try:
                gtype = gate_type_from_name(type_name)
            except Exception as exc:
                raise BenchParseError(str(exc), line_no) from None
            gates.append(Gate(output=out, gtype=gtype, inputs=tuple(args)))
    return Circuit(name=name, inputs=inputs, outputs=outputs, gates=gates, latches=latches)


def parse_bench_file(path: str | Path) -> Circuit:
    """Parse a ``.bench`` file; the circuit is named after the file."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def write_bench(circuit: Circuit) -> str:
    """Serialize a circuit back to ``.bench`` text.

    Round-trips with :func:`parse_bench` up to whitespace and ordering;
    gates are emitted in topological order for readability.
    """
    lines = [f"# {circuit.name}"]
    lines.extend(f"INPUT({net})" for net in circuit.inputs)
    lines.extend(f"OUTPUT({net})" for net in circuit.outputs)
    for latch in circuit.latches.values():
        lines.append(f"{latch.output} = DFF({latch.data})")
    for net in circuit.topological_order():
        gate = circuit.gates[net]
        type_name = "BUFF" if gate.gtype.value == "BUF" else gate.gtype.value
        lines.append(f"{net} = {type_name}({', '.join(gate.inputs)})")
    return "\n".join(lines) + "\n"
