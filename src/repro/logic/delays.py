"""Pin-accurate delay annotations with bounded intervals.

The paper's timing model (Secs. 3 and 7):

* each gate input pin has a delay to the gate output — possibly
  different for rising and falling outputs (Fig. 1), and possibly
  varying within a bounded interval ``[d_min, d_max]`` due to
  manufacturing (Sec. 7);
* each flip-flop has a clock-to-output delay ``d_f`` that is folded
  into every register-to-register path delay ``k_ij = h_ij + d_fj``;
* latches may have setup and hold times (Theorem 1).

All delays are :class:`fractions.Fraction` so that interval endpoints,
path sums and the critical cycle-time breakpoints ``k/m`` are exact —
the τ-sweep of Sec. 6 depends on exact comparisons of those points.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping
from fractions import Fraction
from numbers import Rational

from repro.errors import DelayModelError
from repro.logic.gate import GateType
from repro.logic.netlist import Circuit

#: Anything convertible to an exact Fraction.
DelayLike = Rational | int | str


def as_fraction(value: DelayLike | float) -> Fraction:
    """Convert to an exact Fraction.

    Floats are accepted for convenience but converted via their decimal
    string form (``0.1 -> 1/10``), not their binary expansion, so that
    delay literals written in examples behave as printed.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, float):
        return Fraction(str(value))
    return Fraction(value)


@dataclasses.dataclass(frozen=True, order=True)
class Interval:
    """A closed delay interval ``[lo, hi]`` with exact endpoints."""

    lo: Fraction
    hi: Fraction

    def __post_init__(self) -> None:
        if not isinstance(self.lo, Fraction) or not isinstance(self.hi, Fraction):
            object.__setattr__(self, "lo", as_fraction(self.lo))
            object.__setattr__(self, "hi", as_fraction(self.hi))
        if self.lo > self.hi:
            raise DelayModelError(f"interval lo {self.lo} > hi {self.hi}")
        # Negative endpoints are allowed at the Interval level: clock
        # phase differences shift *effective* path delays below zero
        # (a race, which the analyses guard against).  Physical pin and
        # latch delays are checked for non-negativity by DelayMap.

    def shifted(self, delta: "DelayLike | float") -> "Interval":
        """The interval translated by ``delta`` (may go negative)."""
        d = as_fraction(delta)
        return Interval(self.lo + d, self.hi + d)

    @classmethod
    def point(cls, value: DelayLike | float) -> "Interval":
        """A degenerate interval ``[v, v]`` (a fixed delay)."""
        v = as_fraction(value)
        return cls(v, v)

    @classmethod
    def of(cls, lo: DelayLike | float, hi: DelayLike | float) -> "Interval":
        """An interval with exact converted endpoints."""
        return cls(as_fraction(lo), as_fraction(hi))

    @property
    def is_point(self) -> bool:
        """True when lo == hi (no manufacturing variation)."""
        return self.lo == self.hi

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def scale(self, lo_factor: DelayLike | float, hi_factor: DelayLike | float) -> "Interval":
        """Widen by scaling endpoints (e.g. 90%..100% of nominal)."""
        return Interval(self.lo * as_fraction(lo_factor), self.hi * as_fraction(hi_factor))

    def __repr__(self) -> str:
        if self.is_point:
            return f"Interval({self.lo})"
        return f"Interval({self.lo}, {self.hi})"


#: The zero-delay interval, used as the additive identity for paths.
ZERO = Interval(Fraction(0), Fraction(0))


@dataclasses.dataclass(frozen=True)
class PinTiming:
    """Rise/fall delay intervals of one gate input pin.

    Symmetric pins (``rise == fall``) model the paper's simple gates;
    asymmetric pins trigger the Fig. 1(b) buffer decomposition in the
    timed expansion (``x(t−τ_r)·x(t−τ_f)`` or the dual).
    """

    rise: Interval
    fall: Interval

    @classmethod
    def symmetric(cls, delay: Interval | DelayLike | float) -> "PinTiming":
        """A pin whose rising and falling delays coincide."""
        interval = delay if isinstance(delay, Interval) else Interval.point(delay)
        return cls(rise=interval, fall=interval)

    @classmethod
    def asym(cls, rise: DelayLike | float, fall: DelayLike | float) -> "PinTiming":
        """A pin with distinct fixed rise/fall delays."""
        return cls(rise=Interval.point(rise), fall=Interval.point(fall))

    @property
    def is_symmetric(self) -> bool:
        """True when rise and fall delays are identical."""
        return self.rise == self.fall

    @property
    def envelope(self) -> Interval:
        """The interval covering both rise and fall delays."""
        return Interval(min(self.rise.lo, self.fall.lo), max(self.rise.hi, self.fall.hi))


class DelayMap:
    """Delay annotation for a :class:`~repro.logic.netlist.Circuit`.

    Maps ``(gate_output_net, pin_index)`` to a :class:`PinTiming`, plus
    per-latch clock-to-output delays and global setup/hold times.
    """

    def __init__(
        self,
        circuit: Circuit,
        pin_timing: Mapping[tuple[str, int], PinTiming],
        latch_delay: Mapping[str, Interval] | None = None,
        setup: DelayLike | float = 0,
        hold: DelayLike | float = 0,
        phase: Mapping[str, DelayLike | float] | None = None,
    ):
        self.circuit = circuit
        self._pins = dict(pin_timing)
        self._latch = {q: Interval.point(0) for q in circuit.latches}
        if latch_delay:
            for q, interval in latch_delay.items():
                if q not in circuit.latches:
                    raise DelayModelError(f"latch delay for unknown latch {q!r}")
                self._latch[q] = interval
        self.setup = as_fraction(setup)
        self.hold = as_fraction(hold)
        # Per-latch clock phase offsets ("useful skew"): latch q's
        # active edges occur at nτ + phase(q).  Default 0 everywhere
        # (the paper's common-clock model).
        self._phase = {q: Fraction(0) for q in circuit.latches}
        if phase:
            for q, value in phase.items():
                if q not in circuit.latches:
                    raise DelayModelError(f"phase for unknown latch {q!r}")
                self._phase[q] = as_fraction(value)
        self._validate()

    def _validate(self) -> None:
        for (net, pin), timing in self._pins.items():
            gate = self.circuit.gates.get(net)
            if gate is None:
                raise DelayModelError(f"pin timing for unknown gate net {net!r}")
            if not 0 <= pin < len(gate.inputs):
                raise DelayModelError(f"gate {net!r} has no pin {pin}")
            if not isinstance(timing, PinTiming):
                raise DelayModelError(f"pin ({net!r}, {pin}): expected PinTiming")
            for interval in (timing.rise, timing.fall):
                if interval.lo < 0:
                    raise DelayModelError(
                        f"pin ({net!r}, {pin}) has negative delay {interval.lo}"
                    )
        for net, gate in self.circuit.gates.items():
            for pin in range(len(gate.inputs)):
                if (net, pin) not in self._pins:
                    raise DelayModelError(f"gate {net!r} pin {pin} has no delay")
        for q, interval in self._latch.items():
            if interval.lo < 0:
                raise DelayModelError(f"latch {q!r} has negative delay")
        for q, value in self._phase.items():
            if value < 0:
                raise DelayModelError(f"latch {q!r} has negative phase")

    def pin(self, net: str, pin: int) -> PinTiming:
        """Timing of input ``pin`` of the gate driving ``net``."""
        return self._pins[(net, pin)]

    def latch(self, q_net: str) -> Interval:
        """Clock-to-output delay of the latch driving ``q_net``."""
        return self._latch[q_net]

    def phase(self, q_net: str) -> Fraction:
        """Clock phase offset of the latch driving ``q_net``."""
        return self._phase[q_net]

    @property
    def has_phases(self) -> bool:
        """True when any latch has a non-zero clock phase."""
        return any(self._phase.values())

    def with_phases(self, phase: Mapping[str, DelayLike | float]) -> "DelayMap":
        """Copy with new per-latch clock phases (useful skew)."""
        return DelayMap(
            self.circuit, self._pins, self._latch,
            setup=self.setup, hold=self.hold, phase=phase,
        )

    @property
    def is_fixed(self) -> bool:
        """True when every delay is a point (no intervals anywhere)."""
        return all(
            t.rise.is_point and t.fall.is_point for t in self._pins.values()
        ) and all(d.is_point for d in self._latch.values())

    @property
    def has_asymmetric_pins(self) -> bool:
        """True when any pin has distinct rise/fall delays."""
        return any(not t.is_symmetric for t in self._pins.values())

    def widen(self, lo_factor: DelayLike | float, hi_factor: DelayLike | float = 1) -> "DelayMap":
        """Return a copy with every delay scaled into an interval.

        ``widen(0.9)`` reproduces the paper's experimental setting:
        "gate delays varied from 90% to 100% of their respective
        maxima".  Latch delays are widened the same way.
        """
        pins = {
            key: PinTiming(
                rise=t.rise.scale(lo_factor, hi_factor),
                fall=t.fall.scale(lo_factor, hi_factor),
            )
            for key, t in self._pins.items()
        }
        latches = {q: d.scale(lo_factor, hi_factor) for q, d in self._latch.items()}
        return DelayMap(
            self.circuit, pins, latches,
            setup=self.setup, hold=self.hold, phase=self._phase,
        )

    def with_setup_hold(self, setup: DelayLike | float, hold: DelayLike | float) -> "DelayMap":
        """Copy with new setup/hold times."""
        return DelayMap(
            self.circuit, self._pins, self._latch,
            setup=setup, hold=hold, phase=self._phase,
        )

    def at_max(self) -> "DelayMap":
        """Collapse every interval to its upper endpoint (worst case)."""
        pins = {
            key: PinTiming(
                rise=Interval(t.rise.hi, t.rise.hi),
                fall=Interval(t.fall.hi, t.fall.hi),
            )
            for key, t in self._pins.items()
        }
        latches = {q: Interval(d.hi, d.hi) for q, d in self._latch.items()}
        return DelayMap(
            self.circuit, pins, latches,
            setup=self.setup, hold=self.hold, phase=self._phase,
        )


# ----------------------------------------------------------------------
# Deterministic delay models (benchmark substitution, see DESIGN.md)
# ----------------------------------------------------------------------

#: Per-gate-type nominal delays for :func:`typed_delays`.  Loosely a
#: normalized standard-cell flavour: inverters fast, parity gates slow.
DEFAULT_TYPE_DELAYS: dict[GateType, Fraction] = {
    GateType.NOT: Fraction(1),
    GateType.BUF: Fraction(1),
    GateType.AND: Fraction(2),
    GateType.OR: Fraction(2),
    GateType.NAND: Fraction(3, 2),
    GateType.NOR: Fraction(3, 2),
    GateType.XOR: Fraction(3),
    GateType.XNOR: Fraction(3),
    GateType.CONST0: Fraction(0),
    GateType.CONST1: Fraction(0),
}


def unit_delays(circuit: Circuit, latch_delay: DelayLike | float = 0) -> DelayMap:
    """Every gate pin has delay 1; latches have ``latch_delay``."""
    pins = {
        (net, pin): PinTiming.symmetric(1)
        for net, gate in circuit.gates.items()
        for pin in range(len(gate.inputs))
    }
    latches = {q: Interval.point(latch_delay) for q in circuit.latches}
    return DelayMap(circuit, pins, latches)


def typed_delays(
    circuit: Circuit,
    table: Mapping[GateType, DelayLike | float] | None = None,
    latch_delay: DelayLike | float = 0,
) -> DelayMap:
    """Pin delay = per-type nominal delay (same for every pin)."""
    delays = dict(DEFAULT_TYPE_DELAYS)
    if table:
        delays.update({g: as_fraction(v) for g, v in table.items()})
    pins = {}
    for net, gate in circuit.gates.items():
        try:
            base = delays[gate.gtype]
        except KeyError:
            raise DelayModelError(f"no delay for gate type {gate.gtype}") from None
        for pin in range(len(gate.inputs)):
            pins[(net, pin)] = PinTiming.symmetric(base)
    latches = {q: Interval.point(latch_delay) for q in circuit.latches}
    return DelayMap(circuit, pins, latches)


def fanout_loaded_delays(
    circuit: Circuit,
    table: Mapping[GateType, DelayLike | float] | None = None,
    load_per_fanout: DelayLike | float = Fraction(1, 5),
    latch_delay: DelayLike | float = 0,
) -> DelayMap:
    """Pin delay = type nominal + load × fanout of the driven net.

    This is the deterministic stand-in for the unknown technology
    delays the paper used on ISCAS'89 (see DESIGN.md §2): it produces
    unequal path lengths and realistic critical-path structure while
    remaining exactly reproducible.
    """
    delays = dict(DEFAULT_TYPE_DELAYS)
    if table:
        delays.update({g: as_fraction(v) for g, v in table.items()})
    load = as_fraction(load_per_fanout)
    pins = {}
    for net, gate in circuit.gates.items():
        base = delays[gate.gtype] + load * circuit.fanout_count(net)
        for pin in range(len(gate.inputs)):
            pins[(net, pin)] = PinTiming.symmetric(base)
    latches = {q: Interval.point(latch_delay) for q in circuit.latches}
    return DelayMap(circuit, pins, latches)


def widen_to_intervals(delays: DelayMap, lo_factor: DelayLike | float = Fraction(9, 10)) -> DelayMap:
    """The paper's experimental variation: delays in [90%, 100%] of max."""
    return delays.widen(lo_factor, 1)
