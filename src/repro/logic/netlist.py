"""Synchronous gate-level netlists (the paper's Fig. 3 machine model).

A :class:`Circuit` is a single-clock synchronous sequential circuit:
primary inputs and outputs, combinational gates, and edge-triggered
D-flip-flops (:class:`Latch`).  External inputs are assumed synchronized
to the clock, exactly as in the paper.

Nets are plain strings; every net has exactly one driver (a primary
input, a gate output, or a flip-flop output).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Mapping, Sequence

from repro.errors import CircuitError
from repro.logic.gate import GateType, eval_gate


@dataclasses.dataclass(frozen=True)
class Gate:
    """A combinational gate driving net ``output`` from ``inputs``."""

    output: str
    gtype: GateType
    inputs: tuple[str, ...]

    def __post_init__(self) -> None:
        self.gtype.check_arity(len(self.inputs))


@dataclasses.dataclass(frozen=True)
class Latch:
    """An edge-triggered D-flip-flop: ``output`` holds ``data`` sampled
    at the previous active clock edge.

    The paper models this element with the TBF
    ``Q(t) = D(P * floor((t - d)/P))``; the flip-flop's own delay ``d``
    lives in the delay annotation (:class:`repro.logic.delays.DelayMap`),
    not in the structure.
    """

    output: str
    data: str


class Circuit:
    """A synchronous sequential circuit.

    Parameters
    ----------
    name:
        Identifier used in reports.
    inputs / outputs:
        Primary input and output net names.
    gates:
        Combinational gates; each output net must be unique.
    latches:
        Edge-triggered D-flip-flops on the common clock.
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        gates: Iterable[Gate],
        latches: Iterable[Latch] = (),
    ):
        self.name = name
        self.inputs: tuple[str, ...] = tuple(inputs)
        self.outputs: tuple[str, ...] = tuple(outputs)
        self.gates: dict[str, Gate] = {}
        for gate in gates:
            if gate.output in self.gates:
                raise CircuitError(f"net {gate.output!r} driven by two gates")
            self.gates[gate.output] = gate
        self.latches: dict[str, Latch] = {}
        for latch in latches:
            if latch.output in self.latches:
                raise CircuitError(f"net {latch.output!r} driven by two latches")
            self.latches[latch.output] = latch
        self._validate()
        self._topo_cache: list[str] | None = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def state_nets(self) -> tuple[str, ...]:
        """Flip-flop output nets, in declaration order."""
        return tuple(self.latches)

    @property
    def leaves(self) -> tuple[str, ...]:
        """Nets that feed the combinational logic: PIs + FF outputs."""
        return self.inputs + self.state_nets

    @property
    def combinational_roots(self) -> tuple[str, ...]:
        """Nets whose cones the analyses care about: FF data + POs."""
        roots = [latch.data for latch in self.latches.values()]
        roots.extend(self.outputs)
        # Deduplicate preserving order (a PO may also feed a latch).
        seen: set[str] = set()
        unique = []
        for net in roots:
            if net not in seen:
                seen.add(net)
                unique.append(net)
        return tuple(unique)

    def driver_of(self, net: str) -> Gate | Latch | str:
        """The driver of ``net``: a Gate, a Latch, or the PI name itself."""
        if net in self.gates:
            return self.gates[net]
        if net in self.latches:
            return self.latches[net]
        if net in self._input_set:
            return net
        raise CircuitError(f"net {net!r} has no driver")

    def is_leaf(self, net: str) -> bool:
        """True for nets that are inputs to the combinational logic."""
        return net in self._input_set or net in self.latches

    def fanins(self, net: str) -> tuple[str, ...]:
        """Combinational fanins of a gate output net (empty for leaves)."""
        gate = self.gates.get(net)
        return gate.inputs if gate is not None else ()

    def fanout_count(self, net: str) -> int:
        """Number of gate pins plus latch data pins reading ``net``."""
        return self._fanout_counts.get(net, 0)

    def _validate(self) -> None:
        self._input_set = set(self.inputs)
        if len(self._input_set) != len(self.inputs):
            raise CircuitError("duplicate primary input")
        overlap = self._input_set & set(self.gates)
        if overlap:
            raise CircuitError(f"nets driven by both PI and gate: {sorted(overlap)}")
        overlap = self._input_set & set(self.latches)
        if overlap:
            raise CircuitError(f"nets driven by both PI and latch: {sorted(overlap)}")
        overlap = set(self.gates) & set(self.latches)
        if overlap:
            raise CircuitError(f"nets driven by both gate and latch: {sorted(overlap)}")
        known = self._input_set | set(self.gates) | set(self.latches)
        for gate in self.gates.values():
            for net in gate.inputs:
                if net not in known:
                    raise CircuitError(
                        f"gate {gate.output!r} reads undriven net {net!r}"
                    )
        for latch in self.latches.values():
            if latch.data not in known:
                raise CircuitError(
                    f"latch {latch.output!r} reads undriven net {latch.data!r}"
                )
        for net in self.outputs:
            if net not in known:
                raise CircuitError(f"primary output {net!r} is undriven")
        self._fanout_counts: dict[str, int] = {}
        for gate in self.gates.values():
            for net in gate.inputs:
                self._fanout_counts[net] = self._fanout_counts.get(net, 0) + 1
        for latch in self.latches.values():
            self._fanout_counts[latch.data] = self._fanout_counts.get(latch.data, 0) + 1
        # Cycle check happens lazily in topological_order().

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def topological_order(self) -> list[str]:
        """Gate output nets in topological (fanin-first) order.

        Latch boundaries break cycles: a latch output is a leaf.  A
        *combinational* cycle raises :class:`CircuitError`.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        order: list[str] = []
        state: dict[str, int] = {}  # 0 = visiting, 1 = done
        for start in self.gates:
            if state.get(start) == 1:
                continue
            stack: list[tuple[str, int]] = [(start, 0)]
            while stack:
                net, child_idx = stack.pop()
                if net not in self.gates or state.get(net) == 1:
                    continue
                if child_idx == 0:
                    if state.get(net) == 0:
                        raise CircuitError(f"combinational cycle through {net!r}")
                    state[net] = 0
                fanins = self.gates[net].inputs
                advanced = False
                for i in range(child_idx, len(fanins)):
                    child = fanins[i]
                    if child in self.gates and state.get(child) != 1:
                        if state.get(child) == 0:
                            raise CircuitError(
                                f"combinational cycle through {child!r}"
                            )
                        stack.append((net, i + 1))
                        stack.append((child, 0))
                        advanced = True
                        break
                if not advanced:
                    state[net] = 1
                    order.append(net)
        self._topo_cache = order
        return list(order)

    def cone(self, root: str) -> list[str]:
        """Gate output nets in the transitive fanin cone of ``root``,
        in topological order (leaves excluded)."""
        member: set[str] = set()
        stack = [root]
        while stack:
            net = stack.pop()
            if net in member or self.is_leaf(net):
                continue
            if net not in self.gates:
                raise CircuitError(f"net {net!r} has no driver")
            member.add(net)
            stack.extend(self.gates[net].inputs)
        return [net for net in self.topological_order() if net in member]

    def cone_leaves(self, root: str) -> list[str]:
        """Leaf nets (PIs / FF outputs) feeding ``root``'s cone, in
        first-visit DFS order (good BDD variable order)."""
        order: list[str] = []
        seen: set[str] = set()
        stack = [root]
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            if self.is_leaf(net):
                order.append(net)
            else:
                # push reversed so leftmost fanin is visited first
                stack.extend(reversed(self.gates[net].inputs))
        return order

    # ------------------------------------------------------------------
    # Functional semantics
    # ------------------------------------------------------------------
    def eval_combinational(self, leaf_values: Mapping[str, bool]) -> dict[str, bool]:
        """Evaluate all gate nets given PI / FF-output values."""
        values: dict[str, bool] = {net: bool(v) for net, v in leaf_values.items()}
        missing = set(self.leaves) - set(values)
        if missing:
            raise CircuitError(f"missing leaf values for {sorted(missing)}")
        for net in self.topological_order():
            gate = self.gates[net]
            values[net] = eval_gate(gate.gtype, [values[i] for i in gate.inputs])
        return values

    def step(
        self, state: Mapping[str, bool], inputs: Mapping[str, bool]
    ) -> tuple[dict[str, bool], dict[str, bool]]:
        """One ideal (zero-delay) clock cycle.

        Returns ``(next_state, outputs)`` where ``next_state`` maps FF
        output nets to their new values and ``outputs`` maps POs to the
        values computed *from the current state* (Mealy sampling at the
        end of the cycle, matching the TBF sampling ``y(n)``).
        """
        leaf_values = dict(inputs)
        for net in self.state_nets:
            leaf_values[net] = bool(state[net])
        values = self.eval_combinational(leaf_values)
        next_state = {q: values[latch.data] for q, latch in self.latches.items()}
        outputs = {net: values[net] for net in self.outputs}
        return next_state, outputs

    def simulate(
        self,
        initial_state: Mapping[str, bool],
        input_sequence: Sequence[Mapping[str, bool]],
    ) -> tuple[list[dict[str, bool]], list[dict[str, bool]]]:
        """Ideal multi-cycle simulation.

        Returns the list of states *after* each cycle and the outputs
        sampled each cycle.
        """
        state = {net: bool(initial_state[net]) for net in self.state_nets}
        states: list[dict[str, bool]] = []
        outputs: list[dict[str, bool]] = []
        for stimulus in input_sequence:
            state, out = self.step(state, stimulus)
            states.append(dict(state))
            outputs.append(out)
        return states, outputs

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict[str, int]:
        """Size summary used by reports and the CLI."""
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "gates": len(self.gates),
            "latches": len(self.latches),
        }

    def __repr__(self) -> str:
        s = self.stats
        return (
            f"Circuit({self.name!r}, {s['inputs']} PI, {s['outputs']} PO, "
            f"{s['gates']} gates, {s['latches']} FF)"
        )
