"""The primitive gate library and its Boolean semantics.

Every analysis in the library (functional simulation, BDD cone
construction, timed expansion) funnels gate semantics through this
module, so adding a gate type here makes it available everywhere.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence

from repro.errors import CircuitError


class GateType(enum.Enum):
    """Combinational primitives understood by the netlist.

    The set matches what ISCAS'89 ``.bench`` files use (plus explicit
    constants, which synthetic generators need).
    """

    AND = "AND"
    OR = "OR"
    NAND = "NAND"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"

    @property
    def is_constant(self) -> bool:
        """True for the two zero-input constant generators."""
        return self in (GateType.CONST0, GateType.CONST1)

    @property
    def min_arity(self) -> int:
        """Smallest legal number of inputs."""
        if self.is_constant:
            return 0
        if self in (GateType.NOT, GateType.BUF):
            return 1
        return 2

    @property
    def max_arity(self) -> int | None:
        """Largest legal number of inputs (None = unbounded)."""
        if self.is_constant:
            return 0
        if self in (GateType.NOT, GateType.BUF):
            return 1
        return None

    def check_arity(self, n_inputs: int) -> None:
        """Raise :class:`CircuitError` if ``n_inputs`` is illegal."""
        if n_inputs < self.min_arity or (
            self.max_arity is not None and n_inputs > self.max_arity
        ):
            raise CircuitError(
                f"{self.value} gate cannot take {n_inputs} input(s)"
            )


#: ``.bench`` spellings that deviate from our canonical names.
BENCH_ALIASES = {
    "BUFF": GateType.BUF,
    "INV": GateType.NOT,
}


def gate_type_from_name(name: str) -> GateType:
    """Resolve a gate-type name as found in a ``.bench`` file."""
    upper = name.upper()
    if upper in BENCH_ALIASES:
        return BENCH_ALIASES[upper]
    try:
        return GateType(upper)
    except ValueError:
        raise CircuitError(f"unknown gate type {name!r}") from None


def eval_gate(gtype: GateType, inputs: Sequence[bool]) -> bool:
    """Evaluate a gate on concrete Boolean inputs."""
    gtype.check_arity(len(inputs))
    if gtype is GateType.AND:
        return all(inputs)
    if gtype is GateType.OR:
        return any(inputs)
    if gtype is GateType.NAND:
        return not all(inputs)
    if gtype is GateType.NOR:
        return not any(inputs)
    if gtype is GateType.XOR:
        return sum(inputs) % 2 == 1
    if gtype is GateType.XNOR:
        return sum(inputs) % 2 == 0
    if gtype is GateType.NOT:
        return not inputs[0]
    if gtype is GateType.BUF:
        return bool(inputs[0])
    if gtype is GateType.CONST0:
        return False
    if gtype is GateType.CONST1:
        return True
    raise CircuitError(f"unhandled gate type {gtype}")  # pragma: no cover


def gate_bdd(gtype: GateType, manager, inputs: Sequence):
    """Build the gate function over BDD operand functions.

    ``inputs`` are :class:`repro.bdd.Function` objects from ``manager``.
    """
    gtype.check_arity(len(inputs))
    if gtype is GateType.AND:
        return manager.conjoin(inputs)
    if gtype is GateType.OR:
        return manager.disjoin(inputs)
    if gtype is GateType.NAND:
        return ~manager.conjoin(inputs)
    if gtype is GateType.NOR:
        return ~manager.disjoin(inputs)
    if gtype is GateType.XOR:
        acc = manager.false
        for f in inputs:
            acc = acc ^ f
        return acc
    if gtype is GateType.XNOR:
        acc = manager.false
        for f in inputs:
            acc = acc ^ f
        return ~acc
    if gtype is GateType.NOT:
        return ~inputs[0]
    if gtype is GateType.BUF:
        return inputs[0]
    if gtype is GateType.CONST0:
        return manager.false
    if gtype is GateType.CONST1:
        return manager.true
    raise CircuitError(f"unhandled gate type {gtype}")  # pragma: no cover
