"""Structural netlist transformations.

Light-weight cleanups a netlist flow needs around the analyses:
dead-logic sweeping, statistics, and rise/fall pin decomposition into
explicit buffers (so tools that only understand symmetric pins — e.g.
the event simulator — can handle Fig. 1(b) style annotations).
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction

from repro.errors import CircuitError
from repro.logic.delays import DelayMap, Interval, PinTiming
from repro.logic.gate import GateType
from repro.logic.netlist import Circuit, Gate, Latch


def sweep_dead_logic(
    circuit: Circuit, delays: DelayMap | None = None
) -> tuple[Circuit, DelayMap | None]:
    """Remove gates that no primary output or latch can observe.

    Returns the swept circuit (and a matching delay map when one was
    given).  Primary inputs are kept even if unused — they are part of
    the interface.
    """
    live: set[str] = set()
    stack = list(circuit.combinational_roots)
    while stack:
        net = stack.pop()
        if net in live or circuit.is_leaf(net):
            continue
        live.add(net)
        stack.extend(circuit.gates[net].inputs)
    gates = [g for net, g in circuit.gates.items() if net in live]
    swept = Circuit(
        name=circuit.name,
        inputs=circuit.inputs,
        outputs=circuit.outputs,
        gates=gates,
        latches=list(circuit.latches.values()),
    )
    if delays is None:
        return swept, None
    pins = {
        (net, pin): delays.pin(net, pin)
        for net in swept.gates
        for pin in range(len(swept.gates[net].inputs))
    }
    latch_delay = {q: delays.latch(q) for q in swept.latches}
    phase = {q: delays.phase(q) for q in swept.latches}
    return swept, DelayMap(
        swept, pins, latch_delay,
        setup=delays.setup, hold=delays.hold, phase=phase,
    )


def split_asymmetric_pins(
    circuit: Circuit, delays: DelayMap
) -> tuple[Circuit, DelayMap]:
    """Make every pin symmetric by inserting explicit Fig. 1(b) buffers.

    A pin with rise ``r`` > fall ``f`` becomes
    ``AND(buf_r(src), buf_f(src))``; the dual OR for ``r < f``.  The
    result's flattened TBF is identical, so all analyses agree — and
    the event simulator (symmetric-only) becomes applicable.
    """
    gates: list[Gate] = []
    pins: dict[tuple[str, int], PinTiming] = {}
    counter = 0

    def fresh(base: str) -> str:
        nonlocal counter
        counter += 1
        return f"{base}$af{counter}"

    for net, gate in circuit.gates.items():
        new_inputs: list[str] = []
        for pin, child in enumerate(gate.inputs):
            timing = delays.pin(net, pin)
            if timing.is_symmetric:
                new_inputs.append(child)
                continue
            rise, fall = timing.rise, timing.fall
            b_rise, b_fall = fresh(net), fresh(net)
            gates.append(Gate(b_rise, GateType.BUF, (child,)))
            pins[(b_rise, 0)] = PinTiming.symmetric(rise)
            gates.append(Gate(b_fall, GateType.BUF, (child,)))
            pins[(b_fall, 0)] = PinTiming.symmetric(fall)
            combiner = fresh(net)
            if rise.lo >= fall.hi:
                gates.append(Gate(combiner, GateType.AND, (b_rise, b_fall)))
            elif rise.hi <= fall.lo:
                gates.append(Gate(combiner, GateType.OR, (b_rise, b_fall)))
            else:
                raise CircuitError(
                    f"pin {pin} of {net!r}: overlapping rise/fall intervals"
                )
            pins[(combiner, 0)] = PinTiming.symmetric(0)
            pins[(combiner, 1)] = PinTiming.symmetric(0)
            new_inputs.append(combiner)
        gates.append(Gate(net, gate.gtype, tuple(new_inputs)))
        for pin in range(len(new_inputs)):
            if (net, pin) not in pins:
                timing = delays.pin(net, pin)
                pins[(net, pin)] = (
                    timing if timing.is_symmetric else PinTiming.symmetric(0)
                )
    # Asymmetric originals got a zero-delay pin into the combiner.
    for net, gate in circuit.gates.items():
        for pin in range(len(gate.inputs)):
            if not delays.pin(net, pin).is_symmetric:
                pins[(net, pin)] = PinTiming.symmetric(0)
    split = Circuit(
        name=circuit.name,
        inputs=circuit.inputs,
        outputs=circuit.outputs,
        gates=gates,
        latches=list(circuit.latches.values()),
    )
    latch_delay = {q: delays.latch(q) for q in split.latches}
    phase = {q: delays.phase(q) for q in split.latches}
    return split, DelayMap(
        split, pins, latch_delay,
        setup=delays.setup, hold=delays.hold, phase=phase,
    )


@dataclasses.dataclass(frozen=True)
class CircuitStats:
    """Extended structural statistics."""

    inputs: int
    outputs: int
    gates: int
    latches: int
    depth: int
    by_type: dict[str, int]


def circuit_stats(circuit: Circuit) -> CircuitStats:
    """Structural statistics incl. logic depth and per-type counts."""
    depth: dict[str, int] = {leaf: 0 for leaf in circuit.leaves}
    longest = 0
    for net in circuit.topological_order():
        gate = circuit.gates[net]
        level = 1 + max((depth[c] for c in gate.inputs), default=0)
        depth[net] = level
        longest = max(longest, level)
    by_type: dict[str, int] = {}
    for gate in circuit.gates.values():
        by_type[gate.gtype.value] = by_type.get(gate.gtype.value, 0) + 1
    s = circuit.stats
    return CircuitStats(
        inputs=s["inputs"],
        outputs=s["outputs"],
        gates=s["gates"],
        latches=s["latches"],
        depth=longest,
        by_type=by_type,
    )
