"""Gate-level synchronous circuits.

This package provides the structural substrate of the reproduction:

* :class:`~repro.logic.gate.GateType` — the primitive gate library and
  its Boolean semantics;
* :class:`~repro.logic.netlist.Circuit` — a synchronous netlist with
  primary inputs/outputs, combinational gates, and edge-triggered
  D-flip-flops on a single common clock (the paper's Fig. 3 machine
  model);
* :mod:`~repro.logic.bench` — ISCAS'89 ``.bench`` reader/writer;
* :mod:`~repro.logic.delays` — pin-accurate delay annotations with
  bounded intervals (Sec. 7's variable gate delays) and rise/fall
  asymmetry (Fig. 1's buffer decomposition), plus the deterministic
  delay models used by the benchmark suite.
"""

from repro.logic.gate import GateType, eval_gate
from repro.logic.netlist import Circuit, Gate, Latch
from repro.logic.bench import parse_bench, parse_bench_file, write_bench
from repro.logic.blif import parse_blif, parse_blif_file, write_blif
from repro.logic.transform import (
    circuit_stats,
    split_asymmetric_pins,
    sweep_dead_logic,
)
from repro.logic.delays import (
    DelayMap,
    Interval,
    PinTiming,
    fanout_loaded_delays,
    typed_delays,
    unit_delays,
    widen_to_intervals,
)

__all__ = [
    "Circuit",
    "Gate",
    "GateType",
    "Latch",
    "DelayMap",
    "Interval",
    "PinTiming",
    "eval_gate",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "parse_blif",
    "parse_blif_file",
    "write_blif",
    "unit_delays",
    "typed_delays",
    "fanout_loaded_delays",
    "widen_to_intervals",
    "circuit_stats",
    "split_asymmetric_pins",
    "sweep_dead_logic",
]
