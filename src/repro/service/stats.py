"""Daemon-side telemetry: what the job manager did for its clients.

The counters follow the repo's stats idiom (:class:`~repro.bdd.BddStats`,
:class:`~repro.parallel.SupervisionStats`): a plain mutable dataclass
with a one-line :meth:`ServiceStats.summary` for the ``--stats`` CLI
footer and an :meth:`ServiceStats.as_dict` for the ``/stats`` endpoint.
Cache effectiveness is the headline number — a submit is exactly one of
a *hit* (answered from the content-addressed cache), a *coalesced*
follower (attached to an identical in-flight sweep), or a *miss* (a
fresh sweep was started).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class ServiceStats:
    """What the MCT daemon did since it started."""

    #: Total submissions accepted (hits + coalesced + misses).
    jobs_submitted: int = 0
    #: Sweeps that ran to a complete bound.
    jobs_completed: int = 0
    #: Sweeps that raised an :class:`~repro.errors.AnalysisError`.
    jobs_failed: int = 0
    #: Sweeps stopped by a cancel request (partial, exit-3-shaped).
    jobs_cancelled: int = 0
    #: Submissions answered from the result cache without any sweep.
    cache_hits: int = 0
    #: Submissions that had to start a sweep.
    cache_misses: int = 0
    #: Submissions attached to an identical sweep already in flight
    #: (single-flight: N concurrent duplicates cost one sweep).
    coalesced: int = 0
    #: Sweeps currently executing (gauge, not a counter).
    in_flight: int = 0
    #: Total wall-clock seconds spent inside sweeps.
    sweep_seconds: float = 0.0
    #: Requests refused for a missing or wrong bearer token (401s).
    auth_rejected: int = 0
    #: Jobs dropped from the table by the TTL/LRU lifecycle policy.
    jobs_evicted: int = 0
    #: Cache entries dropped by the ``--cache-max-bytes`` LRU cap.
    cache_evictions: int = 0
    #: Sweeps that resumed from a cancelled predecessor's retained
    #: checkpoint instead of recomputing from scratch.
    jobs_resumed: int = 0
    #: Status/result/cancel/stream requests for an unknown job id
    #: (including expired/evicted ids — the 404 body says which).
    jobs_not_found: int = 0

    def summary(self) -> str:
        return (
            f"jobs={self.jobs_submitted} hits={self.cache_hits} "
            f"misses={self.cache_misses} coalesced={self.coalesced} "
            f"in_flight={self.in_flight} "
            f"completed={self.jobs_completed} failed={self.jobs_failed} "
            f"cancelled={self.jobs_cancelled} resumed={self.jobs_resumed} "
            f"evicted={self.jobs_evicted} "
            f"cache_evictions={self.cache_evictions} "
            f"auth_rejected={self.auth_rejected} "
            f"sweep_seconds={self.sweep_seconds:.2f}"
        )

    def as_dict(self) -> dict:
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "jobs_cancelled": self.jobs_cancelled,
            "jobs_resumed": self.jobs_resumed,
            "jobs_evicted": self.jobs_evicted,
            "jobs_not_found": self.jobs_not_found,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "coalesced": self.coalesced,
            "auth_rejected": self.auth_rejected,
            "in_flight": self.in_flight,
            "sweep_seconds": round(self.sweep_seconds, 6),
        }
