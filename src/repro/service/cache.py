"""Content-addressed result cache for the MCT daemon.

The cache key is the sha256 of the *canonical job spec*: the circuit's
content hash (or generator name), the delay-model transform chain, and
the engine's analysis-option fingerprint
(:func:`~repro.mct.options_fingerprint`).  Two submissions with the
same key are the same analysis by construction — the fingerprint
excludes resource/execution knobs (budget, jobs, workers, retries) for
exactly the reason checkpoints do, so a bound computed on a cluster is
served back to a laptop submitter and vice versa.

Values are the **exact serialized result bytes**.  The daemon stores
the JSON it sent the first client and replays those bytes verbatim on
every hit, so identical submissions get byte-identical responses —
including across a daemon restart, because a directory-backed cache
writes each entry with the checkpoint module's atomic-rename +
directory-fsync discipline (the result document embeds the sweep's
canonical checkpoint dict, which is what makes the entry
self-describing).

Two lifecycle guarantees keep a long-lived daemon healthy:

* **bounded size** — with ``max_bytes`` set, the cache is an LRU over
  entry byte sizes: a :meth:`get` refreshes an entry, a :meth:`put`
  past the cap evicts least-recently-used entries (memory *and* disk)
  until it fits, counting each in :attr:`evictions`.  The newest entry
  always survives, even alone over the cap — evicting what was just
  computed would make the cache a pure liability.
* **single writer** — a directory-backed cache takes an ``fcntl`` lock
  on ``<directory>/.lock`` at construction.  Two daemons pointed at
  the same ``--cache-dir`` would race each other's mkstemp/rename
  writes and LRU deletes; the second one now fails fast with an
  :class:`~repro.errors.OptionsError` instead.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.errors import OptionsError
from repro.resilience.checkpoint import fsync_directory

try:  # pragma: no cover - always present on the POSIX targets we run on
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

#: Name of the single-writer lock file inside a cache directory.
LOCK_NAME = ".lock"


def job_key(spec: dict) -> str:
    """Content address of one canonical job spec (sha256 hex).

    ``spec`` must already be canonical: plain JSON types only, with
    netlist text replaced by its own sha256 (see
    :meth:`~repro.service.jobs.JobSpec.canonical`).  Serialization is
    pinned (sorted keys, no whitespace) so the address never depends on
    dict ordering or formatting.
    """
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def content_hash(text: str) -> str:
    """sha256 of a netlist's text — the circuit part of the job key."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultCache:
    """Exact result bytes by job key; optionally persisted to disk.

    With ``directory=None`` the cache is memory-only and dies with the
    daemon.  With a directory, every entry is also written to
    ``<directory>/<key>.json`` — atomically (temp file, fsync, rename,
    directory fsync), so a crash mid-write can never leave a truncated
    entry that a restarted daemon would then serve — and :meth:`get`
    falls back to disk on a memory miss, which is what makes a restart
    with the same ``--cache-dir`` skip recomputation.  Existing entries
    are indexed at construction (oldest-modified first) so the LRU cap
    spans restarts too.
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        *,
        max_bytes: int | None = None,
    ):
        if max_bytes is not None and max_bytes < 1:
            raise OptionsError("cache max_bytes must be positive or None")
        self.max_bytes = max_bytes
        self.evictions = 0
        self._memory: dict[str, bytes] = {}
        #: LRU index over every known entry (memory or disk): key →
        #: byte size, oldest first.  This is what the cap walks.
        self._sizes: dict[str, int] = {}
        self._lock_file = None
        self._directory = None if directory is None else Path(directory)
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
            self._acquire_lock()
            self._index_directory()

    @property
    def directory(self) -> Path | None:
        return self._directory

    @property
    def total_bytes(self) -> int:
        """Sum of every indexed entry's size (the number the cap bounds)."""
        return sum(self._sizes.values())

    def _acquire_lock(self) -> None:
        if fcntl is None:  # non-POSIX: no advisory locking available
            return
        path = self._directory / LOCK_NAME
        try:
            lock_file = open(path, "a+b")
        except OSError as exc:
            raise OptionsError(f"cannot open cache lock {path}: {exc}") from exc
        try:
            fcntl.flock(lock_file.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            lock_file.close()
            raise OptionsError(
                f"cache directory {self._directory} is already in use by "
                "another daemon (its lock file is held); two writers would "
                "race each other's writes and evictions"
            ) from None
        self._lock_file = lock_file

    def _index_directory(self) -> None:
        entries = []
        for path in self._directory.glob("*.json"):
            with contextlib.suppress(OSError):
                stat = path.stat()
                entries.append((stat.st_mtime, path.stem, stat.st_size))
        for _mtime, key, size in sorted(entries):
            self._sizes[key] = size
        self._enforce_cap()

    def close(self) -> None:
        """Release the single-writer lock (idempotent)."""
        lock_file, self._lock_file = self._lock_file, None
        if lock_file is not None:
            if fcntl is not None:
                with contextlib.suppress(OSError):
                    fcntl.flock(lock_file.fileno(), fcntl.LOCK_UN)
            with contextlib.suppress(OSError):
                lock_file.close()

    def _path(self, key: str) -> Path:
        return self._directory / f"{key}.json"

    def _touch(self, key: str, size: int) -> None:
        self._sizes.pop(key, None)
        self._sizes[key] = size  # (re)insert at the fresh end

    def get(self, key: str) -> bytes | None:
        """The stored bytes for ``key``, or None.

        Disk entries are validated as JSON before being served: a
        corrupt file (torn by an unclean shutdown on a filesystem
        without rename atomicity) is treated as a miss and recomputed,
        never replayed to a client.
        """
        value = self._memory.get(key)
        if value is not None:
            self._touch(key, len(value))
            return value
        if self._directory is None:
            return None
        try:
            value = self._path(key).read_bytes()
            json.loads(value)
        except (OSError, ValueError):
            return None
        self._memory[key] = value
        self._touch(key, len(value))
        return value

    def put(self, key: str, value: bytes) -> None:
        """Store ``value`` under ``key`` (last writer wins)."""
        self._memory[key] = value
        self._touch(key, len(value))
        if self._directory is not None:
            target = self._path(key)
            fd, tmp = tempfile.mkstemp(
                dir=str(self._directory), prefix=f".{key[:16]}.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(value)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, target)
                fsync_directory(self._directory)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        self._enforce_cap()

    def _enforce_cap(self) -> None:
        """Evict least-recently-used entries until under ``max_bytes``.

        The most recent entry is never evicted: a cache that cannot
        hold even one result should still serve the one it just
        stored.  Eviction removes both tiers — the memory copy and the
        disk file — so a restart cannot resurrect an evicted entry.
        """
        if self.max_bytes is None:
            return
        while len(self._sizes) > 1 and self.total_bytes > self.max_bytes:
            key = next(iter(self._sizes))
            self._sizes.pop(key)
            self._memory.pop(key, None)
            if self._directory is not None:
                with contextlib.suppress(OSError):
                    os.unlink(self._path(key))
            self.evictions += 1
