"""Content-addressed result cache for the MCT daemon.

The cache key is the sha256 of the *canonical job spec*: the circuit's
content hash (or generator name), the delay-model transform chain, and
the engine's analysis-option fingerprint
(:func:`~repro.mct.options_fingerprint`).  Two submissions with the
same key are the same analysis by construction — the fingerprint
excludes resource/execution knobs (budget, jobs, workers, retries) for
exactly the reason checkpoints do, so a bound computed on a cluster is
served back to a laptop submitter and vice versa.

Values are the **exact serialized result bytes**.  The daemon stores
the JSON it sent the first client and replays those bytes verbatim on
every hit, so identical submissions get byte-identical responses —
including across a daemon restart, because a directory-backed cache
writes each entry with the checkpoint module's atomic-rename +
directory-fsync discipline (the result document embeds the sweep's
checkpoint-v2 dict, which is what makes the entry self-describing).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.resilience.checkpoint import fsync_directory


def job_key(spec: dict) -> str:
    """Content address of one canonical job spec (sha256 hex).

    ``spec`` must already be canonical: plain JSON types only, with
    netlist text replaced by its own sha256 (see
    :meth:`~repro.service.jobs.JobSpec.canonical`).  Serialization is
    pinned (sorted keys, no whitespace) so the address never depends on
    dict ordering or formatting.
    """
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def content_hash(text: str) -> str:
    """sha256 of a netlist's text — the circuit part of the job key."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultCache:
    """Exact result bytes by job key; optionally persisted to disk.

    With ``directory=None`` the cache is memory-only and dies with the
    daemon.  With a directory, every entry is also written to
    ``<directory>/<key>.json`` — atomically (temp file, fsync, rename,
    directory fsync), so a crash mid-write can never leave a truncated
    entry that a restarted daemon would then serve — and :meth:`get`
    falls back to disk on a memory miss, which is what makes a restart
    with the same ``--cache-dir`` skip recomputation.
    """

    def __init__(self, directory: str | os.PathLike | None = None):
        self._memory: dict[str, bytes] = {}
        self._directory = None if directory is None else Path(directory)
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> Path | None:
        return self._directory

    def _path(self, key: str) -> Path:
        return self._directory / f"{key}.json"

    def get(self, key: str) -> bytes | None:
        """The stored bytes for ``key``, or None.

        Disk entries are validated as JSON before being served: a
        corrupt file (torn by an unclean shutdown on a filesystem
        without rename atomicity) is treated as a miss and recomputed,
        never replayed to a client.
        """
        value = self._memory.get(key)
        if value is not None:
            return value
        if self._directory is None:
            return None
        try:
            value = self._path(key).read_bytes()
            json.loads(value)
        except (OSError, ValueError):
            return None
        self._memory[key] = value
        return value

    def put(self, key: str, value: bytes) -> None:
        """Store ``value`` under ``key`` (last writer wins)."""
        self._memory[key] = value
        if self._directory is None:
            return
        target = self._path(key)
        fd, tmp = tempfile.mkstemp(
            dir=str(self._directory), prefix=f".{key[:16]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(value)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
            fsync_directory(self._directory)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
