"""Job model of the MCT daemon: specs, lifecycle, single-flight runs.

A *job spec* is the JSON body of a submission — circuit source, delay
model transforms, analysis options.  Parsing is strict and eager
(unknown keys, bad netlists and invalid knobs all raise
:class:`~repro.errors.OptionsError` before anything is scheduled, so a
malformed submission is a clean 400, never a traceback from inside a
sweep), and every spec reduces to a canonical content address
(:func:`~repro.service.cache.job_key`) keyed on the circuit's hash plus
the engine's analysis-option fingerprint.

The :class:`JobManager` runs specs on the existing engine machinery —
``minimum_cycle_time`` with the daemon's ``--jobs`` pool or
``--workers`` cluster transport — with three properties the endpoints
rely on:

* **single-flight**: submissions with the key of an in-flight sweep
  attach to it instead of starting another (``ServiceStats.coalesced``);
* **content-addressed caching**: completed results are stored as exact
  bytes and replayed verbatim, so identical submissions get
  byte-identical responses, across restarts when a cache directory is
  configured;
* **cooperative cancellation**: a cancel request sets the engine's
  cancel event, which stops the sweep exactly like Ctrl-C — the result
  is partial, checkpointed, and marked ``cancelled`` (the HTTP shape of
  the CLI's exit-3 contract).  Cancelled/partial results are never
  cached — but the interrupted sweep's *checkpoint* (a cancel's, or a
  work-budget/deadline exhaustion's) is retained keyed by the job's
  content address, so resubmitting the same spec resumes
  from it via ``minimum_cycle_time(resume_from=...)``: the already
  decided windows replay instead of recomputing, and the final bound
  and cached bytes are identical to an uninterrupted run's (the
  result document embeds the checkpoint's *canonical*,
  measurement-free form precisely so that holds byte-for-byte);
* **bounded lifecycle**: the job table is capped by ``--job-ttl``
  (terminal jobs expire) and ``--max-jobs`` (oldest terminal jobs are
  LRU-evicted past the cap).  Running or queued jobs are never
  evicted; an evicted id answers 404 with ``evicted: true`` and an
  eviction counter in :class:`~repro.service.ServiceStats`.
"""

from __future__ import annotations

import asyncio
import collections
import dataclasses
import json
import threading
import time

from repro.benchgen.circuits import paper_example2, s27
from repro.errors import AnalysisError, OptionsError, ReproError
from repro.logic.bench import parse_bench
from repro.logic.blif import parse_blif
from repro.logic.delays import (
    as_fraction,
    fanout_loaded_delays,
    typed_delays,
    unit_delays,
)
from repro.mct import (
    DEFAULT_LADDER,
    MctOptions,
    minimum_cycle_time,
    options_fingerprint,
)
from repro.mct.engine import RetryPolicy
from repro.report.tables import format_fraction
from repro.resilience import SweepCheckpoint
from repro.service.cache import ResultCache, content_hash, job_key
from repro.service.stats import ServiceStats

#: ``/2`` made result bodies fully deterministic: the embedded
#: checkpoint is the *canonical* (measurement-free) form and the
#: telemetry-dependent ``decisions_run`` field is gone, so two runs of
#: the same spec — serial or clustered, plaintext or TLS, fresh or
#: resumed from a cancelled sweep's checkpoint — serialize to the very
#: same bytes.  That is what lets CI ``cmp`` result files across legs.
RESULT_SCHEMA = "repro-mct-service-result/2"
JOB_SCHEMA = "repro-mct-service-job/1"

#: Interrupted-sweep checkpoints retained for resume, by job key (LRU).
MAX_RETAINED_CHECKPOINTS = 64
#: Evicted job ids remembered so their 404s can say "evicted" (LRU).
MAX_EVICTED_IDS = 4096

_DELAY_MODELS = {
    "unit": unit_delays,
    "typed": typed_delays,
    "fanout": fanout_loaded_delays,
}

_GENERATORS = ("example2", "s27")

#: ``options`` keys a submission may set, mapped to their coercion.
_OPTION_FIELDS = {
    "check_outputs": bool,
    "use_reachability": bool,
    "exact_feasibility": bool,
    "max_age": int,
    "max_candidates": int,
    "max_failing_options": int,
    "work_budget": int,
    "time_limit": float,
    "tau_floor": as_fraction,
    "degrade": bool,
    "bdd_kernel": str,
    "bdd_sift_threshold": int,
}


def _frac_field(value, field: str):
    if value is None:
        return None
    try:
        return as_fraction(value)
    except (ValueError, TypeError, ZeroDivisionError) as exc:
        raise OptionsError(f"bad {field}: {value!r}") from exc


class JobSpec:
    """One validated submission, reduced to a canonical content address.

    Construction does all the parsing work — circuit, delay transforms
    and :class:`~repro.mct.MctOptions` are materialized eagerly so every
    defect surfaces as an :class:`~repro.errors.OptionsError` *before*
    a job exists.  The cache key deliberately excludes resource knobs
    (``work_budget``, ``time_limit``) and everything execution-side
    (jobs, workers, retries): it hashes the engine's own
    :func:`~repro.mct.options_fingerprint`, the same invariant the
    checkpoint resume contract is built on.
    """

    def __init__(self, data):
        if not isinstance(data, dict):
            raise OptionsError("job spec must be a JSON object")
        unknown = set(data) - {"circuit", "delays", "options"}
        if unknown:
            raise OptionsError(
                f"unknown job fields: {', '.join(sorted(unknown))}"
            )
        self._parse_circuit(data.get("circuit"))
        self._parse_delays(data.get("delays"))
        self.options = self._parse_options(data.get("options"))
        # Materialize now: a netlist that does not parse, or a delay
        # transform that does not apply, must 400 at submission time.
        self.circuit, self.delays = self._materialize()
        self.key = job_key(self.canonical())

    # -- parsing -------------------------------------------------------
    def _parse_circuit(self, circuit) -> None:
        if not isinstance(circuit, dict):
            raise OptionsError("job spec needs a 'circuit' object")
        unknown = set(circuit) - {"kind", "source"}
        if unknown:
            raise OptionsError(
                f"unknown circuit fields: {', '.join(sorted(unknown))}"
            )
        self.kind = circuit.get("kind")
        source = circuit.get("source")
        if self.kind not in ("bench", "blif", "generator"):
            raise OptionsError(
                f"circuit kind must be 'bench', 'blif' or 'generator', "
                f"not {self.kind!r}"
            )
        if not isinstance(source, str) or not source.strip():
            raise OptionsError("circuit source must be a non-empty string")
        if self.kind == "generator" and source not in _GENERATORS:
            raise OptionsError(
                f"unknown generator {source!r}; "
                f"choose one of {', '.join(_GENERATORS)}"
            )
        self.source = source

    def _parse_delays(self, delays) -> None:
        delays = {} if delays is None else delays
        if not isinstance(delays, dict):
            raise OptionsError("'delays' must be a JSON object")
        unknown = set(delays) - {"model", "widen", "setup", "hold"}
        if unknown:
            raise OptionsError(
                f"unknown delay fields: {', '.join(sorted(unknown))}"
            )
        model = delays.get("model")
        if self.kind == "generator" and self.source == "example2":
            # Example 2 carries the paper's own interval delays; a
            # model would silently replace ground truth.
            if model is not None:
                raise OptionsError(
                    "generator 'example2' has intrinsic delays; "
                    "omit delays.model"
                )
        else:
            model = model or "fanout"
            if model not in _DELAY_MODELS:
                raise OptionsError(
                    f"unknown delay model {model!r}; "
                    f"choose one of {', '.join(sorted(_DELAY_MODELS))}"
                )
        self.delay_model = model
        self.widen = _frac_field(delays.get("widen"), "delays.widen")
        self.setup = _frac_field(delays.get("setup"), "delays.setup")
        self.hold = _frac_field(delays.get("hold"), "delays.hold")

    @staticmethod
    def _parse_options(options) -> MctOptions:
        options = {} if options is None else options
        if not isinstance(options, dict):
            raise OptionsError("'options' must be a JSON object")
        unknown = set(options) - set(_OPTION_FIELDS)
        if unknown:
            raise OptionsError(
                f"unknown options: {', '.join(sorted(unknown))}"
            )
        kwargs = {}
        for field, coerce in _OPTION_FIELDS.items():
            if field not in options or options[field] is None:
                continue
            try:
                kwargs[field] = coerce(options[field])
            except (ValueError, TypeError, ZeroDivisionError) as exc:
                raise OptionsError(
                    f"bad options.{field}: {options[field]!r}"
                ) from exc
        if kwargs.pop("degrade", False):
            kwargs["degradation_ladder"] = DEFAULT_LADDER
        return MctOptions(**kwargs)  # __post_init__ validates knobs

    def _materialize(self):
        try:
            if self.kind == "generator":
                if self.source == "example2":
                    circuit, delays = paper_example2()
                else:
                    circuit, delays = s27(_DELAY_MODELS[self.delay_model])
            else:
                parse = parse_bench if self.kind == "bench" else parse_blif
                circuit = parse(self.source, name=f"submitted-{self.kind}")
                delays = _DELAY_MODELS[self.delay_model](circuit)
        except OptionsError:
            raise
        except (ReproError, ValueError) as exc:
            raise OptionsError(f"bad circuit: {exc}") from exc
        try:
            if self.widen is not None:
                delays = delays.widen(self.widen)
            if self.setup is not None or self.hold is not None:
                delays = delays.with_setup_hold(
                    self.setup or 0, self.hold or 0
                )
        except (ReproError, ValueError) as exc:
            raise OptionsError(f"bad delay transform: {exc}") from exc
        return circuit, delays

    # -- content addressing --------------------------------------------
    def canonical(self) -> dict:
        """The JSON-safe identity the cache key hashes.

        Netlist text enters by content hash, never verbatim, so the key
        length is bounded and whitespace-only netlist edits still miss
        (the *text* is the submitted artifact).  Analysis options enter
        through :func:`~repro.mct.options_fingerprint` — resource and
        execution knobs are out by construction.
        """
        return {
            "schema": JOB_SCHEMA,
            "kind": self.kind,
            "source": (
                self.source
                if self.kind == "generator"
                else content_hash(self.source)
            ),
            "delay_model": self.delay_model,
            "widen": None if self.widen is None else str(self.widen),
            "setup": None if self.setup is None else str(self.setup),
            "hold": None if self.hold is None else str(self.hold),
            "fingerprint": options_fingerprint(self.options),
        }


class Job:
    """One submitted analysis and its observable lifecycle.

    States move ``queued → running → done | failed | cancelled``.
    ``events`` accumulates NDJSON-ready progress dicts (one per
    committed :class:`~repro.mct.CandidateRecord`, plus the terminal
    event); streamers park on :meth:`wait_change` futures that the
    manager resolves from the event loop thread.
    """

    def __init__(self, job_id: str, spec: JobSpec, *, cached: bool = False):
        self.id = job_id
        self.spec = spec
        self.key = spec.key
        self.state = "done" if cached else "queued"
        self.cached = cached
        self.coalesced = False
        #: True when this sweep resumed from an interrupted (cancelled
        #: or budget/deadline-exhausted) predecessor's retained
        #: checkpoint (``events`` then counts only the windows
        #: actually recomputed, not the replayed ones).
        self.resumed = False
        self.events: list[dict] = []
        self.result_bytes: bytes | None = None
        self.error: str | None = None
        self.wall_seconds: float = 0.0
        self.created_at = time.monotonic()
        #: Set when the job reaches a terminal state; the TTL/LRU
        #: eviction clock (cache hits are terminal at birth).
        self.finished_at: float | None = (
            self.created_at if cached else None
        )
        self.cancel_event = threading.Event()
        self._waiters: list[asyncio.Future] = []

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    def wait_change(self, loop) -> asyncio.Future:
        future = loop.create_future()
        if self.finished:
            future.set_result(None)
        else:
            self._waiters.append(future)
        return future

    def _wake(self) -> None:
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    def status(self) -> dict:
        data = {
            "job": self.id,
            "key": self.key,
            "circuit": self.spec.circuit.name,
            "state": self.state,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "resumed": self.resumed,
            "events": len(self.events),
            "wall_seconds": round(self.wall_seconds, 6),
        }
        if self.error is not None:
            data["error"] = self.error
        return data


def result_document(spec: JobSpec, result) -> dict:
    """The service's result JSON for one finished sweep.

    Embeds the sweep as a checkpoint dict — the engine's own
    interrupted-sweep checkpoint when there is one (cancelled/partial
    runs), or one synthesized from the completed record list — in its
    *canonical*, measurement-free form (plus the ``version`` key
    :meth:`~repro.resilience.SweepCheckpoint.from_dict` requires), so
    every entry is still a valid ``repro-mct-checkpoint/2`` payload a
    client could feed back to ``repro-mct analyze --resume``.

    Determinism is the contract here: nothing wall-clock- or
    telemetry-dependent (``elapsed_seconds``, ``ite_calls``,
    ``decisions_run``, supervision history) enters the document, so
    identical specs serialize to identical bytes whether the sweep ran
    serial or clustered, over plaintext or TLS, fresh or resumed from
    a cancelled predecessor's checkpoint.
    """
    checkpoint = result.checkpoint
    if checkpoint is None:
        checkpoint = SweepCheckpoint(
            circuit_name=result.circuit_name,
            L=result.L,
            last_tau=min(
                (r.tau for r in result.candidates), default=None
            ),
            records=tuple(result.candidates),
            rung=result.rung,
            reason="completed",
            fingerprint=options_fingerprint(spec.options),
        )
    bound = result.mct_upper_bound
    window = result.failing_window
    return {
        "schema": RESULT_SCHEMA,
        "key": spec.key,
        "circuit": result.circuit_name,
        "bound": None if bound is None else str(bound),
        "bound_display": None if bound is None else format_fraction(bound),
        "failure_found": result.failure_found,
        "failing_window": (
            None if window is None else [str(window[0]), str(window[1])]
        ),
        "failing_roots": list(result.failing_roots),
        "candidates": len(result.candidates),
        "rung": result.rung,
        "budget_exceeded": result.budget_exceeded,
        "deadline_exceeded": result.deadline_exceeded,
        "cancelled": result.cancelled,
        "partial": result.interrupted,
        "checkpoint": {
            "version": checkpoint.version,
            **checkpoint.canonical(),
        },
    }


class JobManager:
    """Owns every job: caching, coalescing, execution, cancellation."""

    def __init__(
        self,
        *,
        cache: ResultCache | None = None,
        stats: ServiceStats | None = None,
        max_inflight: int = 2,
        jobs: int = 1,
        worker_specs: tuple[str, ...] = (),
        task_timeout: float | None = None,
        max_retries: int = 2,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 2.5,
        connect_timeout: float = 10.0,
        worker_secret: bytes | None = None,
        worker_ssl_context=None,
        job_ttl: float | None = None,
        max_jobs: int | None = None,
    ):
        if max_inflight < 1:
            raise OptionsError("max_inflight must be positive")
        if job_ttl is not None and job_ttl <= 0:
            raise OptionsError("job_ttl must be positive or None")
        if max_jobs is not None and max_jobs < 1:
            raise OptionsError("max_jobs must be positive or None")
        self.cache = cache or ResultCache()
        self.stats = stats or ServiceStats()
        self.jobs = jobs
        self.worker_specs = tuple(worker_specs)
        self.retry_policy = RetryPolicy(
            max_retries=max_retries, task_timeout=task_timeout
        )
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.connect_timeout = connect_timeout
        self.worker_secret = worker_secret
        self.worker_ssl_context = worker_ssl_context
        self.job_ttl = job_ttl
        self.max_jobs = max_jobs
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}
        #: Interrupted sweeps' checkpoints, by job key (bounded LRU):
        #: a resubmission with the same content address resumes from
        #: here instead of recomputing the already-decided windows.
        self._resume: collections.OrderedDict = collections.OrderedDict()
        #: Ids the lifecycle policy dropped, so their 404s can say so.
        self._evicted: collections.OrderedDict = collections.OrderedDict()
        self._tasks: set[asyncio.Task] = set()
        self._semaphore = asyncio.Semaphore(max_inflight)
        self._next_id = 0

    # -- lookup --------------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def was_evicted(self, job_id: str) -> bool:
        return job_id in self._evicted

    def jobs_status(self) -> list[dict]:
        return [job.status() for job in self._jobs.values()]

    # -- submission ----------------------------------------------------
    def submit(self, data) -> Job:
        """Parse, content-address and schedule one submission.

        Exactly one of three things happens, in cache-first order:
        a cache hit materializes a finished job immediately; a key
        matching an in-flight sweep coalesces onto it (same job id —
        N duplicate submitters share one sweep *and* one cancel
        scope); otherwise a fresh sweep is scheduled.
        """
        spec = JobSpec(data)  # raises OptionsError on any defect
        self.stats.jobs_submitted += 1
        self._evict_jobs()
        cached = self.cache.get(spec.key)
        if cached is not None:
            self.stats.cache_hits += 1
            job = self._new_job(spec, cached=True)
            job.result_bytes = cached
            return job
        running = self._inflight.get(spec.key)
        if running is not None and not running.finished:
            self.stats.coalesced += 1
            running.coalesced = True
            return running
        self.stats.cache_misses += 1
        job = self._new_job(spec)
        self._inflight[spec.key] = job
        task = asyncio.get_running_loop().create_task(self._run(job))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return job

    def _new_job(self, spec: JobSpec, *, cached: bool = False) -> Job:
        self._next_id += 1
        job = Job(f"job-{self._next_id:06d}", spec, cached=cached)
        self._jobs[job.id] = job
        return job

    def cancel(self, job: Job) -> bool:
        """Request cooperative cancellation; True if it could apply."""
        if job.finished:
            return False
        job.cancel_event.set()
        return True

    async def close(self) -> None:
        """Cancel every in-flight sweep and wait for the runners."""
        for job in list(self._inflight.values()):
            job.cancel_event.set()
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        self.cache.close()

    # -- lifecycle ------------------------------------------------------
    def _evict_jobs(self) -> None:
        """Apply the TTL and the table cap; terminal jobs only.

        Runs on the event loop thread at every submit, so the table
        never grows unbounded between explicit sweeps.  Eviction order
        is oldest-finished first; queued/running jobs (and coalesced
        followers attached to them) are structurally exempt because
        ``finished_at`` is unset until a terminal state.
        """
        now = time.monotonic()
        if self.job_ttl is not None:
            for job in list(self._jobs.values()):
                if (
                    job.finished_at is not None
                    and now - job.finished_at > self.job_ttl
                ):
                    self._drop_job(job)
        if self.max_jobs is not None and len(self._jobs) > self.max_jobs:
            terminal = sorted(
                (j for j in self._jobs.values() if j.finished_at is not None),
                key=lambda j: j.finished_at,
            )
            for job in terminal:
                if len(self._jobs) <= self.max_jobs:
                    break
                self._drop_job(job)

    def _drop_job(self, job: Job) -> None:
        del self._jobs[job.id]
        self._evicted[job.id] = None
        while len(self._evicted) > MAX_EVICTED_IDS:
            self._evicted.popitem(last=False)
        self.stats.jobs_evicted += 1

    # -- execution -----------------------------------------------------
    async def _run(self, job: Job) -> None:
        loop = asyncio.get_running_loop()

        def on_record(record) -> None:
            # Called from the sweep thread at every ordered commit;
            # hop to the loop so event append + streamer wakeup are
            # single-threaded.
            event = {
                "event": "candidate",
                "tau": str(record.tau),
                "status": record.status,
                "m": record.m,
                "rung": record.rung,
            }
            loop.call_soon_threadsafe(self._record_event, job, event)

        async with self._semaphore:
            job.state = "running"
            self.stats.in_flight += 1
            started = time.monotonic()
            # Cancel-resume: a prior run of this exact content address
            # that was cancelled (or ran out of budget) left its
            # checkpoint here.  Replaying
            # it means only the windows past the interruption point are
            # recomputed; the fingerprint inside the checkpoint matches
            # by construction (the key hashes the same fingerprint).
            resume_from = self._resume.get(job.key)
            if resume_from is not None:
                self._resume.move_to_end(job.key)
                job.resumed = True
                self.stats.jobs_resumed += 1
            try:
                result = await asyncio.to_thread(
                    self._sweep, job.spec, on_record, job.cancel_event,
                    resume_from,
                )
            except AnalysisError as exc:
                job.error = str(exc)
                job.state = "failed"
                self.stats.jobs_failed += 1
            except Exception as exc:  # defensive: never kill the loop
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = "failed"
                self.stats.jobs_failed += 1
            else:
                self._finish(job, result)
            finally:
                job.wall_seconds = time.monotonic() - started
                job.finished_at = time.monotonic()
                self.stats.sweep_seconds += job.wall_seconds
                self.stats.in_flight -= 1
                if self._inflight.get(job.key) is job:
                    del self._inflight[job.key]
                self._record_event(job, self._terminal_event(job))

    def _sweep(self, spec: JobSpec, on_record, cancel_event, resume_from=None):
        # Execution knobs are the daemon's, never the submitter's: the
        # client describes an analysis, the operator owns the fleet.
        options = dataclasses.replace(
            spec.options,
            retry_policy=self.retry_policy,
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_timeout=self.heartbeat_timeout,
        )
        transport = None
        if self.worker_specs:
            # Imported lazily: the daemon is usable without the cluster
            # stack, and a fresh transport per sweep keeps worker
            # connection state job-scoped.
            from repro.parallel import SocketTransport

            transport = SocketTransport(
                self.worker_specs,
                connect_timeout=self.connect_timeout,
                heartbeat_interval=self.heartbeat_interval,
                heartbeat_timeout=self.heartbeat_timeout,
                secret=self.worker_secret,
                ssl_context=self.worker_ssl_context,
            )
        return minimum_cycle_time(
            spec.circuit,
            spec.delays,
            options,
            resume_from=resume_from,
            jobs=self.jobs,
            transport=transport,
            progress=on_record,
            cancel=cancel_event,
        )

    def _finish(self, job: Job, result) -> None:
        document = result_document(job.spec, result)
        job.result_bytes = _serialize(document)
        if result.cancelled:
            job.state = "cancelled"
            self.stats.jobs_cancelled += 1
        else:
            job.state = "done"
            self.stats.jobs_completed += 1
        if result.interrupted or result.cancelled:
            # Retain the exit-3-shaped checkpoint keyed by content
            # address so a resubmission — after a cancel, or with a
            # bigger budget after exhaustion (the budget is not part
            # of the key) — resumes instead of starting over.
            if result.checkpoint is not None:
                self._resume[job.key] = result.checkpoint
                self._resume.move_to_end(job.key)
                while len(self._resume) > MAX_RETAINED_CHECKPOINTS:
                    self._resume.popitem(last=False)
        else:
            # Only complete bounds are content-addressed: a partial
            # result depends on the budget/deadline that cut it
            # short, which the key deliberately does not hash.
            self.cache.put(job.key, job.result_bytes)
            # The bound is final; the retained partial checkpoint
            # has nothing left to offer.
            self._resume.pop(job.key, None)

    def _terminal_event(self, job: Job) -> dict:
        event = {"event": job.state, "job": job.id}
        if job.error is not None:
            event["error"] = job.error
        return event

    def _record_event(self, job: Job, event: dict) -> None:
        job.events.append(event)
        job._wake()


def _serialize(document: dict) -> bytes:
    """Pinned result serialization (the bytes the cache replays)."""
    return (
        json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")
