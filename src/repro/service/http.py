"""Hand-rolled HTTP/1.1 front end of the MCT daemon (stdlib asyncio).

No web framework: the protocol surface is five JSON endpoints plus an
NDJSON stream, so the server is ``asyncio.start_server`` with a small,
strict request reader — bounded header and body sizes, Content-Length
only (no chunked uploads), one request per connection
(``Connection: close``).  Keeping the parser this small is a
robustness feature, not a shortcut: every malformed input path is
enumerable and tested, and a client error can only ever produce a JSON
``400``/``404``/``405``, never a traceback on the wire.

Endpoints
---------

========  =======================  ==========================================
POST      ``/jobs``                submit a job spec; 200 with job id/state
GET       ``/jobs``                all jobs, newest last
GET       ``/jobs/<id>``           one job's status document
GET       ``/jobs/<id>/result``    result bytes (verbatim from cache), or
                                   409 while the sweep is still running
POST      ``/jobs/<id>/cancel``    cooperative cancel (engine Ctrl-C path)
GET       ``/jobs/<id>/stream``    NDJSON: one line per committed candidate,
                                   then the terminal event
GET       ``/stats``               :class:`~repro.service.ServiceStats`
GET       ``/healthz``             liveness probe
========  =======================  ==========================================

Security (both optional, see :mod:`repro.netsec`): with an
``auth_token`` configured (``--auth-token-file``/``REPRO_MCT_TOKEN``)
*every* endpoint — including ``/healthz`` — requires ``Authorization:
Bearer <token>``; a missing or wrong token is a JSON ``401`` with a
``WWW-Authenticate`` header, compared in constant time, and counted in
``ServiceStats.auth_rejected``.  With an ``ssl_context`` the listener
speaks TLS (``--tls-cert``/``--tls-key``, plus ``--tls-ca`` to demand
client certificates).  Neither knob enters any cache key or
fingerprint: result bytes are identical across plaintext and TLS
deployments.
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import OptionsError
from repro.netsec import check_bearer
from repro.service.jobs import JobManager
from repro.service.stats import ServiceStats

SERVICE_SCHEMA = "repro-mct-service/1"

#: Request-line + headers cap; a submission's netlist rides in the body.
MAX_HEADER_BYTES = 16 * 1024
#: Body cap — netlists this repo analyzes are kilobytes, not megabytes.
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class _BadRequest(Exception):
    """A protocol-level defect; becomes a JSON 400/405/413."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class MctService:
    """The daemon: an HTTP front end over a :class:`JobManager`."""

    def __init__(self, manager: JobManager, *, host: str = "127.0.0.1",
                 port: int = 0, auth_token: bytes | None = None,
                 ssl_context=None):
        self.manager = manager
        self.host = host
        self.port = port
        self.auth_token = auth_token
        self.ssl_context = ssl_context
        self.address: tuple[str, int] | None = None
        self._server: asyncio.base_events.Server | None = None

    @property
    def stats(self) -> ServiceStats:
        stats = self.manager.stats
        # The cache owns its own eviction counter; mirror it into the
        # service snapshot so /stats and --stats see one number.
        stats.cache_evictions = self.manager.cache.evictions
        return stats

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and serve; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, ssl=self.ssl_context
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        return self.address

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.manager.close()

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- request plumbing ----------------------------------------------
    async def _handle(self, reader, writer) -> None:
        try:
            try:
                method, path, headers, body = await _read_request(reader)
                if self.auth_token is not None and not check_bearer(
                    headers.get("authorization"), self.auth_token
                ):
                    # Auth gates everything, /healthz included: an
                    # unauthenticated caller learns nothing, not even
                    # that the daemon is alive.
                    self.stats.auth_rejected += 1
                    return await _send_json(
                        writer, 401,
                        {"error": "missing or invalid bearer token"},
                        extra_headers=("WWW-Authenticate: Bearer",),
                    )
                await self._dispatch(writer, method, path, body)
            except _BadRequest as exc:
                await _send_json(
                    writer, exc.status, {"error": str(exc)}
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except Exception as exc:  # defensive: never kill the server
            with_suppressed = {"error": f"{type(exc).__name__}: {exc}"}
            try:
                await _send_json(writer, 500, with_suppressed)
            except (ConnectionError, OSError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, writer, method: str, path: str, body: bytes):
        if path == "/healthz" and method == "GET":
            return await _send_json(
                writer, 200, {"ok": True, "schema": SERVICE_SCHEMA}
            )
        if path == "/stats" and method == "GET":
            return await _send_json(writer, 200, self.stats.as_dict())
        if path == "/jobs":
            if method != "POST" and method != "GET":
                raise _BadRequest(405, "use GET or POST on /jobs")
            if method == "GET":
                return await _send_json(
                    writer, 200, {"jobs": self.manager.jobs_status()}
                )
            return await self._submit(writer, body)
        if path.startswith("/jobs/"):
            return await self._job_route(writer, method, path)
        return await _send_json(
            writer, 404, {"error": f"no such endpoint: {path}"}
        )

    async def _submit(self, writer, body: bytes):
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return await _send_json(
                writer, 400, {"error": f"body is not valid JSON: {exc}"}
            )
        try:
            job = self.manager.submit(data)
        except OptionsError as exc:
            return await _send_json(writer, 400, {"error": str(exc)})
        return await _send_json(writer, 200, job.status())

    async def _job_route(self, writer, method: str, path: str):
        parts = path.strip("/").split("/")
        job = self.manager.get(parts[1])
        if job is None:
            self.stats.jobs_not_found += 1
            evicted = self.manager.was_evicted(parts[1])
            return await _send_json(
                writer, 404,
                {"error": (
                    f"job {parts[1]} was evicted by the lifecycle policy"
                    if evicted else f"no such job: {parts[1]}"
                ), "evicted": evicted},
            )
        action = parts[2] if len(parts) > 2 else None
        if action is None:
            if method != "GET":
                raise _BadRequest(405, "use GET on /jobs/<id>")
            return await _send_json(writer, 200, job.status())
        if action == "result":
            if method != "GET":
                raise _BadRequest(405, "use GET on /jobs/<id>/result")
            return await self._result(writer, job)
        if action == "cancel":
            if method != "POST":
                raise _BadRequest(405, "use POST on /jobs/<id>/cancel")
            applied = self.manager.cancel(job)
            return await _send_json(
                writer, 200, {"job": job.id, "cancelling": applied,
                              "state": job.state}
            )
        if action == "stream":
            if method != "GET":
                raise _BadRequest(405, "use GET on /jobs/<id>/stream")
            return await self._stream(writer, job)
        return await _send_json(
            writer, 404, {"error": f"no such job endpoint: {action}"}
        )

    async def _result(self, writer, job):
        if not job.finished:
            return await _send_json(
                writer, 409,
                {"error": "job is still running", "job": job.id,
                 "state": job.state},
            )
        if job.result_bytes is None:  # failed before producing a result
            return await _send_json(
                writer, 500,
                {"error": job.error or "job failed", "job": job.id,
                 "state": job.state},
            )
        # Replay the stored bytes verbatim: identical submissions get
        # byte-identical bodies (the cache-contract the CI job greps).
        await _send_raw(writer, 200, job.result_bytes)

    async def _stream(self, writer, job):
        """NDJSON progress: replay history, then follow live commits."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        loop = asyncio.get_running_loop()
        sent = 0
        while True:
            while sent < len(job.events):
                line = json.dumps(
                    job.events[sent], sort_keys=True
                ) + "\n"
                writer.write(line.encode("utf-8"))
                sent += 1
            await writer.drain()
            if job.finished and sent >= len(job.events):
                if job.cached and not job.events:
                    # A cache hit ran no sweep: emit a terminal line so
                    # every stream ends with an event.
                    writer.write(
                        (json.dumps(
                            {"event": "done", "job": job.id,
                             "cached": True}, sort_keys=True
                        ) + "\n").encode("utf-8")
                    )
                    await writer.drain()
                return
            await job.wait_change(loop)


async def _read_request(reader) -> tuple[str, str, dict, bytes]:
    """Parse one request; raises :class:`_BadRequest` on any defect."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.LimitOverrunError:
        raise _BadRequest(413, "request headers too large") from None
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionError("client closed before sending") from None
        raise _BadRequest(400, "truncated request") from None
    if len(head) > MAX_HEADER_BYTES:
        raise _BadRequest(413, "request headers too large")
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, path, version = lines[0].split(" ", 2)
    except ValueError:
        raise _BadRequest(400, "malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise _BadRequest(400, f"unsupported protocol {version!r}")
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _BadRequest(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise _BadRequest(400, "chunked request bodies are not supported")
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _BadRequest(400, "malformed Content-Length") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise _BadRequest(413, f"request body over {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    # Strip the query string: the API carries everything in paths/bodies.
    return method.upper(), path.split("?", 1)[0], headers, body


async def _send_json(
    writer, status: int, payload: dict, *, extra_headers: tuple = ()
) -> None:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    await _send_raw(writer, status, body, extra_headers=extra_headers)


async def _send_raw(
    writer, status: int, body: bytes, *, extra_headers: tuple = ()
) -> None:
    reason = _REASONS.get(status, "Unknown")
    extras = "".join(f"{line}\r\n" for line in extra_headers)
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extras}"
        "Connection: close\r\n\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()
