"""The MCT daemon: submit sweeps over HTTP, share and cache results.

``repro-mct serve`` turns the τ-sweep engine into a long-running
analysis service — the shape a timing sign-off flow actually consumes
it in, where many actors (CI shards, designers, a regression cron)
ask for bounds on overlapping circuits.  Three design rules carry the
whole module:

1. **Stdlib only.**  The HTTP layer (:mod:`repro.service.http`) is
   ``asyncio.start_server`` plus a strict hand-rolled HTTP/1.1 reader;
   there is no framework to install and no new dependency.
2. **The engine stays the source of truth.**  Jobs execute on the
   existing :func:`~repro.mct.minimum_cycle_time` with the daemon's
   ``--jobs`` pool or ``--workers`` cluster transport; progress events
   are the engine's own ordered :class:`~repro.mct.CandidateRecord`
   commits; cancellation rides the engine's operator-interrupt
   contract (partial + checkpoint, the HTTP shape of CLI exit 3).
3. **Identity is content, not requests.**  A submission's address is
   the sha256 of its canonical spec — circuit hash, delay transforms,
   and the engine's :func:`~repro.mct.options_fingerprint` — so
   identical analyses coalesce while in flight (single-flight) and
   replay byte-identically from the cache afterwards, across daemon
   restarts when ``--cache-dir`` is set.

Deployment hardening lives beside, not inside, that identity: bearer
auth and TLS on the listener (:mod:`repro.netsec`), TTL/LRU bounds on
the job table and the disk cache, and cancel-resume via retained
checkpoints are all operator knobs — none enters a cache key or
fingerprint, so hardened and plain deployments serve the same bytes.
"""

from repro.service.cache import ResultCache, content_hash, job_key
from repro.service.http import MctService
from repro.service.jobs import Job, JobManager, JobSpec, result_document
from repro.service.stats import ServiceStats

__all__ = [
    "Job",
    "JobManager",
    "JobSpec",
    "MctService",
    "ResultCache",
    "ServiceStats",
    "content_hash",
    "job_key",
    "result_document",
]
