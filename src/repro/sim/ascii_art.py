"""Plain-text waveform rendering for terminals and docs.

Turns recorded simulation waveforms into the familiar two-row trace::

    clk   _/‾\\_/‾\\_/‾\\_
    q     ____/‾‾‾‾\\____

Times are quantized onto a column grid; each column covers an equal
slice of the displayed window, and a net is drawn high for a column if
it is high at the column's start instant.
"""

from __future__ import annotations

from fractions import Fraction
from collections.abc import Sequence

from repro.errors import AnalysisError
from repro.logic.delays import as_fraction

HIGH, LOW = "‾", "_"
RISE, FALL = "/", "\\"


def _value_at(history: list[tuple[Fraction, bool]], t: Fraction) -> bool:
    value = history[0][1]
    for when, new in history:
        if when <= t:
            value = new
        else:
            break
    return value


def render_waveforms(
    waveforms: dict[str, list[tuple[Fraction, bool]]],
    nets: Sequence[str] | None = None,
    end_time: Fraction | int | str | None = None,
    columns: int = 64,
) -> str:
    """Render selected nets as aligned ASCII traces.

    ``nets`` defaults to all recorded nets (sorted); ``end_time``
    defaults to the last recorded change.
    """
    if not waveforms:
        raise AnalysisError("no waveforms recorded (record_waveforms=True?)")
    if nets is None:
        nets = sorted(waveforms)
    missing = [n for n in nets if n not in waveforms]
    if missing:
        raise AnalysisError(f"nets without waveforms: {missing}")
    if end_time is None:
        end = max(
            (history[-1][0] for history in waveforms.values() if history),
            default=Fraction(0),
        )
        if end == 0:
            end = Fraction(1)
    else:
        end = as_fraction(end_time)
        if end <= 0:
            raise AnalysisError("end_time must be positive")
    width = max(len(n) for n in nets) + 2
    lines = []
    for net in nets:
        history = waveforms[net]
        cells = []
        previous: bool | None = None
        for col in range(columns):
            t = end * Fraction(col, columns)
            value = _value_at(history, t)
            if previous is None or previous == value:
                cells.append(HIGH if value else LOW)
            else:
                cells.append(RISE if value else FALL)
            previous = value
        lines.append(net.ljust(width) + "".join(cells))
    return "\n".join(lines)
