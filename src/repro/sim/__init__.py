"""Event-driven gate-level timing simulation.

The validation oracle for the whole reproduction: a transport-delay
simulator whose semantics coincide with the TBF model (each gate output
at time ``t`` computes its function over pin values at ``t - d_pin``).
Clocked simulation samples flip-flop data inputs at every edge with the
same closed-at-the-edge convention as the analysis (a signal arriving
exactly at ``nτ`` is latched).

Tests use it both ways:

* **soundness** — at any τ at or above the computed minimum-cycle-time
  bound, the sampled state sequence must equal the ideal (zero-delay)
  simulation, for any stimulus;
* **witnesses** — below the bound, specific circuits (e.g. the paper's
  Example 2 at τ = 2) must visibly diverge.
"""

from repro.sim.event_sim import (
    ClockedSimulator,
    SimulationTrace,
    last_output_transition,
    sample_delay_map,
)
from repro.sim.vcd import waveforms_to_vcd, write_vcd
from repro.sim.ascii_art import render_waveforms

__all__ = [
    "ClockedSimulator",
    "SimulationTrace",
    "last_output_transition",
    "sample_delay_map",
    "waveforms_to_vcd",
    "write_vcd",
    "render_waveforms",
]
